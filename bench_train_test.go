// Training-path benchmarks: learner Fit and Algorithm 1 (core.Train) on a
// synthetic dataset shaped like the paper's full-scale audit traces (140
// features, 2000 sampled records, latent-regime correlations). These run
// without a simulation so `make bench-train` isolates the count-kernel
// cost the columnar dataset layout optimises.
package crossfeature_test

import (
	"testing"

	"crossfeature/internal/core"
	"crossfeature/internal/experiments"
	"crossfeature/internal/ml"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// trainBenchDS is the shared benchmark dataset: the paper's full-scale
// trace shape (10 000 s sampled every 5 s = 2000 records).
func trainBenchDS() *ml.Dataset {
	return experiments.SyntheticAuditDataset(7, 2000)
}

// benchTarget is a representative sub-model target (an ordinary mid-schema
// traffic feature).
const benchTarget = 17

// BenchmarkC45Fit measures one C4.5 sub-model fit with the experiment
// pipeline's settings (temporal holdout pruning).
func BenchmarkC45Fit(b *testing.B) {
	ds := trainBenchDS()
	l := c45.NewLearner()
	l.HoldoutFrac = 1.0 / 3.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Fit(ds, benchTarget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRipperFit measures one RIPPER sub-model fit.
func BenchmarkRipperFit(b *testing.B) {
	ds := trainBenchDS()
	l := ripper.NewLearner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Fit(ds, benchTarget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBFit measures one Naive Bayes sub-model fit.
func BenchmarkNBFit(b *testing.B) {
	ds := trainBenchDS()
	l := nbayes.NewLearner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Fit(ds, benchTarget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreTrain measures Algorithm 1 end-to-end — L sub-models over
// the shared dataset — per base learner.
func BenchmarkCoreTrain(b *testing.B) {
	cases := []struct {
		name    string
		learner func() ml.Learner
	}{
		{"C45", func() ml.Learner {
			l := c45.NewLearner()
			l.HoldoutFrac = 1.0 / 3.0
			return l
		}},
		{"RIPPER", func() ml.Learner { return ripper.NewLearner() }},
		{"NBC", func() ml.Learner { return nbayes.NewLearner() }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ds := trainBenchDS()
			learner := tc.learner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(ds, learner, core.TrainOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
