// Package crossfeature's root benchmark suite regenerates each of the
// paper's tables and figures (see DESIGN.md's experiment index). One
// benchmark exists per table/figure; each runs the same pipeline as
// cmd/experiments at a reduced scale so `go test -bench=.` completes in
// minutes while preserving the experiment structure. AUC-style quality
// metrics are attached to the benchmark output via ReportMetric, making
// shape regressions visible alongside timing.
package crossfeature_test

import (
	"io"
	"testing"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/experiments"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
	"crossfeature/internal/netsim"
	"crossfeature/internal/packet"
	"crossfeature/internal/trace"
)

// benchPreset shrinks the paper preset far enough for iterated benchmark
// runs: a 600 s, 12-node scenario with the same attack structure.
func benchPreset() experiments.Preset {
	p := experiments.PaperPreset()
	p.Nodes = 12
	p.Connections = 8
	p.Duration = 600
	p.Warmup = 150
	p.TrainSeed = 11
	p.NormalSeeds = []int64{21}
	p.AttackSeeds = []int64{31}
	p.BlackHoleStart = 200
	p.DropStart = 350
	p.SessionDuration = 50
	p.SingleStarts = []float64{200, 350, 500}
	p.SingleSessionDuration = 30
	p.AttackerNode = 5
	p.PrefilterSize = 0
	return p
}

func newBenchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	lab, err := experiments.NewLab(benchPreset())
	if err != nil {
		b.Fatal(err)
	}
	return lab
}

// BenchmarkTable1TwoNodeNormalEvents regenerates Table 1.
func BenchmarkTable1TwoNodeNormalEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if events := experiments.TwoNodeNormalEvents(); len(events) != 4 {
			b.Fatal("wrong table 1")
		}
	}
}

// BenchmarkTable2TwoNodeSubModels regenerates Table 2's three sub-models.
func BenchmarkTable2TwoNodeSubModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for labeled := 0; labeled < 3; labeled++ {
			experiments.BuildTwoNodeSubModel(labeled)
		}
	}
}

// BenchmarkTable3TwoNodeScores regenerates Table 3 and validates the
// paper's threshold observation.
func BenchmarkTable3TwoNodeScores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scores := experiments.TwoNodeScores()
		for _, s := range scores {
			if s.Normal && s.AvgProb < 0.5 {
				b.Fatal("table 3 separation broken")
			}
		}
	}
}

// BenchmarkTable45FeatureConstruction measures Feature Set I+II extraction
// from a live audit collector (Tables 4 and 5).
func BenchmarkTable45FeatureConstruction(b *testing.B) {
	types := []packet.Type{packet.Data, packet.RouteRequest, packet.RouteReply, packet.RouteError, packet.Hello}
	col := trace.NewCollector()
	i := 0
	for t := 0.0; t < 900; t += 0.5 {
		ty := types[i%len(types)]
		dir := trace.Direction(i % 4)
		if !trace.ValidCombo(trace.ClassData, dir) && ty == packet.Data {
			dir = trace.Received
		}
		col.RecordPacket(t, ty, dir)
		col.RecordRoute(trace.RouteEvent(i % trace.NumRouteEvents))
		i++
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		snap := col.Snapshot(900, 5, 2.5)
		v := features.FromSnapshot(snap)
		if len(v.Values) != features.NumFeatures {
			b.Fatal("wrong feature count")
		}
	}
}

// BenchmarkFigure1RecallPrecision regenerates Figure 1 (reduced scale):
// recall-precision curves for the three learners.
func BenchmarkFigure1RecallPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab(b)
		results, err := lab.Figure1(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		reportBestAUC(b, results)
	}
}

// BenchmarkFigure2MatchVsProb regenerates Figure 2 (reduced scale).
func BenchmarkFigure2MatchVsProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab(b)
		results, err := lab.Figure2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		reportBestAUC(b, results)
	}
}

// BenchmarkFigure3TimeSeries regenerates Figure 3 (reduced scale).
func BenchmarkFigure3TimeSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab(b)
		if _, err := lab.Figure3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Density regenerates Figure 4 (reduced scale).
func BenchmarkFigure4Density(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab(b)
		if _, err := lab.Figure4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5PerIntrusion regenerates Figure 5 (reduced scale).
func BenchmarkFigure5PerIntrusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab(b)
		if _, err := lab.Figure5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6PerIntrusionDensity regenerates Figure 6 (reduced scale).
func BenchmarkFigure6PerIntrusionDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab(b)
		if _, err := lab.Figure6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func reportBestAUC(b *testing.B, results []experiments.CurveResult) {
	b.Helper()
	best := 0.0
	for _, r := range results {
		if r.AUC > best {
			best = r.AUC
		}
	}
	b.ReportMetric(best, "bestAUC")
}

// BenchmarkAblations runs the design-choice ablation suite (bucket count,
// sampling-period subsets, model reduction, scorer matrix, continuous
// variant) at reduced scale.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab(b)
		if _, err := lab.Ablations(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- component micro-benchmarks -------------------------------------------------

// BenchmarkSimulationAODVUDP measures raw simulator throughput for the
// default scenario shape.
func BenchmarkSimulationAODVUDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := netsim.DefaultConfig()
		cfg.Nodes = 20
		cfg.Connections = 15
		cfg.Duration = 200
		cfg.Seed = int64(i + 1)
		net, err := netsim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(net.Engine().Processed()), "events/op")
	}
}

// BenchmarkSimulationDSRUDP measures DSR (promiscuous) throughput.
func BenchmarkSimulationDSRUDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := netsim.DefaultConfig()
		cfg.Nodes = 20
		cfg.Connections = 15
		cfg.Duration = 200
		cfg.Routing = netsim.DSR
		cfg.Seed = int64(i + 1)
		net, err := netsim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDataset builds a discretised normal dataset once for the training
// and scoring micro-benchmarks.
func benchDataset(b *testing.B) (*experiments.ScenarioData, *experiments.Lab) {
	b.Helper()
	lab := newBenchLab(b)
	d, err := lab.Data(experiments.Scenario{Routing: netsim.AODV, Transport: netsim.CBR})
	if err != nil {
		b.Fatal(err)
	}
	return d, lab
}

// BenchmarkTrainC45 measures Algorithm 1 with the C4.5 base learner on a
// full 140-feature dataset.
func BenchmarkTrainC45(b *testing.B) {
	d, _ := benchDataset(b)
	learner := c45.NewLearner()
	learner.HoldoutFrac = 1.0 / 3.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(d.TrainDS, learner, core.TrainOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainRIPPER measures Algorithm 1 with RIPPER.
func BenchmarkTrainRIPPER(b *testing.B) {
	d, _ := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(d.TrainDS, ripper.NewLearner(), core.TrainOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainNBC measures Algorithm 1 with Naive Bayes.
func BenchmarkTrainNBC(b *testing.B) {
	d, _ := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(d.TrainDS, nbayes.NewLearner(), core.TrainOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreEvent measures Algorithms 2 and 3 per-event scoring cost
// (the online detection path).
func BenchmarkScoreEvent(b *testing.B) {
	d, _ := benchDataset(b)
	learner := c45.NewLearner()
	learner.HoldoutFrac = 1.0 / 3.0
	a, err := core.Train(d.TrainDS, learner, core.TrainOptions{})
	if err != nil {
		b.Fatal(err)
	}
	x := d.TrainEvents[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.AvgProbability(x)
		_ = a.AvgMatchCount(x)
	}
}

// BenchmarkDiscretize measures feature-vector discretisation, the
// per-record preprocessing cost of online detection.
func BenchmarkDiscretize(b *testing.B) {
	d, lab := benchDataset(b)
	tr, err := lab.RunTrace(experiments.Scenario{Routing: netsim.AODV, Transport: netsim.CBR},
		experiments.NoAttack, 21)
	if err != nil {
		b.Fatal(err)
	}
	row := tr.Vectors[len(tr.Vectors)-1].Values
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Disc.Transform(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRCurve measures the evaluation machinery on a realistic score
// set size.
func BenchmarkPRCurve(b *testing.B) {
	events := make([]eval.Scored, 4000)
	for i := range events {
		events[i] = eval.Scored{Score: float64(i%997) / 997, Intrusion: i%3 == 0}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := eval.Curve(events)
		_ = eval.AUC(pts)
	}
}
