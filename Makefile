GO ?= go

.PHONY: ci build test vet race short fuzz bench

# ci is the full gate: static analysis, a clean build of every package and
# the test suite under the race detector.
ci: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The experiment studies
# dominate the runtime; use `make short` for a quick pass.
race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# bench runs the root benchmark suite three times with allocation stats and
# records the raw output in a dated BENCH_<date>.json next to this Makefile.
# Compare runs with `benchstat` if available, or diff the ns/op columns.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 . | tee BENCH_$$(date +%Y%m%d).json

# fuzz gives each fuzz target a brief budget beyond its seed corpus.
fuzz:
	$(GO) test ./internal/features/ -fuzz FuzzTransformValue -fuzztime 10s
	$(GO) test ./internal/features/ -fuzz FuzzReadCSV -fuzztime 10s
