GO ?= go

.PHONY: ci build test vet race short fuzz bench bench-train bench-score bench-serve serve-smoke train-smoke score-diff fmt serve-chaos crash-chaos obs-smoke loadgen-smoke metrics-lint

# ci is the full gate: formatting and static analysis, a clean build of
# every package and the test suite under the race detector, plus a smoke
# pass over the training-path differential tests, a one-iteration spin of
# the training benchmarks so a broken fast path fails fast, the compiled
# scoring-kernel differential suite, a soak of the serving chaos suite,
# the crash-recovery suite, a one-iteration spin of the serving
# throughput benchmark, an end-to-end scrape of the observability
# surfaces, a short open-loop load-generator run against a live server,
# and the metrics naming/statz-drift lint.
ci: fmt vet build race train-smoke score-diff serve-chaos crash-chaos serve-smoke obs-smoke loadgen-smoke metrics-lint

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# serve-chaos soaks the scoring-service chaos tests (overload bursts,
# corrupt reloads, slow/aborted clients, drain) under the race detector;
# -count=3 reruns shake out timing-dependent flakes.
serve-chaos:
	$(GO) test -race -run 'TestChaos' -count=3 -timeout 120s ./internal/serve/...

# crash-chaos proves crash safety end to end: real `cfa serve` processes
# are SIGKILLed mid-load and restarted against their last checkpoint
# (verdict continuity, cold-start accounting, torn-file recovery), and the
# failpoint-driven recovery tests (checkpoint write failures, reload and
# admission injection) soak under the race detector.
crash-chaos:
	$(GO) test -count=2 -run 'TestCrashRecovery' -timeout 300s ./cmd/cfa/
	$(GO) test -race -count=2 -timeout 180s \
		-run 'TestCheckpoint|TestRunRestores|TestRunPeriodic|TestChaosHungHandler|TestChaosReloadFailpoint|TestChaosAdmit|TestDecodeCheckpoint' \
		./internal/serve/
	$(GO) test -race -count=2 -timeout 60s ./internal/failpoint/

# loadgen-smoke boots the scoring service on an ephemeral port and runs
# cfa loadgen against it end to end: a 2s open-loop measurement, an
# audit-trace replay and a closed-loop pass, asserting non-zero goodput,
# zero transport errors and a clean drain.
loadgen-smoke:
	$(GO) test -run TestLoadgenSmoke -count 1 -timeout 120s ./cmd/cfa/

# obs-smoke boots the scoring service on ephemeral ports and scrapes
# /metrics, the pprof surface and the /flightz flight-recorder dump end
# to end, then replays the registry encoder golden tests and the
# concurrency hammer under the race detector.
obs-smoke:
	$(GO) test -run TestObsSmoke -count 1 ./cmd/cfa/
	$(GO) test -race -count 1 ./internal/obs/

# metrics-lint pins the observability naming contract: every registered
# metric is cfa_-prefixed snake_case with help text (counters end in
# _total), and every counter /statz reports maps to a live registry
# metric present in the Prometheus exposition.
metrics-lint:
	$(GO) test -run 'TestMetricNamesLint|TestStatzFieldsBackedByRegistryMetrics' \
		-count 1 ./internal/serve/

# score-diff re-runs the compiled-kernel differential suites under the
# race detector: each learner's flat form against its pointer-walking
# reference, plus the end-to-end Score/ScoreEvents/ScoreAll fuzz and the
# stale-compile invalidation regression in internal/core.
score-diff:
	$(GO) test -race -run 'TestCompiledDifferential' -count 1 ./internal/ml/...
	$(GO) test -race -run 'TestScoreKernelDifferential|TestCompileInvalidation' \
		-count 1 ./internal/core/

# train-smoke re-runs the columnar-vs-naive differential tests and gives
# each training benchmark a single iteration; it exists so `make ci`
# exercises the benchmark bodies without paying for a full measurement.
train-smoke:
	$(GO) test -run TestColumnarDifferential -count 1 ./internal/ml/...
	$(GO) test -run '^$$' -bench '^Benchmark(C45Fit|RipperFit|NBFit|CoreTrain)$$' -benchtime 1x .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The experiment studies
# dominate the runtime; use `make short` for a quick pass.
race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# bench runs the root benchmark suite three times with allocation stats and
# records the raw output in a dated BENCH_<date>.json next to this Makefile,
# followed by the stage timings of a quick-preset experiments run (the run
# manifest from -trace). Compare runs with `benchstat` if available, or
# diff the ns/op columns and the manifest stage wall-times.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 . | tee BENCH_$$(date +%Y%m%d).json
	$(GO) run ./cmd/experiments -preset quick -only figure3 \
		-trace BENCH_$$(date +%Y%m%d).stages.json >/dev/null
	cat BENCH_$$(date +%Y%m%d).stages.json >> BENCH_$$(date +%Y%m%d).json
	rm -f BENCH_$$(date +%Y%m%d).stages.json

# bench-train measures only the learner training paths (per-learner Fit and
# the end-to-end core.Train ensemble) on the paper-shaped synthetic audit
# dataset. Append the output to the dated BENCH file when recording a
# before/after for a training-path change.
bench-train:
	$(GO) test -run '^$$' -bench '^Benchmark(C45Fit|RipperFit|NBFit|CoreTrain)$$' -benchmem -count 3 .

# bench-score measures only the inference paths on the same dataset: the
# per-record pointer-walking reference (BenchmarkAnalyzerScore) against
# the compiled batch path (BenchmarkScoreAll), plus each learner's
# single-model predict kernels. Append the output to the dated BENCH file
# when recording a before/after for a scoring-path change.
bench-score:
	$(GO) test -run '^$$' -timeout 30m \
		-bench '^Benchmark(AnalyzerScore|ScoreAll|C45Predict|RipperPredict|NBPredict)$$' \
		-benchmem -count 3 .

# bench-serve measures end-to-end serving throughput over real HTTP:
# per-record /v1/score against /v1/score-batch at 1, 4 and 16 stream
# shards, reporting records/sec plus server-side p50/p99 latency from
# the obs histograms, followed by the goodput-vs-offered-load sweep:
# cfa loadgen drives 1x/2x/4x of the calibrated peak in open loop with
# adaptive overload control on and then off. The output is appended to
# the dated BENCH file so a before/after for a serving-path change lands
# next to the kernel numbers.
bench-serve:
	$(GO) test -run '^$$' -bench '^BenchmarkServeThroughput$$' -count 3 \
		-timeout 30m ./internal/serve/ | tee -a BENCH_$$(date +%Y%m%d).json
	CFA_LOADGEN_SWEEP=1 $(GO) test -run TestLoadgenSweep -count 1 -v \
		-timeout 20m ./cmd/cfa/ | tee -a BENCH_$$(date +%Y%m%d).json

# serve-smoke gives every serving-throughput benchmark case a single
# iteration so `make ci` exercises the batch and per-record HTTP paths at
# each shard count without paying for a full measurement.
serve-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkServeThroughput$$' -benchtime 1x \
		./internal/serve/

# fuzz gives each fuzz target a brief budget beyond its seed corpus.
fuzz:
	$(GO) test ./internal/features/ -fuzz FuzzTransformValue -fuzztime 10s
	$(GO) test ./internal/features/ -fuzz FuzzReadCSV -fuzztime 10s
