// Streaming demonstrates the operational deployment path: train a
// detector, persist it, reload it (as a long-running IDS daemon would),
// and stream an attacked trace through the online detector, which smooths
// scores and applies raise/clear hysteresis before paging anyone.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"crossfeature/internal/attack"
	"crossfeature/internal/core"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/netsim"
	"crossfeature/internal/packet"
)

func main() {
	duration := flag.Float64("duration", 2500, "virtual seconds per trace")
	nodes := flag.Int("nodes", 25, "network size")
	flag.Parse()
	if err := run(*duration, *nodes); err != nil {
		log.Fatal(err)
	}
}

func run(duration float64, nodes int) error {
	base := netsim.DefaultConfig()
	base.Nodes = nodes
	base.Connections = nodes
	base.Duration = duration
	base.WorkloadSeed = 99
	warmup := duration / 8

	// 1. Train on a normal trace.
	normal := base
	normal.Seed = 1
	fmt.Println("training on a normal trace...")
	vectors, _, err := simulate(normal)
	if err != nil {
		return err
	}
	var rows [][]float64
	for _, v := range vectors {
		if v.Time >= warmup {
			rows = append(rows, v.Values)
		}
	}
	disc, err := features.Fit(rows, features.Names(), features.FitOptions{Buckets: 5, Seed: 1})
	if err != nil {
		return err
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		return err
	}
	learner := c45.NewLearner()
	learner.HoldoutFrac = 1.0 / 3.0
	analyzer, err := core.Train(ds, learner, core.TrainOptions{})
	if err != nil {
		return err
	}

	// 2. Persist and reload the analyzer, as a deployment would.
	var blob bytes.Buffer
	if err := analyzer.Save(&blob); err != nil {
		return err
	}
	fmt.Printf("model serialised: %d KiB\n", blob.Len()/1024)
	reloaded, err := core.Load(&blob)
	if err != nil {
		return err
	}
	detector := core.NewDetector(reloaded, core.Probability, ds.X, 0.01)
	online := core.NewOnlineDetector(detector)
	online.RaiseAfter = 4 // cross-trace noise: demand a solid anomalous run

	// 3. Stream an attacked replay of the same scenario.
	onset := duration * 0.4
	attacked := base
	attacked.Seed = 2
	attacked.Attacks = []attack.Spec{{
		Kind:     attack.BlackHole,
		Node:     packet.NodeID(nodes / 2),
		Sessions: []attack.Session{{Start: onset, Duration: duration - onset}},
	}}
	fmt.Printf("streaming attacked trace (black hole from %.0fs)...\n\n", onset)
	attackVectors, _, err := simulate(attacked)
	if err != nil {
		return err
	}
	for _, v := range attackVectors {
		x, err := disc.Transform(v.Values)
		if err != nil {
			return err
		}
		st := online.Observe(x)
		switch {
		case st.Raised:
			fmt.Printf("t=%6.0fs ALARM RAISED (smoothed score %.3f < threshold %.3f)\n",
				v.Time, st.Smoothed, detector.Threshold)
		case st.Cleared:
			fmt.Printf("t=%6.0fs alarm cleared (smoothed score %.3f)\n", v.Time, st.Smoothed)
		}
	}
	records, alarms := online.Stats()
	fmt.Printf("\nprocessed %d records, raised %d alarm(s); final state: %v\n",
		records, alarms, online.Alarm())
	if online.Alarm() {
		fmt.Println("the black hole is still active at the end of the trace — as expected.")
	}
	return nil
}

func simulate(cfg netsim.Config) ([]features.Vector, attack.Plan, error) {
	net, err := netsim.New(cfg)
	if err != nil {
		return nil, attack.Plan{}, err
	}
	if err := net.Run(); err != nil {
		return nil, attack.Plan{}, err
	}
	return features.FromSnapshots(net.Snapshots(0)), net.Plan(), nil
}
