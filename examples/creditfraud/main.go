// Creditfraud applies cross-feature analysis outside networking — the
// paper's future-work claim that the framework generalises to financial
// fraud detection where only normal data can be trusted.
//
// Synthetic cardholders have correlated spending habits: amount tracks
// merchant category, transaction hour follows a daily profile, distance
// from home correlates with category, and velocity (transactions per
// hour) stays low. Fraudulent transactions have individually plausible
// values whose combination breaks the habits (e.g. high amount in a
// low-value category at 4am far from home).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/nbayes"
)

// categories with typical spend and distance profiles.
var categories = []struct {
	name     string
	meanAmt  float64
	meanDist float64
}{
	{"grocery", 60, 3},
	{"fuel", 45, 8},
	{"restaurant", 35, 6},
	{"electronics", 400, 15},
	{"travel", 800, 500},
}

func normalTxn(rng *rand.Rand) []float64 {
	c := rng.Intn(len(categories))
	cat := categories[c]
	hour := 9 + rng.NormFloat64()*4 // daytime habits
	if hour < 0 {
		hour += 24
	}
	amount := cat.meanAmt * (0.5 + rng.Float64())
	dist := cat.meanDist * (0.3 + rng.Float64()*1.4)
	velocity := rng.Float64() * 2
	return []float64{float64(c), amount, hour, dist, velocity}
}

func fraudTxn(rng *rand.Rand) []float64 {
	// Each value is in normal range; the combination is not.
	c := rng.Intn(2) // grocery or fuel...
	return []float64{
		float64(c),
		300 + rng.Float64()*400, // ...at electronics/travel prices
		2 + rng.Float64()*3,     // small hours
		200 + rng.Float64()*300, // far from home
		4 + rng.Float64()*4,     // rapid-fire attempts
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	names := []string{"category", "amount", "hour", "distance", "velocity"}

	var train [][]float64
	for i := 0; i < 2000; i++ {
		train = append(train, normalTxn(rng))
	}
	disc, err := features.Fit(train, names, features.FitOptions{Buckets: 5, Seed: 1})
	if err != nil {
		return err
	}
	ds, err := disc.Dataset(train)
	if err != nil {
		return err
	}
	analyzer, err := core.Train(ds, nbayes.NewLearner(), core.TrainOptions{})
	if err != nil {
		return err
	}
	detector := core.NewDetector(analyzer, core.Probability, ds.X, 0.02)
	fmt.Printf("trained %d sub-models; threshold %.3f\n", analyzer.NumModels(), detector.Threshold)

	var events []eval.Scored
	var caught, fraud, falseAlarms, legit int
	for i := 0; i < 500; i++ {
		isFraud := i%5 == 0
		var row []float64
		if isFraud {
			row = fraudTxn(rng)
			fraud++
		} else {
			row = normalTxn(rng)
			legit++
		}
		x, err := disc.Transform(row)
		if err != nil {
			return err
		}
		score := detector.Score(x)
		events = append(events, eval.Scored{Score: score, Intrusion: isFraud})
		if detector.IsAnomaly(x) {
			if isFraud {
				caught++
			} else {
				falseAlarms++
			}
		}
	}
	pts := eval.Curve(events)
	opt := eval.OptimalPoint(pts)
	fmt.Printf("fraud caught:  %d/%d (%.1f%%)\n", caught, fraud, 100*float64(caught)/float64(fraud))
	fmt.Printf("false alarms:  %d/%d (%.1f%%)\n", falseAlarms, legit, 100*float64(falseAlarms)/float64(legit))
	fmt.Printf("AUC=%.3f optimal=(recall=%.2f, precision=%.2f)\n", eval.AUC(pts), opt.Recall, opt.Precision)
	return nil
}
