// Blackhole demonstrates detecting the paper's black-hole attack on an
// AODV/UDP network: simulate a normal trace, train a C4.5 cross-feature
// detector on it, then replay the same scenario with a black hole switched
// on at one quarter of the run and print the alarm timeline observed from
// the monitored node.
package main

import (
	"flag"
	"fmt"
	"log"

	"crossfeature/internal/attack"
	"crossfeature/internal/core"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/netsim"
	"crossfeature/internal/packet"
)

func main() {
	duration := flag.Float64("duration", 3000, "virtual seconds per trace")
	nodes := flag.Int("nodes", 30, "network size")
	flag.Parse()
	if err := run(*duration, *nodes); err != nil {
		log.Fatal(err)
	}
}

func run(duration float64, nodes int) error {
	base := netsim.DefaultConfig()
	base.Nodes = nodes
	base.Connections = nodes
	base.Duration = duration
	base.WorkloadSeed = 42
	base.Routing = netsim.AODV
	base.Transport = netsim.CBR

	// 1. Normal trace for training.
	normal := base
	normal.Seed = 1
	fmt.Println("simulating normal trace...")
	vectors, _, err := simulate(normal)
	if err != nil {
		return err
	}

	// 2. Train the detector on post-warmup normal records.
	warmup := duration / 8
	var rows [][]float64
	for _, v := range vectors {
		if v.Time >= warmup {
			rows = append(rows, v.Values)
		}
	}
	disc, err := features.Fit(rows, features.Names(), features.FitOptions{Buckets: 5, Seed: 1})
	if err != nil {
		return err
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		return err
	}
	learner := c45.NewLearner()
	learner.HoldoutFrac = 1.0 / 3.0
	analyzer, err := core.Train(ds, learner, core.TrainOptions{})
	if err != nil {
		return err
	}
	detector := core.NewDetector(analyzer, core.Probability, ds.X, 0.02)
	fmt.Printf("trained %d sub-models; threshold %.3f\n", analyzer.NumModels(), detector.Threshold)

	// 3. Attack trace: same scenario, black hole from duration/4 onward in
	// periodic sessions.
	onset := duration / 4
	attacked := base
	attacked.Seed = 2
	session := duration / 20
	var sessions []attack.Session
	for t := onset; t < duration; t += 2 * session {
		sessions = append(sessions, attack.Session{Start: t, Duration: session})
	}
	attacked.Attacks = []attack.Spec{{
		Kind:     attack.BlackHole,
		Node:     packet.NodeID(nodes / 2),
		Sessions: sessions,
	}}
	fmt.Printf("simulating black-hole trace (attacker node %d, onset %.0fs)...\n", nodes/2, onset)
	attackVectors, plan, err := simulate(attacked)
	if err != nil {
		return err
	}

	// 4. Score and report.
	var alarmsBefore, before, alarmsAfter, after int
	fmt.Println("\ntime     score   verdict")
	for i, v := range attackVectors {
		x, err := disc.Transform(v.Values)
		if err != nil {
			return err
		}
		score := detector.Score(x)
		anomaly := detector.IsAnomaly(x)
		if v.Time >= warmup {
			if v.Time < onset {
				before++
				if anomaly {
					alarmsBefore++
				}
			} else {
				after++
				if anomaly {
					alarmsAfter++
				}
			}
		}
		if i%16 == 0 {
			mark := ""
			if anomaly {
				mark = "  <-- ANOMALY"
			}
			if plan.ActiveAt(v.Time) {
				mark += " [session active]"
			}
			fmt.Printf("%7.0f  %.3f  %s\n", v.Time, score, mark)
		}
	}
	fmt.Printf("\nfalse alarms before onset: %d/%d (%.1f%%)\n",
		alarmsBefore, before, 100*float64(alarmsBefore)/float64(before))
	fmt.Printf("alarms after onset:        %d/%d (%.1f%%)\n",
		alarmsAfter, after, 100*float64(alarmsAfter)/float64(after))
	return nil
}

// simulate runs one scenario and returns the monitored node's vectors.
func simulate(cfg netsim.Config) ([]features.Vector, attack.Plan, error) {
	net, err := netsim.New(cfg)
	if err != nil {
		return nil, attack.Plan{}, err
	}
	if err := net.Run(); err != nil {
		return nil, attack.Plan{}, err
	}
	return features.FromSnapshots(net.Snapshots(0)), net.Plan(), nil
}
