// Dropping demonstrates detecting the paper's selective packet-dropping
// attack on a DSR network: a compromised relay silently discards every
// packet destined to the monitored node during three on-off intrusion
// sessions, and a RIPPER-based cross-feature detector trained on normal
// traffic flags the sessions. It also contrasts the paper's two
// combination rules (average match count vs average probability) on the
// same trace.
package main

import (
	"flag"
	"fmt"
	"log"

	"crossfeature/internal/attack"
	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/ripper"
	"crossfeature/internal/netsim"
	"crossfeature/internal/packet"
)

func main() {
	duration := flag.Float64("duration", 3000, "virtual seconds per trace")
	nodes := flag.Int("nodes", 30, "network size")
	flag.Parse()
	if err := run(*duration, *nodes); err != nil {
		log.Fatal(err)
	}
}

func run(duration float64, nodes int) error {
	base := netsim.DefaultConfig()
	base.Nodes = nodes
	base.Connections = nodes
	base.Duration = duration
	base.WorkloadSeed = 77
	base.Routing = netsim.DSR
	base.Transport = netsim.CBR

	normal := base
	normal.Seed = 1
	fmt.Println("simulating normal DSR trace...")
	trainVecs, _, err := simulate(normal)
	if err != nil {
		return err
	}
	warmup := duration / 8
	var rows [][]float64
	for _, v := range trainVecs {
		if v.Time >= warmup {
			rows = append(rows, v.Values)
		}
	}
	disc, err := features.Fit(rows, features.Names(), features.FitOptions{Buckets: 5, Seed: 1})
	if err != nil {
		return err
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		return err
	}
	analyzer, err := core.Train(ds, ripper.NewLearner(), core.TrainOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("trained %d RIPPER sub-models\n", analyzer.NumModels())

	// Attack trace: three dropping sessions aimed at the monitored node.
	attacked := base
	attacked.Seed = 2
	session := duration / 25
	starts := []float64{duration / 4, duration / 2, 3 * duration / 4}
	attacked.Attacks = []attack.Spec{{
		Kind:     attack.SelectiveDrop,
		Node:     packet.NodeID(nodes / 3),
		Target:   0,
		Sessions: attack.Sessions(session, starts...),
	}}
	fmt.Printf("simulating dropping trace (attacker %d targets node 0, sessions at %.0f/%.0f/%.0fs)...\n",
		nodes/3, starts[0], starts[1], starts[2])
	attackVecs, plan, err := simulate(attacked)
	if err != nil {
		return err
	}

	// Compare the two combination rules on identical events.
	for _, scorer := range []core.Scorer{core.MatchCount, core.Probability} {
		detector := core.NewDetector(analyzer, scorer, ds.X, 0.02)
		var events []eval.Scored
		for _, v := range attackVecs {
			if v.Time < warmup {
				continue
			}
			x, err := disc.Transform(v.Values)
			if err != nil {
				return err
			}
			events = append(events, eval.Scored{
				Score:     detector.Score(x),
				Intrusion: v.Time >= starts[0],
			})
		}
		pts := eval.Curve(events)
		opt := eval.OptimalPoint(pts)
		conf := eval.At(events, detector.Threshold)
		fmt.Printf("\n%s:\n", scorer)
		fmt.Printf("  AUC=%.3f optimal=(recall=%.2f, precision=%.2f)\n", eval.AUC(pts), opt.Recall, opt.Precision)
		fmt.Printf("  at calibrated threshold %.3f: %s\n", detector.Threshold, conf)
	}
	_ = plan
	return nil
}

func simulate(cfg netsim.Config) ([]features.Vector, attack.Plan, error) {
	net, err := netsim.New(cfg)
	if err != nil {
		return nil, attack.Plan{}, err
	}
	if err := net.Run(); err != nil {
		return nil, attack.Plan{}, err
	}
	return features.FromSnapshots(net.Snapshots(0)), net.Plan(), nil
}
