// Quickstart walks through cross-feature analysis end-to-end on the
// paper's two-node illustrative example (section 3) and then on a small
// synthetic dataset using the real training pipeline: discretisation,
// Algorithm 1 training, and Algorithms 2/3 scoring with a calibrated
// threshold.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"crossfeature/internal/core"
	"crossfeature/internal/experiments"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/c45"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Part 1: the paper's worked example, reproduced exactly.
	fmt.Println("== Part 1: the paper's two-node example ==")
	experiments.PrintTable3(os.Stdout)
	fmt.Println()

	// Part 2: the real pipeline on synthetic correlated data. Three
	// correlated "sensors" (think: packets delivered, packets cached,
	// route reachability) plus one noise channel.
	fmt.Println("== Part 2: the full pipeline on synthetic data ==")
	rng := rand.New(rand.NewSource(7))
	names := []string{"load", "delivered", "cached", "noise"}
	normalRow := func() []float64 {
		load := rng.Float64() * 10
		return []float64{
			load,
			load*2 + rng.Float64(), // delivered tracks load
			load/2 + rng.Float64(), // cached tracks load
			rng.Float64() * 100,    // uncorrelated noise
		}
	}
	var train [][]float64
	for i := 0; i < 600; i++ {
		train = append(train, normalRow())
	}

	disc, err := features.Fit(train, names, features.FitOptions{Buckets: 5, Seed: 1})
	if err != nil {
		return err
	}
	ds, err := disc.Dataset(train)
	if err != nil {
		return err
	}
	learner := c45.NewLearner()
	learner.HoldoutFrac = 1.0 / 3.0 // validate tree structure out-of-sample
	analyzer, err := core.Train(ds, learner, core.TrainOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("trained %d sub-models with %s\n", analyzer.NumModels(), analyzer.LearnerName)

	// Calibrate the decision threshold on normal data at a 5% false-alarm
	// rate, then score batches of unseen normal and anomalous events. The
	// anomalies have individually unremarkable feature values whose
	// combination (high load, nothing delivered) never occurs normally.
	detector := core.NewDetector(analyzer, core.Probability, ds.X, 0.05)
	fmt.Printf("decision threshold: %.3f\n", detector.Threshold)

	anomalyRow := func() []float64 {
		return []float64{8 + rng.Float64()*2, rng.Float64(), 4 + rng.Float64(), rng.Float64() * 100}
	}
	count := func(gen func() []float64) (flagged int, err error) {
		for i := 0; i < 200; i++ {
			x, err := disc.Transform(gen())
			if err != nil {
				return 0, err
			}
			if detector.IsAnomaly(x) {
				flagged++
			}
		}
		return flagged, nil
	}
	normFlagged, err := count(normalRow)
	if err != nil {
		return err
	}
	anomFlagged, err := count(anomalyRow)
	if err != nil {
		return err
	}
	fmt.Printf("unseen normal events flagged:  %d/200 (%.1f%% false alarms)\n",
		normFlagged, float64(normFlagged)/2)
	fmt.Printf("load-without-delivery flagged: %d/200 (%.1f%% recall)\n",
		anomFlagged, float64(anomFlagged)/2)
	return nil
}
