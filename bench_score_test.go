// Scoring-path benchmarks: the per-record pointer-walking reference
// against the compiled flat kernels, per base learner and end-to-end
// through Analyzer.ScoreAll. Same synthetic full-scale dataset as the
// training benchmarks so `make bench-score` isolates inference cost.
package crossfeature_test

import (
	"sync"
	"testing"

	"crossfeature/internal/core"
	"crossfeature/internal/ml"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// scoreBenchModels holds one trained analyzer per base learner, shared
// across scoring benchmarks (training 140 sub-models dominates otherwise).
var scoreBenchModels struct {
	once sync.Once
	ds   *ml.Dataset
	an   map[string]*core.Analyzer
	err  error
}

func scoreBench(b *testing.B) (*ml.Dataset, map[string]*core.Analyzer) {
	b.Helper()
	m := &scoreBenchModels
	m.once.Do(func() {
		m.ds = trainBenchDS()
		m.an = make(map[string]*core.Analyzer)
		learners := map[string]ml.Learner{
			"C45": func() ml.Learner {
				l := c45.NewLearner()
				l.HoldoutFrac = 1.0 / 3.0
				return l
			}(),
			"RIPPER": ripper.NewLearner(),
			"NBC":    nbayes.NewLearner(),
		}
		for name, l := range learners {
			a, err := core.Train(m.ds, l, core.TrainOptions{})
			if err != nil {
				m.err = err
				return
			}
			m.an[name] = a
		}
	})
	if m.err != nil {
		b.Fatal(m.err)
	}
	return m.ds, m.an
}

// BenchmarkAnalyzerScore is the baseline: the retained pointer-walking
// reference path, one record at a time over the full dataset.
func BenchmarkAnalyzerScore(b *testing.B) {
	ds, an := scoreBench(b)
	for _, name := range []string{"C45", "RIPPER", "NBC"} {
		a := an[name]
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range ds.X {
					a.AvgProbability(x)
				}
			}
		})
	}
}

// BenchmarkScoreAll is the compiled batch path over the same records:
// flat kernels, columnar dataset view, buffers reused across rows.
func BenchmarkScoreAll(b *testing.B) {
	ds, an := scoreBench(b)
	for _, name := range []string{"C45", "RIPPER", "NBC"} {
		a := an[name]
		a.Compile()
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := a.ScoreAll(ds, core.Probability); len(got) != ds.Len() {
					b.Fatal("short result")
				}
			}
		})
	}
}

// benchSingleModel measures one sub-model's class-distribution prediction
// over every dataset row: the pointer/table reference against its
// compiled flat form.
func benchSingleModel(b *testing.B, fit func(*ml.Dataset) (ml.Classifier, error)) {
	ds := trainBenchDS()
	c, err := fit(ds)
	if err != nil {
		b.Fatal(err)
	}
	kc := c.(ml.KernelCompiler)
	buf := make([]float64, ds.Attrs[benchTarget].Card)
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range ds.X {
				ml.ProbaInto(c, x, buf)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		k := kc.CompileKernel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, x := range ds.X {
				k.TrueScore(x, x[benchTarget], buf)
			}
		}
	})
}

// BenchmarkC45Predict compares tree pointer descent with the flat node
// array.
func BenchmarkC45Predict(b *testing.B) {
	benchSingleModel(b, func(ds *ml.Dataset) (ml.Classifier, error) {
		l := c45.NewLearner()
		l.HoldoutFrac = 1.0 / 3.0
		return l.Fit(ds, benchTarget)
	})
}

// BenchmarkRipperPredict compares the rule-list walk with the condition
// matrix scan.
func BenchmarkRipperPredict(b *testing.B) {
	benchSingleModel(b, func(ds *ml.Dataset) (ml.Classifier, error) {
		return ripper.NewLearner().Fit(ds, benchTarget)
	})
}

// BenchmarkNBPredict compares nested log-prob table lookups with the
// packed slab.
func BenchmarkNBPredict(b *testing.B) {
	benchSingleModel(b, func(ds *ml.Dataset) (ml.Classifier, error) {
		return nbayes.NewLearner().Fit(ds, benchTarget)
	})
}
