module crossfeature

go 1.22
