package main

// Load-generator tests. TestLoadgenSmoke is the fast end-to-end check
// behind `make loadgen-smoke`: boot serve on an ephemeral port, run a
// short open-loop measurement, assert non-zero goodput and a clean
// drain. TestLoadgenSweep is the bench-ledger run behind `make
// bench-serve` (gated on CFA_LOADGEN_SWEEP=1): it calibrates the
// service's closed-loop peak, then sweeps 1x/2x/4x offered overload in
// open loop with adaptive overload control on and off, and emits the
// goodput-vs-offered-load comparison as JSON on stdout for the
// BENCH_<date>.json ledger.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"

	"crossfeature/internal/features"
	"crossfeature/internal/loadgen"
	"crossfeature/internal/trace"
)

// bootServe starts runServe with the given extra flags on an ephemeral
// port and returns the scrapeable address plus a shutdown func that
// asserts a clean drain.
func bootServe(t *testing.T, model string, extra ...string) (addr string, shutdown func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var buf syncBuffer
	done := make(chan error, 1)
	args := append([]string{"-model", model, "-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- runServe(ctx, args, &buf) }()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server did not announce its listener:\n%s", buf.String())
		}
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	return addr, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("runServe did not drain cleanly: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not drain after cancel")
		}
	}
}

// runLoadgenJSON runs the loadgen subcommand and parses its JSON report.
func runLoadgenJSON(t *testing.T, args []string) *loadgen.Report {
	t.Helper()
	jsonPath := filepath.Join(t.TempDir(), "loadgen.json")
	var out bytes.Buffer
	if err := runLoadgen(context.Background(), append(args, "-json", jsonPath), &out); err != nil {
		t.Fatalf("cfa loadgen: %v\n%s", err, out.String())
	}
	t.Logf("loadgen output:\n%s", out.String())
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parsing loadgen report: %v", err)
	}
	return &rep
}

// writeAuditTrace fabricates a replayable audit trace with bursty
// timestamps, exercising the manetsim -record format end to end.
func writeAuditTrace(t *testing.T, path string, records int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.AuditRecord, records)
	tm := 0.0
	for i := range recs {
		if i%10 == 0 {
			tm += 20 // session gap
		}
		tm += rng.Float64()
		vals := make([]float64, features.NumFeatures)
		base := rng.Float64() * 10
		for j := range vals {
			vals[j] = base*float64(j%5+1) + rng.Float64()
		}
		recs[i] = trace.AuditRecord{Time: tm, Values: vals}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteAuditTrace(f, features.Names(), recs); err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenSmoke(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	audit := filepath.Join(dir, "trace.audit")
	writeSyntheticTrace(t, normal, 200, false, 40)
	writeAuditTrace(t, audit, 100, 41)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := bootServe(t, model)

	// Open-loop Poisson against the CSV workload: the make loadgen-smoke
	// contract — non-zero goodput, no transport errors, clean drain.
	rep := runLoadgenJSON(t, []string{
		"-target", "http://" + addr, "-trace", normal,
		"-duration", "2s", "-rate", "200", "-multipliers", "1", "-seed", "7",
	})
	if len(rep.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	if pt.RecordsScored == 0 || pt.GoodputRecPerSec <= 0 {
		t.Fatalf("no goodput: %+v", pt)
	}
	if pt.Errors != 0 {
		t.Fatalf("%d transport/server errors in smoke run: %+v", pt.Errors, pt)
	}
	if rep.Version != loadgen.ReportVersion {
		t.Fatalf("report version = %d, want %d", rep.Version, loadgen.ReportVersion)
	}

	// Replay arrivals from the audit trace: sniffs the cfa-audit-trace/1
	// header and preserves the recorded gap shape.
	rep = runLoadgenJSON(t, []string{
		"-target", "http://" + addr, "-trace", audit, "-arrivals", "replay",
		"-duration", "1s", "-rate", "200", "-multipliers", "1", "-seed", "7",
	})
	if pt := rep.Points[0]; pt.RecordsScored == 0 || pt.Errors != 0 {
		t.Fatalf("replay run: %+v", pt)
	}

	// Closed loop for the same workload.
	rep = runLoadgenJSON(t, []string{
		"-target", "http://" + addr, "-trace", normal, "-mode", "closed",
		"-duration", "1s", "-workers", "2", "-multipliers", "1", "-seed", "7",
	})
	if pt := rep.Points[0]; pt.RecordsScored == 0 || pt.Errors != 0 {
		t.Fatalf("closed-loop run: %+v", pt)
	}
	shutdown()
}

// buildCfa compiles the cfa binary once for the sweep. The sweep's server
// runs as a separate OS process: in-process, the generator's hundreds of
// client goroutines and the server share one Go scheduler, and offered
// overload dissolves into scheduling backpressure before a handler ever
// sees it — no queueing, no shedding, no overload signal, just uniformly
// late 200s. A separate process gives the server its own runtime, so the
// storm actually arrives.
func buildCfa(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cfa")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/cfa: %v\n%s", err, out)
	}
	return bin
}

// bootServeProc starts `cfa serve` as a child process on an ephemeral
// port and returns the address plus a shutdown func that SIGTERMs it and
// asserts a clean drain.
func bootServeProc(t *testing.T, bin, model string, extra ...string) (addr string, shutdown func()) {
	t.Helper()
	args := append([]string{"serve", "-model", model, "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	var buf syncBuffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("cfa serve did not announce its listener:\n%s", buf.String())
		}
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	return addr, func() {
		cmd.Process.Signal(syscall.SIGTERM)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("cfa serve did not drain cleanly: %v\n%s", err, buf.String())
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Fatalf("cfa serve did not exit on SIGTERM:\n%s", buf.String())
		}
	}
}

// sweepServeFlags pins the service small enough that the sweep saturates
// it quickly and reproducibly: two scoring slots, a tight pre-decode
// gate, a snappy controller, and enough queue that the static
// configuration can hurt itself by accepting work it cannot serve in
// time.
func sweepServeFlags(adaptive bool) []string {
	return []string{
		"-concurrency", "2", "-queue", "64",
		"-max-inflight", "128",
		"-max-queue-records", "4096",
		"-max-batch-records", "256",
		"-timeout", "500ms",
		// NB: boolean flags must use the -flag=value form; a separate
		// value arg would end flag parsing and silently drop the rest.
		fmt.Sprintf("-adaptive=%v", adaptive),
		"-overload-target", "50ms",
		"-brownout-tick", "20ms",
		"-brownout-enter-after", "3",
		"-brownout-exit-after", "10",
	}
}

func TestLoadgenSweep(t *testing.T) {
	if os.Getenv("CFA_LOADGEN_SWEEP") == "" {
		t.Skip("set CFA_LOADGEN_SWEEP=1 to run the goodput-vs-offered-load sweep (make bench-serve)")
	}
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 300, false, 40)
	var out bytes.Buffer
	// C4.5 primary so the bundle carries the NB brownout fallback and
	// level 2 really changes the scoring kernel.
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "C4.5", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}

	bin := buildCfa(t)

	// The sweep workload is batch-heavy: big bodies at a modest request
	// rate deliver record-volume overload to the scoring path, where
	// the budget and brownout live. (A single-record-heavy mix at the
	// same record rate bottlenecks in the generator's own HTTP stack
	// before the server feels anything — the smoke test covers that
	// mix.)
	workloadArgs := []string{"-batch-fraction", "0.9", "-batch-records", "128"}

	// Phase 1: closed-loop calibration — the sustainable peak in rec/s.
	addr, shutdown := bootServeProc(t, bin, model, sweepServeFlags(true)...)
	cal := runLoadgenJSON(t, append([]string{
		"-target", "http://" + addr, "-trace", normal, "-mode", "closed",
		"-duration", "3s", "-workers", "8", "-multipliers", "1", "-seed", "7",
	}, workloadArgs...))
	peak := cal.Points[0].GoodputRecPerSec
	if peak <= 0 {
		t.Fatalf("calibration found no sustainable goodput: %+v", cal.Points[0])
	}

	// Phase 2: open-loop sweep at 0.7x, 1.4x and 2.8x of the calibrated
	// peak, adaptive on. The base point sits below saturation on
	// purpose: an open-loop arrival stream at exactly the closed-loop
	// peak is critically loaded (utilisation 1) and queues diverge even
	// before any overload, which would make every point an overload
	// point.
	rate := 0.7 * peak
	sweepArgs := func(target string) []string {
		return append([]string{
			"-target", "http://" + target, "-trace", normal,
			"-duration", "4s", "-rate", fmt.Sprintf("%.0f", rate),
			"-multipliers", "1,2,4", "-seed", "7",
		}, workloadArgs...)
	}
	adaptive := runLoadgenJSON(t, sweepArgs(addr))
	shutdown()

	// Phase 3: the same sweep with adaptive overload control off.
	addr, shutdown = bootServeProc(t, bin, model, sweepServeFlags(false)...)
	static := runLoadgenJSON(t, sweepArgs(addr))
	shutdown()

	// The bench-ledger record: one JSON line with both curves, appended
	// to BENCH_<date>.json by the Makefile.
	ledger := map[string]any{
		"bench":            "loadgen_goodput_sweep",
		"peak_rec_per_sec": peak,
		"adaptive":         adaptive.Points,
		"static":           static.Points,
		"workload":         "open-loop poisson, batch-fraction 0.9 x 128, slo 1s",
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(ledger); err != nil {
		t.Fatal(err)
	}

	// Acceptance. The generator and the service share this machine's
	// cores, so past saturation raw goodput measures the client's JSON
	// throughput as much as the server's — a flat raw-goodput curve is
	// not achievable with a colocated generator. What overload control
	// owes us, and what these assertions pin, is the server-side
	// contract: whatever is served is served fast (within-SLO), refusal
	// is cheap 429s rather than timeout churn, and degradation is
	// explicit. The static baseline shows the failure mode the
	// controller exists to prevent: it accepts everything, latency
	// diverges, and within-SLO goodput collapses even though raw
	// goodput looks healthy.
	for _, pt := range adaptive.Points {
		if pt.RecordsScored == 0 {
			t.Errorf("adaptive x%g served nothing: %+v", pt.Multiplier, pt)
		}
		// A few transport errors are the colocated generator's problem
		// (body writes that outlive the server deadline when the shared
		// core is saturated), but the bulk of refusal must be clean 429s.
		if lim := pt.Sent / 10; pt.Errors > 2 && pt.Errors > lim {
			t.Errorf("adaptive x%g: %d errors of %d sent; overload must shed with 429s, not fail requests",
				pt.Multiplier, pt.Errors, pt.Sent)
		}
	}
	var adegr uint64
	for _, pt := range adaptive.Points[1:] {
		adegr += pt.Degraded
	}
	if adegr == 0 {
		t.Error("adaptive sweep saw no degraded (X-CFA-Degraded) responses past saturation; brownout never engaged")
	}
	for _, pt := range static.Points {
		if pt.Degraded != 0 {
			t.Errorf("static sweep saw %d degraded responses at x%g; adaptive control was off", pt.Degraded, pt.Multiplier)
		}
	}
	// The latency contrast, stated as within-SLO fractions rather than
	// raw quantiles: per-point p50/p99 swing wildly when only a handful
	// of responses survive deep overload, but the volume-weighted
	// fraction of records served in time has a wide, stable gap.
	sloFrac := func(pts ...loadgen.Point) float64 {
		var in, all uint64
		for _, pt := range pts {
			in += pt.RecordsWithinSLO
			all += pt.RecordsScored
		}
		if all == 0 {
			return 0
		}
		return float64(in) / float64(all)
	}
	// At nominal load (0.7x peak) the controller must cost nothing.
	if a1, s1 := adaptive.Points[0], static.Points[0]; a1.SLOGoodputRecPerSec < 0.7*s1.SLOGoodputRecPerSec {
		t.Errorf("adaptive within-SLO goodput at x1 = %.0f rec/s vs static %.0f: overload control is throttling nominal load",
			a1.SLOGoodputRecPerSec, s1.SLOGoodputRecPerSec)
	}
	// Past saturation, what adaptive serves it serves in time; static
	// keeps accepting, latency diverges, and its raw goodput stops
	// being goodput at all.
	af := sloFrac(adaptive.Points[1], adaptive.Points[2])
	sf := sloFrac(static.Points[1], static.Points[2])
	if af <= sf {
		t.Errorf("within-SLO fraction past saturation: adaptive %.2f <= static %.2f; overload control should trade raw volume for served-in-time",
			af, sf)
	}
	if sf > 0.7 {
		t.Errorf("static within-SLO fraction past saturation = %.2f; the uncontrolled baseline should be visibly blowing its SLO (is the sweep actually overloading it?)", sf)
	}
}
