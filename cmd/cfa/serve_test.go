package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"crossfeature/internal/features"
)

// syncBuffer is a bytes.Buffer safe to read while runServe writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestObsSmoke boots the full service on ephemeral ports and scrapes the
// observability surfaces end to end: /metrics on the public listener and
// pprof + /metrics + /tracez on the debug listener. This is the test
// behind `make obs-smoke`.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 200, false, 40)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, []string{
			"-model", model, "-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
		}, &buf)
	}()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	debugRe := regexp.MustCompile(`debug surface on http://(\S+)/debug`)
	var addr, debug string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" || debug == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server did not announce listeners:\n%s", buf.String())
		}
		s := buf.String()
		if m := addrRe.FindStringSubmatch(s); m != nil {
			addr = m[1]
		}
		if m := debugRe.FindStringSubmatch(s); m != nil {
			debug = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return resp.StatusCode, string(b)
	}

	// Score one record so the counters move.
	vals := "[" + strings.TrimSuffix(strings.Repeat("0,", features.NumFeatures), ",") + "]"
	resp, err := http.Post("http://"+addr+"/v1/score", "application/json",
		strings.NewReader(fmt.Sprintf(`{"stream":"smoke","records":[{"time":1,"values":%s}]}`, vals)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score: status %d", resp.StatusCode)
	}

	if code, body := get("http://" + addr + "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "cfa_requests_total 1") ||
		!strings.Contains(body, "cfa_model_generation 1") {
		t.Errorf("public /metrics (status %d) wrong:\n%s", code, body)
	}
	if code, body := get("http://" + debug + "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "cfa_requests_total") {
		t.Errorf("debug /metrics (status %d) wrong:\n%s", code, body)
	}
	if code, body := get("http://" + debug + "/debug/pprof/heap?debug=1"); code != http.StatusOK ||
		!strings.Contains(body, "heap profile") {
		t.Errorf("heap profile (status %d) wrong: %.200s", code, body)
	}
	if code, _ := get("http://" + debug + "/tracez"); code != http.StatusOK {
		t.Errorf("/tracez status %d", code)
	}
	// /flightz serves the versioned flight dump, and the scored request
	// above must already be in it with its per-hop timeline.
	if code, body := get("http://" + debug + "/flightz"); code != http.StatusOK ||
		!strings.Contains(body, `"flight_version": 1`) ||
		!strings.Contains(body, `"stream": "smoke"`) ||
		!strings.Contains(body, `"name": "kernel"`) {
		t.Errorf("/flightz (status %d) wrong:\n%.2000s", code, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

// TestServeDebugAddrBindFailureIsFatal pins the startup contract: a debug
// listener that cannot bind kills the boot with an error instead of
// serving without its observability surface — a service that silently
// comes up unobservable is worse than one that fails loudly.
func TestServeDebugAddrBindFailureIsFatal(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 200, false, 40)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}

	// Occupy a port so the debug bind must fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var buf syncBuffer
	err = runServe(ctx, []string{
		"-model", model, "-addr", "127.0.0.1:0", "-debug-addr", ln.Addr().String(),
	}, &buf)
	if err == nil {
		t.Fatalf("runServe with an unbindable -debug-addr returned nil, want a fatal bind error\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "address already in use") && !strings.Contains(err.Error(), "bind") {
		t.Errorf("bind failure surfaced as %v, want an address-in-use error", err)
	}
}
