package main

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossfeature/internal/core"
)

// TestCommandsRejectBadModels drives every model-consuming subcommand
// over every flavour of damaged model file and demands the same failure
// contract from each: a non-nil, single-line error that names the model
// path, with no panic and no partial output.
func TestCommandsRejectBadModels(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	attack := filepath.Join(dir, "attack.csv")
	good := filepath.Join(dir, "good.bin")
	writeSyntheticTrace(t, normal, 120, false, 30)
	writeSyntheticTrace(t, attack, 60, true, 31)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", good, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	damage := []struct {
		name  string
		write func(t *testing.T, path string)
	}{
		{"missing", func(t *testing.T, path string) {}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string) {
			if err := os.WriteFile(path, goodBytes[:len(goodBytes)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", func(t *testing.T, path string) {
			bad := append([]byte(nil), goodBytes...)
			bad[len(bad)/2] ^= 0x40
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"legacy-gob", func(t *testing.T, path string) {
			// A pre-snapshot model: raw gob with no header. Must be
			// rejected by the format check, not crash the decoder.
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			core.RegisterGobModels()
			if err := gob.NewEncoder(f).Encode(struct{ Threshold float64 }{0.5}); err != nil {
				t.Fatal(err)
			}
		}},
	}
	commands := []struct {
		name string
		args func(model string) []string
	}{
		{"detect", func(m string) []string { return []string{"detect", "-in", normal, "-model", m} }},
		{"curve", func(m string) []string {
			return []string{"curve", "-normal", normal, "-attack", attack, "-model", m, "-warmup", "0"}
		}},
		{"inspect", func(m string) []string { return []string{"inspect", "-model", m} }},
		{"serve", func(m string) []string { return []string{"serve", "-model", m, "-addr", "127.0.0.1:0"} }},
	}

	for _, d := range damage {
		for _, c := range commands {
			t.Run(d.name+"/"+c.name, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "model.bin")
				d.write(t, path)
				var out bytes.Buffer
				err := run(c.args(path), &out)
				if err == nil {
					t.Fatalf("%s accepted a %s model", c.name, d.name)
				}
				msg := err.Error()
				if strings.Contains(msg, "\n") {
					t.Errorf("error is not a single line: %q", msg)
				}
				if !strings.Contains(msg, "model.bin") {
					t.Errorf("error does not name the model file: %q", msg)
				}
			})
		}
	}
}
