package main

// cfa loadgen: drive a running `cfa serve` endpoint with a reproducible
// workload and report the goodput-vs-offered-load curve. Request bodies
// come from a feature-vector CSV or a `manetsim -record` audit trace;
// with a trace, replay arrivals can preserve the recorded inter-arrival
// shape. Results go to stdout (one line per multiplier) and to a
// versioned JSON artifact for the bench ledger.

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"crossfeature/internal/features"
	"crossfeature/internal/loadgen"
	"crossfeature/internal/trace"
)

func loadgenCmd(args []string, w io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runLoadgen(ctx, args, w)
}

// runLoadgen is the cancellable core of loadgenCmd, also driven directly
// by the smoke and sweep tests.
func runLoadgen(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cfa loadgen", flag.ContinueOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "serve endpoint base URL")
	tracePath := fs.String("trace", "", "workload source: a manetsim -record audit trace or a feature CSV (required)")
	mode := fs.String("mode", "open", "open (scheduled arrivals) or closed (worker pool)")
	arrivalsKind := fs.String("arrivals", "poisson", "open-loop arrival process: poisson, bursty or replay (replay needs an audit trace)")
	duration := fs.Duration("duration", 5*time.Second, "measurement length per multiplier")
	rate := fs.Float64("rate", 1000, "offered load at multiplier 1, records/second")
	multipliers := fs.String("multipliers", "1", "comma-separated offered-load multipliers to sweep")
	batchFraction := fs.Float64("batch-fraction", 0.5, "fraction of requests sent to /v1/score-batch")
	batchRecords := fs.Int("batch-records", 64, "records per batch request")
	streams := fs.Int("streams", 32, "distinct stream ids the workload rotates through")
	workers := fs.Int("workers", 16, "closed-loop worker pool at multiplier 1")
	maxInFlight := fs.Int("max-inflight", 512, "open-loop in-flight cap; arrivals past it are dropped client-side")
	burstOn := fs.Duration("burst-on", 500*time.Millisecond, "bursty arrivals: on-window length")
	burstOff := fs.Duration("burst-off", 500*time.Millisecond, "bursty arrivals: off-window length")
	slo := fs.Duration("slo", time.Second, "latency SLO; goodput(slo) counts only records served within it (negative disables)")
	seed := fs.Int64("seed", 1, "workload seed; same config and seed offers the same load")
	jsonOut := fs.String("json", "loadgen.json", "versioned JSON report path (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required (a manetsim -record audit trace or a feature CSV)")
	}

	values, gaps, err := readWorkload(*tracePath)
	if err != nil {
		return err
	}
	mults, err := parseMultipliers(*multipliers)
	if err != nil {
		return err
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		TargetURL:     strings.TrimRight(*target, "/"),
		Mode:          *mode,
		Arrivals:      *arrivalsKind,
		Duration:      *duration,
		Rate:          *rate,
		Multipliers:   mults,
		BatchFraction: *batchFraction,
		BatchRecords:  *batchRecords,
		Streams:       *streams,
		Workers:       *workers,
		MaxInFlight:   *maxInFlight,
		BurstOn:       *burstOn,
		BurstOff:      *burstOff,
		SLO:           *slo,
		Seed:          *seed,
		FeatureNames:  features.Names(),
		Values:        values,
		Gaps:          gaps,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "cfa loadgen: %s %s arrivals against %s, %.0f rec/s base rate\n",
		rep.Mode, rep.Arrivals, rep.Target, rep.RateRecPerSec)
	fmt.Fprintln(w, "mult\toffered rec/s\tgoodput rec/s\tgoodput(slo)\tshed%\tdegraded\tdropped\terrors\tp50ms\tp99ms\tp999ms")
	for _, pt := range rep.Points {
		fmt.Fprintf(w, "x%g\t%.0f\t%.0f\t%.0f\t%.1f\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\n",
			pt.Multiplier, pt.OfferedRecPerSec, pt.GoodputRecPerSec, pt.SLOGoodputRecPerSec,
			100*pt.ShedRate, pt.Degraded, pt.Dropped, pt.Errors, pt.P50ms, pt.P99ms, pt.P999ms)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", *jsonOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "cfa loadgen: report -> %s\n", *jsonOut)
	}
	return nil
}

// readWorkload loads request-body values (and, for audit traces,
// inter-arrival gaps) from path, sniffing the audit-trace header so the
// one flag accepts either format.
func readWorkload(path string) (values [][]float64, gaps []float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, _ := br.Peek(len(trace.AuditTraceHeader))
	if string(head) == trace.AuditTraceHeader {
		_, recs, err := trace.ReadAuditTrace(br)
		if err != nil {
			return nil, nil, err
		}
		values = make([][]float64, len(recs))
		times := make([]float64, len(recs))
		for i, r := range recs {
			values[i], times[i] = r.Values, r.Time
		}
		return values, loadgen.GapsOf(times), nil
	}
	vectors, err := features.ReadCSV(br)
	if err != nil {
		return nil, nil, err
	}
	values = make([][]float64, len(vectors))
	times := make([]float64, len(vectors))
	for i, v := range vectors {
		values[i], times[i] = v.Values, v.Time
	}
	return values, loadgen.GapsOf(times), nil
}

// parseMultipliers parses "1,2,4" into {1,2,4}.
func parseMultipliers(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := strconv.ParseFloat(part, 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad multiplier %q (want a positive number)", part)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-multipliers is empty")
	}
	return out, nil
}
