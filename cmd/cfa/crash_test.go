package main

// Crash-recovery chaos test: SIGKILL a real `cfa serve` process mid-load
// and assert the restarted process resumes scoring from the last
// checkpoint — verdicts bit-identical to the uninterrupted run for every
// record after the checkpoint barrier, cold starts counted for streams
// the checkpoint never saw. This is the test behind `make crash-chaos`.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"crossfeature/internal/features"
	"crossfeature/internal/obs"
	"crossfeature/internal/serve"
)

// crashRecord builds a deterministic score record: the same i always
// yields the same values, so two runs see identical inputs.
func crashRecord(i int) map[string]any {
	vals := make([]float64, features.NumFeatures)
	for j := range vals {
		vals[j] = float64((i*7 + j*3) % 5)
	}
	return map[string]any{"time": float64(i), "values": vals}
}

// scoreBatchRaw posts a multi-stream batch to /v1/score-batch and
// returns the raw response body — raw so "bit-identical" means exactly
// that across the whole batch.
func scoreBatchRaw(t *testing.T, base string, items []map[string]any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"items": items})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/score-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("score batch: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// scoreRaw posts records to a running serve process and returns the raw
// response body — raw so "bit-identical" means exactly that.
func scoreRaw(t *testing.T, base, stream string, recs []map[string]any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"stream": stream, "records": recs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("score %s: %v", stream, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// serveProc is one real `cfa serve` subprocess.
type serveProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
	out  *syncBuffer
}

// startServeProc launches bin with args and waits for the listen
// announcement and a 200 /readyz (which also means any checkpoint
// restore has finished).
func startServeProc(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	var buf syncBuffer
	cmd := exec.Command(bin, append([]string{"serve"}, args...)...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(15 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("serve never announced its listener:\n%s", buf.String())
		}
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	p := &serveProc{cmd: cmd, base: "http://" + addr, out: &buf}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("serve never became ready:\n%s", buf.String())
		}
		resp, err := http.Get(p.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill SIGKILLs the process — no drain, no final checkpoint, the crash
// the checkpoint layer exists for.
func (p *serveProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// metric scrapes one counter value line from /metrics.
func (p *serveProc) metric(t *testing.T, name string) string {
	t.Helper()
	resp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, name) && !strings.HasPrefix(line, "#") {
			return strings.TrimSpace(line)
		}
	}
	return ""
}

func TestCrashRecoveryResumesFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	dir := t.TempDir()

	// A real binary: SIGKILL must hit a separate process, not a goroutine.
	bin := filepath.Join(dir, "cfa-under-test")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 200, false, 40)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "streams.ckpt")
	serveArgs := []string{
		"-model", model, "-addr", "127.0.0.1:0", "-shards", "4", // sharded table: checkpoint must sweep every shard
		"-checkpoint-path", ckpt, "-checkpoint-interval", "1h", // explicit barrier only
	}

	// ---- Process 1: warm up, checkpoint, keep scoring, then die hard.
	p1 := startServeProc(t, bin, serveArgs...)

	// Warm three streams in one batch request: they hash onto different
	// shards, so the checkpoint barrier below must collect state across
	// the sharded table, not a single lucky shard.
	warmStreams := []string{"warm", "warm-b", "warm-c"}
	const barrier = 30
	pre := make([]map[string]any, 0, barrier)
	for i := 0; i < barrier; i++ {
		pre = append(pre, crashRecord(i))
	}
	warmItems := make([]map[string]any, len(warmStreams))
	for i, s := range warmStreams {
		warmItems[i] = map[string]any{"stream": s, "records": pre}
	}
	if code, body := scoreBatchRaw(t, p1.base, warmItems); code != http.StatusOK {
		t.Fatalf("warmup batch score: %d %s", code, body)
	}

	// The checkpoint barrier: everything up to record `barrier` is
	// durable from here on.
	resp, err := http.Post(p1.base+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint barrier: status %d", resp.StatusCode)
	}

	// Background load on other streams while the crash happens: the kill
	// lands mid-traffic, not on an idle server.
	loadStop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for i := 0; ; i++ {
			select {
			case <-loadStop:
				return
			default:
			}
			body, _ := json.Marshal(map[string]any{
				"stream":  fmt.Sprintf("load-%d", i%8),
				"records": []map[string]any{crashRecord(i)},
			})
			resp, err := http.Post(p1.base+"/v1/score", "application/json", bytes.NewReader(body))
			if err != nil {
				return // the process just died; expected
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// The uninterrupted timeline: process 1 scores the post-barrier
	// records BEFORE dying — one batch covering all three warm streams.
	// These responses are the reference.
	post := make([]map[string]any, 0, 20)
	for i := barrier; i < barrier+20; i++ {
		post = append(post, crashRecord(i))
	}
	postItems := make([]map[string]any, len(warmStreams))
	for i, s := range warmStreams {
		postItems[i] = map[string]any{"stream": s, "records": post}
	}
	code, want := scoreBatchRaw(t, p1.base, postItems)
	if code != http.StatusOK {
		t.Fatalf("reference score: %d", code)
	}

	p1.kill(t)
	close(loadStop)
	<-loadDone

	// ---- Process 2: same checkpoint path, fresh process.
	p2 := startServeProc(t, bin, serveArgs...)
	defer p2.kill(t)

	if m := p2.metric(t, `cfa_checkpoint_restore_total{outcome="restored"}`); !strings.HasSuffix(m, " 1") {
		t.Errorf("restore outcome metric = %q, want ...restored... 1", m)
	}
	if m := p2.metric(t, "cfa_checkpoint_streams_restored_total"); !strings.HasSuffix(m, " 3") {
		t.Errorf("streams restored metric = %q, want 3 (the warm-* streams were checkpointed)", m)
	}

	// The restored process replays the post-barrier batch: every warm
	// stream's detector must resume from the checkpointed EWMA/hysteresis
	// state — wherever its id hashes in the restored shard layout — and
	// the whole batch response must come back byte-identical.
	code, got := scoreBatchRaw(t, p2.base, postItems)
	if code != http.StatusOK {
		t.Fatalf("restored score: %d", code)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("restored verdicts differ from the uninterrupted run:\nwant %s\ngot  %s", want, got)
	}

	// Streams born after the barrier ("load-*") were not in the
	// checkpoint: they start cold, and the cold start is counted.
	if code, _ := scoreRaw(t, p2.base, "load-0", []map[string]any{crashRecord(0)}); code != http.StatusOK {
		t.Fatalf("cold stream score: %d", code)
	}
	if m := p2.metric(t, "cfa_stream_cold_starts_total"); !strings.HasSuffix(m, " 1") {
		t.Errorf("cold start metric = %q, want 1", m)
	}
}

// TestCrashRecoveryPreservesFlightDump: the flight recorder is a black
// box, so its dump must survive the crash it exists to explain. A SIGKILL
// leaves the dirty marker armed; the next boot preserves the last
// persisted dump under .flight.crash, readable with its request traces
// (including a client-propagated trace id) intact, and surfaces the
// recovery in /statz, /metrics and the flight event stream.
func TestCrashRecoveryPreservesFlightDump(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cfa-under-test")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 200, false, 40)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "streams.ckpt")
	serveArgs := []string{
		"-model", model, "-addr", "127.0.0.1:0",
		"-checkpoint-path", ckpt, "-checkpoint-interval", "1h",
	}

	// ---- Process 1: score with a known trace id, checkpoint (persisting
	// the flight dump), then die hard.
	p1 := startServeProc(t, bin, serveArgs...)
	tc := obs.NewTraceContext()
	body, _ := json.Marshal(map[string]any{
		"stream":  "boxed",
		"records": []map[string]any{crashRecord(1)},
	})
	req, err := http.NewRequest(http.MethodPost, p1.base+"/v1/score", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, tc.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced score: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); !strings.HasPrefix(got, tc.TraceID()) {
		t.Errorf("response trace header %q does not echo trace id %q", got, tc.TraceID())
	}
	cresp, err := http.Post(p1.base+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", cresp.StatusCode)
	}
	p1.kill(t)

	// ---- Process 2: must detect the unclean shutdown and preserve the
	// pre-crash dump before overwriting anything.
	p2 := startServeProc(t, bin, serveArgs...)
	defer p2.kill(t)

	crashDump := ckpt + ".flight.crash"
	dump, err := serve.ReadFlightDump(crashDump)
	if err != nil {
		t.Fatalf("reading recovered flight dump: %v", err)
	}
	var boxed *obs.RequestTrace
	for i := range dump.Traces {
		if dump.Traces[i].TraceID == tc.TraceID() {
			boxed = &dump.Traces[i]
		}
	}
	if boxed == nil {
		t.Fatalf("recovered dump has no trace %s (have %d traces)", tc.TraceID(), len(dump.Traces))
	}
	if !boxed.Propagated || boxed.Stream != "boxed" || boxed.Status != http.StatusOK {
		t.Errorf("recovered trace wrong: %+v", boxed)
	}
	if len(boxed.Hops) == 0 {
		t.Error("recovered trace has no hop timeline")
	}
	if m := p2.metric(t, "cfa_flight_recovered_total"); !strings.HasSuffix(m, " 1") {
		t.Errorf("flight recovered metric = %q, want 1", m)
	}
	sresp, err := http.Get(p2.base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		FlightCrashDump string `json:"flight_crash_dump"`
	}
	json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if st.FlightCrashDump != crashDump {
		t.Errorf("statz flight_crash_dump = %q, want %q", st.FlightCrashDump, crashDump)
	}
}

// TestCrashRecoverySkipsCorruptCheckpoint: a checkpoint torn by the
// crash itself (simulated with the partial-write failpoint, armed through
// the environment) must cost warm state only — the restarted server comes
// up, counts the corrupt skip, and serves.
func TestCrashRecoverySkipsCorruptCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cfa-under-test")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 200, false, 40)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "streams.ckpt")
	serveArgs := []string{
		"-model", model, "-addr", "127.0.0.1:0",
		"-checkpoint-path", ckpt, "-checkpoint-interval", "1h",
	}

	// Process 1 writes its checkpoint through a torn-write failpoint
	// armed from the environment: the file installs, but truncated.
	var buf syncBuffer
	cmd := exec.Command(bin, append([]string{"serve"}, serveArgs...)...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	cmd.Env = append(cmd.Environ(), "CFA_FAILPOINTS=serve/checkpoint/payload=partial(25)")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(15 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("serve never announced its listener:\n%s", buf.String())
		}
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr
	recs := make([]map[string]any, 10)
	for i := range recs {
		recs[i] = crashRecord(i)
	}
	if code, _ := scoreRaw(t, base, "doomed", recs); code != http.StatusOK {
		t.Fatalf("score: %d", code)
	}
	resp, err := http.Post(base+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("torn checkpoint write reported %d", resp.StatusCode)
	}
	cmd.Process.Kill()
	cmd.Wait()

	// Process 2 finds the torn file: it must boot anyway, count the
	// corrupt skip, surface it on /statz, and score from cold.
	p2 := startServeProc(t, bin, serveArgs...)
	defer p2.kill(t)
	if m := p2.metric(t, `cfa_checkpoint_restore_total{outcome="corrupt"}`); !strings.HasSuffix(m, " 1") {
		t.Errorf("corrupt restore metric = %q, want 1", m)
	}
	sresp, err := http.Get(p2.base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		LastRestoreError string `json:"last_restore_error"`
	}
	json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if st.LastRestoreError == "" {
		t.Error("corrupt checkpoint not surfaced on /statz")
	}
	if code, _ := scoreRaw(t, p2.base, "doomed", recs); code != http.StatusOK {
		t.Errorf("scoring after corrupt restore: %d", code)
	}
}
