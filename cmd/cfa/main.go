// Command cfa trains and applies cross-feature analysis detectors on
// trace CSVs produced by cmd/manetsim.
//
// Train a detector on a normal trace:
//
//	cfa train -in normal.csv -model model.bin -learner C4.5
//
// Score a trace with a trained model:
//
//	cfa detect -in suspect.csv -model model.bin -scorer probability
//
// Detect prints one line per record: time, score and the normal/anomaly
// verdict at the calibrated threshold.
//
// Serve a trained model over HTTP with load-shedding and hot reload:
//
//	cfa serve -model model.bin -addr :8080
//
// Drive a running serve endpoint with reproducible load and measure the
// goodput-vs-offered-load curve:
//
//	cfa loadgen -target http://127.0.0.1:8080 -rate 2000 -multipliers 1,2,4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"crossfeature/internal/core"
	"crossfeature/internal/experiments"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/nbayes"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cfa:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: cfa <train|detect|curve|inspect|serve|loadgen> [flags]")
	}
	switch args[0] {
	case "train":
		return train(args[1:], w)
	case "detect":
		return detect(args[1:], w)
	case "curve":
		return curve(args[1:], w)
	case "inspect":
		return inspect(args[1:], w)
	case "serve":
		return serveCmd(args[1:], w)
	case "loadgen":
		return loadgenCmd(args[1:], w)
	default:
		return fmt.Errorf("unknown subcommand %q (want train, detect, curve, inspect, serve or loadgen)", args[0])
	}
}

func train(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cfa train", flag.ContinueOnError)
	in := fs.String("in", "", "normal-trace CSV (required)")
	model := fs.String("model", "model.bin", "output model path")
	learnerName := fs.String("learner", "C4.5", "base learner: C4.5, RIPPER or NBC")
	buckets := fs.Int("buckets", features.DefaultBuckets, "equal-frequency buckets")
	warmup := fs.Float64("warmup", 900, "seconds of trace to skip while windows fill")
	far := fs.Float64("false-alarm-rate", 0.02, "calibration false-alarm rate")
	scorer := fs.String("scorer", "probability", "combination rule: probability or matchcount")
	parallel := fs.Int("parallel", 0, "sub-model training parallelism (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	sc, err := parseScorer(*scorer)
	if err != nil {
		return err
	}
	learner, err := experiments.LearnerByName(*learnerName)
	if err != nil {
		return err
	}
	vectors, err := readTrace(*in)
	if err != nil {
		return err
	}
	var rows [][]float64
	for _, v := range vectors {
		if v.Time >= *warmup {
			rows = append(rows, v.Values)
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("no records past the %gs warmup in %s", *warmup, *in)
	}
	disc, err := features.Fit(rows, features.Names(), features.FitOptions{Buckets: *buckets, Seed: 1})
	if err != nil {
		return err
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		return err
	}
	analyzer, err := core.Train(ds, learner, core.TrainOptions{Parallelism: *parallel})
	if err != nil {
		return err
	}
	scores := analyzer.ScoreAll(ds, sc)
	th, dropped := core.Calibrate(scores, *far)
	if dropped > 0 {
		fmt.Fprintf(w, "warning: dropped %d non-finite scores during calibration\n", dropped)
	}
	b := &core.Bundle{
		Analyzer:    analyzer,
		Discretizer: disc,
		Threshold:   th,
		Scorer:      sc,
	}
	// Non-NBC bundles also carry a cheap naive-Bayes fallback trained on
	// the same discretised data, with its own threshold calibrated at the
	// same false-alarm rate: `cfa serve` scores through it at brownout
	// level 2 instead of shedding outright. An NBC primary is already the
	// cheap kernel, so it carries none.
	if learner.Name() != "NBC" {
		fb, err := core.Train(ds, nbayes.NewLearner(), core.TrainOptions{Parallelism: *parallel})
		if err != nil {
			return fmt.Errorf("training NB fallback: %w", err)
		}
		fth, fdropped := core.Calibrate(fb.ScoreAll(ds, sc), *far)
		if fdropped > 0 {
			fmt.Fprintf(w, "warning: dropped %d non-finite fallback scores during calibration\n", fdropped)
		}
		b.Fallback = fb
		b.FallbackThreshold = fth
		fmt.Fprintf(w, "trained NBC brownout fallback: %d sub-models, threshold %.4f\n",
			fb.NumModels(), fth)
	}
	// SaveFile writes a checksummed snapshot via temp-file + rename, so a
	// crash mid-write never leaves a half-written model behind.
	if err := b.SaveFile(*model); err != nil {
		return err
	}
	fmt.Fprintf(w, "trained %s detector: %d sub-models on %d records, threshold %.4f -> %s\n",
		learner.Name(), analyzer.NumModels(), len(rows), b.Threshold, *model)
	return nil
}

func detect(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cfa detect", flag.ContinueOnError)
	in := fs.String("in", "", "trace CSV to score (required)")
	model := fs.String("model", "model.bin", "model path from cfa train")
	threshold := fs.Float64("threshold", -1, "override the calibrated decision threshold")
	summary := fs.Bool("summary", false, "print only the alarm summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	mf, err := core.LoadBundleFile(*model)
	if err != nil {
		return err
	}
	// Compile once at load: every record then scores through the flat
	// inference kernels instead of the pointer-walking model forms.
	mf.Analyzer.Compile()
	th := mf.Threshold
	if *threshold >= 0 {
		th = *threshold
	}
	vectors, err := readTrace(*in)
	if err != nil {
		return err
	}
	alarms := 0
	for _, v := range vectors {
		x, err := mf.Discretizer.Transform(v.Values)
		if err != nil {
			return err
		}
		score := mf.Analyzer.Score(x, mf.Scorer)
		anomaly := score < th
		if anomaly {
			alarms++
		}
		if !*summary {
			verdict := "normal"
			if anomaly {
				verdict = "ANOMALY"
			}
			fmt.Fprintf(w, "%.0f\t%.4f\t%s\n", v.Time, score, verdict)
		}
	}
	fmt.Fprintf(w, "cfa: %d/%d records flagged as anomalies (threshold %.4f, %s)\n",
		alarms, len(vectors), th, mf.Scorer)
	return nil
}

func parseScorer(s string) (core.Scorer, error) {
	switch s {
	case "probability":
		return core.Probability, nil
	case "matchcount":
		return core.MatchCount, nil
	default:
		return 0, fmt.Errorf("unknown scorer %q (want probability or matchcount)", s)
	}
}

func readTrace(path string) ([]features.Vector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return features.ReadCSV(f)
}
