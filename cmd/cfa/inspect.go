package main

import (
	"flag"
	"fmt"
	"io"
	"sort"

	"crossfeature/internal/core"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// inspect renders a trained model for human examination: sub-model
// summaries, the full tree/rule list for a chosen feature, or — with
// -explain — a per-feature breakdown of which sub-models drove the
// anomaly verdicts on a trace.
func inspect(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cfa inspect", flag.ContinueOnError)
	model := fs.String("model", "model.bin", "model path from cfa train")
	feature := fs.String("feature", "", "render the sub-model for this feature name")
	depth := fs.Int("depth", 4, "maximum tree depth to print")
	top := fs.Int("top", 20, "sub-models listed in the summary")
	explain := fs.String("explain", "", "trace CSV: explain the lowest-scoring records")
	drivers := fs.Int("drivers", 5, "features listed per explained record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mf, err := core.LoadBundleFile(*model)
	if err != nil {
		return err
	}
	a := mf.Analyzer
	attrName := func(i int) string {
		if i >= 0 && i < len(a.Attrs) {
			return a.Attrs[i].Name
		}
		return fmt.Sprintf("f%d", i)
	}

	if *explain != "" {
		return explainTrace(mf, *explain, *top, *drivers, w)
	}

	if *feature != "" {
		for j, attr := range a.Attrs {
			if attr.Name != *feature {
				continue
			}
			if a.Models[j] == nil {
				return fmt.Errorf("no sub-model for %q", *feature)
			}
			switch m := a.Models[j].(type) {
			case *c45.Tree:
				fmt.Fprint(w, m.Render(attrName, *depth))
			case *ripper.RuleSet:
				fmt.Fprint(w, m.Render(attrName))
			case *nbayes.Model:
				fmt.Fprintf(w, "naive Bayes sub-model for %s (%d classes); per-class log priors: %v\n",
					*feature, len(m.LogPrior), m.LogPrior)
			default:
				fmt.Fprintf(w, "sub-model for %s: %T\n", *feature, m)
			}
			return nil
		}
		return fmt.Errorf("unknown feature %q", *feature)
	}

	// Summary: size/complexity per sub-model.
	fmt.Fprintf(w, "%s analyzer: %d sub-models over %d features (threshold %.4f, %s)\n",
		a.LearnerName, a.NumModels(), len(a.Attrs), mf.Threshold, mf.Scorer)
	type row struct {
		name string
		desc string
		size int
	}
	var rows []row
	for j, m := range a.Models {
		if m == nil {
			continue
		}
		switch mm := m.(type) {
		case *c45.Tree:
			rows = append(rows, row{attrName(j), fmt.Sprintf("tree: %d nodes, depth %d", mm.Size(), mm.Depth()), mm.Size()})
		case *ripper.RuleSet:
			rows = append(rows, row{attrName(j), fmt.Sprintf("rules: %d + default", mm.NumRules()), mm.NumRules()})
		case *nbayes.Model:
			rows = append(rows, row{attrName(j), fmt.Sprintf("naive Bayes: %d classes", len(mm.LogPrior)), len(mm.LogPrior)})
		default:
			rows = append(rows, row{attrName(j), fmt.Sprintf("%T", mm), 0})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].size > rows[j].size })
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %s\n", r.name, r.desc)
	}
	fmt.Fprintln(w, "use -feature <name> to render one sub-model in full")
	return nil
}

// explainTrace scores every record in a trace and prints, for the lowest-
// scoring ones, which sub-models drove the verdict: the features whose
// assigned true-value probability fell furthest below that sub-model's
// normal level. This is the operator's answer to "why did this alarm?".
func explainTrace(mf *core.Bundle, path string, top, drivers int, w io.Writer) error {
	vectors, err := readTrace(path)
	if err != nil {
		return err
	}
	if len(vectors) == 0 {
		return fmt.Errorf("no records in %s", path)
	}
	type scored struct {
		time  float64
		score float64
		res   core.ExplainResult
	}
	rows := make([]scored, 0, len(vectors))
	alarms := 0
	for _, v := range vectors {
		x, err := mf.Discretizer.Transform(v.Values)
		if err != nil {
			return err
		}
		res := mf.Analyzer.Explain(x)
		s := res.Score(mf.Scorer)
		if s < mf.Threshold {
			alarms++
		}
		rows = append(rows, scored{v.Time, s, res})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].score < rows[j].score })
	fmt.Fprintf(w, "explained %d records from %s: %d anomalies (threshold %.4f, %s)\n",
		len(rows), path, alarms, mf.Threshold, mf.Scorer)
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for _, r := range rows {
		verdict := "normal"
		if r.score < mf.Threshold {
			verdict = "ANOMALY"
		}
		fmt.Fprintf(w, "t=%-8.0f score %.4f  %s\n", r.time, r.score, verdict)
		for _, c := range topDrivers(r.res, drivers) {
			state := "match"
			if c.Missing {
				state = "missing"
			} else if !c.Match {
				state = "MISMATCH"
			}
			fmt.Fprintf(w, "    %-28s p=%.3f  normal %.3f  %s\n",
				c.Feature, c.Prob, c.NormalProb, state)
		}
	}
	return nil
}

// topDrivers ranks contributions by how far the assigned probability fell
// below the sub-model's normal level — the sub-models whose learned
// inter-feature correlation the event broke hardest. Missing features sort
// last: they withheld evidence rather than contributing it.
func topDrivers(res core.ExplainResult, n int) []core.Contribution {
	cs := append([]core.Contribution(nil), res.Contribs...)
	deficit := func(c core.Contribution) float64 {
		if c.Missing {
			return -1
		}
		return c.NormalProb - c.Prob
	}
	sort.SliceStable(cs, func(i, j int) bool { return deficit(cs[i]) > deficit(cs[j]) })
	if n > 0 && len(cs) > n {
		cs = cs[:n]
	}
	return cs
}
