package main

import (
	"flag"
	"fmt"
	"io"
	"sort"

	"crossfeature/internal/core"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// inspect renders a trained model for human examination: sub-model
// summaries, and the full tree/rule list for a chosen feature.
func inspect(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cfa inspect", flag.ContinueOnError)
	model := fs.String("model", "model.bin", "model path from cfa train")
	feature := fs.String("feature", "", "render the sub-model for this feature name")
	depth := fs.Int("depth", 4, "maximum tree depth to print")
	top := fs.Int("top", 20, "sub-models listed in the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mf, err := core.LoadBundleFile(*model)
	if err != nil {
		return err
	}
	a := mf.Analyzer
	attrName := func(i int) string {
		if i >= 0 && i < len(a.Attrs) {
			return a.Attrs[i].Name
		}
		return fmt.Sprintf("f%d", i)
	}

	if *feature != "" {
		for j, attr := range a.Attrs {
			if attr.Name != *feature {
				continue
			}
			if a.Models[j] == nil {
				return fmt.Errorf("no sub-model for %q", *feature)
			}
			switch m := a.Models[j].(type) {
			case *c45.Tree:
				fmt.Fprint(w, m.Render(attrName, *depth))
			case *ripper.RuleSet:
				fmt.Fprint(w, m.Render(attrName))
			case *nbayes.Model:
				fmt.Fprintf(w, "naive Bayes sub-model for %s (%d classes); per-class log priors: %v\n",
					*feature, len(m.LogPrior), m.LogPrior)
			default:
				fmt.Fprintf(w, "sub-model for %s: %T\n", *feature, m)
			}
			return nil
		}
		return fmt.Errorf("unknown feature %q", *feature)
	}

	// Summary: size/complexity per sub-model.
	fmt.Fprintf(w, "%s analyzer: %d sub-models over %d features (threshold %.4f, %s)\n",
		a.LearnerName, a.NumModels(), len(a.Attrs), mf.Threshold, mf.Scorer)
	type row struct {
		name string
		desc string
		size int
	}
	var rows []row
	for j, m := range a.Models {
		if m == nil {
			continue
		}
		switch mm := m.(type) {
		case *c45.Tree:
			rows = append(rows, row{attrName(j), fmt.Sprintf("tree: %d nodes, depth %d", mm.Size(), mm.Depth()), mm.Size()})
		case *ripper.RuleSet:
			rows = append(rows, row{attrName(j), fmt.Sprintf("rules: %d + default", mm.NumRules()), mm.NumRules()})
		case *nbayes.Model:
			rows = append(rows, row{attrName(j), fmt.Sprintf("naive Bayes: %d classes", len(mm.LogPrior)), len(mm.LogPrior)})
		default:
			rows = append(rows, row{attrName(j), fmt.Sprintf("%T", mm), 0})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].size > rows[j].size })
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %s\n", r.name, r.desc)
	}
	fmt.Fprintln(w, "use -feature <name> to render one sub-model in full")
	return nil
}
