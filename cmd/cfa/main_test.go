package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossfeature/internal/features"
)

// writeSyntheticTrace fabricates a trace CSV with correlated features so
// training succeeds quickly.
func writeSyntheticTrace(t *testing.T, path string, records int, anomalous bool, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var vs []features.Vector
	for i := 0; i < records; i++ {
		v := features.Vector{Time: float64(i) * 5, Values: make([]float64, features.NumFeatures)}
		base := rng.Float64() * 10
		for j := range v.Values {
			v.Values[j] = base*float64(j%5+1) + rng.Float64()
		}
		if anomalous && i > records/2 {
			// Break the correlations: scramble half the features.
			for j := 0; j < len(v.Values); j += 2 {
				v.Values[j] = rng.Float64() * 1000
			}
		}
		vs = append(vs, v)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := features.WriteCSV(f, vs); err != nil {
		t.Fatal(err)
	}
}

func TestTrainDetectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	suspect := filepath.Join(dir, "suspect.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 200, false, 1)
	writeSyntheticTrace(t, suspect, 100, true, 2)

	var out bytes.Buffer
	err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trained NBC detector") {
		t.Errorf("train output: %s", out.String())
	}

	out.Reset()
	if err := run([]string{"detect", "-in", suspect, "-model", model, "-summary"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flagged as anomalies") {
		t.Errorf("detect output: %s", out.String())
	}
}

func TestTrainRejectsMissingInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"train"}, &out); err == nil {
		t.Error("train without -in accepted")
	}
	if err := run([]string{"detect"}, &out); err == nil {
		t.Error("detect without -in accepted")
	}
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Error("no subcommand accepted")
	}
}

func TestTrainRejectsUnknownLearnerAndScorer(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "n.csv")
	writeSyntheticTrace(t, normal, 50, false, 3)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-learner", "SVM", "-warmup", "0"}, &out); err == nil {
		t.Error("unknown learner accepted")
	}
	if err := run([]string{"train", "-in", normal, "-scorer", "median", "-warmup", "0"}, &out); err == nil {
		t.Error("unknown scorer accepted")
	}
}

func TestDetectThresholdOverride(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 100, false, 4)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	// Threshold 1.0: everything is an anomaly.
	if err := run([]string{"detect", "-in", normal, "-model", model, "-threshold", "1.01", "-summary"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "100/100 records flagged") {
		t.Errorf("threshold override ignored: %s", out.String())
	}
}

func TestCurveSubcommand(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	normal2 := filepath.Join(dir, "normal2.csv")
	suspect := filepath.Join(dir, "suspect.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 200, false, 10)
	writeSyntheticTrace(t, normal2, 100, false, 11)
	writeSyntheticTrace(t, suspect, 100, true, 12)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	// The synthetic anomaly begins halfway: onset = 50 records * 5 s.
	err := run([]string{"curve", "-normal", normal2, "-attack", suspect,
		"-model", model, "-onset", "255", "-warmup", "0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "AUC=") {
		t.Errorf("curve output missing AUC: %s", out.String())
	}
	if err := run([]string{"curve", "-model", model}, &out); err == nil {
		t.Error("curve without inputs accepted")
	}
}

func TestInspectSubcommand(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 120, false, 20)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "C4.5", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"inspect", "-model", model}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sub-models over") || !strings.Contains(out.String(), "tree:") {
		t.Errorf("inspect summary wrong: %s", out.String())
	}
	out.Reset()
	if err := run([]string{"inspect", "-model", model, "-feature", "velocity"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tree for target velocity") {
		t.Errorf("inspect feature output wrong: %s", out.String())
	}
	if err := run([]string{"inspect", "-model", model, "-feature", "nonexistent"}, &out); err == nil {
		t.Error("unknown feature accepted")
	}
}

func TestInspectExplain(t *testing.T) {
	dir := t.TempDir()
	normal := filepath.Join(dir, "normal.csv")
	suspect := filepath.Join(dir, "suspect.csv")
	model := filepath.Join(dir, "model.bin")
	writeSyntheticTrace(t, normal, 200, false, 30)
	writeSyntheticTrace(t, suspect, 60, true, 31)
	var out bytes.Buffer
	if err := run([]string{"train", "-in", normal, "-model", model, "-learner", "NBC", "-warmup", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"inspect", "-model", model, "-explain", suspect, "-top", "3", "-drivers", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "explained 60 records") {
		t.Errorf("explain header wrong: %s", got)
	}
	if !strings.Contains(got, "normal ") || !strings.Contains(got, "p=") {
		t.Errorf("explain output missing driver lines: %s", got)
	}
	// Three records, four driver lines each.
	if n := strings.Count(got, "t="); n != 3 {
		t.Errorf("explained %d records, want 3:\n%s", n, got)
	}
	if err := run([]string{"inspect", "-model", model, "-explain", filepath.Join(dir, "missing.csv")}, &out); err == nil {
		t.Error("missing explain trace accepted")
	}
}
