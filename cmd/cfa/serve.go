package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crossfeature/internal/failpoint"
	"crossfeature/internal/obs"
	"crossfeature/internal/serve"
)

// serveCmd runs the hardened scoring service until SIGINT or SIGTERM
// triggers a graceful drain. SIGHUP hot-reloads the model file.
func serveCmd(args []string, w io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, args, w)
}

// runServe is the cancellable core of serveCmd: it loads and validates the
// model before binding the listen socket (so a bad model is a clean
// startup failure, not a flapping endpoint), then serves until ctx is
// cancelled.
func runServe(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cfa serve", flag.ContinueOnError)
	model := fs.String("model", "model.bin", "model path from cfa train")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	debugAddr := fs.String("debug-addr", "", "optional debug listener (pprof, /metrics, /tracez); keep it private")
	featureMetrics := fs.Bool("feature-metrics", false, "export per-feature match/probability metrics (roughly doubles scoring cost)")
	concurrency := fs.Int("concurrency", 0, "max in-flight score requests (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queued score requests beyond the in-flight limit (0 = default)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline")
	var drain time.Duration
	fs.DurationVar(&drain, "drain", 10*time.Second, "graceful shutdown budget on SIGTERM")
	fs.DurationVar(&drain, "drain-timeout", 10*time.Second, "alias for -drain: bound on the graceful shutdown")
	maxStreams := fs.Int("max-streams", 1024, "per-stream detector states kept before LRU eviction")
	shards := fs.Int("shards", 0, "stream-table shards, rounded up to a power of two (0 = GOMAXPROCS)")
	maxBatchRecords := fs.Int("max-batch-records", 0, "records allowed in one /v1/score-batch request (0 = default)")
	maxQueueRecords := fs.Int64("max-queue-records", 0, "records admitted or queued across all in-flight requests (0 = default)")
	maxInflight := fs.Int("max-inflight", 0, "score requests concurrently in a handler, counted before body decode (0 = default)")
	smoothing := fs.Float64("smoothing", 0, "EWMA smoothing factor for online detectors (0 = default)")
	raiseAfter := fs.Int("raise-after", 0, "consecutive low scores before an alarm raises (0 = default)")
	clearAfter := fs.Int("clear-after", 0, "consecutive high scores before an alarm clears (0 = default)")
	checkpointPath := fs.String("checkpoint-path", "", "durable per-stream detector state file; empty disables checkpointing")
	checkpointInterval := fs.Duration("checkpoint-interval", 15*time.Second, "periodic checkpoint cadence")
	checkpointMaxAge := fs.Duration("checkpoint-max-age", time.Hour, "oldest checkpoint still restored at boot (negative disables the age check)")
	adaptive := fs.Bool("adaptive", true, "adaptive overload control: AIMD record budget plus brownout degradation under sustained overload")
	overloadTarget := fs.Duration("overload-target", 0, "projected queue-drain time past which the service counts as overloaded (0 = timeout/5)")
	brownoutTick := fs.Duration("brownout-tick", 0, "overload-controller cadence (0 = 100ms)")
	brownoutEnter := fs.Int("brownout-enter-after", 0, "consecutive overloaded ticks before the brownout level rises (0 = 3)")
	brownoutExit := fs.Int("brownout-exit-after", 0, "consecutive calm ticks before the brownout level falls (0 = 10)")
	accessLog := fs.String("access-log", "", "sampled JSON-lines access log: a file path, or - for stderr; empty disables")
	accessLogSample := fs.Int("access-log-sample", 1, "log one request in N (widened 4x per brownout level)")
	sloLatency := fs.Duration("slo", time.Second, "latency SLO for burn-rate accounting (negative disables the monitor)")
	sloObjective := fs.Float64("slo-objective", 0.99, "fraction of records that must be served within the SLO")
	sloEvidence := fs.Bool("slo-evidence", false, "let sustained fast-burn on both SLO windows count as brownout overload evidence")
	flightTraces := fs.Int("flight-traces", 0, "request traces the flight recorder retains (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Failpoints armed from the environment (CFA_FAILPOINTS="name=spec;...")
	// take effect before the model load, so even startup paths can be
	// exercised. The debug listener's /failpoints endpoint can re-arm at
	// runtime.
	if err := failpoint.ArmFromEnv(os.Getenv(failpoint.EnvVar)); err != nil {
		return fmt.Errorf("cfa serve: %s: %w", failpoint.EnvVar, err)
	}

	// The access log opens before the server: an unwritable log path is a
	// clean startup failure, mirroring the bind-error policy below.
	var alogW io.Writer
	switch *accessLog {
	case "":
	case "-":
		alogW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("cfa serve: open access log: %w", err)
		}
		defer f.Close()
		alogW = f
	}

	reg := obs.NewRegistry()
	srv, err := serve.New(serve.Config{
		ModelPath:           *model,
		MaxConcurrent:       *concurrency,
		MaxQueue:            *queue,
		RequestTimeout:      *timeout,
		DrainTimeout:        drain,
		MaxStreams:          *maxStreams,
		Shards:              *shards,
		MaxBatchRecords:     *maxBatchRecords,
		MaxQueueRecords:     *maxQueueRecords,
		Smoothing:           *smoothing,
		RaiseAfter:          *raiseAfter,
		ClearAfter:          *clearAfter,
		CheckpointPath:      *checkpointPath,
		CheckpointInterval:  *checkpointInterval,
		CheckpointMaxAge:    *checkpointMaxAge,
		MaxInFlightRequests: *maxInflight,
		Registry:            reg,
		FeatureMetrics:      *featureMetrics,

		DisableAdaptiveOverload: !*adaptive,
		OverloadTarget:          *overloadTarget,
		BrownoutTick:            *brownoutTick,
		BrownoutEnterAfter:      *brownoutEnter,
		BrownoutExitAfter:       *brownoutExit,

		AccessLog:       alogW,
		AccessLogSample: *accessLogSample,
		SLOLatency:      *sloLatency,
		SLOObjective:    *sloObjective,
		SLOBurnEvidence: *sloEvidence,
		FlightTraceCap:  *flightTraces,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "cfa serve: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	// The debug surface shares the registry but never the public listener:
	// pprof handlers can be made to do unbounded work, so they must not sit
	// behind the admission controller they would distort.
	if *debugAddr != "" {
		mux := obs.DebugMux(reg, nil)
		fph := http.StripPrefix("/failpoints", failpoint.Handler())
		mux.Handle("/failpoints", fph)
		mux.Handle("/failpoints/", fph)
		mux.Handle("/flightz", obs.FlightHandler(srv.Flight()))
		ps, err := obs.StartDebugServer(*debugAddr, mux)
		if err != nil {
			ln.Close()
			return err
		}
		defer ps.Close()
		fmt.Fprintf(w, "cfa serve: debug surface on http://%s/debug/pprof/ (and /metrics, /tracez, /flightz, /failpoints)\n", ps.Addr())
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if err := srv.Reload(); err != nil {
					fmt.Fprintln(os.Stderr, "cfa serve: reload:", err)
				} else {
					fmt.Fprintln(os.Stderr, "cfa serve: model reloaded")
				}
			}
		}
	}()

	fmt.Fprintf(w, "cfa serve: listening on %s (model %s; SIGHUP reloads, SIGTERM drains)\n",
		ln.Addr(), *model)
	return srv.Run(ctx, ln)
}
