package main

import (
	"flag"
	"fmt"
	"io"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/ml"
)

// curve evaluates a trained model against a labelled pair of traces — one
// normal, one attacked (everything after -onset is ground-truth intrusion)
// — and prints the recall-precision curve with its summary statistics.
func curve(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cfa curve", flag.ContinueOnError)
	normalIn := fs.String("normal", "", "normal trace CSV (required)")
	attackIn := fs.String("attack", "", "attack trace CSV (required)")
	model := fs.String("model", "model.bin", "model path from cfa train")
	onset := fs.Float64("onset", 0, "intrusion onset time in the attack trace (records at/after are positives)")
	warmup := fs.Float64("warmup", 900, "skip records before this time in both traces")
	points := fs.Int("points", 15, "curve points to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *normalIn == "" || *attackIn == "" {
		return fmt.Errorf("-normal and -attack are required")
	}
	mf, err := core.LoadBundleFile(*model)
	if err != nil {
		return err
	}

	var events []eval.Scored
	score := func(path string, intrusionFrom float64, anyIntrusion bool) error {
		vectors, err := readTrace(path)
		if err != nil {
			return err
		}
		// Batch the whole trace through the compiled ScoreAll path instead
		// of scoring record by record.
		var xs [][]int
		var intrusion []bool
		for _, v := range vectors {
			if v.Time < *warmup {
				continue
			}
			x, err := mf.Discretizer.Transform(v.Values)
			if err != nil {
				return err
			}
			xs = append(xs, x)
			intrusion = append(intrusion, anyIntrusion && v.Time >= intrusionFrom)
		}
		scores := mf.Analyzer.ScoreAll(ml.DatasetOf(mf.Analyzer.Attrs, xs), mf.Scorer)
		for i, s := range scores {
			events = append(events, eval.Scored{Score: s, Intrusion: intrusion[i]})
		}
		return nil
	}
	if err := score(*normalIn, 0, false); err != nil {
		return err
	}
	if err := score(*attackIn, *onset, true); err != nil {
		return err
	}

	pts := eval.Curve(events)
	opt := eval.OptimalPoint(pts)
	fmt.Fprintf(w, "events=%d AUC=%.3f AUC-above-diagonal=%.3f optimal=(recall=%.2f, precision=%.2f)\n",
		len(events), eval.AUC(pts), eval.AUCAboveDiagonal(pts), opt.Recall, opt.Precision)
	conf := eval.At(events, mf.Threshold)
	fmt.Fprintf(w, "at calibrated threshold %.4f: %s\n", mf.Threshold, conf)
	step := len(pts) / *points
	if step < 1 {
		step = 1
	}
	fmt.Fprintln(w, "recall\tprecision\tthreshold")
	for i := 0; i < len(pts); i += step {
		fmt.Fprintf(w, "%.3f\t%.3f\t%.4f\n", pts[i].Recall, pts[i].Precision, pts[i].Threshold)
	}
	return nil
}
