package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossfeature/internal/features"
)

func TestRunProducesReadableTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	err := run([]string{
		"-nodes", "10", "-connections", "6", "-duration", "100",
		"-seed", "3", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	vs, err := features.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 20 { // 100 s at 5 s sampling
		t.Errorf("trace has %d records, want 20", len(vs))
	}
}

func TestRunDSRTCPWithAttack(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	err := run([]string{
		"-routing", "dsr", "-transport", "tcp", "-nodes", "10",
		"-connections", "6", "-duration", "100", "-attack", "blackhole",
		"-attacker", "3", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-routing", "babel"},
		{"-transport", "sctp"},
		{"-attack", "wormhole"},
	} {
		if err := run(append(args, "-duration", "10", "-nodes", "5", "-connections", "2")); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestAttackSpecsModes(t *testing.T) {
	for _, mode := range []string{"none", "mixed", "blackhole", "dropping", "storm"} {
		specs, err := attackSpecs(mode, 5, 0, 1000)
		if err != nil {
			t.Errorf("%s: %v", mode, err)
		}
		switch mode {
		case "none":
			if specs != nil {
				t.Error("none produced specs")
			}
		case "mixed":
			if len(specs) != 2 {
				t.Errorf("mixed has %d specs", len(specs))
			}
		default:
			if len(specs) != 1 || len(specs[0].Sessions) != 3 {
				t.Errorf("%s schedule wrong: %+v", mode, specs)
			}
		}
	}
	if _, err := attackSpecs("bogus", 5, 0, 1000); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Error("unknown mode accepted")
	}
}

func TestMetricsOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	metrics := filepath.Join(dir, "metrics.prom")
	err := run([]string{
		"-routing", "dsr", "-nodes", "8", "-connections", "4",
		"-duration", "60", "-out", out, "-metrics-out", metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		"# TYPE sim_packets_total counter",
		`sim_packets_total{protocol="DSR",class="data",dir="sent"}`,
		"# TYPE sim_route_events_total counter",
		"sim_events_processed",
		"sim_audit_records 12", // 60 s at 5 s sampling
		"sim_virtual_seconds 60",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics missing %q:\n%s", want, s)
		}
	}
	// An unwritable path must fail up front, before the simulation runs.
	err = run([]string{
		"-nodes", "8", "-connections", "4", "-duration", "60",
		"-out", filepath.Join(dir, "t2.csv"),
		"-metrics-out", filepath.Join(dir, "no", "such", "dir", "m.prom"),
	})
	if err == nil {
		t.Fatal("unwritable metrics path accepted")
	}
}

func TestEventLogOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	events := filepath.Join(dir, "events.log")
	err := run([]string{
		"-nodes", "8", "-connections", "4", "-duration", "60",
		"-out", out, "-events", events,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("event log empty")
	}
	first := strings.SplitN(string(data), "\n", 2)[0]
	if !strings.HasPrefix(first, "p ") && !strings.HasPrefix(first, "r ") {
		t.Errorf("unexpected event line %q", first)
	}
}
