// Command manetsim runs one MANET scenario and writes the monitored
// node's audit trail as a feature-vector CSV.
//
// Usage:
//
//	manetsim -routing aodv -transport udp -duration 10000 -seed 1 \
//	         -attack none|mixed|blackhole|dropping \
//	         -faults none|crash|flap|noise|sampler|env -out trace.csv \
//	         [-metrics-out metrics.prom]
//
// The emitted CSV feeds cmd/cfa for training and detection. With
// -metrics-out, per-protocol packet and route-event counters from the
// monitored node's audit stream (plus engine and record totals) are
// written in Prometheus text format after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crossfeature/internal/attack"
	"crossfeature/internal/faults"
	"crossfeature/internal/features"
	"crossfeature/internal/netsim"
	"crossfeature/internal/obs"
	"crossfeature/internal/packet"
	"crossfeature/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "manetsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("manetsim", flag.ContinueOnError)
	routing := fs.String("routing", "aodv", "routing protocol: aodv, dsr or olsr")
	transport := fs.String("transport", "udp", "transport workload: udp (CBR) or tcp")
	duration := fs.Float64("duration", 10000, "virtual seconds to simulate")
	seed := fs.Int64("seed", 1, "per-trace random seed (jitter, protocol timing)")
	workload := fs.Int64("workload-seed", 42, "scenario seed (movement + connections); 0 follows -seed")
	nodes := fs.Int("nodes", 50, "number of mobile nodes")
	conns := fs.Int("connections", 100, "number of end-to-end connections")
	rate := fs.Float64("rate", 0.25, "packets/second per connection")
	attackMode := fs.String("attack", "none", "intrusion mix: none, mixed, blackhole, dropping or storm")
	attacker := fs.Int("attacker", 5, "compromised node id")
	dropTarget := fs.Int("drop-target", 0, "selective-dropping destination node id")
	faultMode := fs.String("faults", "none", "benign fault mix: none, crash, flap, noise, sampler or env")
	faultNode := fs.Int("fault-node", 1, "node hit by crash faults (flap/sampler faults target -monitor)")
	monitor := fs.Int("monitor", 0, "node whose audit trail is recorded")
	out := fs.String("out", "", "output CSV path (default stdout)")
	record := fs.String("record", "", "also write a replayable audit trace (for cfa loadgen -trace) to this path")
	events := fs.String("events", "", "optional per-observation event log path")
	metricsOut := fs.String("metrics-out", "", "write audit-stream metrics in Prometheus text format to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := netsim.DefaultConfig()
	cfg.Duration = *duration
	cfg.Seed = *seed
	cfg.WorkloadSeed = *workload
	cfg.Nodes = *nodes
	cfg.Connections = *conns
	cfg.Rate = *rate
	cfg.MonitorNodes = []packet.NodeID{packet.NodeID(*monitor)}

	switch strings.ToLower(*routing) {
	case "aodv":
		cfg.Routing = netsim.AODV
	case "dsr":
		cfg.Routing = netsim.DSR
	case "olsr":
		cfg.Routing = netsim.OLSR
	default:
		return fmt.Errorf("unknown routing %q (want aodv, dsr or olsr)", *routing)
	}
	switch strings.ToLower(*transport) {
	case "udp", "cbr":
		cfg.Transport = netsim.CBR
	case "tcp":
		cfg.Transport = netsim.TCP
	default:
		return fmt.Errorf("unknown transport %q (want udp or tcp)", *transport)
	}

	specs, err := attackSpecs(*attackMode, packet.NodeID(*attacker), packet.NodeID(*dropTarget), *duration)
	if err != nil {
		return err
	}
	cfg.Attacks = specs

	fspecs, err := faultSpecs(*faultMode, packet.NodeID(*faultNode), packet.NodeID(*monitor), *duration)
	if err != nil {
		return err
	}
	cfg.Faults = fspecs

	if *events != "" {
		ef, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer ef.Close()
		cfg.EventLog = ef
	}

	var reg *obs.Registry
	var metricsFile *os.File
	if *metricsOut != "" {
		// Created up front so an unwritable path fails before the run.
		mf, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		defer mf.Close()
		metricsFile = mf
		reg = obs.NewRegistry()
		cfg.AuditSink = trace.NewMetricsSink(reg, cfg.Routing.String())
	}

	net, err := netsim.New(cfg)
	if err != nil {
		return err
	}
	if err := net.Run(); err != nil {
		return err
	}
	vectors := features.FromSnapshots(net.Snapshots(packet.NodeID(*monitor)))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := features.WriteCSV(w, vectors); err != nil {
		return err
	}
	if *record != "" {
		// The same vectors again, in the replayable audit-trace format:
		// timestamps carry the scenario's arrival shape, values become
		// loadgen request bodies.
		recs := make([]trace.AuditRecord, len(vectors))
		for i, v := range vectors {
			recs[i] = trace.AuditRecord{Time: v.Time, Values: v.Values}
		}
		rf, err := os.Create(*record)
		if err != nil {
			return err
		}
		if err := trace.WriteAuditTrace(rf, features.Names(), recs); err != nil {
			rf.Close()
			return fmt.Errorf("record: %w", err)
		}
		if err := rf.Close(); err != nil {
			return fmt.Errorf("record: %w", err)
		}
	}
	if reg != nil {
		reg.GaugeFunc("sim_events_processed",
			"Discrete events fired by the simulation engine.",
			func() float64 { return float64(net.Engine().Processed()) })
		reg.GaugeFunc("sim_audit_records",
			"Feature-vector records emitted by the monitored node.",
			func() float64 { return float64(len(vectors)) })
		reg.GaugeFunc("sim_virtual_seconds",
			"Virtual seconds simulated.",
			func() float64 { return net.Engine().Now() })
		reg.GaugeFunc("sim_queue_high_water",
			"Largest number of events ever pending in the engine queue.",
			func() float64 { return float64(net.Engine().QueueHighWater()) })
		if err := reg.WritePrometheus(metricsFile); err != nil {
			return fmt.Errorf("metrics out: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "manetsim: %d records, %d events processed\n",
		len(vectors), net.Engine().Processed())
	return nil
}

// attackSpecs builds the paper's intrusion schedules scaled to duration:
// mixed starts black hole at duration/4 and dropping at duration/2 with
// 250 s-style sessions (duration/40); single-intrusion modes run three
// 100 s-style sessions (duration/100) at 1/4, 1/2 and 3/4 of the run.
func attackSpecs(mode string, attacker, dropTarget packet.NodeID, duration float64) ([]attack.Spec, error) {
	session := duration / 40
	starts := []float64{duration / 4, duration / 2, 3 * duration / 4}
	periodic := func(start float64) []attack.Session {
		var out []attack.Session
		for t := start; t < duration; t += 2 * session {
			out = append(out, attack.Session{Start: t, Duration: session})
		}
		return out
	}
	switch strings.ToLower(mode) {
	case "none", "":
		return nil, nil
	case "mixed":
		return []attack.Spec{
			{Kind: attack.BlackHole, Node: attacker, Sessions: periodic(duration / 4)},
			{Kind: attack.SelectiveDrop, Node: attacker, Target: dropTarget, Sessions: periodic(duration / 2)},
		}, nil
	case "blackhole":
		return []attack.Spec{{Kind: attack.BlackHole, Node: attacker,
			Sessions: attack.Sessions(duration/100, starts...)}}, nil
	case "dropping":
		return []attack.Spec{{Kind: attack.SelectiveDrop, Node: attacker, Target: dropTarget,
			Sessions: attack.Sessions(duration/100, starts...)}}, nil
	case "storm":
		return []attack.Spec{{Kind: attack.UpdateStorm, Node: attacker,
			Sessions: attack.Sessions(duration/100, starts...)}}, nil
	default:
		return nil, fmt.Errorf("unknown attack mode %q", mode)
	}
}

// faultSpecs builds benign environmental-fault campaigns scaled to duration.
// Single-kind modes run three sessions (duration/50 each) at 1/4, 1/2 and
// 3/4 of the run; env combines every kind on a staggered schedule. Crash
// faults hit faultNode, link flapping and sampler faults hit the monitored
// node — its audit trail is what degrades.
func faultSpecs(mode string, faultNode, monitor packet.NodeID, duration float64) ([]faults.Spec, error) {
	session := duration / 50
	starts := []float64{duration / 4, duration / 2, 3 * duration / 4}
	peer := monitor + 1
	if peer == faultNode {
		peer++
	}
	switch strings.ToLower(mode) {
	case "none", "":
		return nil, nil
	case "crash":
		return []faults.Spec{{Kind: faults.NodeCrash, Node: faultNode,
			Sessions: faults.Sessions(session, starts...)}}, nil
	case "flap":
		return []faults.Spec{{Kind: faults.LinkFlap, Node: monitor, Peer: peer,
			Sessions: faults.Sessions(session, starts...)}}, nil
	case "noise":
		return []faults.Spec{{Kind: faults.NoiseBurst, NoiseLoss: 0.1,
			Sessions: faults.Sessions(session, starts...)}}, nil
	case "sampler":
		return []faults.Spec{
			{Kind: faults.SamplerDrop, Node: monitor,
				Sessions: faults.Sessions(session, duration/4)},
			{Kind: faults.SamplerTruncate, Node: monitor,
				Sessions: faults.Sessions(session, duration/2)},
			{Kind: faults.SamplerJitter, Node: monitor,
				Sessions: faults.Sessions(session, 3*duration/4)},
		}, nil
	case "env":
		return []faults.Spec{
			{Kind: faults.NodeCrash, Node: faultNode,
				Sessions: faults.Sessions(session, duration/8, 5*duration/8)},
			{Kind: faults.LinkFlap, Node: monitor, Peer: peer,
				Sessions: faults.Sessions(2*session, duration/4)},
			{Kind: faults.NoiseBurst, NoiseLoss: 0.1,
				Sessions: faults.Sessions(session, 3*duration/8)},
			{Kind: faults.SamplerDrop, Node: monitor,
				Sessions: faults.Sessions(session/2, 11*duration/16)},
			{Kind: faults.SamplerTruncate, Node: monitor,
				Sessions: faults.Sessions(session, 3*duration/4)},
			{Kind: faults.SamplerJitter, Node: monitor,
				Sessions: faults.Sessions(session, 7*duration/8)},
		}, nil
	default:
		return nil, fmt.Errorf("unknown fault mode %q", mode)
	}
}
