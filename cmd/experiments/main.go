// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-preset paper|quick|smoke] [-only tables,figure1..figure6,ablations,storm,faults,multinode,olsr,all] [-parallel N] [-workers N] [-cpuprofile f] [-memprofile f] [-trace manifest.json] [-metrics-out metrics.prom]
//
// Each experiment prints the rows/series the paper reports: the two-node
// example tables (1-3), the recall-precision curves of Figures 1-2, the
// time series of Figures 3 and 5, and the density distributions of
// Figures 4 and 6. Simulations are memoised across experiments within one
// invocation, so "-only all" costs far less than the sum of its parts.
//
// Independent experiments run concurrently on -workers goroutines
// (default GOMAXPROCS). Each experiment writes into its own buffer and
// the buffers are flushed in declaration order, so the report is byte
// for byte the same whatever the worker count; per-experiment wall-clock
// timing goes to stderr, keeping nondeterministic durations out of the
// report stream.
//
// With -trace, a machine-readable run manifest (stage timings, seeds,
// build revision and the final metrics snapshot) is written as JSON and
// the stage timing tree is printed to stderr; -metrics-out dumps the same
// metrics in Prometheus text format.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"crossfeature/internal/experiments"
	"crossfeature/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment scale: quick, paper or smoke")
	only := fs.String("only", "all", "comma-separated experiments: tables, figure1..figure6, ablations, storm, faults, multinode, olsr, all")
	parallel := fs.Int("parallel", 0, "sub-model training parallelism (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "concurrent experiments and trace simulations (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := fs.String("trace", "", "write a run manifest (stage timings, seeds, metrics) to this JSON file")
	metricsOut := fs.String("metrics-out", "", "write the final metrics snapshot in Prometheus text format to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	runStart := time.Now()
	setup := tracer.Start("setup")

	var p experiments.Preset
	switch *preset {
	case "paper":
		p = experiments.PaperPreset()
	case "quick":
		p = experiments.QuickPreset()
	case "smoke":
		p = experiments.SmokePreset()
	default:
		return fmt.Errorf("unknown preset %q (want paper, quick or smoke)", *preset)
	}
	p.Parallelism = *parallel
	p.Workers = *workers

	if *cpuprofile != "" {
		f, ferr := os.Create(*cpuprofile)
		if ferr != nil {
			return fmt.Errorf("cpu profile: %w", ferr)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			return fmt.Errorf("cpu profile: %w", perr)
		}
		// Stop and flush via defer, so the profile survives a failed
		// report — a crash-adjacent run is exactly the one worth profiling.
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpu profile: %w", cerr)
			}
		}()
	}
	if *memprofile != "" {
		// Created up front: an unwritable path must fail now, not after a
		// potentially hours-long run.
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			return fmt.Errorf("heap profile: %w", ferr)
		}
		defer func() {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = fmt.Errorf("heap profile: %w", werr)
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("heap profile: %w", cerr)
			}
		}()
	}

	lab, err := experiments.NewLab(p)
	if err != nil {
		return err
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	type experiment struct {
		name string
		run  func(io.Writer) error
	}
	exps := []experiment{
		{"tables", func(w io.Writer) error {
			experiments.PrintTable1(w)
			fmt.Fprintln(w)
			experiments.PrintTable2(w)
			fmt.Fprintln(w)
			experiments.PrintTable3(w)
			return nil
		}},
		{"figure1", func(w io.Writer) error { _, err := lab.Figure1(w); return err }},
		{"figure2", func(w io.Writer) error { _, err := lab.Figure2(w); return err }},
		{"figure3", func(w io.Writer) error { _, err := lab.Figure3(w); return err }},
		{"figure4", func(w io.Writer) error { _, err := lab.Figure4(w); return err }},
		{"figure5", func(w io.Writer) error { _, err := lab.Figure5(w); return err }},
		{"figure6", func(w io.Writer) error { _, err := lab.Figure6(w); return err }},
		{"ablations", func(w io.Writer) error { _, err := lab.Ablations(w); return err }},
		{"storm", func(w io.Writer) error { _, err := lab.StormStudy(w); return err }},
		{"faults", func(w io.Writer) error { _, err := lab.FaultRobustness(w); return err }},
		{"multinode", func(w io.Writer) error { _, err := lab.MultiNodeStudy(w, nil); return err }},
		{"olsr", func(w io.Writer) error { _, err := lab.OLSRStudy(w); return err }},
	}
	var picked []experiment
	for _, e := range exps {
		if selected(e.name) {
			picked = append(picked, e)
		}
	}
	if len(picked) == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	setup.End()

	// Run every selected experiment concurrently, each into its own
	// buffer; the lab's caches coalesce shared traces, datasets and
	// analyzers across them. Buffers flush in declaration order so the
	// report is identical to a serial run.
	expPhase := tracer.Start("experiments")
	lab.Instrument(reg, expPhase)
	nworkers := *workers
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, nworkers)
	type outcome struct {
		buf  bytes.Buffer
		err  error
		done chan struct{}
	}
	outs := make([]*outcome, len(picked))
	for i, e := range picked {
		o := &outcome{done: make(chan struct{})}
		outs[i] = o
		go func(e experiment, o *outcome) {
			defer close(o.done)
			sem <- struct{}{}
			defer func() { <-sem }()
			sp := expPhase.Start("exp:" + e.name)
			defer sp.End()
			start := time.Now()
			fmt.Fprintf(&o.buf, "==== %s (preset=%s) ====\n", e.name, *preset)
			if err := e.run(&o.buf); err != nil {
				o.err = fmt.Errorf("%s: %w", e.name, err)
				return
			}
			fmt.Fprintf(&o.buf, "---- %s done ----\n\n", e.name)
			fmt.Fprintf(os.Stderr, "experiments: %s done in %v\n", e.name, time.Since(start).Round(time.Millisecond))
		}(e, o)
	}
	for _, o := range outs {
		<-o.done
		if o.err != nil {
			return o.err
		}
		if _, err := io.Copy(w, &o.buf); err != nil {
			return err
		}
	}
	expPhase.End()

	if *metricsOut != "" {
		if werr := writeMetricsFile(*metricsOut, reg); werr != nil {
			return werr
		}
	}
	if *traceOut != "" {
		fmt.Fprintln(os.Stderr, "experiments: stage timings:")
		tracer.WriteTree(os.Stderr)
		m := experiments.RunManifest{
			Schema:        experiments.ManifestSchema,
			Preset:        *preset,
			Only:          *only,
			Workers:       nworkers,
			Parallelism:   *parallel,
			Seeds:         p.Seeds(),
			GoVersion:     runtime.Version(),
			BuildRevision: experiments.BuildRevision(),
			TotalSeconds:  time.Since(runStart).Seconds(),
			Simulations:   lab.Simulations(),
			Metrics:       reg.Snapshot(),
		}
		for _, root := range tracer.Roots() {
			m.Stages = append(m.Stages, root.Timing())
		}
		// The experiments phase also parents the lab's simulate/train
		// spans; the manifest keeps only the per-experiment rollups.
		for _, c := range expPhase.Children() {
			if t := c.Timing(); strings.HasPrefix(t.Name, "exp:") {
				m.Experiments = append(m.Experiments, t)
			}
		}
		if werr := m.WriteFile(*traceOut); werr != nil {
			return werr
		}
	}
	return nil
}

// writeMetricsFile dumps the registry in Prometheus text format.
func writeMetricsFile(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics out: %w", err)
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics out: %w", err)
	}
	return f.Close()
}
