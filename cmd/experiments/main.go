// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-preset paper|quick|smoke] [-only tables,figure1..figure6,ablations,storm,faults,multinode,olsr,all] [-parallel N] [-workers N] [-cpuprofile f] [-memprofile f]
//
// Each experiment prints the rows/series the paper reports: the two-node
// example tables (1-3), the recall-precision curves of Figures 1-2, the
// time series of Figures 3 and 5, and the density distributions of
// Figures 4 and 6. Simulations are memoised across experiments within one
// invocation, so "-only all" costs far less than the sum of its parts.
//
// Independent experiments run concurrently on -workers goroutines
// (default GOMAXPROCS). Each experiment writes into its own buffer and
// the buffers are flushed in declaration order, so the report is byte
// for byte the same whatever the worker count; per-experiment wall-clock
// timing goes to stderr, keeping nondeterministic durations out of the
// report stream.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"crossfeature/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment scale: quick, paper or smoke")
	only := fs.String("only", "all", "comma-separated experiments: tables, figure1..figure6, ablations, storm, faults, multinode, olsr, all")
	parallel := fs.Int("parallel", 0, "sub-model training parallelism (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "concurrent experiments and trace simulations (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p experiments.Preset
	switch *preset {
	case "paper":
		p = experiments.PaperPreset()
	case "quick":
		p = experiments.QuickPreset()
	case "smoke":
		p = experiments.SmokePreset()
	default:
		return fmt.Errorf("unknown preset %q (want paper, quick or smoke)", *preset)
	}
	p.Parallelism = *parallel
	p.Workers = *workers

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	lab, err := experiments.NewLab(p)
	if err != nil {
		return err
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	type experiment struct {
		name string
		run  func(io.Writer) error
	}
	exps := []experiment{
		{"tables", func(w io.Writer) error {
			experiments.PrintTable1(w)
			fmt.Fprintln(w)
			experiments.PrintTable2(w)
			fmt.Fprintln(w)
			experiments.PrintTable3(w)
			return nil
		}},
		{"figure1", func(w io.Writer) error { _, err := lab.Figure1(w); return err }},
		{"figure2", func(w io.Writer) error { _, err := lab.Figure2(w); return err }},
		{"figure3", func(w io.Writer) error { _, err := lab.Figure3(w); return err }},
		{"figure4", func(w io.Writer) error { _, err := lab.Figure4(w); return err }},
		{"figure5", func(w io.Writer) error { _, err := lab.Figure5(w); return err }},
		{"figure6", func(w io.Writer) error { _, err := lab.Figure6(w); return err }},
		{"ablations", func(w io.Writer) error { _, err := lab.Ablations(w); return err }},
		{"storm", func(w io.Writer) error { _, err := lab.StormStudy(w); return err }},
		{"faults", func(w io.Writer) error { _, err := lab.FaultRobustness(w); return err }},
		{"multinode", func(w io.Writer) error { _, err := lab.MultiNodeStudy(w, nil); return err }},
		{"olsr", func(w io.Writer) error { _, err := lab.OLSRStudy(w); return err }},
	}
	var picked []experiment
	for _, e := range exps {
		if selected(e.name) {
			picked = append(picked, e)
		}
	}
	if len(picked) == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}

	// Run every selected experiment concurrently, each into its own
	// buffer; the lab's caches coalesce shared traces, datasets and
	// analyzers across them. Buffers flush in declaration order so the
	// report is identical to a serial run.
	nworkers := *workers
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, nworkers)
	type outcome struct {
		buf  bytes.Buffer
		err  error
		done chan struct{}
	}
	outs := make([]*outcome, len(picked))
	for i, e := range picked {
		o := &outcome{done: make(chan struct{})}
		outs[i] = o
		go func(e experiment, o *outcome) {
			defer close(o.done)
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			fmt.Fprintf(&o.buf, "==== %s (preset=%s) ====\n", e.name, *preset)
			if err := e.run(&o.buf); err != nil {
				o.err = fmt.Errorf("%s: %w", e.name, err)
				return
			}
			fmt.Fprintf(&o.buf, "---- %s done ----\n\n", e.name)
			fmt.Fprintf(os.Stderr, "experiments: %s done in %v\n", e.name, time.Since(start).Round(time.Millisecond))
		}(e, o)
	}
	for _, o := range outs {
		<-o.done
		if o.err != nil {
			return o.err
		}
		if _, err := io.Copy(w, &o.buf); err != nil {
			return err
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
