// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-preset paper|quick] [-only tables,figure1..figure6,ablations,storm,faults,multinode,olsr,all] [-parallel N]
//
// Each experiment prints the rows/series the paper reports: the two-node
// example tables (1-3), the recall-precision curves of Figures 1-2, the
// time series of Figures 3 and 5, and the density distributions of
// Figures 4 and 6. Simulations are memoised across experiments within one
// invocation, so "-only all" costs far less than the sum of its parts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"crossfeature/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment scale: quick or paper")
	only := fs.String("only", "all", "comma-separated experiments: tables, figure1..figure6, ablations, storm, faults, multinode, olsr, all")
	parallel := fs.Int("parallel", 0, "sub-model training parallelism (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p experiments.Preset
	switch *preset {
	case "paper":
		p = experiments.PaperPreset()
	case "quick":
		p = experiments.QuickPreset()
	default:
		return fmt.Errorf("unknown preset %q (want paper or quick)", *preset)
	}
	p.Parallelism = *parallel

	lab, err := experiments.NewLab(p)
	if err != nil {
		return err
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	type experiment struct {
		name string
		run  func() error
	}
	exps := []experiment{
		{"tables", func() error {
			experiments.PrintTable1(w)
			fmt.Fprintln(w)
			experiments.PrintTable2(w)
			fmt.Fprintln(w)
			experiments.PrintTable3(w)
			return nil
		}},
		{"figure1", func() error { _, err := lab.Figure1(w); return err }},
		{"figure2", func() error { _, err := lab.Figure2(w); return err }},
		{"figure3", func() error { _, err := lab.Figure3(w); return err }},
		{"figure4", func() error { _, err := lab.Figure4(w); return err }},
		{"figure5", func() error { _, err := lab.Figure5(w); return err }},
		{"figure6", func() error { _, err := lab.Figure6(w); return err }},
		{"ablations", func() error { _, err := lab.Ablations(w); return err }},
		{"storm", func() error { _, err := lab.StormStudy(w); return err }},
		{"faults", func() error { _, err := lab.FaultRobustness(w); return err }},
		{"multinode", func() error { _, err := lab.MultiNodeStudy(w, nil); return err }},
		{"olsr", func() error { _, err := lab.OLSRStudy(w); return err }},
	}
	ran := 0
	for _, e := range exps {
		if !selected(e.name) {
			continue
		}
		start := time.Now()
		fmt.Fprintf(w, "==== %s (preset=%s) ====\n", e.name, *preset)
		if err := e.run(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(w, "---- %s done in %v ----\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	return nil
}
