package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablesExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "tables"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"Table 1", "Table 2", "Table 3", "0.83", "Abnormal"} {
		if !strings.Contains(s, needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

func TestRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "gigantic"}, &out); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run([]string{"-only", "figure99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestWorkerCountInvariance is the determinism regression test for the
// parallel engine: the smoke-preset report must be byte-identical whether
// the experiments run on one worker or eight.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke preset run takes a few seconds")
	}
	sel := "figure1,figure3,figure5,ablations,faults"
	var serial bytes.Buffer
	if err := run([]string{"-preset", "smoke", "-only", sel, "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	var parallel bytes.Buffer
	if err := run([]string{"-preset", "smoke", "-only", sel, "-workers", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		sl, pl := strings.Split(serial.String(), "\n"), strings.Split(parallel.String(), "\n")
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if sl[i] != pl[i] {
				t.Fatalf("line %d differs:\n  workers=1: %q\n  workers=8: %q", i+1, sl[i], pl[i])
			}
		}
		t.Fatalf("reports differ in length: %d vs %d lines", len(sl), len(pl))
	}
}
