package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossfeature/internal/experiments"
)

func TestTablesExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "tables"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"Table 1", "Table 2", "Table 3", "0.83", "Abnormal"} {
		if !strings.Contains(s, needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

func TestRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "gigantic"}, &out); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run([]string{"-only", "figure99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunManifest drives a real (smoke-scale) run with -trace and
// -metrics-out and checks the manifest invariants: schema and seeds
// recorded, every stage present, and the stage wall-times summing to
// (within tolerance of) the total run time — the guarantee that makes
// stage timings trustworthy for regression hunting.
func TestRunManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke preset run takes a few seconds")
	}
	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.json")
	metrics := filepath.Join(dir, "metrics.prom")
	var out bytes.Buffer
	err := run([]string{"-preset", "smoke", "-only", "figure3",
		"-trace", manifest, "-metrics-out", metrics}, &out)
	if err != nil {
		t.Fatal(err)
	}

	m, err := experiments.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Preset != "smoke" || m.Only != "figure3" || m.GoVersion == "" {
		t.Errorf("manifest header wrong: %+v", m)
	}
	if m.Seeds.Train != experiments.SmokePreset().TrainSeed || len(m.Seeds.Attack) == 0 {
		t.Errorf("manifest seeds wrong: %+v", m.Seeds)
	}
	if m.Simulations < 2 {
		t.Errorf("simulations = %d, want >= 2 (train + attack traces)", m.Simulations)
	}
	stages := map[string]float64{}
	var sum float64
	for _, s := range m.Stages {
		stages[s.Name] = s.WallSeconds
		sum += s.WallSeconds
	}
	for _, want := range []string{"setup", "experiments"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("manifest missing stage %q: %v", want, stages)
		}
	}
	if m.TotalSeconds <= 0 {
		t.Fatalf("total_seconds = %v", m.TotalSeconds)
	}
	// Top-level stages are sequential and cover the run: their sum must
	// land within 10% of the measured total.
	if ratio := sum / m.TotalSeconds; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("stage sum %.3fs is %.0f%% of total %.3fs, want within 10%%",
			sum, 100*ratio, m.TotalSeconds)
	}
	if len(m.Experiments) != 1 || !strings.HasPrefix(m.Experiments[0].Name, "exp:figure3") {
		t.Errorf("experiments timings = %+v", m.Experiments)
	}

	// The metrics snapshot must include the lab's counters...
	var found bool
	for _, p := range m.Metrics {
		if p.Name == "exp_simulations_total" && p.Value >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("manifest metrics missing exp_simulations_total: %d points", len(m.Metrics))
	}
	// ...and -metrics-out the same families in exposition format.
	b, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "# TYPE exp_simulations_total counter") {
		t.Errorf("metrics file not exposition format:\n%s", b)
	}
}

func TestProfileFlagsFailFastOnUnwritablePaths(t *testing.T) {
	var out bytes.Buffer
	missing := filepath.Join(t.TempDir(), "no", "such", "dir")
	if err := run([]string{"-only", "tables", "-cpuprofile", filepath.Join(missing, "cpu.out")}, &out); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
	if err := run([]string{"-only", "tables", "-memprofile", filepath.Join(missing, "mem.out")}, &out); err == nil {
		t.Error("unwritable memprofile path accepted")
	}
}

// TestWorkerCountInvariance is the determinism regression test for the
// parallel engine: the smoke-preset report must be byte-identical whether
// the experiments run on one worker or eight.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke preset run takes a few seconds")
	}
	sel := "figure1,figure3,figure5,ablations,faults"
	var serial bytes.Buffer
	if err := run([]string{"-preset", "smoke", "-only", sel, "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	var parallel bytes.Buffer
	if err := run([]string{"-preset", "smoke", "-only", sel, "-workers", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		sl, pl := strings.Split(serial.String(), "\n"), strings.Split(parallel.String(), "\n")
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if sl[i] != pl[i] {
				t.Fatalf("line %d differs:\n  workers=1: %q\n  workers=8: %q", i+1, sl[i], pl[i])
			}
		}
		t.Fatalf("reports differ in length: %d vs %d lines", len(sl), len(pl))
	}
}
