package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablesExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "tables"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"Table 1", "Table 2", "Table 3", "0.83", "Abnormal"} {
		if !strings.Contains(s, needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

func TestRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "gigantic"}, &out); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run([]string{"-only", "figure99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
