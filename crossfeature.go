// Package crossfeature is the public API of the cross-feature analysis
// library — a from-scratch reproduction of "Cross-Feature Analysis for
// Detecting Ad-Hoc Routing Anomalies" (Huang, Fan, Lee, Yu — ICDCS 2003).
//
// Cross-feature analysis learns, from NORMAL data only, one classifier
// per feature predicting that feature from all the others (Algorithm 1).
// An event is scored by how strongly the sub-models agree with its actual
// feature values — the average match count (Algorithm 2) or the average
// probability of the true values (Algorithm 3) — and flagged as an
// anomaly when the score falls below a threshold calibrated on normal
// data.
//
// Typical use:
//
//	disc, _ := crossfeature.FitDiscretizer(rows, names, crossfeature.FitOptions{Buckets: 5})
//	ds, _ := disc.Dataset(rows)
//	analyzer, _ := crossfeature.Train(ds, crossfeature.NewC45(), crossfeature.TrainOptions{})
//	det := crossfeature.NewDetector(analyzer, crossfeature.Probability, ds.X, 0.02)
//	x, _ := disc.Transform(event)
//	if det.IsAnomaly(x) { ... }
//
// The deeper machinery — the MANET simulator, the protocols, the paper's
// experiment harness — lives under internal/ and is driven through the
// cmd/ binaries; this package re-exports the detection pipeline a
// downstream application embeds.
package crossfeature

import (
	"io"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/features"
	"crossfeature/internal/ml"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// Dataset is a table of discrete (nominal) feature vectors.
type Dataset = ml.Dataset

// Attr describes one nominal attribute: a name and a cardinality.
type Attr = ml.Attr

// Learner fits one sub-model; C4.5, RIPPER and Naive Bayes ship in-box.
type Learner = ml.Learner

// Classifier is a fitted sub-model emitting class distributions.
type Classifier = ml.Classifier

// NewDataset builds an empty dataset with the given schema.
func NewDataset(attrs []Attr) *Dataset { return ml.NewDataset(attrs) }

// NewC45 returns the C4.5 decision-tree learner configured as the
// experiments use it: gain-ratio trees with a temporal holdout for
// reduced-error pruning, which is what makes sub-models transfer across
// autocorrelated audit traces.
func NewC45() Learner {
	l := c45.NewLearner()
	l.HoldoutFrac = 1.0 / 3.0
	return l
}

// NewRIPPER returns the RIPPER-style ordered rule learner.
func NewRIPPER() Learner { return ripper.NewLearner() }

// NewNaiveBayes returns the Laplace-smoothed Naive Bayes learner.
func NewNaiveBayes() Learner { return nbayes.NewLearner() }

// Scorer selects the combination rule over sub-models.
type Scorer = core.Scorer

// The two combination rules of the paper.
const (
	// MatchCount is Algorithm 2: the fraction of sub-models whose argmax
	// prediction equals the feature's true value.
	MatchCount = core.MatchCount
	// Probability is Algorithm 3: the mean probability assigned to the
	// true feature values.
	Probability = core.Probability
)

// TrainOptions tunes Algorithm 1.
type TrainOptions = core.TrainOptions

// Analyzer is the trained cross-feature model (one classifier per feature).
type Analyzer = core.Analyzer

// Detector couples an analyzer with a scorer and calibrated threshold.
type Detector = core.Detector

// OnlineDetector adds EWMA smoothing and alarm hysteresis for streaming
// deployment.
type OnlineDetector = core.OnlineDetector

// Train runs Algorithm 1: one sub-model per feature, on normal-only data.
func Train(ds *Dataset, learner Learner, opts TrainOptions) (*Analyzer, error) {
	return core.Train(ds, learner, opts)
}

// Threshold calibrates a decision threshold from normal-data scores at the
// given false-alarm rate.
func Threshold(normalScores []float64, falseAlarmRate float64) float64 {
	return core.Threshold(normalScores, falseAlarmRate)
}

// NewDetector calibrates a detector on normal events.
func NewDetector(a *Analyzer, s Scorer, normalEvents [][]int, falseAlarmRate float64) *Detector {
	return core.NewDetector(a, s, normalEvents, falseAlarmRate)
}

// NewOnlineDetector wraps a detector for streaming use.
func NewOnlineDetector(det *Detector) *OnlineDetector {
	return core.NewOnlineDetector(det)
}

// LoadAnalyzer reads an analyzer saved with Analyzer.Save.
func LoadAnalyzer(r io.Reader) (*Analyzer, error) { return core.Load(r) }

// --- feature preparation -----------------------------------------------------

// Discretizer maps continuous feature vectors to nominal buckets with the
// paper's equal-frequency scheme plus out-of-range guard buckets.
type Discretizer = features.Discretizer

// FitOptions tunes discretiser fitting.
type FitOptions = features.FitOptions

// FitDiscretizer learns bucket boundaries from normal-data rows.
func FitDiscretizer(rows [][]float64, names []string, opts FitOptions) (*Discretizer, error) {
	return features.Fit(rows, names, opts)
}

// --- evaluation ----------------------------------------------------------------

// Scored is a labelled detector output for evaluation.
type Scored = eval.Scored

// Point is one recall/precision operating point.
type Point = eval.Point

// Curve computes the recall-precision curve over a threshold sweep.
func Curve(events []Scored) []Point { return eval.Curve(events) }

// AUC integrates precision over recall.
func AUC(points []Point) float64 { return eval.AUC(points) }

// OptimalPoint returns the operating point closest to perfect (1,1).
func OptimalPoint(points []Point) Point { return eval.OptimalPoint(points) }
