package crossfeature_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	crossfeature "crossfeature"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the package doc
// comment advertises: fit a discretiser, train, calibrate, detect.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	names := []string{"a", "b", "noise"}
	normalRow := func() []float64 {
		v := rng.Float64() * 10
		return []float64{v, 2*v + rng.Float64()*0.2, rng.Float64() * 100}
	}
	var rows [][]float64
	for i := 0; i < 500; i++ {
		rows = append(rows, normalRow())
	}
	disc, err := crossfeature.FitDiscretizer(rows, names, crossfeature.FitOptions{Buckets: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, learner := range []crossfeature.Learner{
		crossfeature.NewC45(), crossfeature.NewRIPPER(), crossfeature.NewNaiveBayes(),
	} {
		analyzer, err := crossfeature.Train(ds, learner, crossfeature.TrainOptions{})
		if err != nil {
			t.Fatalf("%s: %v", learner.Name(), err)
		}
		det := crossfeature.NewDetector(analyzer, crossfeature.Probability, ds.X, 0.05)

		var events []crossfeature.Scored
		flaggedNormal, flaggedAnomalous := 0, 0
		for i := 0; i < 100; i++ {
			x, err := disc.Transform(normalRow())
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, crossfeature.Scored{Score: det.Score(x)})
			if det.IsAnomaly(x) {
				flaggedNormal++
			}
			// Broken correlation: b is in the normal marginal range but no
			// longer tracks a.
			v := 2 + rng.Float64()*6
			y, err := disc.Transform([]float64{v, 2 * (10 - v), rng.Float64() * 100})
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, crossfeature.Scored{Score: det.Score(y), Intrusion: true})
			if det.IsAnomaly(y) {
				flaggedAnomalous++
			}
		}
		if flaggedNormal > 25 {
			t.Errorf("%s: %d/100 normal events flagged", learner.Name(), flaggedNormal)
		}
		if flaggedAnomalous < 60 {
			t.Errorf("%s: only %d/100 anomalies flagged", learner.Name(), flaggedAnomalous)
		}
		pts := crossfeature.Curve(events)
		if auc := crossfeature.AUC(pts); auc < 0.8 {
			t.Errorf("%s: public-API pipeline AUC %.3f", learner.Name(), auc)
		}
	}
}

// TestThresholdEdgeCases pins the calibration behaviour on degenerate
// score distributions: the result is always a finite number, an empty (or
// all-non-finite) input disables alarming, and identical normal scores are
// never flagged under the strict "score < threshold" rule.
func TestThresholdEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
		rate   float64
		want   float64
	}{
		{"empty", nil, 0.02, 0},
		{"all NaN", []float64{math.NaN(), math.NaN()}, 0.02, 0},
		{"all Inf", []float64{math.Inf(1), math.Inf(-1)}, 0.02, 0},
		{"all identical", []float64{0.7, 0.7, 0.7, 0.7}, 0.02, 0.7},
		{"single score", []float64{0.5}, 0.02, 0.5},
		{"NaN mixed in", []float64{math.NaN(), 0.4, 0.6}, 0, 0.4},
		{"rate NaN", []float64{0.4, 0.6}, math.NaN(), 0.4},
		{"rate negative", []float64{0.4, 0.6}, -1, 0.4},
		{"rate above one", []float64{0.4, 0.6}, 7, 0.6},
	}
	for _, c := range cases {
		got := crossfeature.Threshold(c.scores, c.rate)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: threshold %v is not finite", c.name, got)
			continue
		}
		if got != c.want {
			t.Errorf("%s: threshold %v, want %v", c.name, got, c.want)
		}
	}
	// All-identical normal scores must not alarm on those same scores.
	thr := crossfeature.Threshold([]float64{0.7, 0.7, 0.7}, 0.02)
	if 0.7 < thr {
		t.Error("identical normal scores fall below their own threshold")
	}
}

// TestMalformedAuditDataNoPanic drives the full public pipeline with
// hostile audit rows — NaN, ±Inf, wildly out-of-range values, rows that are
// entirely unknown — and demands finite scores and boolean verdicts, never
// a panic or error.
func TestMalformedAuditDataNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	names := []string{"a", "b", "c"}
	var rows [][]float64
	for i := 0; i < 300; i++ {
		v := rng.Float64() * 10
		rows = append(rows, []float64{v, 2 * v, rng.Float64()})
	}
	disc, err := crossfeature.FitDiscretizer(rows, names, crossfeature.FitOptions{Buckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := crossfeature.Train(ds, crossfeature.NewC45(), crossfeature.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det := crossfeature.NewDetector(a, crossfeature.Probability, ds.X, 0.02)

	hostile := [][]float64{
		{math.NaN(), math.NaN(), math.NaN()},
		{math.Inf(1), math.Inf(-1), math.NaN()},
		{-1e300, 1e300, 0.5},
		{5, math.NaN(), 0.5},
		{math.NaN(), 10, math.Inf(1)},
	}
	for _, row := range hostile {
		x, err := disc.Transform(row)
		if err != nil {
			t.Fatalf("Transform(%v): %v", row, err)
		}
		for _, s := range []crossfeature.Scorer{crossfeature.MatchCount, crossfeature.Probability} {
			score := a.Score(x, s)
			if math.IsNaN(score) || math.IsInf(score, 0) || score < 0 || score > 1 {
				t.Errorf("Score(%v, %v) = %v, want finite in [0,1]", row, s, score)
			}
		}
		_ = det.IsAnomaly(x) // must not panic
	}

	// Truncated vectors (audit records cut short) score too: missing tail
	// features are treated as unknown.
	short := []int{0}
	for _, s := range []crossfeature.Scorer{crossfeature.MatchCount, crossfeature.Probability} {
		score := a.Score(short, s)
		if math.IsNaN(score) || math.IsInf(score, 0) {
			t.Errorf("truncated vector score %v not finite", score)
		}
	}
	_ = det.IsAnomaly(nil) // fully empty record: no panic either
}

func TestPublicAPIPersistence(t *testing.T) {
	ds := crossfeature.NewDataset([]crossfeature.Attr{
		{Name: "x", Card: 3}, {Name: "y", Card: 3},
	})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		v := rng.Intn(3)
		if err := ds.Add([]int{v, v}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := crossfeature.Train(ds, crossfeature.NewNaiveBayes(), crossfeature.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := crossfeature.LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.AvgProbability([]int{1, 1}) != a.AvgProbability([]int{1, 1}) {
		t.Error("persistence changed scores")
	}
}

func TestPublicOnlineDetector(t *testing.T) {
	ds := crossfeature.NewDataset([]crossfeature.Attr{
		{Name: "x", Card: 3}, {Name: "y", Card: 3},
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		v := rng.Intn(3)
		if err := ds.Add([]int{v, v}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := crossfeature.Train(ds, crossfeature.NewNaiveBayes(), crossfeature.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det := crossfeature.NewDetector(a, crossfeature.Probability, ds.X, 0.02)
	online := crossfeature.NewOnlineDetector(det)
	for i := 0; i < 20; i++ {
		v := rng.Intn(3)
		online.Observe([]int{v, v})
	}
	if online.Alarm() {
		t.Fatal("alarm on normal stream")
	}
	for i := 0; i < 10; i++ {
		v := rng.Intn(3)
		online.Observe([]int{v, (v + 1) % 3})
	}
	if !online.Alarm() {
		t.Error("sustained anomaly never raised the online alarm")
	}
}
