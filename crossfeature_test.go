package crossfeature_test

import (
	"bytes"
	"math/rand"
	"testing"

	crossfeature "crossfeature"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the package doc
// comment advertises: fit a discretiser, train, calibrate, detect.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	names := []string{"a", "b", "noise"}
	normalRow := func() []float64 {
		v := rng.Float64() * 10
		return []float64{v, 2*v + rng.Float64()*0.2, rng.Float64() * 100}
	}
	var rows [][]float64
	for i := 0; i < 500; i++ {
		rows = append(rows, normalRow())
	}
	disc, err := crossfeature.FitDiscretizer(rows, names, crossfeature.FitOptions{Buckets: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, learner := range []crossfeature.Learner{
		crossfeature.NewC45(), crossfeature.NewRIPPER(), crossfeature.NewNaiveBayes(),
	} {
		analyzer, err := crossfeature.Train(ds, learner, crossfeature.TrainOptions{})
		if err != nil {
			t.Fatalf("%s: %v", learner.Name(), err)
		}
		det := crossfeature.NewDetector(analyzer, crossfeature.Probability, ds.X, 0.05)

		var events []crossfeature.Scored
		flaggedNormal, flaggedAnomalous := 0, 0
		for i := 0; i < 100; i++ {
			x, err := disc.Transform(normalRow())
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, crossfeature.Scored{Score: det.Score(x)})
			if det.IsAnomaly(x) {
				flaggedNormal++
			}
			// Broken correlation: b is in the normal marginal range but no
			// longer tracks a.
			v := 2 + rng.Float64()*6
			y, err := disc.Transform([]float64{v, 2 * (10 - v), rng.Float64() * 100})
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, crossfeature.Scored{Score: det.Score(y), Intrusion: true})
			if det.IsAnomaly(y) {
				flaggedAnomalous++
			}
		}
		if flaggedNormal > 25 {
			t.Errorf("%s: %d/100 normal events flagged", learner.Name(), flaggedNormal)
		}
		if flaggedAnomalous < 60 {
			t.Errorf("%s: only %d/100 anomalies flagged", learner.Name(), flaggedAnomalous)
		}
		pts := crossfeature.Curve(events)
		if auc := crossfeature.AUC(pts); auc < 0.8 {
			t.Errorf("%s: public-API pipeline AUC %.3f", learner.Name(), auc)
		}
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	ds := crossfeature.NewDataset([]crossfeature.Attr{
		{Name: "x", Card: 3}, {Name: "y", Card: 3},
	})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		v := rng.Intn(3)
		if err := ds.Add([]int{v, v}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := crossfeature.Train(ds, crossfeature.NewNaiveBayes(), crossfeature.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := crossfeature.LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.AvgProbability([]int{1, 1}) != a.AvgProbability([]int{1, 1}) {
		t.Error("persistence changed scores")
	}
}

func TestPublicOnlineDetector(t *testing.T) {
	ds := crossfeature.NewDataset([]crossfeature.Attr{
		{Name: "x", Card: 3}, {Name: "y", Card: 3},
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		v := rng.Intn(3)
		if err := ds.Add([]int{v, v}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := crossfeature.Train(ds, crossfeature.NewNaiveBayes(), crossfeature.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det := crossfeature.NewDetector(a, crossfeature.Probability, ds.X, 0.02)
	online := crossfeature.NewOnlineDetector(det)
	for i := 0; i < 20; i++ {
		v := rng.Intn(3)
		online.Observe([]int{v, v})
	}
	if online.Alarm() {
		t.Fatal("alarm on normal stream")
	}
	for i := 0; i < 10; i++ {
		v := rng.Intn(3)
		online.Observe([]int{v, (v + 1) % 3})
	}
	if !online.Alarm() {
		t.Error("sustained anomaly never raised the online alarm")
	}
}
