package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicOps(t *testing.T) {
	v := Vec{3, 4}
	w := Vec{1, -2}
	if got := v.Add(w); got != (Vec{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if !almost(v.Len(), 5) {
		t.Errorf("Len = %v, want 5", v.Len())
	}
	if !almost(v.Dist(Vec{0, 0}), 5) {
		t.Errorf("Dist = %v, want 5", v.Dist(Vec{}))
	}
}

func TestUnit(t *testing.T) {
	u := Vec{3, 4}.Unit()
	if !almost(u.Len(), 1) {
		t.Errorf("unit length = %v", u.Len())
	}
	if z := (Vec{}).Unit(); z != (Vec{}) {
		t.Errorf("zero unit = %v, want zero", z)
	}
}

func TestLerp(t *testing.T) {
	a, b := Vec{0, 0}, Vec{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Vec{5, 10}) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if got := (Vec{-5, 1500}).Clamp(1000, 1000); got != (Vec{0, 1000}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := (Vec{500, 500}).Clamp(1000, 1000); got != (Vec{500, 500}) {
		t.Errorf("in-bounds Clamp moved the point: %v", got)
	}
}

// Property: the triangle inequality holds for Dist.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyNaNInf(ax, ay, bx, by, cx, cy) {
			return true
		}
		a, b, c := Vec{ax, ay}, Vec{bx, by}, Vec{cx, cy}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clamp output is always inside the rectangle.
func TestQuickClampBounds(t *testing.T) {
	f := func(x, y float64) bool {
		if anyNaNInf(x, y) {
			return true
		}
		v := Vec{x, y}.Clamp(1000, 800)
		return v.X >= 0 && v.X <= 1000 && v.Y >= 0 && v.Y <= 800
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling scales the norm proportionally.
func TestQuickScaleNorm(t *testing.T) {
	f := func(x, y, s float64) bool {
		if anyNaNInf(x, y, s) || math.Abs(s) > 1e100 || math.Abs(x) > 1e100 || math.Abs(y) > 1e100 {
			return true
		}
		v := Vec{x, y}
		got := v.Scale(s).Len()
		want := math.Abs(s) * v.Len()
		if want == 0 {
			return got == 0
		}
		return math.Abs(got-want)/want < 1e-9 || math.IsInf(want, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaNInf(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
