// Package geom provides the 2-D vector math used by the mobility and radio
// models.
package geom

import "math"

// Vec is a point or displacement in the simulation plane, in metres.
type Vec struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Len returns the Euclidean norm of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Unit returns the unit vector in v's direction, or the zero vector if v is
// (numerically) zero.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l < 1e-12 {
		return Vec{}
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates from v to w by fraction f in [0,1].
func (v Vec) Lerp(w Vec, f float64) Vec {
	return Vec{v.X + (w.X-v.X)*f, v.Y + (w.Y-v.Y)*f}
}

// Clamp restricts v to the axis-aligned rectangle [0,w] x [0,h].
func (v Vec) Clamp(w, h float64) Vec {
	return Vec{math.Min(math.Max(v.X, 0), w), math.Min(math.Max(v.Y, 0), h)}
}
