package attack

import (
	"testing"

	"crossfeature/internal/packet"
	"crossfeature/internal/routing"
)

// fakeHost implements Host with an immediate scheduler substitute.
type fakeHost struct {
	id    packet.NodeID
	now   float64
	queue []scheduled
}

type scheduled struct {
	at float64
	fn func()
}

func (h *fakeHost) ID() packet.NodeID { return h.id }
func (h *fakeHost) Now() float64      { return h.now }

func (h *fakeHost) Schedule(delay float64, fn func()) {
	h.queue = append(h.queue, scheduled{at: h.now + delay, fn: fn})
}

// runUntil fires queued callbacks in time order up to t.
func (h *fakeHost) runUntil(t float64) {
	for {
		best := -1
		for i, s := range h.queue {
			if s.at <= t && (best < 0 || s.at < h.queue[best].at) {
				best = i
			}
		}
		if best < 0 {
			h.now = t
			return
		}
		s := h.queue[best]
		h.queue = append(h.queue[:best], h.queue[best+1:]...)
		h.now = s.at
		s.fn()
	}
}

// fakeProto records drop-filter installation and advertisement calls.
type fakeProto struct {
	filter     routing.DropFilter
	advertised int
}

func (p *fakeProto) Name() string                                { return "fake" }
func (p *fakeProto) Start()                                      {}
func (p *fakeProto) SendData(*packet.Packet)                     {}
func (p *fakeProto) HandleFrame(*packet.Packet, packet.NodeID)   {}
func (p *fakeProto) OverhearFrame(*packet.Packet, packet.NodeID) {}
func (p *fakeProto) Promiscuous() bool                           { return false }
func (p *fakeProto) AvgRouteLength() float64                     { return 0 }
func (p *fakeProto) Reset()                                      {}
func (p *fakeProto) SetDropFilter(f routing.DropFilter)          { p.filter = f }

type advProto struct {
	fakeProto
}

func (p *advProto) AdvertiseBlackHole() { p.advertised++ }

func TestSessionsHelper(t *testing.T) {
	s := Sessions(100, 5000, 2500)
	if len(s) != 2 || s[0].Start != 2500 || s[1].Start != 5000 {
		t.Errorf("Sessions = %v (must sort by start)", s)
	}
	if s[0].End() != 2600 {
		t.Errorf("End = %v", s[0].End())
	}
}

func TestPlanActiveAt(t *testing.T) {
	p := Plan{Specs: []Spec{{
		Kind:     SelectiveDrop,
		Sessions: Sessions(100, 1000, 3000),
	}}}
	cases := map[float64]bool{
		999: false, 1000: true, 1099: true, 1100: false,
		2999: false, 3050: true, 3100: false,
	}
	for at, want := range cases {
		if got := p.ActiveAt(at); got != want {
			t.Errorf("ActiveAt(%v) = %v, want %v", at, got, want)
		}
	}
	if p.FirstOnset() != 1000 {
		t.Errorf("FirstOnset = %v", p.FirstOnset())
	}
	if (Plan{}).FirstOnset() != -1 {
		t.Error("empty plan FirstOnset should be -1")
	}
	if (Plan{}).ActiveAt(0) {
		t.Error("empty plan should never be active")
	}
}

func TestInstallSelectiveDropTogglesWithSessions(t *testing.T) {
	h := &fakeHost{id: 3}
	p := &fakeProto{}
	spec := Spec{
		Kind:     SelectiveDrop,
		Node:     3,
		Target:   7,
		Sessions: Sessions(50, 100),
	}
	b, err := Install(h, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	victim := &packet.Packet{Type: packet.Data, Dst: 7}
	other := &packet.Packet{Type: packet.Data, Dst: 8}
	ctrl := &packet.Packet{Type: packet.RouteRequest, Dst: 7}

	h.runUntil(50) // before the session
	if p.filter(victim) {
		t.Error("dropping before session start")
	}
	h.runUntil(120) // inside the session
	if !b.Active() {
		t.Error("behaviour not active inside session")
	}
	if !p.filter(victim) {
		t.Error("victim packet not dropped during session")
	}
	if p.filter(other) {
		t.Error("non-target packet dropped")
	}
	if p.filter(ctrl) {
		t.Error("control packet dropped by selective dropping")
	}
	h.runUntil(200) // after the session
	if b.Active() || p.filter(victim) {
		t.Error("dropping continued after session end")
	}
}

func TestInstallBlackHoleAdvertisesPeriodically(t *testing.T) {
	h := &fakeHost{id: 2}
	p := &advProto{}
	spec := Spec{
		Kind:           BlackHole,
		Node:           2,
		Sessions:       []Session{{Start: 10, Duration: 20}},
		AdvertiseEvery: 5,
	}
	b, err := Install(h, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	h.runUntil(5)
	if p.advertised != 0 {
		t.Error("advertised before session start")
	}
	h.runUntil(29)
	// Rounds at t=10, 15, 20, 25 -> 4 advertisements.
	if p.advertised != 4 {
		t.Errorf("advertised %d times during the session, want 4", p.advertised)
	}
	if !p.filter(&packet.Packet{Type: packet.Data, Src: 9}) {
		t.Error("black hole not absorbing during session")
	}
	if p.filter(&packet.Packet{Type: packet.Data, Src: 2}) {
		t.Error("black hole dropped its own traffic")
	}
	h.runUntil(100)
	got := p.advertised
	h.runUntil(200)
	if p.advertised != got {
		t.Error("advertisement rounds continued after session end")
	}
	if b.Active() {
		t.Error("still active after session")
	}
}

type stormProto struct {
	fakeProto
	floods int
}

func (p *stormProto) FloodBogusDiscovery() { p.floods++ }

func TestInstallUpdateStorm(t *testing.T) {
	h := &fakeHost{id: 4}
	p := &stormProto{}
	spec := Spec{
		Kind:      UpdateStorm,
		Node:      4,
		Sessions:  []Session{{Start: 10, Duration: 5}},
		StormRate: 2, // floods at t=10, 10.5, ..., 14.5
	}
	b, err := Install(h, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	h.runUntil(9)
	if p.floods != 0 {
		t.Error("flooded before session start")
	}
	h.runUntil(14.9)
	if p.floods != 10 {
		t.Errorf("flooded %d times during a 5s session at 2/s, want 10", p.floods)
	}
	h.runUntil(100)
	if p.floods != 10 {
		t.Error("flooding continued after session end")
	}
	if b.Active() {
		t.Error("still active after session")
	}
}

func TestInstallUpdateStormRequiresFlooder(t *testing.T) {
	h := &fakeHost{id: 1}
	if _, err := Install(h, &fakeProto{}, Spec{Kind: UpdateStorm, Node: 1}); err == nil {
		t.Error("update storm on a protocol without flooding accepted")
	}
}

func TestInstallErrors(t *testing.T) {
	h := &fakeHost{id: 1}
	if _, err := Install(h, &fakeProto{}, Spec{Kind: BlackHole, Node: 2}); err == nil {
		t.Error("node mismatch accepted")
	}
	if _, err := Install(h, &fakeProto{}, Spec{Kind: BlackHole, Node: 1}); err == nil {
		t.Error("black hole on a protocol without advertisement accepted")
	}
	if _, err := Install(h, &fakeProto{}, Spec{Kind: Kind(99), Node: 1}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	if BlackHole.String() != "blackhole" || SelectiveDrop.String() != "selective-drop" {
		t.Error("kind stringers wrong")
	}
}
