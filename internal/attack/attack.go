// Package attack implements the paper's intrusion scripts (Table 6): the
// black-hole attack (bogus shortest-route advertisements that absorb all
// nearby traffic) and selective packet dropping (discarding packets to a
// specific destination), both driven by an on-off session model where
// intrusion sessions of a fixed duration are inserted periodically.
package attack

import (
	"fmt"
	"sort"

	"crossfeature/internal/packet"
	"crossfeature/internal/routing"
)

// Kind enumerates implemented intrusions.
type Kind int

const (
	// BlackHole advertises bogus shortest routes to all nodes and drops the
	// traffic it attracts.
	BlackHole Kind = iota + 1
	// SelectiveDrop drops packets destined to a specific node.
	SelectiveDrop
	// UpdateStorm floods the network with meaningless route discovery
	// messages to exhaust bandwidth (the paper's section 2.3 "update
	// storm" routing attack).
	UpdateStorm
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case BlackHole:
		return "blackhole"
	case SelectiveDrop:
		return "selective-drop"
	case UpdateStorm:
		return "update-storm"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Session is one on-interval of an intrusion.
type Session struct {
	Start    float64
	Duration float64
}

// End is the session's off time.
func (s Session) End() float64 { return s.Start + s.Duration }

// Spec describes one intrusion deployment on one compromised node.
type Spec struct {
	Kind     Kind
	Node     packet.NodeID // the compromised host
	Target   packet.NodeID // SelectiveDrop: destination whose packets die
	Sessions []Session
	// AdvertiseEvery is the interval between bogus-advertisement rounds
	// while a black-hole session is active; defaults to 5 s.
	AdvertiseEvery float64
	// StormRate is the bogus-flood origination rate (floods/second) while
	// an update-storm session is active. The paper's storm aims to
	// "exhaust the network bandwidth and effectively paralyze the
	// network", so the default is 50/s — each flood is rebroadcast
	// network-wide, which saturates interface queues.
	StormRate float64
}

// Sessions builds the paper's periodic on-off schedule: sessions of the
// given duration starting at each start time.
func Sessions(duration float64, starts ...float64) []Session {
	out := make([]Session, 0, len(starts))
	for _, s := range starts {
		out = append(out, Session{Start: s, Duration: duration})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ValidateSessions rejects empty schedules, non-positive durations,
// negative starts and mutually overlapping sessions. Overlapping sessions
// of one behaviour toggle its shared on/off state incoherently (the first
// session's end switches the attack off while the second is still
// running), so they are configuration errors, not schedules.
func ValidateSessions(sessions []Session) error {
	if len(sessions) == 0 {
		return fmt.Errorf("no sessions scheduled")
	}
	sorted := append([]Session(nil), sessions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, s := range sorted {
		if s.Duration <= 0 {
			return fmt.Errorf("session at %g has non-positive duration %g", s.Start, s.Duration)
		}
		if s.Start < 0 {
			return fmt.Errorf("session start %g is negative", s.Start)
		}
		if i > 0 && s.Start < sorted[i-1].End() {
			return fmt.Errorf("session at %g overlaps session [%g,%g)",
				s.Start, sorted[i-1].Start, sorted[i-1].End())
		}
	}
	return nil
}

// Host is what an attack needs from the node runtime to arm itself.
type Host interface {
	ID() packet.NodeID
	Schedule(delay float64, fn func())
	Now() float64
}

// Behavior is an installed intrusion.
type Behavior struct {
	spec   Spec
	active bool
}

// Active reports whether an intrusion session is currently on.
func (b *Behavior) Active() bool { return b.active }

// Spec returns the deployment description.
func (b *Behavior) Spec() Spec { return b.spec }

// Install arms spec on the compromised node: it installs the protocol drop
// filter and schedules session on/off transitions plus black-hole
// advertisement rounds. The supplied protocol must belong to host.
func Install(host Host, proto routing.Protocol, spec Spec) (*Behavior, error) {
	if spec.Node != host.ID() {
		return nil, fmt.Errorf("attack: spec targets node %d but installing on node %d", spec.Node, host.ID())
	}
	if err := ValidateSessions(spec.Sessions); err != nil {
		return nil, fmt.Errorf("attack: %s on node %d: %w", spec.Kind, spec.Node, err)
	}
	b := &Behavior{spec: spec}
	switch spec.Kind {
	case BlackHole:
		adv, ok := proto.(routing.BlackHoleAdvertiser)
		if !ok {
			return nil, fmt.Errorf("attack: protocol %s cannot advertise black holes", proto.Name())
		}
		// Absorb everything routed through us while active.
		proto.SetDropFilter(func(p *packet.Packet) bool {
			return b.active && p.Type == packet.Data && p.Src != host.ID()
		})
		every := spec.AdvertiseEvery
		if every <= 0 {
			every = 5
		}
		for _, s := range spec.Sessions {
			s := s
			host.Schedule(s.Start, func() {
				b.active = true
				var round func()
				round = func() {
					if !b.active {
						return
					}
					adv.AdvertiseBlackHole()
					host.Schedule(every, round)
				}
				round()
			})
			host.Schedule(s.End(), func() { b.active = false })
		}
	case SelectiveDrop:
		proto.SetDropFilter(func(p *packet.Packet) bool {
			return b.active && p.Type == packet.Data && p.Dst == spec.Target
		})
		for _, s := range spec.Sessions {
			s := s
			host.Schedule(s.Start, func() { b.active = true })
			host.Schedule(s.End(), func() { b.active = false })
		}
	case UpdateStorm:
		flooder, ok := proto.(routing.StormFlooder)
		if !ok {
			return nil, fmt.Errorf("attack: protocol %s cannot originate storm floods", proto.Name())
		}
		rate := spec.StormRate
		if rate <= 0 {
			rate = 50
		}
		for _, s := range spec.Sessions {
			s := s
			host.Schedule(s.Start, func() {
				b.active = true
				var round func()
				round = func() {
					if !b.active {
						return
					}
					flooder.FloodBogusDiscovery()
					host.Schedule(1/rate, round)
				}
				round()
			})
			host.Schedule(s.End(), func() { b.active = false })
		}
	default:
		return nil, fmt.Errorf("attack: unknown kind %d", int(spec.Kind))
	}
	return b, nil
}

// Plan is the full intrusion schedule of a scenario, used both to arm the
// attacks and to derive ground-truth labels for evaluation.
type Plan struct {
	Specs []Spec
}

// Empty reports whether no intrusion is scheduled.
func (p Plan) Empty() bool { return len(p.Specs) == 0 }

// Validate checks every spec's schedule and rejects overlapping sessions
// of the same attack kind on the same node across specs (two behaviours of
// one kind on one host fight over the same protocol hooks). Different
// kinds may overlap — the paper's mixed traces run black hole and
// selective dropping on one compromised node concurrently.
func (p Plan) Validate(nodes int) error {
	type groupKey struct {
		kind Kind
		node packet.NodeID
	}
	merged := make(map[groupKey][]Session)
	for _, spec := range p.Specs {
		if int(spec.Node) < 0 || int(spec.Node) >= nodes {
			return fmt.Errorf("attack: %s node %d outside [0,%d)", spec.Kind, spec.Node, nodes)
		}
		if err := ValidateSessions(spec.Sessions); err != nil {
			return fmt.Errorf("attack: %s on node %d: %w", spec.Kind, spec.Node, err)
		}
		k := groupKey{spec.Kind, spec.Node}
		merged[k] = append(merged[k], spec.Sessions...)
	}
	for k, sessions := range merged {
		if err := ValidateSessions(sessions); err != nil {
			return fmt.Errorf("attack: %s on node %d across specs: %w", k.kind, k.node, err)
		}
	}
	return nil
}

// FirstOnset returns the earliest session start across all specs, or -1 if
// the plan is empty.
func (p Plan) FirstOnset() float64 {
	first := -1.0
	for _, spec := range p.Specs {
		for _, s := range spec.Sessions {
			if first < 0 || s.Start < first {
				first = s.Start
			}
		}
	}
	return first
}

// ActiveAt reports whether any intrusion session covers time t.
func (p Plan) ActiveAt(t float64) bool {
	for _, spec := range p.Specs {
		for _, s := range spec.Sessions {
			if t >= s.Start && t < s.End() {
				return true
			}
		}
	}
	return false
}
