// Package olsr implements a simplified Optimized Link State Routing
// protocol (RFC 3626) — the proactive MANET protocol the paper names
// alongside AODV and DSR (section 2). It provides an extension test bed
// for cross-feature analysis on a protocol with a fundamentally different
// audit signature: periodic HELLO and TC control traffic instead of
// on-demand discovery floods.
//
// Implemented machinery: HELLO-based link sensing with symmetric-link
// confirmation, greedy MPR (multipoint relay) selection covering the
// two-hop neighbourhood, TC (topology control) messages advertising MPR
// selectors flooded through MPRs only, and shortest-path routing-table
// computation over the learned topology.
//
// Packet-type mapping onto the paper's audit taxonomy (Table 5): HELLO
// beacons map to HELLO; TC messages map to ROUTE REQUEST (the protocol's
// only network-wide route control flood). The "route (all)" aggregate
// captures both either way.
package olsr

import (
	"sort"

	"crossfeature/internal/packet"
	"crossfeature/internal/routing"
	"crossfeature/internal/trace"
)

// Config holds OLSR protocol constants.
type Config struct {
	HelloInterval float64 // link-sensing beacon period (RFC: 2 s)
	TCInterval    float64 // topology advertisement period (RFC: 5 s)
	NeighborHold  float64 // neighbour expiry without HELLOs (RFC: 3x hello)
	TopologyHold  float64 // topology tuple expiry (RFC: 3x TC)
	RecalcEvery   float64 // routing-table recomputation period
}

// DefaultConfig mirrors RFC 3626 defaults.
func DefaultConfig() Config {
	return Config{
		HelloInterval: 2,
		TCInterval:    5,
		NeighborHold:  6,
		TopologyHold:  15,
		RecalcEvery:   1,
	}
}

// helloHeader advertises the sender's neighbourhood. Sym lists neighbours
// heard bidirectionally, Heard those heard only one way; MPRs lists the
// sender's chosen multipoint relays.
type helloHeader struct {
	Sym   []packet.NodeID
	Heard []packet.NodeID
	MPRs  []packet.NodeID
}

// tcHeader advertises that Origin can reach its MPR selectors directly.
type tcHeader struct {
	Origin    packet.NodeID
	ANSN      uint32
	Selectors []packet.NodeID
}

// neighbor is one link-sensing record.
type neighbor struct {
	sym     bool
	expires float64
	twoHop  map[packet.NodeID]struct{} // sym neighbours it advertises
	choseUs bool                       // it lists us among its MPRs
}

// topoTuple records "lastHop can reach dst", learned from TC floods.
type topoTuple struct {
	ansn    uint32
	expires float64
}

// routeEntry is one row of the computed routing table.
type routeEntry struct {
	next packet.NodeID
	hops int
}

// Router is one OLSR instance.
type Router struct {
	env routing.Env
	cfg Config

	neighbors map[packet.NodeID]*neighbor
	mprs      map[packet.NodeID]struct{}                     // our chosen relays
	topology  map[packet.NodeID]map[packet.NodeID]*topoTuple // lastHop -> dst
	routes    map[packet.NodeID]routeEntry

	ansn       uint32
	seenTC     map[tcKey]struct{}
	msgSeq     uint32
	dropFilter routing.DropFilter

	// black-hole / storm attack state
	bhTargets []packet.NodeID
	// suppressLegitUntil silences honest TC emission while the black hole
	// is lying: an attacker does not correct its own fabrications.
	suppressLegitUntil float64

	dataOriginated uint64
	dataDelivered  uint64
	dataForwarded  uint64
	dataDropped    uint64
}

type tcKey struct {
	origin packet.NodeID
	seq    uint32
}

// New creates an OLSR router bound to env.
func New(env routing.Env, cfg Config) *Router {
	return &Router{
		env:       env,
		cfg:       cfg,
		neighbors: make(map[packet.NodeID]*neighbor),
		mprs:      make(map[packet.NodeID]struct{}),
		topology:  make(map[packet.NodeID]map[packet.NodeID]*topoTuple),
		routes:    make(map[packet.NodeID]routeEntry),
		seenTC:    make(map[tcKey]struct{}),
	}
}

var (
	_ routing.Protocol            = (*Router)(nil)
	_ routing.BlackHoleAdvertiser = (*Router)(nil)
	_ routing.StormFlooder        = (*Router)(nil)
)

// Name implements routing.Protocol.
func (r *Router) Name() string { return "OLSR" }

// Promiscuous implements routing.Protocol; OLSR control is broadcast, so
// nothing extra is gained by overhearing.
func (r *Router) Promiscuous() bool { return false }

// SetDropFilter implements routing.Protocol.
func (r *Router) SetDropFilter(f routing.DropFilter) { r.dropFilter = f }

// Start arms the periodic beacons and table recomputation.
func (r *Router) Start() {
	r.env.Tick(r.cfg.HelloInterval, 1.0, r.sendHello)
	r.env.Tick(r.cfg.TCInterval, 1.0, r.sendTC)
	r.env.Tick(r.cfg.RecalcEvery, 1.0, r.recompute)
}

// Stats reports cumulative data-plane counters.
func (r *Router) Stats() (originated, delivered, forwarded, dropped uint64) {
	return r.dataOriginated, r.dataDelivered, r.dataForwarded, r.dataDropped
}

// Reset implements routing.Protocol: discard the neighbor set, MPR
// selection, topology base and routing table, as after a crash and cold
// restart. The ANSN keeps counting up so post-reboot TC messages supersede
// pre-crash ones; cumulative stats survive.
func (r *Router) Reset() {
	r.neighbors = make(map[packet.NodeID]*neighbor)
	r.mprs = make(map[packet.NodeID]struct{})
	r.topology = make(map[packet.NodeID]map[packet.NodeID]*topoTuple)
	r.routes = make(map[packet.NodeID]routeEntry)
	r.seenTC = make(map[tcKey]struct{})
	r.ansn++
}

// AvgRouteLength implements routing.Protocol.
func (r *Router) AvgRouteLength() float64 {
	if len(r.routes) == 0 {
		return 0
	}
	var sum float64
	for _, e := range r.routes {
		sum += float64(e.hops)
	}
	return sum / float64(len(r.routes))
}

// RouteTo exposes the computed next hop (for tests).
func (r *Router) RouteTo(dst packet.NodeID) (packet.NodeID, int, bool) {
	e, ok := r.routes[dst]
	return e.next, e.hops, ok
}

// --- link sensing ---------------------------------------------------------------

func (r *Router) sendHello() {
	r.expireNeighbors()
	hdr := helloHeader{}
	for id, nb := range r.neighbors {
		if nb.sym {
			hdr.Sym = append(hdr.Sym, id)
		} else {
			hdr.Heard = append(hdr.Heard, id)
		}
	}
	for id := range r.mprs {
		hdr.MPRs = append(hdr.MPRs, id)
	}
	p := r.env.NewPacket(packet.Hello, r.env.ID(), packet.Broadcast, packet.ControlSize)
	p.TTL = 1
	p.Header = hdr
	r.env.Audit().RecordPacket(r.env.Now(), packet.Hello, trace.Sent)
	r.env.Broadcast(p)
}

func (r *Router) handleHello(p *packet.Packet, from packet.NodeID) {
	hdr, ok := p.Header.(helloHeader)
	if !ok {
		return
	}
	r.env.Audit().RecordPacket(r.env.Now(), packet.Hello, trace.Received)
	me := r.env.ID()
	nb := r.neighbors[from]
	if nb == nil {
		nb = &neighbor{twoHop: make(map[packet.NodeID]struct{})}
		r.neighbors[from] = nb
		r.env.Audit().RecordRoute(trace.RouteNotice)
	}
	nb.expires = r.env.Now() + r.cfg.NeighborHold
	// Symmetric once the peer lists us (in either state).
	nb.sym = contains(hdr.Sym, me) || contains(hdr.Heard, me)
	nb.choseUs = contains(hdr.MPRs, me)
	nb.twoHop = make(map[packet.NodeID]struct{}, len(hdr.Sym))
	for _, id := range hdr.Sym {
		if id != me {
			nb.twoHop[id] = struct{}{}
		}
	}
	r.selectMPRs()
}

// expireNeighbors drops silent neighbours.
func (r *Router) expireNeighbors() {
	now := r.env.Now()
	for id, nb := range r.neighbors {
		if nb.expires < now {
			delete(r.neighbors, id)
			delete(r.mprs, id)
		}
	}
}

// selectMPRs greedily covers the 2-hop neighbourhood.
func (r *Router) selectMPRs() {
	// Universe: strict 2-hop neighbours.
	twoHop := make(map[packet.NodeID]struct{})
	for _, nb := range r.neighbors {
		if !nb.sym {
			continue
		}
		for id := range nb.twoHop {
			if id == r.env.ID() {
				continue
			}
			if n, direct := r.neighbors[id]; direct && n.sym {
				continue
			}
			twoHop[id] = struct{}{}
		}
	}
	mprs := make(map[packet.NodeID]struct{})
	uncovered := twoHop
	for len(uncovered) > 0 {
		var best packet.NodeID
		bestCover := 0
		for id, nb := range r.neighbors {
			if !nb.sym {
				continue
			}
			if _, chosen := mprs[id]; chosen {
				continue
			}
			cover := 0
			for t := range nb.twoHop {
				if _, u := uncovered[t]; u {
					cover++
				}
			}
			if cover > bestCover || (cover == bestCover && cover > 0 && id < best) {
				best, bestCover = id, cover
			}
		}
		if bestCover == 0 {
			break // remaining 2-hop nodes unreachable via any neighbour
		}
		mprs[best] = struct{}{}
		for t := range r.neighbors[best].twoHop {
			delete(uncovered, t)
		}
	}
	r.mprs = mprs
}

// --- topology dissemination --------------------------------------------------------

func (r *Router) sendTC() {
	if r.env.Now() < r.suppressLegitUntil {
		return // the black hole keeps its lie on the wire
	}
	// Only nodes someone selected as MPR originate TCs (RFC 3626 8.3).
	var selectors []packet.NodeID
	for id, nb := range r.neighbors {
		if nb.sym && nb.choseUs {
			selectors = append(selectors, id)
		}
	}
	if len(selectors) == 0 {
		return
	}
	r.ansn++
	r.broadcastTC(tcHeader{Origin: r.env.ID(), ANSN: r.ansn, Selectors: selectors}, packet.DefaultTTL)
}

// broadcastTC emits a TC flood message.
func (r *Router) broadcastTC(hdr tcHeader, ttl int) {
	r.msgSeq++
	p := r.env.NewPacket(packet.RouteRequest, hdr.Origin, packet.Broadcast, packet.ControlSize)
	p.TTL = ttl
	p.Header = hdr
	r.seenTC[tcKey{origin: hdr.Origin, seq: hdr.ANSN}] = struct{}{}
	r.env.Audit().RecordPacket(r.env.Now(), packet.RouteRequest, trace.Sent)
	r.env.Broadcast(p)
}

func (r *Router) handleTC(p *packet.Packet, from packet.NodeID) {
	hdr, ok := p.Header.(tcHeader)
	if !ok {
		return
	}
	r.env.Audit().RecordPacket(r.env.Now(), packet.RouteRequest, trace.Received)
	me := r.env.ID()
	if hdr.Origin == me {
		return
	}
	key := tcKey{origin: hdr.Origin, seq: hdr.ANSN}
	if _, seen := r.seenTC[key]; seen {
		return
	}
	r.seenTC[key] = struct{}{}

	// Record topology tuples: Origin reaches each selector.
	links := r.topology[hdr.Origin]
	if links == nil {
		links = make(map[packet.NodeID]*topoTuple)
		r.topology[hdr.Origin] = links
	}
	expires := r.env.Now() + r.cfg.TopologyHold
	for _, sel := range hdr.Selectors {
		if t := links[sel]; t == nil {
			links[sel] = &topoTuple{ansn: hdr.ANSN, expires: expires}
			r.env.Audit().RecordRoute(trace.RouteNotice)
		} else {
			t.ansn = hdr.ANSN
			t.expires = expires
		}
	}
	// Drop tuples older than this ANSN (RFC: purge outdated advertisements).
	for sel, t := range links {
		if t.ansn < hdr.ANSN {
			delete(links, sel)
		}
	}

	// MPR forwarding rule: relay only if the transmitter chose us as MPR.
	if nb := r.neighbors[from]; nb != nil && nb.choseUs && p.TTL > 0 {
		fwd := p.Clone()
		fwd.TTL--
		fwd.Hops++
		r.env.Audit().RecordPacket(r.env.Now(), packet.RouteRequest, trace.Forwarded)
		r.env.Broadcast(fwd)
	}
}

// --- routing table -----------------------------------------------------------------

// recompute rebuilds the routing table with a BFS over symmetric links and
// advertised topology, emitting add/removal audit events for the diff.
func (r *Router) recompute() {
	r.expireNeighbors()
	now := r.env.Now()
	for origin, links := range r.topology {
		for sel, t := range links {
			if t.expires < now {
				delete(links, sel)
			}
		}
		if len(links) == 0 {
			delete(r.topology, origin)
		}
	}

	me := r.env.ID()
	next := make(map[packet.NodeID]routeEntry)
	// BFS frontier: symmetric one-hop neighbours.
	type qe struct {
		node packet.NodeID
		via  packet.NodeID
		hops int
	}
	// The BFS must expand in a deterministic order: equal-length routes go
	// to whichever via claims the destination first, so seeding or
	// expanding in map-iteration order would give every run (and every
	// process) a different routing table. Sort the frontier seeds and each
	// adjacency expansion by node ID.
	seeds := make([]packet.NodeID, 0, len(r.neighbors))
	for id := range r.neighbors {
		seeds = append(seeds, id)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	var queue []qe
	for _, id := range seeds {
		if nb := r.neighbors[id]; nb.sym {
			next[id] = routeEntry{next: id, hops: 1}
			queue = append(queue, qe{node: id, via: id, hops: 1})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Expand: links advertised by cur.node (TC) plus its HELLO 2-hop set.
		var adj []packet.NodeID
		if links, ok := r.topology[cur.node]; ok {
			for sel := range links {
				adj = append(adj, sel)
			}
		}
		if nb, ok := r.neighbors[cur.node]; ok {
			for id := range nb.twoHop {
				adj = append(adj, id)
			}
		}
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		for _, dst := range adj {
			if dst == me {
				continue
			}
			if _, known := next[dst]; known {
				continue
			}
			next[dst] = routeEntry{next: cur.via, hops: cur.hops + 1}
			queue = append(queue, qe{node: dst, via: cur.via, hops: cur.hops + 1})
		}
	}

	// Audit the diff.
	for dst := range next {
		if _, had := r.routes[dst]; !had {
			r.env.Audit().RecordRoute(trace.RouteAdd)
		}
	}
	for dst := range r.routes {
		if _, have := next[dst]; !have {
			r.env.Audit().RecordRoute(trace.RouteRemoval)
		}
	}
	r.routes = next
}

// --- data plane ----------------------------------------------------------------------

// SendData implements routing.Protocol.
func (r *Router) SendData(p *packet.Packet) {
	r.dataOriginated++
	r.env.Audit().RecordPacket(r.env.Now(), packet.Data, trace.Sent)
	if p.Dst == r.env.ID() {
		r.deliver(p)
		return
	}
	e, ok := r.routes[p.Dst]
	if !ok {
		// Proactive protocol: no route means the topology genuinely lacks
		// one right now. Drop (no discovery to fall back on).
		r.dropData(p)
		return
	}
	r.env.Audit().RecordRoute(trace.RouteFind)
	next := e.next
	r.env.Unicast(next, p, func() { r.linkBreak(next, p) })
}

func (r *Router) deliver(p *packet.Packet) {
	if r.dropFilter != nil && r.dropFilter(p) {
		r.dropData(p)
		return
	}
	r.dataDelivered++
	r.env.Audit().RecordPacket(r.env.Now(), packet.Data, trace.Received)
	r.env.DeliverUp(p)
}

func (r *Router) dropData(p *packet.Packet) {
	r.dataDropped++
	r.env.Audit().RecordPacket(r.env.Now(), packet.Data, trace.Dropped)
}

func (r *Router) forwardData(p *packet.Packet) {
	if r.dropFilter != nil && r.dropFilter(p) {
		r.dropData(p)
		return
	}
	if p.TTL <= 0 {
		r.dropData(p)
		return
	}
	e, ok := r.routes[p.Dst]
	if !ok {
		r.dropData(p)
		return
	}
	fwd := p.Clone()
	fwd.TTL--
	fwd.Hops++
	r.dataForwarded++
	r.env.Audit().RecordPacket(r.env.Now(), packet.Data, trace.Forwarded)
	next := e.next
	r.env.Unicast(next, fwd, func() { r.linkBreak(next, fwd) })
}

// linkBreak reacts to MAC failure: drop the neighbour, recompute, count a
// repair (the proactive protocol's self-healing step), and drop the packet
// (retransmission is the transport's job).
func (r *Router) linkBreak(next packet.NodeID, p *packet.Packet) {
	delete(r.neighbors, next)
	delete(r.mprs, next)
	r.env.Audit().RecordRoute(trace.RouteRepair)
	r.recompute()
	r.dropData(p)
}

// HandleFrame implements routing.Protocol.
func (r *Router) HandleFrame(p *packet.Packet, from packet.NodeID) {
	switch p.Type {
	case packet.Data:
		if p.Dst == r.env.ID() {
			r.deliver(p)
			return
		}
		r.forwardData(p)
	case packet.Hello:
		r.handleHello(p, from)
	case packet.RouteRequest:
		r.handleTC(p, from)
	}
}

// OverhearFrame implements routing.Protocol; unused.
func (r *Router) OverhearFrame(*packet.Packet, packet.NodeID) {}

// --- attacks ----------------------------------------------------------------------------

// SetBlackHoleTargets configures AdvertiseBlackHole's victim set.
func (r *Router) SetBlackHoleTargets(targets []packet.NodeID) {
	r.bhTargets = append([]packet.NodeID(nil), targets...)
}

// AdvertiseBlackHole implements the OLSR analogue of the paper's black
// hole: a fabricated TC message with a huge ANSN claiming every node is
// this router's MPR selector, i.e. directly reachable through it. Every
// recipient's shortest-path computation then funnels traffic toward the
// attacker.
func (r *Router) AdvertiseBlackHole() {
	targets := r.bhTargets
	if len(targets) == 0 {
		for id := range r.routes {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		return
	}
	r.ansn += 1000 // leap ahead so stale legitimate TCs cannot displace the lie
	r.suppressLegitUntil = r.env.Now() + 2*r.cfg.TCInterval
	r.broadcastTC(tcHeader{Origin: r.env.ID(), ANSN: r.ansn, Selectors: targets}, packet.DefaultTTL)
}

// FloodBogusDiscovery implements the update storm for OLSR: meaningless
// TC floods from a nonexistent origin.
func (r *Router) FloodBogusDiscovery() {
	r.msgSeq++
	r.broadcastTC(tcHeader{
		Origin:    packet.NodeID(1 << 30),
		ANSN:      r.msgSeq,
		Selectors: []packet.NodeID{r.env.ID()},
	}, packet.DefaultTTL)
}

func contains(ids []packet.NodeID, id packet.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
