package olsr

import (
	"math/rand"
	"testing"

	"crossfeature/internal/geom"
	"crossfeature/internal/packet"
	"crossfeature/internal/radio"
	"crossfeature/internal/routing"
	"crossfeature/internal/sim"
	"crossfeature/internal/trace"
)

// The test harness mirrors the AODV/DSR protocol test rigs: static nodes
// on a shared medium, one Router per host.

type movable struct {
	pos geom.Vec
}

func (m *movable) Update(float64) {}

func (m *movable) Position() geom.Vec { return m.pos }

func (m *movable) Speed() float64 { return 0 }

type host struct {
	id        packet.NodeID
	eng       *sim.Engine
	medium    *radio.Medium
	alloc     *packet.Allocator
	router    *Router
	collector *trace.Collector
	mob       *movable
	delivered []*packet.Packet
}

var _ routing.Env = (*host)(nil)

func (h *host) ID() packet.NodeID { return h.id }
func (h *host) Now() float64      { return h.eng.Now() }
func (h *host) Rand() *rand.Rand  { return h.eng.Rand() }
func (h *host) Audit() trace.Sink { return h.collector }

func (h *host) Schedule(delay float64, fn func()) { h.eng.Schedule(delay, fn) }

func (h *host) AfterFunc(delay float64, fn func()) *sim.Timer { return h.eng.AfterFunc(delay, fn) }

func (h *host) Tick(interval, jitter float64, fn func()) *sim.Ticker {
	return h.eng.Tick(interval, jitter, fn)
}

func (h *host) NewPacket(t packet.Type, src, dst packet.NodeID, size int) *packet.Packet {
	return h.alloc.New(t, src, dst, size)
}

func (h *host) Broadcast(p *packet.Packet) { h.medium.Broadcast(h.id, p) }

func (h *host) Unicast(to packet.NodeID, p *packet.Packet, onFail func()) {
	h.medium.Unicast(h.id, to, p, onFail)
}

func (h *host) DeliverUp(p *packet.Packet) { h.delivered = append(h.delivered, p) }

func (h *host) HandleFrame(p *packet.Packet, from packet.NodeID)   { h.router.HandleFrame(p, from) }
func (h *host) OverhearFrame(p *packet.Packet, from packet.NodeID) { h.router.OverhearFrame(p, from) }

type testNet struct {
	eng    *sim.Engine
	medium *radio.Medium
	hosts  []*host
}

func newLine(t *testing.T, n int, cfg Config) *testNet {
	t.Helper()
	eng := sim.New(1)
	medium := radio.NewMedium(eng, radio.DefaultConfig())
	alloc := &packet.Allocator{}
	net := &testNet{eng: eng, medium: medium}
	for i := 0; i < n; i++ {
		h := &host{
			eng:       eng,
			medium:    medium,
			alloc:     alloc,
			collector: trace.NewCollector(),
			mob:       &movable{pos: geom.Vec{X: float64(i) * 200}},
		}
		h.router = New(h, cfg)
		h.id = medium.Attach(h.mob, h, false)
		net.hosts = append(net.hosts, h)
	}
	return net
}

func (n *testNet) start() {
	for _, h := range n.hosts {
		h.router.Start()
	}
}

func (n *testNet) sendData(src, dst int) {
	h := n.hosts[src]
	p := h.alloc.New(packet.Data, h.id, n.hosts[dst].id, packet.DataSize)
	h.router.SendData(p)
}

func (n *testNet) run(t *testing.T, until float64) {
	t.Helper()
	if err := n.eng.Run(until); err != nil {
		t.Fatal(err)
	}
}

// convergence time: a few HELLO + TC rounds.
const converge = 30

func TestNeighborSensingBecomesSymmetric(t *testing.T) {
	net := newLine(t, 2, DefaultConfig())
	net.start()
	net.run(t, converge)
	nb := net.hosts[0].router.neighbors[net.hosts[1].id]
	if nb == nil || !nb.sym {
		t.Fatal("adjacent nodes never became symmetric neighbours")
	}
}

func TestRoutingTableConvergesOverThreeHops(t *testing.T) {
	net := newLine(t, 4, DefaultConfig())
	net.start()
	net.run(t, converge)
	next, hops, ok := net.hosts[0].router.RouteTo(net.hosts[3].id)
	if !ok {
		t.Fatal("no route to a 3-hop destination after convergence")
	}
	if next != net.hosts[1].id || hops != 3 {
		t.Errorf("route = via %d at %d hops, want via 1 at 3", next, hops)
	}
}

func TestDataDeliveryProactive(t *testing.T) {
	net := newLine(t, 4, DefaultConfig())
	net.start()
	net.run(t, converge)
	net.eng.At(converge+1, func() { net.sendData(0, 3) })
	net.run(t, converge+5)
	if len(net.hosts[3].delivered) != 1 {
		t.Fatal("proactive delivery over 3 hops failed")
	}
	snap := net.hosts[0].collector.Snapshot(converge+5, 0, 0)
	if snap.RouteCounts[trace.RouteFind] == 0 {
		t.Error("send did not record a table hit (RouteFind)")
	}
}

func TestMPRSelectionCoversTwoHop(t *testing.T) {
	net := newLine(t, 3, DefaultConfig())
	net.start()
	net.run(t, converge)
	// Node 0's only route to node 2 is via node 1: node 1 must be its MPR.
	if _, ok := net.hosts[0].router.mprs[net.hosts[1].id]; !ok {
		t.Error("middle node not selected as MPR")
	}
}

func TestTCFloodsOnlyThroughMPRs(t *testing.T) {
	net := newLine(t, 5, DefaultConfig())
	net.start()
	net.run(t, converge)
	// Everyone should know a route to everyone on a line.
	for i, h := range net.hosts {
		for j := range net.hosts {
			if i == j {
				continue
			}
			if _, _, ok := h.router.RouteTo(net.hosts[j].id); !ok {
				t.Errorf("node %d lacks a route to node %d after convergence", i, j)
			}
		}
	}
}

func TestLinkBreakHealsProactively(t *testing.T) {
	cfg := DefaultConfig()
	net := newLine(t, 4, cfg)
	// Diamond: node 0 reaches node 3 via node 1 or node 2 (all adjacent
	// pairs within the 250 m range, 0-3 out of range).
	net.hosts[0].mob.pos = geom.Vec{X: 0, Y: 0}
	net.hosts[1].mob.pos = geom.Vec{X: 200, Y: 0}
	net.hosts[2].mob.pos = geom.Vec{X: 120, Y: 160}
	net.hosts[3].mob.pos = geom.Vec{X: 320, Y: 80}
	net.start()
	net.run(t, converge)
	if _, _, ok := net.hosts[0].router.RouteTo(net.hosts[3].id); !ok {
		t.Fatal("no initial route")
	}
	// Kill node 1: move far away. The protocol must re-route via node 2.
	net.hosts[1].mob.pos = geom.Vec{Y: 10000}
	net.run(t, converge+20)
	next, _, ok := net.hosts[0].router.RouteTo(net.hosts[3].id)
	if !ok {
		t.Fatal("route never healed after losing the relay")
	}
	if next != net.hosts[2].id {
		t.Errorf("healed route goes via %d, want via node 2", next)
	}
	snap := net.hosts[0].collector.Snapshot(converge+20, 0, 0)
	if snap.RouteCounts[trace.RouteRemoval] == 0 && snap.RouteCounts[trace.RouteAdd] == 0 {
		t.Error("healing produced no route-table audit events")
	}
}

func TestBlackHoleTCPullsRoutes(t *testing.T) {
	net := newLine(t, 4, DefaultConfig())
	attacker := net.hosts[2]
	victims := []packet.NodeID{net.hosts[0].id, net.hosts[1].id, net.hosts[3].id}
	attacker.router.SetBlackHoleTargets(victims)
	net.start()
	net.run(t, converge)
	// Node 0's honest route to node 3 is 3 hops (0-1-2-3).
	_, hops, ok := net.hosts[0].router.RouteTo(net.hosts[3].id)
	if !ok || hops != 3 {
		t.Fatalf("baseline route = %d hops, ok=%v", hops, ok)
	}
	net.eng.At(converge+1, func() { attacker.router.AdvertiseBlackHole() })
	// Check right after the flood settles, before the attacker's next
	// LEGITIMATE TC purges the lie: unlike AODV's permanent max-sequence
	// poison, OLSR heals within one TC interval, so a black hole must keep
	// re-advertising (which the attack scheduler does).
	net.run(t, converge+2)
	links := net.hosts[0].router.topology[attacker.id]
	if links == nil {
		t.Fatal("bogus TC never reached node 0")
	}
	found := 0
	for _, v := range victims {
		if _, ok := links[v]; ok {
			found++
		}
	}
	if found != len(victims) {
		t.Errorf("only %d/%d fabricated links installed", found, len(victims))
	}
}

func TestStormFloodVisible(t *testing.T) {
	net := newLine(t, 3, DefaultConfig())
	net.start()
	net.run(t, converge)
	before := net.hosts[0].collector.Snapshot(converge, 0, 0).
		Traffic[trace.ClassRREQ][trace.Received][2].Count
	net.eng.At(converge+1, func() {
		for i := 0; i < 20; i++ {
			net.hosts[2].router.FloodBogusDiscovery()
		}
	})
	net.run(t, converge+5)
	after := net.hosts[0].collector.Snapshot(converge+5, 0, 0).
		Traffic[trace.ClassRREQ][trace.Received][2].Count
	if after <= before {
		t.Errorf("storm floods invisible at node 0: before=%d after=%d", before, after)
	}
}

func TestAvgRouteLength(t *testing.T) {
	net := newLine(t, 4, DefaultConfig())
	net.start()
	net.run(t, converge)
	if got := net.hosts[0].router.AvgRouteLength(); got <= 1 {
		t.Errorf("avg route length = %v, want > 1 on a 4-node line", got)
	}
}

func TestDropFilterAudited(t *testing.T) {
	net := newLine(t, 3, DefaultConfig())
	net.hosts[1].router.SetDropFilter(func(p *packet.Packet) bool {
		return p.Type == packet.Data
	})
	net.start()
	net.run(t, converge)
	net.eng.At(converge+1, func() { net.sendData(0, 2) })
	net.run(t, converge+5)
	if len(net.hosts[2].delivered) != 0 {
		t.Error("drop filter did not discard relayed data")
	}
	snap := net.hosts[1].collector.Snapshot(converge+5, 0, 0)
	if snap.Traffic[trace.ClassRouteAll][trace.Dropped][2].Count == 0 {
		t.Error("malicious drop not recorded")
	}
}
