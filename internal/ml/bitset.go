package ml

import "math/bits"

// Bitset is a fixed-capacity set of row indices backed by a []uint64,
// the building block of the columnar count kernels: posting sets (rows
// where attribute a takes value v), rule-coverage sets and class sets all
// use it, so contingency counts become word-wide AND+popcount loops
// instead of per-row scans.
type Bitset []uint64

// NewBitset returns an empty bitset with capacity for indices [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// NewFullBitset returns a bitset containing every index in [0, n); the
// tail bits of the last word stay clear so Count and intersections are
// exact.
func NewFullBitset(n int) Bitset {
	b := NewBitset(n)
	for w := range b {
		b[w] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 {
		b[len(b)-1] = 1<<r - 1
	}
	return b
}

// Set adds index i to the set.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Contains reports whether index i is in the set.
func (b Bitset) Contains(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear empties the set in place.
func (b Bitset) Clear() {
	for w := range b {
		b[w] = 0
	}
}

// CopyFrom overwrites b with src (same capacity).
func (b Bitset) CopyFrom(src Bitset) { copy(b, src) }

// Count returns the set's cardinality.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// And intersects b with x in place.
func (b Bitset) And(x Bitset) {
	for w := range b {
		b[w] &= x[w]
	}
}

// AndNot removes x's members from b in place.
func (b Bitset) AndNot(x Bitset) {
	for w := range b {
		b[w] &^= x[w]
	}
}

// AndInto writes x ∧ y into b (all three share a capacity).
func (b Bitset) AndInto(x, y Bitset) {
	for w := range b {
		b[w] = x[w] & y[w]
	}
}

// AndCount returns |x ∧ y| without materialising the intersection — the
// innermost operation of every candidate-evaluation loop.
func AndCount(x, y Bitset) int {
	n := 0
	for w, xw := range x {
		n += bits.OnesCount64(xw & y[w])
	}
	return n
}

// ForEach calls fn for every member in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for w, word := range b {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			fn(i)
			word &= word - 1
		}
	}
}
