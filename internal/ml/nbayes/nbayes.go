// Package nbayes implements the Naive Bayes classifier (NBC in the paper):
// class score n(l|x) = p(l) * prod_j p(a_j | l) with Laplace smoothing,
// normalised into a posterior p(l|x) = n(l|x) / sum_k n(k|x), exactly as
// section 3 of the paper describes.
package nbayes

import (
	"fmt"
	"math"

	"crossfeature/internal/ml"
)

// Learner configures Naive Bayes fitting.
type Learner struct {
	// Alpha is the additive smoothing constant (1 = Laplace).
	Alpha float64
}

// NewLearner returns a Laplace-smoothed learner.
func NewLearner() *Learner { return &Learner{Alpha: 1} }

// Name implements ml.Learner.
func (l *Learner) Name() string { return "NBC" }

// Model is a fitted Naive Bayes classifier for one target attribute. All
// fields are exported so models serialise with encoding/gob.
type Model struct {
	Target int
	// LogPrior[c] is log p(c) with smoothing.
	LogPrior []float64
	// LogCond[a][c][v] is log p(attr a = v | class c); nil for the target
	// attribute itself.
	LogCond [][][]float64
}

var (
	_ ml.Classifier = (*Model)(nil)
	_ ml.IntoProber = (*Model)(nil)
)

// Fit implements ml.Learner. Conditional count tables come from the
// dataset's column-major view: each attribute's tally walks two contiguous
// int32 columns instead of hopping across row-major rows.
func (l *Learner) Fit(ds *ml.Dataset, target int) (ml.Classifier, error) {
	return l.fitWith(ds, target, ds.Columns())
}

// fitWith fits with the columnar count kernel when cols is non-nil, or
// the naive row-major reference path otherwise. Counts are identical
// integers either way, so the derived log-probabilities are bit-identical
// (differential tests pin this).
func (l *Learner) fitWith(ds *ml.Dataset, target int, cols *ml.Columns) (ml.Classifier, error) {
	if target < 0 || target >= len(ds.Attrs) {
		return nil, fmt.Errorf("nbayes: target %d outside schema of %d attributes", target, len(ds.Attrs))
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("nbayes: empty dataset")
	}
	alpha := l.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	classes := ds.Attrs[target].Card
	m := &Model{
		Target:   target,
		LogPrior: make([]float64, classes),
		LogCond:  make([][][]float64, len(ds.Attrs)),
	}

	classCounts := ds.ClassCounts(target)
	total := float64(ds.Len())
	for c := 0; c < classes; c++ {
		m.LogPrior[c] = math.Log((float64(classCounts[c]) + alpha) / (total + alpha*float64(classes)))
	}

	var tcol []int32
	if cols != nil {
		tcol = cols.Cols[target]
	}
	for a := range ds.Attrs {
		if a == target {
			continue
		}
		card := ds.Attrs[a].Card
		counts := make([][]int, classes)
		for c := range counts {
			counts[c] = make([]int, card)
		}
		if cols != nil {
			for i, v := range cols.Cols[a] {
				counts[tcol[i]][v]++
			}
		} else {
			for _, row := range ds.X {
				counts[row[target]][row[a]]++
			}
		}
		tab := make([][]float64, classes)
		for c := 0; c < classes; c++ {
			tab[c] = make([]float64, card)
			den := float64(classCounts[c]) + alpha*float64(card)
			for v := 0; v < card; v++ {
				tab[c][v] = math.Log((float64(counts[c][v]) + alpha) / den)
			}
		}
		m.LogCond[a] = tab
	}
	return m, nil
}

// PredictProba implements ml.Classifier.
func (m *Model) PredictProba(x []int) []float64 {
	return m.PredictProbaInto(x, make([]float64, len(m.LogPrior)))
}

// PredictProbaInto implements ml.IntoProber, the allocation-free variant
// of PredictProba. The attribute loop is on the outside so each
// conditional table and event value is bounds-checked once rather than
// once per class; every class still accumulates its log terms in
// ascending attribute order, so the floating-point sums — and thus the
// returned probabilities — are bit-identical to the class-outer loop.
func (m *Model) PredictProbaInto(x []int, out []float64) []float64 {
	classes := len(m.LogPrior)
	out = out[:classes]
	copy(out, m.LogPrior)
	for a, tab := range m.LogCond {
		if tab == nil || a >= len(x) {
			continue
		}
		v := x[a]
		if v < 0 || len(tab) == 0 || v >= len(tab[0]) {
			continue // unseen value: contributes nothing
		}
		for c := 0; c < classes; c++ {
			out[c] += tab[c][v]
		}
	}
	// Softmax-normalise in log space.
	maxLog := math.Inf(-1)
	for _, v := range out {
		if v > maxLog {
			maxLog = v
		}
	}
	var sum float64
	for c, v := range out {
		out[c] = math.Exp(v - maxLog)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}
