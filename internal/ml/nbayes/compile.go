package nbayes

import (
	"math"

	"crossfeature/internal/ml"
)

// Compiled is the flat inference form of a Model: every conditional
// log-probability table is packed into one []float64 slab, laid out
// value-major so the per-class accumulation loop reads contiguously.
// log p(a=v | c) sits at flat[off[a] + v*classes + c]. A Compiled
// snapshot never observes later mutation of the source model.
type Compiled struct {
	logPrior []float64
	flat     []float64
	off      []int32 // per attribute block offset; -1 when no table
	card     []int32 // values per attribute; 0 when no table

	target  int
	classes int
}

var (
	_ ml.Classifier     = (*Compiled)(nil)
	_ ml.IntoProber     = (*Compiled)(nil)
	_ ml.ScoreKernel    = (*Compiled)(nil)
	_ ml.KernelCompiler = (*Model)(nil)
)

// Compile flattens the model's lookup tables into one slab. The slab
// holds the exact same float64 values as LogCond, added in the exact same
// order at prediction time, so the compiled posteriors are bit-identical
// to the reference (differential tests pin this).
func (m *Model) Compile() *Compiled {
	classes := len(m.LogPrior)
	c := &Compiled{
		logPrior: append([]float64(nil), m.LogPrior...),
		off:      make([]int32, len(m.LogCond)),
		card:     make([]int32, len(m.LogCond)),
		target:   m.Target,
		classes:  classes,
	}
	total := 0
	for _, tab := range m.LogCond {
		if len(tab) > 0 {
			total += len(tab[0]) * classes
		}
	}
	c.flat = make([]float64, 0, total)
	for a, tab := range m.LogCond {
		if len(tab) == 0 {
			// The target attribute (nil table) and degenerate empty tables
			// contribute nothing, exactly as the reference skip.
			c.off[a] = -1
			continue
		}
		card := len(tab[0])
		c.off[a] = int32(len(c.flat))
		c.card[a] = int32(card)
		for v := 0; v < card; v++ {
			for cl := 0; cl < classes; cl++ {
				c.flat = append(c.flat, tab[cl][v])
			}
		}
	}
	return c
}

// CompileKernel implements ml.KernelCompiler.
func (m *Model) CompileKernel() ml.ScoreKernel { return m.Compile() }

// PredictProba implements ml.Classifier.
func (c *Compiled) PredictProba(x []int) []float64 {
	return c.PredictProbaInto(x, make([]float64, c.classes))
}

// PredictProbaInto implements ml.IntoProber. The accumulation visits
// attributes in ascending order and classes in ascending order within
// each — the same float additions in the same order as the reference —
// but each attribute's contribution is one contiguous slab row.
func (c *Compiled) PredictProbaInto(x []int, out []float64) []float64 {
	classes := c.classes
	out = out[:classes]
	copy(out, c.logPrior)
	for a, off := range c.off {
		if off < 0 || a >= len(x) {
			continue
		}
		v := x[a]
		if v < 0 || v >= int(c.card[a]) {
			continue // unseen value: contributes nothing
		}
		row := c.flat[int(off)+v*classes : int(off)+(v+1)*classes]
		for cl := 0; cl < classes; cl++ {
			out[cl] += row[cl]
		}
	}
	// Softmax-normalise in log space, identically to the reference.
	maxLog := math.Inf(-1)
	for _, v := range out {
		if v > maxLog {
			maxLog = v
		}
	}
	var sum float64
	for cl, v := range out {
		out[cl] = math.Exp(v - maxLog)
		sum += out[cl]
	}
	for cl := range out {
		out[cl] /= sum
	}
	return out
}

// TrueScore implements ml.ScoreKernel. Naive Bayes has no shortcut to the
// true value's posterior — normalisation needs every class — so the full
// distribution is computed into scratch, which must have length >= the
// model's class count.
func (c *Compiled) TrueScore(x []int, v int, scratch []float64) (p float64, match bool) {
	out := c.PredictProbaInto(x, scratch)
	if v >= 0 && v < len(out) {
		p = out[v]
	}
	return p, ml.ArgMax(out) == v
}

// NumEntries reports the flattened table size (slab plus prior entries).
func (c *Compiled) NumEntries() int { return len(c.flat) + len(c.logPrior) }
