package nbayes

import (
	"math/rand"
	"reflect"
	"testing"

	"crossfeature/internal/ml"
)

// TestCompiledDifferential pins the flattened log-prob slab bit-identical
// to the nested-table reference on random datasets and probes.
func TestCompiledDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	configs := []*Learner{
		NewLearner(),
		{Alpha: 0.5},
		{Alpha: 2},
	}
	for trial := 0; trial < 40; trial++ {
		ds := randomDataset(rng)
		target := rng.Intn(len(ds.Attrs))
		l := configs[trial%len(configs)]
		c, err := l.Fit(ds, target)
		if err != nil {
			continue
		}
		model := c.(*Model)
		comp := model.Compile()
		classes := ds.Attrs[target].Card
		refBuf := make([]float64, classes)
		gotBuf := make([]float64, classes)
		scratch := make([]float64, classes)
		x := make([]int, len(ds.Attrs))
		for probe := 0; probe < 30; probe++ {
			for j, at := range ds.Attrs {
				x[j] = rng.Intn(at.Card+2) - 1
			}
			px := x
			if probe%7 == 0 {
				px = x[:rng.Intn(len(x)+1)]
			}
			ref := model.PredictProbaInto(px, refBuf)
			got := comp.PredictProbaInto(px, gotBuf)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("trial %d: distribution mismatch on %v: ref=%v got=%v", trial, px, ref, got)
			}
			for v := 0; v <= classes; v++ {
				wantP := 0.0
				if v < len(ref) {
					wantP = ref[v]
				}
				wantM := ml.ArgMax(ref) == v
				p, m := comp.TrueScore(px, v, scratch)
				if p != wantP || m != wantM {
					t.Fatalf("trial %d: TrueScore(%v, %d) = (%v,%v), want (%v,%v)",
						trial, px, v, p, m, wantP, wantM)
				}
			}
		}
	}
}
