package nbayes

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crossfeature/internal/ml"
)

func buildDataset(t *testing.T, cards []int, rows [][]int) *ml.Dataset {
	t.Helper()
	attrs := make([]ml.Attr, len(cards))
	for i, c := range cards {
		attrs[i] = ml.Attr{Name: "f", Card: c}
	}
	ds := ml.NewDataset(attrs)
	for _, r := range rows {
		if err := ds.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestHandComputedPosterior(t *testing.T) {
	// One binary input, binary class, alpha=1.
	// Data: (x=0,y=0) x3, (x=1,y=0) x1, (x=1,y=1) x2.
	rows := [][]int{{0, 0}, {0, 0}, {0, 0}, {1, 0}, {1, 1}, {1, 1}}
	ds := buildDataset(t, []int{2, 2}, rows)
	c, err := NewLearner().Fit(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	// p(y=0) = (4+1)/(6+2) = 5/8; p(y=1) = 3/8.
	// p(x=1|y=0) = (1+1)/(4+2) = 1/3; p(x=1|y=1) = (2+1)/(2+2) = 3/4.
	// score0 = 5/8 * 1/3 = 5/24; score1 = 3/8 * 3/4 = 9/32.
	// posterior(y=1|x=1) = (9/32)/(9/32 + 5/24) = 27/47.
	p := c.PredictProba([]int{1, 0})
	want := 27.0 / 47.0
	if math.Abs(p[1]-want) > 1e-9 {
		t.Errorf("posterior = %v, want p(1)=%v", p, want)
	}
}

func TestLearnsNoisyMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var rows [][]int
	for i := 0; i < 500; i++ {
		y := rng.Intn(3)
		x0 := y
		if rng.Float64() < 0.2 {
			x0 = rng.Intn(3)
		}
		x1 := (y + 1) % 3
		if rng.Float64() < 0.2 {
			x1 = rng.Intn(3)
		}
		rows = append(rows, []int{x0, x1, y})
	}
	ds := buildDataset(t, []int{3, 3, 3}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for y := 0; y < 3; y++ {
		if ml.Predict(c, []int{y, (y + 1) % 3, 0}) == y {
			correct++
		}
	}
	if correct != 3 {
		t.Errorf("clean prototypes classified %d/3", correct)
	}
}

func TestProbabilitiesAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var rows [][]int
	for i := 0; i < 100; i++ {
		rows = append(rows, []int{rng.Intn(4), rng.Intn(2), rng.Intn(3)})
	}
	ds := buildDataset(t, []int{4, 2, 3}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		p := c.PredictProba([]int{int(a % 4), int(b % 2), 0})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnseenValueDoesNotPanic(t *testing.T) {
	ds := buildDataset(t, []int{3, 2}, [][]int{{0, 0}, {1, 1}})
	c, err := NewLearner().Fit(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := c.PredictProba([]int{-1, 0})
	if math.Abs(p[0]+p[1]-1) > 1e-9 {
		t.Errorf("invalid input produced non-distribution %v", p)
	}
}

func TestTargetColumnIgnoredAtPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rows [][]int
	for i := 0; i < 200; i++ {
		x := rng.Intn(2)
		rows = append(rows, []int{x, x})
	}
	ds := buildDataset(t, []int{2, 2}, rows)
	c, err := NewLearner().Fit(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Changing the target slot of the input must not change the output.
	a := c.PredictProba([]int{1, 0})
	b := c.PredictProba([]int{1, 1})
	for i := range a {
		if a[i] != b[i] {
			t.Error("prediction depends on the target column of the input")
		}
	}
}

func TestFitErrors(t *testing.T) {
	ds := buildDataset(t, []int{2, 2}, [][]int{{0, 0}})
	if _, err := NewLearner().Fit(ds, 9); err == nil {
		t.Error("bad target accepted")
	}
	empty := ml.NewDataset([]ml.Attr{{Name: "a", Card: 2}})
	if _, err := NewLearner().Fit(empty, 0); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var rows [][]int
	for i := 0; i < 100; i++ {
		x := rng.Intn(3)
		rows = append(rows, []int{x, rng.Intn(2), x})
	}
	ds := buildDataset(t, []int{3, 2, 3}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.(*Model)); err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	x := []int{1, 1, 0}
	pa, pb := c.PredictProba(x), back.PredictProba(x)
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-12 {
			t.Fatal("gob round trip changed predictions")
		}
	}
}
