package nbayes

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"crossfeature/internal/ml"
)

// randomDataset builds a seeded random dataset with mixed cardinalities
// (see the c45 differential tests for the shape).
func randomDataset(rng *rand.Rand) *ml.Dataset {
	nAttrs := 3 + rng.Intn(9)
	attrs := make([]ml.Attr, nAttrs)
	for j := range attrs {
		card := 1 + rng.Intn(6)
		attrs[j] = ml.Attr{
			Name:       fmt.Sprintf("f%d", j),
			Card:       card,
			HasUnknown: card > 2 && rng.Intn(3) == 0,
		}
	}
	ds := ml.NewDataset(attrs)
	rows := 1 + rng.Intn(300)
	row := make([]int, nAttrs)
	for i := 0; i < rows; i++ {
		latent := rng.Intn(4)
		for j, at := range attrs {
			v := latent % at.Card
			if rng.Float64() < 0.3 {
				v = rng.Intn(at.Card)
			}
			row[j] = v
		}
		if err := ds.Add(row); err != nil {
			panic(err)
		}
	}
	return ds
}

// TestColumnarDifferential pins the columnar count kernel bit-identical to
// the naive row-major fit: identical log tables (exact float equality) and
// identical predictions.
func TestColumnarDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		ds := randomDataset(rng)
		target := rng.Intn(len(ds.Attrs))
		l := NewLearner()
		if trial%3 == 1 {
			l.Alpha = 0.5
		}

		ref, refErr := l.fitWith(ds, target, nil)
		fast, fastErr := l.fitWith(ds, target, ds.Columns())
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("trial %d: error mismatch: ref=%v fast=%v", trial, refErr, fastErr)
		}
		if refErr != nil {
			continue
		}
		if !reflect.DeepEqual(ref.(*Model), fast.(*Model)) {
			t.Fatalf("trial %d (target %d): columnar model differs from reference", trial, target)
		}
		x := make([]int, len(ds.Attrs))
		for probe := 0; probe < 20; probe++ {
			for j, at := range ds.Attrs {
				x[j] = rng.Intn(at.Card + 1)
			}
			if !reflect.DeepEqual(ref.PredictProba(x), fast.PredictProba(x)) {
				t.Fatalf("trial %d: prediction mismatch on %v", trial, x)
			}
		}
	}
}
