package ml

import (
	"math"
	"sort"
)

// This file implements the correlation-analysis direction of the paper's
// future work ("fewer number of models ... each model could be simplified
// with a reduced feature set ... approaches based on both correlation
// analysis and factor analysis"): information-theoretic measures between
// nominal features and a ranking that selects the most inter-correlated
// subset.

// MutualInformation computes I(f_i; f_j) in bits between two nominal
// attributes over the dataset.
func (d *Dataset) MutualInformation(i, j int) float64 {
	if i == j {
		return Entropy(d.ClassCounts(i))
	}
	ci, cj := d.Attrs[i].Card, d.Attrs[j].Card
	joint := make([]int, ci*cj)
	mi := make([]int, ci)
	mj := make([]int, cj)
	for _, row := range d.X {
		a, b := row[i], row[j]
		joint[a*cj+b]++
		mi[a]++
		mj[b]++
	}
	n := float64(d.Len())
	if n == 0 {
		return 0
	}
	var info float64
	for a := 0; a < ci; a++ {
		for b := 0; b < cj; b++ {
			c := joint[a*cj+b]
			if c == 0 {
				continue
			}
			pab := float64(c) / n
			pa := float64(mi[a]) / n
			pb := float64(mj[b]) / n
			info += pab * math.Log2(pab/(pa*pb))
		}
	}
	if info < 0 {
		return 0 // numerical noise
	}
	return info
}

// SymmetricUncertainty is the normalised mutual information
// 2*I(i;j) / (H(i)+H(j)) in [0,1]; 1 means the features determine each
// other, 0 means independence.
func (d *Dataset) SymmetricUncertainty(i, j int) float64 {
	hi := Entropy(d.ClassCounts(i))
	hj := Entropy(d.ClassCounts(j))
	if hi+hj == 0 {
		return 0
	}
	u := 2 * d.MutualInformation(i, j) / (hi + hj)
	if u > 1 {
		return 1
	}
	return u
}

// FeatureScore is one entry of a correlation ranking.
type FeatureScore struct {
	Index int
	Name  string
	Score float64
}

// RankByCorrelation ranks every feature by its mean symmetric uncertainty
// with all other features: features that are strongly predictable from
// (and predictive of) the rest of the vector rank high, exactly the
// features cross-feature analysis exploits. sample bounds the number of
// partner features examined per feature (0 = all), keeping the O(L^2)
// computation tractable for wide schemas.
func (d *Dataset) RankByCorrelation(sample int) []FeatureScore {
	l := len(d.Attrs)
	out := make([]FeatureScore, 0, l)
	for i := 0; i < l; i++ {
		partners := 0
		var sum float64
		step := 1
		if sample > 0 && l-1 > sample {
			step = (l - 1) / sample
			if step < 1 {
				step = 1
			}
		}
		for j := 0; j < l; j += step {
			if j == i {
				continue
			}
			sum += d.SymmetricUncertainty(i, j)
			partners++
		}
		score := 0.0
		if partners > 0 {
			score = sum / float64(partners)
		}
		out = append(out, FeatureScore{Index: i, Name: d.Attrs[i].Name, Score: score})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// SelectColumns builds a new dataset containing only the given attribute
// indices (in the given order).
func (d *Dataset) SelectColumns(idx []int) *Dataset {
	attrs := make([]Attr, len(idx))
	for k, i := range idx {
		attrs[k] = d.Attrs[i]
	}
	out := NewDataset(attrs)
	out.X = make([][]int, 0, d.Len())
	for _, row := range d.X {
		nr := make([]int, len(idx))
		for k, i := range idx {
			nr[k] = row[i]
		}
		out.X = append(out.X, nr)
	}
	return out
}
