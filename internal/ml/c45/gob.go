package c45

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// flatTree is the gob wire format: nodes flattened into an array with
// child indices, because encoding/gob refuses nil pointers inside the
// Children slices of the in-memory representation.
type flatTree struct {
	Target  int
	Classes int
	Nodes   []flatNode
}

type flatNode struct {
	Attr     int
	Counts   []int
	ChildVal []int32 // attribute values with a child subtree
	ChildIdx []int32 // index of that child in Nodes
	Card     int32   // cardinality of the split attribute (children slice length)
}

// GobEncode implements gob.GobEncoder.
func (t *Tree) GobEncode() ([]byte, error) {
	ft := flatTree{Target: t.Target, Classes: t.Classes}
	var flatten func(n *Node) int32
	flatten = func(n *Node) int32 {
		idx := int32(len(ft.Nodes))
		ft.Nodes = append(ft.Nodes, flatNode{Attr: n.Attr, Counts: n.Counts, Card: int32(len(n.Children))})
		for v, ch := range n.Children {
			if ch == nil {
				continue
			}
			ci := flatten(ch)
			ft.Nodes[idx].ChildVal = append(ft.Nodes[idx].ChildVal, int32(v))
			ft.Nodes[idx].ChildIdx = append(ft.Nodes[idx].ChildIdx, ci)
		}
		return idx
	}
	if t.Root != nil {
		flatten(t.Root)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ft); err != nil {
		return nil, fmt.Errorf("c45: encode tree: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(data []byte) error {
	var ft flatTree
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ft); err != nil {
		return fmt.Errorf("c45: decode tree: %w", err)
	}
	t.Target = ft.Target
	t.Classes = ft.Classes
	if len(ft.Nodes) == 0 {
		t.Root = nil
		return nil
	}
	nodes := make([]*Node, len(ft.Nodes))
	for i := range ft.Nodes {
		fn := &ft.Nodes[i]
		nodes[i] = &Node{Attr: fn.Attr, Counts: fn.Counts}
		if fn.Card > 0 {
			nodes[i].Children = make([]*Node, fn.Card)
		}
	}
	for i := range ft.Nodes {
		fn := &ft.Nodes[i]
		for k, v := range fn.ChildVal {
			ci := fn.ChildIdx[k]
			if int(v) >= len(nodes[i].Children) || int(ci) >= len(nodes) {
				return fmt.Errorf("c45: corrupt tree encoding at node %d", i)
			}
			nodes[i].Children[v] = nodes[ci]
		}
	}
	t.Root = nodes[0]
	return nil
}
