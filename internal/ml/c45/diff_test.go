package c45

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"crossfeature/internal/ml"
)

// randomDataset builds a seeded random dataset with a mix of cardinalities
// (including constant card-1 attributes and unknown-flagged ones) and
// latent structure so trees have real splits to find.
func randomDataset(rng *rand.Rand) *ml.Dataset {
	nAttrs := 3 + rng.Intn(9)
	attrs := make([]ml.Attr, nAttrs)
	for j := range attrs {
		card := 1 + rng.Intn(6)
		attrs[j] = ml.Attr{
			Name:       fmt.Sprintf("f%d", j),
			Card:       card,
			HasUnknown: card > 2 && rng.Intn(3) == 0,
		}
	}
	ds := ml.NewDataset(attrs)
	rows := 1 + rng.Intn(300)
	row := make([]int, nAttrs)
	for i := 0; i < rows; i++ {
		latent := rng.Intn(4)
		for j, at := range attrs {
			v := latent % at.Card
			if rng.Float64() < 0.3 {
				v = rng.Intn(at.Card)
			}
			row[j] = v
		}
		if err := ds.Add(row); err != nil {
			panic(err)
		}
	}
	return ds
}

// TestColumnarDifferential pins the columnar tree builder bit-identical to
// the naive row-major reference: same structure, same integer histograms,
// same predictions, across randomised datasets and learner settings.
func TestColumnarDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	configs := []*Learner{
		NewLearner(),
		{MinLeaf: 1, Prune: false},
		{MinLeaf: 5, Prune: true, CF: 0.1},
		{MinLeaf: 2, MaxDepth: 3, Prune: true, CF: 0.25},
		{MinLeaf: 2, Prune: true, CF: 0.25, HoldoutFrac: 1.0 / 3.0},
	}
	for trial := 0; trial < 40; trial++ {
		ds := randomDataset(rng)
		target := rng.Intn(len(ds.Attrs))
		l := configs[trial%len(configs)]

		ref, refErr := l.fitWith(ds, target, nil)
		fast, fastErr := l.fitWith(ds, target, ds.Columns())
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("trial %d: error mismatch: ref=%v fast=%v", trial, refErr, fastErr)
		}
		if refErr != nil {
			continue
		}
		refTree, fastTree := ref.(*Tree), fast.(*Tree)
		if !reflect.DeepEqual(refTree, fastTree) {
			t.Fatalf("trial %d (target %d, learner %+v): columnar tree differs from reference\nref:  %+v\nfast: %+v",
				trial, target, l, refTree.Root, fastTree.Root)
		}
		// Predictions must agree bit-for-bit too (including unseen branches).
		x := make([]int, len(ds.Attrs))
		for probe := 0; probe < 20; probe++ {
			for j, at := range ds.Attrs {
				x[j] = rng.Intn(at.Card + 1) // may exceed the schema range
			}
			if !reflect.DeepEqual(refTree.PredictProba(x), fastTree.PredictProba(x)) {
				t.Fatalf("trial %d: prediction mismatch on %v", trial, x)
			}
		}
	}
}
