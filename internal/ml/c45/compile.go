package c45

import "crossfeature/internal/ml"

// Compiled is the flat inference form of a Tree: every node lives in one
// contiguous array descended by index instead of pointer, child links are
// int32 indexes in a shared span table, and each node's Laplace-smoothed
// class distribution is precomputed into a single []float64 slab (the
// per-prediction LaplaceInto of the pointer walk becomes one lookup).
// A Compiled snapshot never observes later mutation of the source tree.
type Compiled struct {
	nodes []cnode
	// kids holds child node indexes, -1 for an absent branch; node n's
	// children occupy kids[n.kids : n.kids+n.card].
	kids []int32
	// dist is the distribution slab; node n's Laplace distribution is
	// dist[n.dist : n.dist+n.dlen].
	dist []float64

	target  int
	classes int
	maxDlen int
}

// cnode is one flattened tree node; 24 bytes, preorder layout.
type cnode struct {
	attr   int32 // split attribute, -1 for a leaf
	kids   int32 // offset of the children span in Compiled.kids
	card   int32 // children span length (the split attribute's cardinality)
	dist   int32 // offset of this node's distribution in Compiled.dist
	dlen   int32 // distribution length (the target's cardinality)
	argmax int32 // ml.ArgMax of the distribution, precomputed
}

var (
	_ ml.Classifier       = (*Compiled)(nil)
	_ ml.IntoProber       = (*Compiled)(nil)
	_ ml.ScoreKernel      = (*Compiled)(nil)
	_ ml.BatchScoreKernel = (*Compiled)(nil)
	_ ml.KernelCompiler   = (*Tree)(nil)
)

// Compile flattens the tree into its contiguous inference form. The
// compiled predictions are pinned bit-identical to the pointer walk by
// differential tests.
func (t *Tree) Compile() *Compiled {
	n := nodeCount(t.Root)
	c := &Compiled{
		nodes:   make([]cnode, 0, n),
		dist:    make([]float64, 0, n*t.Classes),
		target:  t.Target,
		classes: t.Classes,
	}
	if t.Root != nil {
		c.flatten(t.Root)
	}
	return c
}

// CompileKernel implements ml.KernelCompiler.
func (t *Tree) CompileKernel() ml.ScoreKernel { return t.Compile() }

// flatten appends n's subtree in preorder and returns n's index. The
// children span is reserved before recursing so each node's child indexes
// stay contiguous.
func (c *Compiled) flatten(n *Node) int32 {
	idx := int32(len(c.nodes))
	d := ml.Laplace(n.Counts)
	if len(d) > c.maxDlen {
		c.maxDlen = len(d)
	}
	c.nodes = append(c.nodes, cnode{
		attr:   -1,
		dist:   int32(len(c.dist)),
		dlen:   int32(len(d)),
		argmax: int32(ml.ArgMax(d)),
	})
	c.dist = append(c.dist, d...)
	if n.Attr >= 0 {
		off := int32(len(c.kids))
		c.nodes[idx].attr = int32(n.Attr)
		c.nodes[idx].kids = off
		c.nodes[idx].card = int32(len(n.Children))
		for range n.Children {
			c.kids = append(c.kids, -1)
		}
		for v, ch := range n.Children {
			if ch != nil {
				c.kids[off+int32(v)] = c.flatten(ch)
			}
		}
	}
	return idx
}

// descend walks the flat array with the exact fallback rules of
// Tree.PredictProbaInto: stop at a leaf, at a value outside the split's
// children, or at an absent branch, and answer from the deepest node
// reached.
func (c *Compiled) descend(x []int) *cnode {
	nd := &c.nodes[0]
	for nd.attr >= 0 {
		v := -1
		if int(nd.attr) < len(x) {
			v = x[nd.attr]
		}
		if v < 0 || v >= int(nd.card) {
			break
		}
		kid := c.kids[nd.kids+int32(v)]
		if kid < 0 {
			break
		}
		nd = &c.nodes[kid]
	}
	return nd
}

// TrueScore implements ml.ScoreKernel: one index-based descent, then two
// O(1) reads from the precomputed slab.
func (c *Compiled) TrueScore(x []int, v int, _ []float64) (p float64, match bool) {
	if len(c.nodes) == 0 {
		return 0, false
	}
	nd := c.descend(x)
	if v >= 0 && int32(v) < nd.dlen {
		p = c.dist[nd.dist+int32(v)]
	}
	return p, int32(v) == nd.argmax
}

// TrueScoreAll implements ml.BatchScoreKernel. Instead of one descent
// per row, the whole row set flows down the tree as a bitset: a branch's
// row set is its parent's ANDed with the split value's posting list, so
// each tree edge costs one word-wise intersection over the dataset
// instead of a node visit per covered row. Rows no branch claims — a
// value outside the split's children or an absent child — stop at that
// node, exactly the scalar descent's fallback, and every node answers
// for its stopped rows from the precomputed slab.
func (c *Compiled) TrueScoreAll(ds *ml.Dataset, target int, p []float64, match []bool) {
	cols := ds.Columns()
	n := cols.NumRows
	if len(c.nodes) == 0 {
		for i := 0; i < n; i++ {
			p[i], match[i] = 0, false
		}
		return
	}
	tcol := cols.Cols[target]
	emit := func(nd *cnode, rows ml.Bitset) {
		d := c.dist[nd.dist : nd.dist+nd.dlen]
		am := nd.argmax
		rows.ForEach(func(i int) {
			v := tcol[i]
			if int(v) < len(d) {
				p[i] = d[v]
			} else {
				p[i] = 0
			}
			match[i] = v == am
		})
	}
	// Two scratch bitsets per tree depth: one accumulating the rows that
	// stop at the current node, one carrying a branch's row set into the
	// recursion (reused by the next sibling once it returns).
	var stop, reach []ml.Bitset
	scratch := func(pool *[]ml.Bitset, d int) ml.Bitset {
		for len(*pool) <= d {
			*pool = append(*pool, ml.NewBitset(n))
		}
		return (*pool)[d]
	}
	var walk func(ni int32, rows ml.Bitset, depth int)
	walk = func(ni int32, rows ml.Bitset, depth int) {
		nd := &c.nodes[ni]
		if nd.attr < 0 || int(nd.attr) >= len(cols.Postings) {
			emit(nd, rows)
			return
		}
		post := cols.Postings[nd.attr]
		stopped := scratch(&stop, depth)
		stopped.CopyFrom(rows)
		for v := 0; v < int(nd.card); v++ {
			kid := c.kids[nd.kids+int32(v)]
			if kid < 0 || v >= len(post) {
				continue // rows carrying v (if any) stop here
			}
			br := scratch(&reach, depth)
			br.AndInto(rows, post[v])
			if br.Count() == 0 {
				continue
			}
			stopped.AndNot(br)
			walk(kid, br, depth+1)
		}
		emit(nd, stopped)
	}
	walk(0, ml.NewFullBitset(n), 0)
}

// PredictProba implements ml.Classifier.
func (c *Compiled) PredictProba(x []int) []float64 {
	return c.PredictProbaInto(x, make([]float64, c.maxDlen))
}

// PredictProbaInto implements ml.IntoProber by copying the reached node's
// precomputed distribution.
func (c *Compiled) PredictProbaInto(x []int, out []float64) []float64 {
	if len(c.nodes) == 0 {
		return out[:0]
	}
	nd := c.descend(x)
	out = out[:nd.dlen]
	copy(out, c.dist[nd.dist:nd.dist+nd.dlen])
	return out
}

// NumNodes reports the flattened node count.
func (c *Compiled) NumNodes() int { return len(c.nodes) }
