package c45

import (
	"math/rand"
	"reflect"
	"testing"

	"crossfeature/internal/ml"
)

// TestCompiledDifferential pins the flat compiled form bit-identical to
// the pointer-walking tree on random datasets and probes, including
// short, negative and out-of-range feature vectors.
func TestCompiledDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	configs := []*Learner{
		NewLearner(),
		{MinLeaf: 1, Prune: false},
		{MinLeaf: 5, Prune: true, CF: 0.1},
		{MinLeaf: 2, MaxDepth: 3, Prune: true, CF: 0.25},
		{MinLeaf: 2, Prune: true, CF: 0.25, HoldoutFrac: 1.0 / 3.0},
	}
	for trial := 0; trial < 60; trial++ {
		ds := randomDataset(rng)
		target := rng.Intn(len(ds.Attrs))
		l := configs[trial%len(configs)]
		c, err := l.Fit(ds, target)
		if err != nil {
			continue
		}
		tree := c.(*Tree)
		comp := tree.Compile()
		if comp.NumNodes() != tree.Size() {
			t.Fatalf("trial %d: compiled %d nodes, tree has %d", trial, comp.NumNodes(), tree.Size())
		}
		classes := ds.Attrs[target].Card
		refBuf := make([]float64, classes)
		gotBuf := make([]float64, classes)
		x := make([]int, len(ds.Attrs))
		for probe := 0; probe < 30; probe++ {
			for j, at := range ds.Attrs {
				x[j] = rng.Intn(at.Card+2) - 1 // may stray below/above the schema range
			}
			px := x
			if probe%7 == 0 {
				px = x[:rng.Intn(len(x)+1)] // short (degraded) rows
			}
			ref := tree.PredictProbaInto(px, refBuf)
			got := comp.PredictProbaInto(px, gotBuf)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("trial %d: distribution mismatch on %v: ref=%v got=%v", trial, px, ref, got)
			}
			for v := 0; v <= classes; v++ { // one past the class range on purpose
				wantP := 0.0
				if v < len(ref) {
					wantP = ref[v]
				}
				wantM := ml.ArgMax(ref) == v
				p, m := comp.TrueScore(px, v, nil)
				if p != wantP || m != wantM {
					t.Fatalf("trial %d: TrueScore(%v, %d) = (%v,%v), want (%v,%v)",
						trial, px, v, p, m, wantP, wantM)
				}
			}
		}

		// The batch kernel must agree with the per-row descent on every
		// training row (valid rows, including guard/unknown buckets).
		n := ds.Len()
		p := make([]float64, n)
		match := make([]bool, n)
		comp.TrueScoreAll(ds, target, p, match)
		for r := 0; r < n; r++ {
			ref := tree.PredictProbaInto(ds.X[r], refBuf)
			v := ds.X[r][target]
			wantP := 0.0
			if v < len(ref) {
				wantP = ref[v]
			}
			wantM := ml.ArgMax(ref) == v
			if p[r] != wantP || match[r] != wantM {
				t.Fatalf("trial %d row %d: batch = (%v,%v), want (%v,%v)",
					trial, r, p[r], match[r], wantP, wantM)
			}
		}
	}
}
