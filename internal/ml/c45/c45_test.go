package c45

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"crossfeature/internal/ml"
)

// buildDataset constructs a dataset from rows with inferred cardinalities.
func buildDataset(t *testing.T, names []string, cards []int, rows [][]int) *ml.Dataset {
	t.Helper()
	attrs := make([]ml.Attr, len(names))
	for i := range names {
		attrs[i] = ml.Attr{Name: names[i], Card: cards[i]}
	}
	ds := ml.NewDataset(attrs)
	for _, r := range rows {
		if err := ds.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestLearnsDeterministicMapping(t *testing.T) {
	// y = x0 (x1 is noise).
	rng := rand.New(rand.NewSource(1))
	var rows [][]int
	for i := 0; i < 200; i++ {
		x0 := rng.Intn(3)
		rows = append(rows, []int{x0, rng.Intn(4), x0})
	}
	ds := buildDataset(t, []string{"x0", "noise", "y"}, []int{3, 4, 3}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if got := ml.Predict(c, []int{v, 1, 0}); got != v {
			t.Errorf("predict(x0=%d) = %d, want %d", v, got, v)
		}
	}
}

func TestPrefersInformativeAttribute(t *testing.T) {
	// y = x0 exactly; x1 is correlated but imperfect. The root split must
	// be on x0.
	rng := rand.New(rand.NewSource(2))
	var rows [][]int
	for i := 0; i < 300; i++ {
		y := rng.Intn(2)
		x1 := y
		if rng.Float64() < 0.3 {
			x1 = 1 - y
		}
		rows = append(rows, []int{y, x1, y})
	}
	ds := buildDataset(t, []string{"x0", "x1", "y"}, []int{2, 2, 2}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	tree := c.(*Tree)
	if tree.Root.Attr != 0 {
		t.Errorf("root split on attr %d, want 0", tree.Root.Attr)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rows [][]int
	for i := 0; i < 100; i++ {
		rows = append(rows, []int{rng.Intn(3), rng.Intn(3), rng.Intn(3)})
	}
	ds := buildDataset(t, []string{"a", "b", "y"}, []int{3, 3, 3}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		p := c.PredictProba([]int{int(a % 3), int(b % 3), 0})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnseenValueFallsBackGracefully(t *testing.T) {
	rows := [][]int{{0, 0, 0}, {0, 0, 0}, {1, 0, 1}, {1, 0, 1}}
	ds := buildDataset(t, []string{"x", "pad", "y"}, []int{3, 2, 2}, rows)
	l := NewLearner()
	l.MinLeaf = 1
	c, err := l.Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// x=2 never appeared; prediction must come from the fallback counts.
	p := c.PredictProba([]int{2, 0, 0})
	if math.Abs(p[0]+p[1]-1) > 1e-9 {
		t.Errorf("fallback distribution invalid: %v", p)
	}
	if p[0] != p[1] {
		t.Errorf("balanced fallback should be uniform, got %v", p)
	}
}

func TestPruningCollapsesNoiseSplits(t *testing.T) {
	// Target is pure noise: a pruned tree should be (close to) a stump.
	rng := rand.New(rand.NewSource(4))
	var rows [][]int
	for i := 0; i < 200; i++ {
		rows = append(rows, []int{rng.Intn(4), rng.Intn(4), rng.Intn(2)})
	}
	ds := buildDataset(t, []string{"a", "b", "y"}, []int{4, 4, 2}, rows)
	unpruned := &Learner{MinLeaf: 2, Prune: false}
	pruned := &Learner{MinLeaf: 2, Prune: true, CF: 0.25}
	cu, err := unpruned.Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := pruned.Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.(*Tree).Size() > cu.(*Tree).Size() {
		t.Errorf("pruned tree (%d nodes) larger than unpruned (%d)",
			cp.(*Tree).Size(), cu.(*Tree).Size())
	}
}

func TestHoldoutPruningKillsSpuriousModels(t *testing.T) {
	// The target is independent of the inputs, but with a temporal drift
	// that in-sample trees love to memorise. Holdout REP must collapse the
	// tree to (near) a stump whose predictions are the marginal.
	rng := rand.New(rand.NewSource(5))
	var rows [][]int
	for i := 0; i < 300; i++ {
		regime := i / 75 // temporal regimes
		rows = append(rows, []int{(regime + rng.Intn(2)) % 4, rng.Intn(4), rng.Intn(3)})
	}
	ds := buildDataset(t, []string{"drift", "noise", "y"}, []int{4, 4, 3}, rows)
	l := &Learner{MinLeaf: 2, Prune: true, CF: 0.25, HoldoutFrac: 1.0 / 3.0}
	c, err := l.Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := &Learner{MinLeaf: 2, Prune: false}
	cu, err := base.Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	pruned, unpruned := c.(*Tree).Size(), cu.(*Tree).Size()
	if pruned > unpruned {
		t.Errorf("holdout pruning grew the tree: %d of %d nodes", pruned, unpruned)
	}
	// Predictions on fresh inputs should be close to the class marginal.
	p := c.PredictProba([]int{0, 0, 0})
	for cls, v := range p {
		if v < 0.15 || v > 0.55 {
			t.Errorf("class %d probability %v far from the 1/3 marginal", cls, v)
		}
	}
}

func TestMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var rows [][]int
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		rows = append(rows, []int{a, b, a ^ b})
	}
	ds := buildDataset(t, []string{"a", "b", "y"}, []int{2, 2, 2}, rows)
	l := &Learner{MinLeaf: 2, MaxDepth: 1}
	c, err := l.Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.(*Tree).Depth(); d > 1 {
		t.Errorf("depth %d exceeds MaxDepth 1", d)
	}
}

func TestFitErrors(t *testing.T) {
	ds := buildDataset(t, []string{"a", "y"}, []int{2, 2}, [][]int{{0, 0}})
	if _, err := NewLearner().Fit(ds, 5); err == nil {
		t.Error("out-of-range target accepted")
	}
	empty := ml.NewDataset([]ml.Attr{{Name: "a", Card: 2}})
	if _, err := NewLearner().Fit(empty, 0); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rows [][]int
	for i := 0; i < 150; i++ {
		x := rng.Intn(3)
		rows = append(rows, []int{x, rng.Intn(5), (x + 1) % 3})
	}
	ds := buildDataset(t, []string{"x", "n", "y"}, []int{3, 5, 3}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.(*Tree)); err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := []int{rng.Intn(3), rng.Intn(5), rng.Intn(3)}
		a := c.PredictProba(x)
		b := back.PredictProba(x)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("round-tripped tree differs on %v: %v vs %v", x, a, b)
			}
		}
	}
}

func TestInvNormSanity(t *testing.T) {
	// invNorm(0.75) should be about 0.6745.
	if got := invNorm(0.75); math.Abs(got-0.6745) > 1e-3 {
		t.Errorf("invNorm(0.75) = %v", got)
	}
	if got := invNorm(0.5); math.Abs(got) > 1e-9 {
		t.Errorf("invNorm(0.5) = %v, want 0", got)
	}
	if !math.IsInf(invNorm(0), -1) || !math.IsInf(invNorm(1), 1) {
		t.Error("invNorm boundary behaviour wrong")
	}
}

func TestPessimisticErrors(t *testing.T) {
	// More observed errors -> more pessimistic errors; zero observed still
	// yields a positive bound.
	z := zFromCF(0.25)
	e0 := pessimisticErrors(100, 0, z)
	e5 := pessimisticErrors(100, 5, z)
	if e0 <= 0 {
		t.Errorf("pessimistic errors with 0 observed = %v, want > 0", e0)
	}
	if e5 <= e0 {
		t.Errorf("monotonicity violated: %v <= %v", e5, e0)
	}
}

func TestRender(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var rows [][]int
	for i := 0; i < 100; i++ {
		x := rng.Intn(2)
		rows = append(rows, []int{x, rng.Intn(2), x})
	}
	ds := buildDataset(t, []string{"x", "n", "y"}, []int{2, 2, 2}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"x", "n", "y"}
	out := c.(*Tree).Render(func(i int) string { return names[i] }, 0)
	if !strings.Contains(out, "tree for target y") || !strings.Contains(out, "x = 0") {
		t.Errorf("render output wrong:\n%s", out)
	}
	if got := c.(*Tree).Render(nil, 1); !strings.Contains(got, "f2") {
		t.Errorf("default naming wrong:\n%s", got)
	}
}
