// Package c45 implements a C4.5-style decision-tree learner (Quinlan):
// multiway splits on nominal attributes chosen by gain ratio, recursive
// partitioning with minimum-leaf stopping, pessimistic error-based
// subtree pruning, and Laplace-smoothed class distributions at the leaves
// (the probability output Algorithm 3 of the paper requires).
package c45

import (
	"fmt"
	"math"

	"crossfeature/internal/ml"
)

// Learner configures tree induction.
type Learner struct {
	// MinLeaf is the minimum number of instances a split branch must carry
	// (C4.5's -m, default 2).
	MinLeaf int
	// MaxDepth caps tree depth; 0 means unbounded.
	MaxDepth int
	// Prune enables pessimistic error pruning.
	Prune bool
	// CF is the pruning confidence (C4.5's -c, default 0.25).
	CF float64
	// HoldoutFrac, when positive, withholds the trailing fraction of the
	// training instances as a validation block: the tree is grown on the
	// leading block, pruned with reduced-error pruning against the
	// validation block, and leaf distributions are recalibrated on all
	// data afterwards. The split is temporal (contiguous), which matters
	// for autocorrelated audit traces: a shuffled split would leak the
	// trace's local regime into validation and defeat the pruning.
	HoldoutFrac float64
}

// NewLearner returns a learner with Quinlan's default settings.
func NewLearner() *Learner {
	return &Learner{MinLeaf: 2, Prune: true, CF: 0.25}
}

// Name implements ml.Learner.
func (l *Learner) Name() string { return "C4.5" }

// Node is one tree node. Exported fields keep the model gob-serialisable.
type Node struct {
	// Attr is the split attribute index, or -1 for a leaf.
	Attr int
	// Children maps each value of Attr to a subtree; nil entries fall back
	// to this node's own counts.
	Children []*Node
	// Counts is the class histogram of the training instances that reached
	// this node; kept on internal nodes too for unseen-branch fallback.
	Counts []int
}

// Tree is a fitted decision tree for one target attribute.
type Tree struct {
	Root    *Node
	Target  int
	Classes int
}

var (
	_ ml.Classifier = (*Tree)(nil)
	_ ml.IntoProber = (*Tree)(nil)
)

// Fit implements ml.Learner. Tree growth runs on the dataset's shared
// column-major view: every candidate attribute's contingency counts for a
// node come from one pass over the node's rows, and child partitions reuse
// the winning attribute's histogram instead of re-tallying.
func (l *Learner) Fit(ds *ml.Dataset, target int) (ml.Classifier, error) {
	return l.fitWith(ds, target, ds.Columns())
}

// fitWith grows the tree with the columnar count kernels when cols is
// non-nil, or with the naive row-major reference path otherwise. The two
// paths are pinned bit-identical by differential tests.
func (l *Learner) fitWith(ds *ml.Dataset, target int, cols *ml.Columns) (ml.Classifier, error) {
	if target < 0 || target >= len(ds.Attrs) {
		return nil, fmt.Errorf("c45: target %d outside schema of %d attributes", target, len(ds.Attrs))
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("c45: empty dataset")
	}
	minLeaf := l.MinLeaf
	if minLeaf < 1 {
		minLeaf = 2
	}
	cf := l.CF
	if cf <= 0 || cf >= 1 {
		cf = 0.25
	}
	b := &builder{
		ds:      ds,
		target:  target,
		classes: ds.Attrs[target].Card,
		minLeaf: minLeaf,
		maxDept: l.MaxDepth,
	}
	rows := make([]int, ds.Len())
	for i := range rows {
		rows[i] = i
	}
	growRows := rows
	var valRows []int
	if l.HoldoutFrac > 0 && l.HoldoutFrac < 1 {
		cut := int(float64(len(rows)) * (1 - l.HoldoutFrac))
		if cut >= 1 && cut < len(rows) {
			growRows, valRows = rows[:cut], rows[cut:]
		}
	}
	used := make([]bool, len(ds.Attrs))
	used[target] = true
	var root *Node
	if cols != nil {
		cb := newColBuilder(b, cols)
		root = cb.build(growRows, used, 0, cb.tally(growRows))
	} else {
		root = b.build(growRows, used, 0)
	}
	if l.Prune {
		z := zFromCF(cf)
		pruneNode(root, z)
	}
	if len(valRows) > 0 {
		b.reducedErrorPrune(root, valRows)
		b.recalibrate(root, rows)
	}
	return &Tree{Root: root, Target: target, Classes: b.classes}, nil
}

// reducedErrorPrune collapses subtrees that do not beat a leaf on the
// held-out validation rows; it returns the subtree's validation errors.
func (b *builder) reducedErrorPrune(n *Node, valRows []int) int {
	leafMaj := ml.Majority(n.Counts)
	leafErrs := 0
	for _, i := range valRows {
		if b.ds.X[i][b.target] != leafMaj {
			leafErrs++
		}
	}
	if n.Attr < 0 {
		return leafErrs
	}
	// Partition validation rows by the split attribute.
	card := b.ds.Attrs[n.Attr].Card
	parts := make([][]int, card)
	for _, i := range valRows {
		v := b.ds.X[i][n.Attr]
		parts[v] = append(parts[v], i)
	}
	subErrs := 0
	for v, ch := range n.Children {
		if ch == nil {
			// Missing branch falls back to this node's majority.
			for _, i := range parts[v] {
				if b.ds.X[i][b.target] != leafMaj {
					subErrs++
				}
			}
			continue
		}
		subErrs += b.reducedErrorPrune(ch, parts[v])
	}
	if leafErrs <= subErrs {
		n.Attr = -1
		n.Children = nil
		return leafErrs
	}
	return subErrs
}

// recalibrate rebuilds every node's class histogram from the given rows so
// leaf probabilities reflect the full training data under the pruned
// structure.
func (b *builder) recalibrate(root *Node, rows []int) {
	clearCounts(root, b.classes)
	for _, i := range rows {
		x := b.ds.X[i]
		cls := x[b.target]
		n := root
		for {
			n.Counts[cls]++
			if n.Attr < 0 {
				break
			}
			v := x[n.Attr]
			if v < 0 || v >= len(n.Children) || n.Children[v] == nil {
				break
			}
			n = n.Children[v]
		}
	}
}

func clearCounts(n *Node, classes int) {
	if n == nil {
		return
	}
	n.Counts = make([]int, classes)
	for _, ch := range n.Children {
		clearCounts(ch, classes)
	}
}

type builder struct {
	ds      *ml.Dataset
	target  int
	classes int
	minLeaf int
	maxDept int
}

// counts tallies target classes over the given rows.
func (b *builder) counts(rows []int) []int {
	c := make([]int, b.classes)
	for _, i := range rows {
		c[b.ds.X[i][b.target]]++
	}
	return c
}

// build grows a subtree over rows; used marks attributes already split on
// along this path (nominal attributes are split at most once per path).
func (b *builder) build(rows []int, used []bool, depth int) *Node {
	counts := b.counts(rows)
	n := &Node{Attr: -1, Counts: counts}
	if pure(counts) || len(rows) < 2*b.minLeaf {
		return n
	}
	if b.maxDept > 0 && depth >= b.maxDept {
		return n
	}
	attr, gainOK := b.bestSplit(rows, used, counts)
	if !gainOK {
		return n
	}
	card := b.ds.Attrs[attr].Card
	parts := make([][]int, card)
	for _, i := range rows {
		v := b.ds.X[i][attr]
		parts[v] = append(parts[v], i)
	}
	n.Attr = attr
	n.Children = make([]*Node, card)
	childUsed := append([]bool(nil), used...)
	childUsed[attr] = true
	for v, part := range parts {
		if len(part) == 0 {
			continue // fall back to this node's counts at prediction time
		}
		n.Children[v] = b.build(part, childUsed, depth+1)
	}
	return n
}

// bestSplit selects the attribute with the highest gain ratio among those
// with above-average information gain (Quinlan's gain-ratio guard).
func (b *builder) bestSplit(rows []int, used []bool, parentCounts []int) (int, bool) {
	baseH := ml.Entropy(parentCounts)
	total := float64(len(rows))

	type cand struct {
		attr  int
		gain  float64
		ratio float64
	}
	var cands []cand
	for a := range b.ds.Attrs {
		if used[a] {
			continue
		}
		card := b.ds.Attrs[a].Card
		if card < 2 {
			continue
		}
		// Joint histogram: per attribute value, class counts.
		sub := make([][]int, card)
		sizes := make([]int, card)
		for _, i := range rows {
			v := b.ds.X[i][a]
			if sub[v] == nil {
				sub[v] = make([]int, b.classes)
			}
			sub[v][b.ds.X[i][b.target]]++
			sizes[v]++
		}
		nonEmpty := 0
		var condH, splitH float64
		for v := 0; v < card; v++ {
			if sizes[v] == 0 {
				continue
			}
			nonEmpty++
			p := float64(sizes[v]) / total
			condH += p * ml.Entropy(sub[v])
			splitH -= p * math.Log2(p)
		}
		if nonEmpty < 2 {
			continue
		}
		gain := baseH - condH
		if gain <= 1e-12 || splitH <= 1e-12 {
			continue
		}
		cands = append(cands, cand{attr: a, gain: gain, ratio: gain / splitH})
	}
	if len(cands) == 0 {
		return 0, false
	}
	var avgGain float64
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))
	best := -1
	bestRatio := math.Inf(-1)
	for _, c := range cands {
		if c.gain+1e-12 < avgGain {
			continue
		}
		if c.ratio > bestRatio {
			bestRatio = c.ratio
			best = c.attr
		}
	}
	if best < 0 {
		// All below average (ties); take the best ratio outright.
		for _, c := range cands {
			if c.ratio > bestRatio {
				bestRatio = c.ratio
				best = c.attr
			}
		}
	}
	return best, best >= 0
}

func pure(counts []int) bool {
	seen := false
	for _, c := range counts {
		if c > 0 {
			if seen {
				return false
			}
			seen = true
		}
	}
	return true
}

// --- pruning -----------------------------------------------------------------

// zFromCF converts a pruning confidence into the standard normal deviate
// used by the pessimistic error estimate (C4.5 uses the one-sided upper
// confidence limit of the binomial error rate).
func zFromCF(cf float64) float64 {
	// Inverse standard normal CDF at (1 - cf) via the Acklam rational
	// approximation; cf in (0,1).
	return invNorm(1 - cf)
}

// invNorm is Acklam's inverse-normal-CDF approximation (|err| < 1.15e-9).
func invNorm(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// pessimisticErrors is the upper-confidence estimate of the number of
// errors among n instances with e observed errors.
func pessimisticErrors(n, e int, z float64) float64 {
	if n == 0 {
		return 0
	}
	nf, f := float64(n), float64(e)/float64(n)
	z2 := z * z
	num := f + z2/(2*nf) + z*math.Sqrt(f/nf-f*f/nf+z2/(4*nf*nf))
	return nf * (num / (1 + z2/nf))
}

// pruneNode collapses subtrees whose pessimistic error is no better than a
// leaf's; it returns the subtree's pessimistic error estimate.
func pruneNode(n *Node, z float64) float64 {
	total, errs := leafError(n.Counts)
	leafErr := pessimisticErrors(total, errs, z)
	if n.Attr < 0 {
		return leafErr
	}
	var subErr float64
	for _, ch := range n.Children {
		if ch == nil {
			continue
		}
		subErr += pruneNode(ch, z)
	}
	if leafErr <= subErr+1e-9 {
		n.Attr = -1
		n.Children = nil
		return leafErr
	}
	return subErr
}

// leafError returns (instances, misclassifications) if the node predicted
// its majority class.
func leafError(counts []int) (int, int) {
	var total, best int
	for _, c := range counts {
		total += c
		if c > best {
			best = c
		}
	}
	return total, total - best
}

// --- prediction ------------------------------------------------------------------

// PredictProba implements ml.Classifier: walk the tree, fall back to the
// deepest reached node's counts when a branch is missing, and smooth with
// Laplace's rule.
func (t *Tree) PredictProba(x []int) []float64 {
	return t.PredictProbaInto(x, make([]float64, len(t.Root.Counts)))
}

// PredictProbaInto implements ml.IntoProber: the tree walk is
// allocation-free and the leaf's Laplace distribution is written into
// out (length >= the target's cardinality).
func (t *Tree) PredictProbaInto(x []int, out []float64) []float64 {
	n := t.Root
	for n.Attr >= 0 {
		v := -1
		if n.Attr < len(x) {
			v = x[n.Attr]
		}
		if v < 0 || v >= len(n.Children) || n.Children[v] == nil {
			break
		}
		n = n.Children[v]
	}
	return ml.LaplaceInto(n.Counts, out)
}

// Size reports the number of nodes in the tree (for tests and reports).
func (t *Tree) Size() int { return nodeCount(t.Root) }

func nodeCount(n *Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, ch := range n.Children {
		total += nodeCount(ch)
	}
	return total
}

// Depth reports the maximum depth of the tree.
func (t *Tree) Depth() int { return nodeDepth(t.Root) }

func nodeDepth(n *Node) int {
	if n == nil || n.Attr < 0 {
		return 0
	}
	best := 0
	for _, ch := range n.Children {
		if d := nodeDepth(ch); d > best {
			best = d
		}
	}
	return best + 1
}
