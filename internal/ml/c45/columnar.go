package c45

import (
	"math"

	"crossfeature/internal/ml"
)

// colBuilder grows a tree on the dataset's column-major view. It produces
// exactly the tree the row-major builder produces — identical structure
// and identical integer histograms, hence identical floats downstream —
// but tallies every candidate attribute of a node from contiguous columns
// into one reused scratch table, derives each child's class histogram from
// the winning attribute's counts instead of re-scanning the child's rows,
// and partitions a node's rows into one preallocated backing array.
type colBuilder struct {
	*builder
	cols *ml.Columns
	// tcol is the target attribute's column.
	tcol []int32
	// cnt is the scratch contingency table (maxCard × classes), reused
	// across every attribute and node of the fit.
	cnt []int
	// cands is the candidate scratch reused across nodes.
	cands []splitCand
}

type splitCand struct {
	attr  int
	gain  float64
	ratio float64
}

func newColBuilder(b *builder, cols *ml.Columns) *colBuilder {
	maxCard := 1
	for _, at := range b.ds.Attrs {
		if at.Card > maxCard {
			maxCard = at.Card
		}
	}
	return &colBuilder{
		builder: b,
		cols:    cols,
		tcol:    cols.Cols[b.target],
		cnt:     make([]int, maxCard*b.classes),
	}
}

// tally computes the class histogram of rows from the target column.
func (b *colBuilder) tally(rows []int) []int {
	c := make([]int, b.classes)
	for _, i := range rows {
		c[b.tcol[i]]++
	}
	return c
}

// build mirrors builder.build with the node's class histogram passed down
// from the parent's split counts rather than re-tallied. The used mask is
// toggled in place around the recursion instead of copied per node.
func (b *colBuilder) build(rows []int, used []bool, depth int, counts []int) *Node {
	n := &Node{Attr: -1, Counts: counts}
	if pure(counts) || len(rows) < 2*b.minLeaf {
		return n
	}
	if b.maxDept > 0 && depth >= b.maxDept {
		return n
	}
	attr, gainOK := b.bestSplit(rows, used, counts)
	if !gainOK {
		return n
	}
	card := b.ds.Attrs[attr].Card
	classes := b.classes
	col := b.cols.Cols[attr]
	tcol := b.tcol
	// One pass tallies the winner's joint histogram; its per-value blocks
	// become the children's class histograms and its sums the partition
	// sizes.
	cnt := make([]int, card*classes)
	for _, i := range rows {
		cnt[int(col[i])*classes+int(tcol[i])]++
	}
	starts := make([]int, card+1)
	for v := 0; v < card; v++ {
		size := 0
		for _, c := range cnt[v*classes : (v+1)*classes] {
			size += c
		}
		starts[v+1] = starts[v] + size
	}
	// Partition rows value-major into one backing array, preserving the
	// original row order within each value (the order the naive builder's
	// per-value appends produce).
	next := make([]int, card)
	copy(next, starts[:card])
	backing := make([]int, len(rows))
	for _, i := range rows {
		v := int(col[i])
		backing[next[v]] = i
		next[v]++
	}
	n.Attr = attr
	n.Children = make([]*Node, card)
	used[attr] = true
	for v := 0; v < card; v++ {
		part := backing[starts[v]:starts[v+1]]
		if len(part) == 0 {
			continue // fall back to this node's counts at prediction time
		}
		n.Children[v] = b.build(part, used, depth+1, cnt[v*classes:(v+1)*classes:(v+1)*classes])
	}
	used[attr] = false
	return n
}

// bestSplit is builder.bestSplit on columns: every candidate attribute's
// joint histogram comes from one walk of its column (and the target's)
// into the shared scratch table.
func (b *colBuilder) bestSplit(rows []int, used []bool, parentCounts []int) (int, bool) {
	baseH := ml.Entropy(parentCounts)
	total := float64(len(rows))
	classes := b.classes
	tcol := b.tcol

	cands := b.cands[:0]
	for a := range b.ds.Attrs {
		if used[a] {
			continue
		}
		card := b.ds.Attrs[a].Card
		if card < 2 {
			continue
		}
		cnt := b.cnt[:card*classes]
		for w := range cnt {
			cnt[w] = 0
		}
		col := b.cols.Cols[a]
		for _, i := range rows {
			cnt[int(col[i])*classes+int(tcol[i])]++
		}
		nonEmpty := 0
		var condH, splitH float64
		for v := 0; v < card; v++ {
			sub := cnt[v*classes : (v+1)*classes]
			size := 0
			for _, c := range sub {
				size += c
			}
			if size == 0 {
				continue
			}
			nonEmpty++
			p := float64(size) / total
			condH += p * ml.Entropy(sub)
			splitH -= p * math.Log2(p)
		}
		if nonEmpty < 2 {
			continue
		}
		gain := baseH - condH
		if gain <= 1e-12 || splitH <= 1e-12 {
			continue
		}
		cands = append(cands, splitCand{attr: a, gain: gain, ratio: gain / splitH})
	}
	b.cands = cands
	if len(cands) == 0 {
		return 0, false
	}
	var avgGain float64
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))
	best := -1
	bestRatio := math.Inf(-1)
	for _, c := range cands {
		if c.gain+1e-12 < avgGain {
			continue
		}
		if c.ratio > bestRatio {
			bestRatio = c.ratio
			best = c.attr
		}
	}
	if best < 0 {
		// All below average (ties); take the best ratio outright.
		for _, c := range cands {
			if c.ratio > bestRatio {
				bestRatio = c.ratio
				best = c.attr
			}
		}
	}
	return best, best >= 0
}
