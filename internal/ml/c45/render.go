package c45

import (
	"fmt"
	"strings"

	"crossfeature/internal/ml"
)

// Render pretty-prints the tree for human inspection — the paper's point
// that cross-feature sub-models "can be examined by human experts".
// attrName maps attribute indices to names (nil falls back to f<i>);
// maxDepth caps the printed depth (0 = everything).
func (t *Tree) Render(attrName func(int) string, maxDepth int) string {
	if attrName == nil {
		attrName = func(i int) string { return fmt.Sprintf("f%d", i) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tree for target %s (%d nodes, depth %d)\n",
		attrName(t.Target), t.Size(), t.Depth())
	renderNode(&b, t.Root, attrName, 0, maxDepth)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, attrName func(int) string, depth, maxDepth int) {
	if n == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	if n.Attr < 0 || (maxDepth > 0 && depth >= maxDepth) {
		probs := ml.Laplace(n.Counts)
		best := ml.ArgMax(probs)
		fmt.Fprintf(b, "%s-> class %d (p=%.2f, n=%d)\n", indent, best, probs[best], sum(n.Counts))
		return
	}
	for v, ch := range n.Children {
		fmt.Fprintf(b, "%s%s = %d:\n", indent, attrName(n.Attr), v)
		if ch == nil {
			probs := ml.Laplace(n.Counts)
			best := ml.ArgMax(probs)
			fmt.Fprintf(b, "%s  -> class %d (fallback, p=%.2f)\n", indent, best, probs[best])
			continue
		}
		renderNode(b, ch, attrName, depth+1, maxDepth)
	}
}

func sum(counts []int) int {
	s := 0
	for _, c := range counts {
		s += c
	}
	return s
}
