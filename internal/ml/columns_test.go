package ml

import (
	"math/rand"
	"sync"
	"testing"
)

func testDataset(t *testing.T, rows int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(rows) + 5))
	attrs := []Attr{
		{Name: "a", Card: 3},
		{Name: "b", Card: 5, HasUnknown: true},
		{Name: "c", Card: 2},
		{Name: "d", Card: 7},
	}
	ds := NewDataset(attrs)
	row := make([]int, len(attrs))
	for i := 0; i < rows; i++ {
		for j, at := range attrs {
			row[j] = rng.Intn(at.Card)
		}
		if err := ds.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// TestColumnsMatchesRows checks the column-major view against the
// row-major truth: every column value and every posting-set membership.
func TestColumnsMatchesRows(t *testing.T) {
	for _, rows := range []int{0, 1, 63, 64, 65, 200} {
		ds := testDataset(t, rows)
		cols := ds.Columns()
		if cols.NumRows != rows {
			t.Fatalf("rows=%d: NumRows=%d", rows, cols.NumRows)
		}
		for a, at := range ds.Attrs {
			if len(cols.Cols[a]) != rows || len(cols.Postings[a]) != at.Card {
				t.Fatalf("rows=%d attr=%d: bad view shape", rows, a)
			}
			for i, row := range ds.X {
				if int(cols.Cols[a][i]) != row[a] {
					t.Fatalf("rows=%d: Cols[%d][%d]=%d, want %d", rows, a, i, cols.Cols[a][i], row[a])
				}
			}
			for v := 0; v < at.Card; v++ {
				want := 0
				for i, row := range ds.X {
					member := row[a] == v
					if member {
						want++
					}
					if cols.Postings[a][v].Contains(i) != member {
						t.Fatalf("rows=%d: posting (%d,%d) membership of row %d wrong", rows, a, v, i)
					}
				}
				if got := cols.Postings[a][v].Count(); got != want {
					t.Fatalf("rows=%d: posting (%d,%d) count %d, want %d", rows, a, v, got, want)
				}
			}
		}
	}
}

// TestColumnsCachedAndInvalidated checks the view is built once, shared,
// and rebuilt after a mutation through Add/AddOwned.
func TestColumnsCachedAndInvalidated(t *testing.T) {
	ds := testDataset(t, 50)
	c1 := ds.Columns()
	if c2 := ds.Columns(); c2 != c1 {
		t.Fatal("second Columns call did not return the cached view")
	}
	if err := ds.Add([]int{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	c3 := ds.Columns()
	if c3 == c1 {
		t.Fatal("Columns view not rebuilt after Add")
	}
	if c3.NumRows != 51 || !c3.Postings[0][1].Contains(50) {
		t.Fatal("rebuilt view does not include the appended row")
	}
	if err := ds.AddOwned([]int{2, 2, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if c4 := ds.Columns(); c4 == c3 || c4.NumRows != 52 {
		t.Fatal("Columns view not rebuilt after AddOwned")
	}
}

// TestColumnsConcurrent hammers Columns from many goroutines (run under
// -race): all callers must observe one identical view.
func TestColumnsConcurrent(t *testing.T) {
	ds := testDataset(t, 500)
	var wg sync.WaitGroup
	views := make([]*Columns, 16)
	for g := range views {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			views[g] = ds.Columns()
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(views); g++ {
		if views[g] != views[0] {
			t.Fatal("concurrent Columns calls returned different views")
		}
	}
}

// TestAddCopiesRow is the regression test for the Add aliasing bug: a
// caller reusing its row buffer must not corrupt earlier instances.
func TestAddCopiesRow(t *testing.T) {
	ds := NewDataset([]Attr{{Name: "a", Card: 4}, {Name: "b", Card: 4}})
	buf := []int{1, 2}
	if err := ds.Add(buf); err != nil {
		t.Fatal(err)
	}
	buf[0], buf[1] = 3, 3
	if err := ds.Add(buf); err != nil {
		t.Fatal(err)
	}
	if ds.X[0][0] != 1 || ds.X[0][1] != 2 {
		t.Fatalf("Add aliased the caller's buffer: first row is %v, want [1 2]", ds.X[0])
	}
	if ds.X[1][0] != 3 || ds.X[1][1] != 3 {
		t.Fatalf("second row is %v, want [3 3]", ds.X[1])
	}
}

// TestAddOwnedTransfersOwnership documents AddOwned's no-copy contract.
func TestAddOwnedTransfersOwnership(t *testing.T) {
	ds := NewDataset([]Attr{{Name: "a", Card: 4}})
	row := []int{2}
	if err := ds.AddOwned(row); err != nil {
		t.Fatal(err)
	}
	if &ds.X[0][0] != &row[0] {
		t.Fatal("AddOwned copied the row; it must take ownership without copying")
	}
	if err := ds.AddOwned([]int{9}); err == nil {
		t.Fatal("AddOwned accepted an out-of-range value")
	}
}
