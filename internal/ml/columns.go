package ml

// Columns is a read-only column-major view of a Dataset: one contiguous
// []int32 per attribute plus per-(attribute,value) posting bitsets. The
// three base learners' count kernels run on this layout — contingency
// tallies walk one cache-friendly column instead of hopping across
// row-major [][]int, and RIPPER's candidate evaluation reduces to
// AND+popcount over posting sets. A view is immutable once built and is
// shared across the L concurrent Fit calls of core.Train.
type Columns struct {
	// NumRows is the row count the view was built from; a dataset grown
	// afterwards gets a fresh view on the next Columns call.
	NumRows int
	// Cols[a][i] equals Dataset.X[i][a].
	Cols [][]int32
	// Postings[a][v] is the set of rows where attribute a takes value v.
	Postings [][]Bitset
}

// Columns returns the dataset's column-major view, building it on first
// use. The build is guarded by a mutex so concurrent learner fits share a
// single construction; callers must treat both the dataset rows and the
// returned view as read-only while they hold it. Mutating the dataset
// through Add/AddOwned invalidates the cached view.
func (d *Dataset) Columns() *Columns {
	d.colMu.Lock()
	defer d.colMu.Unlock()
	if d.colView != nil && d.colView.NumRows == len(d.X) {
		return d.colView
	}
	d.colView = buildColumns(d)
	return d.colView
}

// invalidateColumns drops the cached view after a mutation.
func (d *Dataset) invalidateColumns() {
	d.colMu.Lock()
	d.colView = nil
	d.colMu.Unlock()
}

func buildColumns(d *Dataset) *Columns {
	n := len(d.X)
	c := &Columns{
		NumRows:  n,
		Cols:     make([][]int32, len(d.Attrs)),
		Postings: make([][]Bitset, len(d.Attrs)),
	}
	// One flat backing array per kind keeps the per-attribute slices
	// contiguous and the build allocation count independent of the schema
	// width.
	var totalCard int
	for _, at := range d.Attrs {
		totalCard += at.Card
	}
	colBack := make([]int32, len(d.Attrs)*n)
	words := (n + 63) / 64
	postBack := make([]uint64, totalCard*words)
	postOff := 0
	for a, at := range d.Attrs {
		col := colBack[a*n : (a+1)*n : (a+1)*n]
		posts := make([]Bitset, at.Card)
		for v := range posts {
			posts[v] = Bitset(postBack[postOff : postOff+words : postOff+words])
			postOff += words
		}
		for i, row := range d.X {
			v := row[a]
			col[i] = int32(v)
			posts[v].Set(i)
		}
		c.Cols[a] = col
		c.Postings[a] = posts
	}
	return c
}
