package ml

import (
	"math/rand"
	"testing"
)

// TestBitsetAgainstMap drives the bitset through random operations and
// checks every result against a map-of-ints reference.
func TestBitsetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 63, 64, 65, 129, 1000} {
		a, b := NewBitset(n), NewBitset(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				ma[i] = true
			}
			if rng.Intn(3) == 0 {
				b.Set(i)
				mb[i] = true
			}
		}
		if a.Count() != len(ma) || b.Count() != len(mb) {
			t.Fatalf("n=%d: Count mismatch", n)
		}
		wantAnd := 0
		for i := range ma {
			if mb[i] {
				wantAnd++
			}
		}
		if got := AndCount(a, b); got != wantAnd {
			t.Fatalf("n=%d: AndCount=%d, want %d", n, got, wantAnd)
		}
		inter := NewBitset(n)
		inter.AndInto(a, b)
		if inter.Count() != wantAnd {
			t.Fatalf("n=%d: AndInto count=%d, want %d", n, inter.Count(), wantAnd)
		}
		seen := 0
		prev := -1
		inter.ForEach(func(i int) {
			if i <= prev {
				t.Fatalf("n=%d: ForEach out of order (%d after %d)", n, i, prev)
			}
			prev = i
			if !(ma[i] && mb[i]) {
				t.Fatalf("n=%d: ForEach yielded non-member %d", n, i)
			}
			seen++
		})
		if seen != wantAnd {
			t.Fatalf("n=%d: ForEach visited %d, want %d", n, seen, wantAnd)
		}
		// AndNot against the reference.
		diff := NewBitset(n)
		diff.CopyFrom(a)
		diff.AndNot(b)
		wantDiff := 0
		for i := range ma {
			if !mb[i] {
				wantDiff++
			}
		}
		if diff.Count() != wantDiff {
			t.Fatalf("n=%d: AndNot count=%d, want %d", n, diff.Count(), wantDiff)
		}
		// In-place And.
		a.And(b)
		if a.Count() != wantAnd {
			t.Fatalf("n=%d: And count=%d, want %d", n, a.Count(), wantAnd)
		}
		a.Clear()
		if a.Count() != 0 {
			t.Fatalf("n=%d: Clear left %d members", n, a.Count())
		}
	}
}

// TestNewFullBitset checks the tail-masking of the all-members
// constructor.
func TestNewFullBitset(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		b := NewFullBitset(n)
		if b.Count() != n {
			t.Fatalf("n=%d: Count=%d", n, b.Count())
		}
		for i := 0; i < n; i++ {
			if !b.Contains(i) {
				t.Fatalf("n=%d: missing %d", n, i)
			}
		}
	}
}
