package ml

// ScoreKernel is the contract of a compiled, flat-form inference kernel.
// Cross-feature scoring only ever needs two things from a sub-model per
// event — the probability assigned to the feature's true value and
// whether that value is the argmax prediction — so a kernel can skip
// materialising the full class distribution (a decision tree, for
// example, serves both from precomputed per-leaf slabs in O(depth)).
type ScoreKernel interface {
	// TrueScore returns the probability the model assigns to class v of
	// its target attribute for event x, and whether v is the argmax
	// prediction (first index on ties, as ml.ArgMax). Both results must be
	// bit-identical to deriving them from the source model's
	// PredictProbaInto. scratch must have length >= the target attribute's
	// cardinality and may be clobbered. v must be non-negative; a class
	// index at or beyond the model's class count yields probability 0.
	TrueScore(x []int, v int, scratch []float64) (p float64, match bool)
}

// KernelCompiler is implemented by classifiers that can compile
// themselves into a flat ScoreKernel. Compilation is pure: the returned
// kernel snapshots the model and never observes later mutation.
type KernelCompiler interface {
	CompileKernel() ScoreKernel
}

// BatchScoreKernel is an optional ScoreKernel extension that scores a
// whole dataset through its columnar view in one call, for kernels whose
// evaluation vectorises over rows (RIPPER's condition matrix reduces to
// AND+popcount over posting bitsets).
type BatchScoreKernel interface {
	ScoreKernel
	// TrueScoreAll fills p[r] and match[r] for every row r of ds, where
	// the true value of row r is ds.X[r][target]. Results must be
	// bit-identical to calling TrueScore(ds.X[r], ds.X[r][target], ...)
	// per row. ds must satisfy its own schema (Validate), and p and match
	// must have length ds.Len().
	TrueScoreAll(ds *Dataset, target int, p []float64, match []bool)
}

// DatasetOf wraps an existing schema and row block as a Dataset without
// copying or validating — the adapter batch scorers use to run a slice of
// already-transformed rows through a Dataset-shaped API. The rows are
// shared, not copied, and callers asserting schema validity should run
// Validate themselves.
func DatasetOf(attrs []Attr, rows [][]int) *Dataset {
	return &Dataset{Attrs: attrs, X: rows}
}
