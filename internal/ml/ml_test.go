package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDatasetAddValidates(t *testing.T) {
	ds := NewDataset([]Attr{{Name: "a", Card: 2}, {Name: "b", Card: 3}})
	if err := ds.Add([]int{1, 2}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if err := ds.Add([]int{1}); err == nil {
		t.Error("short row accepted")
	}
	if err := ds.Add([]int{2, 0}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if err := ds.Add([]int{0, -1}); err == nil {
		t.Error("negative value accepted")
	}
	if ds.Len() != 1 {
		t.Errorf("Len = %d, want 1", ds.Len())
	}
}

func TestDatasetValidate(t *testing.T) {
	ds := NewDataset([]Attr{{Name: "a", Card: 2}})
	ds.X = append(ds.X, []int{5}) // corrupt directly
	if err := ds.Validate(); err == nil {
		t.Error("Validate accepted a corrupt row")
	}
}

func TestClassCounts(t *testing.T) {
	ds := NewDataset([]Attr{{Name: "a", Card: 2}, {Name: "y", Card: 3}})
	for _, r := range [][]int{{0, 0}, {1, 2}, {0, 2}, {1, 1}} {
		if err := ds.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	got := ds.ClassCounts(1)
	want := []int{1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ClassCounts = %v, want %v", got, want)
			break
		}
	}
}

func TestEntropy(t *testing.T) {
	if e := Entropy([]int{5, 0}); e != 0 {
		t.Errorf("pure entropy = %v", e)
	}
	if e := Entropy([]int{4, 4}); math.Abs(e-1) > 1e-12 {
		t.Errorf("balanced binary entropy = %v, want 1", e)
	}
	if e := Entropy(nil); e != 0 {
		t.Errorf("empty entropy = %v", e)
	}
	if e := Entropy([]int{2, 2, 2, 2}); math.Abs(e-2) > 1e-12 {
		t.Errorf("uniform 4-class entropy = %v, want 2", e)
	}
}

func TestLaplace(t *testing.T) {
	p := Laplace([]int{3, 0})
	if math.Abs(p[0]-0.8) > 1e-12 || math.Abs(p[1]-0.2) > 1e-12 {
		t.Errorf("Laplace([3 0]) = %v", p)
	}
}

func TestArgMaxAndMajority(t *testing.T) {
	if ArgMax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Error("ArgMax wrong")
	}
	if ArgMax([]float64{0.5, 0.5}) != 0 {
		t.Error("ArgMax tie should pick first")
	}
	if Majority([]int{1, 5, 2}) != 1 {
		t.Error("Majority wrong")
	}
}

func TestSubsetSharesRows(t *testing.T) {
	ds := NewDataset([]Attr{{Name: "a", Card: 3}})
	for i := 0; i < 3; i++ {
		if err := ds.Add([]int{i}); err != nil {
			t.Fatal(err)
		}
	}
	sub := ds.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.X[0][0] != 2 || sub.X[1][0] != 0 {
		t.Errorf("Subset = %v", sub.X)
	}
}

// Property: Laplace output is a probability distribution.
func TestQuickLaplaceIsDistribution(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		p := Laplace(counts)
		var sum float64
		for _, v := range p {
			if v <= 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: entropy is bounded by log2(k) and non-negative.
func TestQuickEntropyBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		nonzero := 0
		for i, v := range raw {
			counts[i] = int(v)
			if v > 0 {
				nonzero++
			}
		}
		e := Entropy(counts)
		if e < 0 {
			return false
		}
		if nonzero == 0 {
			return e == 0
		}
		return e <= math.Log2(float64(nonzero))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
