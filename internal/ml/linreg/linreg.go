// Package linreg implements multiple linear regression with ridge
// regularisation, the paper's proposed extension of cross-feature analysis
// to continuous features (section 3): predict feature f_i from the
// remaining features and measure deviation by the log distance
// |log(C_i(x) / f_i(x))|.
package linreg

import (
	"fmt"
	"math"
)

// Model is a fitted linear predictor y = Weights . x + Bias for one target
// column of a continuous feature matrix.
type Model struct {
	Target  int
	Weights []float64 // one per input column; Weights[Target] is zero
	Bias    float64
}

// Fit solves the ridge-regularised least squares problem predicting column
// target of rows from the remaining columns. lambda > 0 keeps the normal
// equations well conditioned when features are collinear or constant.
func Fit(rows [][]float64, target int, lambda float64) (*Model, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("linreg: empty data")
	}
	d := len(rows[0])
	if target < 0 || target >= d {
		return nil, fmt.Errorf("linreg: target %d outside %d columns", target, d)
	}
	if lambda <= 0 {
		lambda = 1e-6
	}
	// Design matrix columns: all features except target, plus intercept.
	cols := make([]int, 0, d-1)
	for j := 0; j < d; j++ {
		if j != target {
			cols = append(cols, j)
		}
	}
	p := len(cols) + 1 // + intercept

	// Normal equations: (X'X + lambda I) w = X'y, built incrementally.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	xi := make([]float64, p)
	for _, row := range rows {
		if len(row) != d {
			return nil, fmt.Errorf("linreg: ragged row of %d values, want %d", len(row), d)
		}
		for k, j := range cols {
			xi[k] = row[j]
		}
		xi[p-1] = 1
		y := row[target]
		for a := 0; a < p; a++ {
			xty[a] += xi[a] * y
			for b := a; b < p; b++ {
				xtx[a][b] += xi[a] * xi[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
		if a < p-1 { // do not penalise the intercept
			xtx[a][a] += lambda
		}
	}
	w, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}
	m := &Model{Target: target, Weights: make([]float64, d)}
	for k, j := range cols {
		m.Weights[j] = w[k]
	}
	m.Bias = w[p-1]
	return m, nil
}

// Predict evaluates the linear model on a full feature row (the target
// column is ignored).
func (m *Model) Predict(row []float64) float64 {
	y := m.Bias
	for j, w := range m.Weights {
		if j == m.Target || j >= len(row) {
			continue
		}
		y += w * row[j]
	}
	return y
}

// LogDistance is the paper's deviation measure |log(pred/actual)|. Both
// values are shifted by one to tolerate the zero-heavy count features; the
// result is capped to keep a single wild feature from dominating a score.
func (m *Model) LogDistance(row []float64) float64 {
	pred := m.Predict(row)
	actual := row[m.Target]
	const maxDist = 10.0
	p := math.Abs(pred) + 1
	a := math.Abs(actual) + 1
	d := math.Abs(math.Log(p / a))
	if d > maxDist {
		return maxDist
	}
	return d
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("linreg: singular system at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}
