package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRecoversLinearFunction(t *testing.T) {
	// y = 2*x0 - 3*x1 + 5, exactly.
	rng := rand.New(rand.NewSource(1))
	var rows [][]float64
	for i := 0; i < 200; i++ {
		x0, x1 := rng.Float64()*10, rng.Float64()*10
		rows = append(rows, []float64{x0, x1, 2*x0 - 3*x1 + 5})
	}
	m, err := Fit(rows, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-2) > 1e-4 || math.Abs(m.Weights[1]+3) > 1e-4 || math.Abs(m.Bias-5) > 1e-3 {
		t.Errorf("recovered w=%v b=%v, want [2 -3] 5", m.Weights, m.Bias)
	}
	row := []float64{4, 2, 0}
	want := 2*4.0 - 3*2.0 + 5
	if got := m.Predict(row); math.Abs(got-want) > 1e-3 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestTargetColumnExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var rows [][]float64
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		rows = append(rows, []float64{x, 3 * x})
	}
	m, err := Fit(rows, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights[1] != 0 {
		t.Errorf("target weight = %v, want 0", m.Weights[1])
	}
	// Changing the target slot of the input must not change the output.
	if m.Predict([]float64{2, 0}) != m.Predict([]float64{2, 999}) {
		t.Error("prediction depends on the target column")
	}
}

func TestRidgeHandlesConstantColumn(t *testing.T) {
	// A constant input column makes plain least squares singular; ridge
	// must still fit.
	rng := rand.New(rand.NewSource(3))
	var rows [][]float64
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		rows = append(rows, []float64{x, 7, 4 * x})
	}
	m, err := Fit(rows, 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-4) > 1e-2 {
		t.Errorf("weight on informative column = %v, want 4", m.Weights[0])
	}
}

func TestLogDistance(t *testing.T) {
	m := &Model{Target: 1, Weights: []float64{1, 0}}
	// Perfect prediction: distance 0.
	if d := m.LogDistance([]float64{3, 3}); math.Abs(d) > 1e-12 {
		t.Errorf("perfect prediction distance = %v", d)
	}
	// Off prediction: positive, capped.
	if d := m.LogDistance([]float64{1e9, 0}); d != 10 {
		t.Errorf("extreme distance = %v, want capped 10", d)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 0, 1); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Fit([][]float64{{1, 2}}, 5, 1); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, 0, 1); err == nil {
		t.Error("ragged data accepted")
	}
}

// Property: log distance is always non-negative and bounded by the cap.
func TestQuickLogDistanceBounds(t *testing.T) {
	m := &Model{Target: 0, Weights: []float64{0, 1.5}, Bias: 0.5}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		d := m.LogDistance([]float64{a, b})
		return d >= 0 && d <= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveSingularErrors(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := solve(a, b); err == nil {
		t.Error("singular system solved without error")
	}
}
