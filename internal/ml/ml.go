// Package ml provides the shared machine-learning core used by the
// cross-feature analysis framework: a discrete (nominal) dataset
// representation, the Learner/Classifier contracts that every base
// classifier (C4.5, RIPPER, Naive Bayes) satisfies, and common
// information-theoretic utilities.
package ml

import (
	"fmt"
	"math"
	"sync"
)

// Attr describes one nominal attribute: its name and cardinality (values
// are encoded as integers in [0, Card)).
type Attr struct {
	Name string
	Card int
	// HasUnknown marks an attribute whose highest value (Card-1) encodes
	// "value unknown" — e.g. the discretiser's bucket for NaN readings from
	// a degraded audit trail. Scoring layers treat that value as missing
	// (the attribute's sub-model is skipped) rather than as evidence.
	HasUnknown bool
}

// Missing reports whether v encodes a missing/unknown reading of this
// attribute: any out-of-range value, or the dedicated unknown class when
// the attribute has one.
func (a Attr) Missing(v int) bool {
	if v < 0 || v >= a.Card {
		return true
	}
	return a.HasUnknown && v == a.Card-1
}

// Dataset is a table of discrete-valued instances. Rows in X hold one
// value per attribute.
type Dataset struct {
	Attrs []Attr
	X     [][]int

	// colMu guards colView, the lazily built column-major view shared
	// read-only across concurrent learner fits (see Columns).
	colMu   sync.Mutex
	colView *Columns
}

// NewDataset builds an empty dataset with the given attribute schema.
func NewDataset(attrs []Attr) *Dataset {
	return &Dataset{Attrs: append([]Attr(nil), attrs...)}
}

// Add appends an instance, validating its shape and value ranges. The row
// is copied, so callers may reuse their buffer for the next instance.
func (d *Dataset) Add(row []int) error {
	if err := d.checkRow(row); err != nil {
		return err
	}
	d.X = append(d.X, append([]int(nil), row...))
	d.invalidateColumns()
	return nil
}

// AddOwned appends an instance without copying: ownership of row transfers
// to the dataset, and the caller must not modify it afterwards. Use it when
// the row was freshly allocated anyway (e.g. a discretiser transform) to
// avoid Add's defensive copy.
func (d *Dataset) AddOwned(row []int) error {
	if err := d.checkRow(row); err != nil {
		return err
	}
	d.X = append(d.X, row)
	d.invalidateColumns()
	return nil
}

func (d *Dataset) checkRow(row []int) error {
	if len(row) != len(d.Attrs) {
		return fmt.Errorf("ml: row has %d values, schema has %d attributes", len(row), len(d.Attrs))
	}
	for j, v := range row {
		if v < 0 || v >= d.Attrs[j].Card {
			return fmt.Errorf("ml: value %d out of range [0,%d) for attribute %q", v, d.Attrs[j].Card, d.Attrs[j].Name)
		}
	}
	return nil
}

// Len reports the number of instances.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks every row against the schema.
func (d *Dataset) Validate() error {
	for i, row := range d.X {
		if len(row) != len(d.Attrs) {
			return fmt.Errorf("ml: row %d has %d values, schema has %d attributes", i, len(row), len(d.Attrs))
		}
		for j, v := range row {
			if v < 0 || v >= d.Attrs[j].Card {
				return fmt.Errorf("ml: row %d value %d out of range for attribute %q", i, v, d.Attrs[j].Name)
			}
		}
	}
	return nil
}

// ClassCounts tallies the values of attribute target across rows.
func (d *Dataset) ClassCounts(target int) []int {
	counts := make([]int, d.Attrs[target].Card)
	for _, row := range d.X {
		counts[row[target]]++
	}
	return counts
}

// Classifier predicts a distribution over the classes of one target
// attribute from a full feature vector (the target column, if present in
// the vector, is ignored by construction: learners never condition on it).
type Classifier interface {
	// PredictProba returns a probability for each class of the target
	// attribute; the slice length equals the target's cardinality and the
	// entries sum to 1.
	PredictProba(x []int) []float64
}

// Learner fits a Classifier that predicts attribute target of ds from the
// remaining attributes.
type Learner interface {
	Fit(ds *Dataset, target int) (Classifier, error)
	// Name identifies the algorithm for reports ("C4.5", "RIPPER", "NBC").
	Name() string
}

// IntoProber is an optional Classifier extension for allocation-free
// scoring: PredictProbaInto writes the class distribution into out —
// which must have length >= the target attribute's cardinality — and
// returns the filled prefix. The values must be identical to what
// PredictProba returns. Cross-feature scoring evaluates ~L sub-models
// per event, so the per-call allocation of PredictProba dominates the
// hot path; all three base classifiers implement this.
type IntoProber interface {
	PredictProbaInto(x []int, out []float64) []float64
}

// ProbaInto calls c's PredictProbaInto when implemented, falling back to
// the allocating PredictProba otherwise.
func ProbaInto(c Classifier, x []int, out []float64) []float64 {
	if p, ok := c.(IntoProber); ok {
		return p.PredictProbaInto(x, out)
	}
	return c.PredictProba(x)
}

// Predict returns the argmax class of a classifier's distribution.
func Predict(c Classifier, x []int) int {
	return ArgMax(c.PredictProba(x))
}

// ArgMax returns the index of the largest value (first on ties).
func ArgMax(p []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range p {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Entropy computes the Shannon entropy (bits) of a count vector.
func Entropy(counts []int) float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Laplace converts a count vector to Laplace-smoothed probabilities.
func Laplace(counts []int) []float64 {
	return LaplaceInto(counts, make([]float64, len(counts)))
}

// LaplaceInto is Laplace writing into out, which must have length >=
// len(counts); it returns the filled prefix.
func LaplaceInto(counts []int, out []float64) []float64 {
	k := len(counts)
	var total int
	for _, c := range counts {
		total += c
	}
	out = out[:k]
	den := float64(total + k)
	for i, c := range counts {
		out[i] = (float64(c) + 1) / den
	}
	return out
}

// Majority returns the most frequent class (first on ties).
func Majority(counts []int) int {
	best, bi := -1, 0
	for i, c := range counts {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

// Subset returns a dataset view containing the selected row indices. The
// underlying rows are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Attrs: d.Attrs, X: make([][]int, 0, len(idx))}
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
	}
	return out
}
