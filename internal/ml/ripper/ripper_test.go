package ripper

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"crossfeature/internal/ml"
)

func buildDataset(t *testing.T, names []string, cards []int, rows [][]int) *ml.Dataset {
	t.Helper()
	attrs := make([]ml.Attr, len(names))
	for i := range names {
		attrs[i] = ml.Attr{Name: names[i], Card: cards[i]}
	}
	ds := ml.NewDataset(attrs)
	for _, r := range rows {
		if err := ds.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestLearnsSimpleRule(t *testing.T) {
	// y = 1 iff x0 == 2, with a rare positive class so RIPPER rules on it.
	rng := rand.New(rand.NewSource(1))
	var rows [][]int
	for i := 0; i < 400; i++ {
		x0 := rng.Intn(4)
		y := 0
		if x0 == 2 {
			y = 1
		}
		rows = append(rows, []int{x0, rng.Intn(3), y})
	}
	ds := buildDataset(t, []string{"x0", "noise", "y"}, []int{4, 3, 2}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		want := 0
		if v == 2 {
			want = 1
		}
		if got := ml.Predict(c, []int{v, 0, 0}); got != want {
			t.Errorf("predict(x0=%d) = %d, want %d", v, got, want)
		}
	}
	rs := c.(*RuleSet)
	if rs.NumRules() == 0 {
		t.Error("no rules induced")
	}
}

func TestLearnsConjunction(t *testing.T) {
	// y = 1 iff x0 == 1 AND x1 == 1.
	rng := rand.New(rand.NewSource(2))
	var rows [][]int
	for i := 0; i < 600; i++ {
		a, b := rng.Intn(3), rng.Intn(3)
		y := 0
		if a == 1 && b == 1 {
			y = 1
		}
		rows = append(rows, []int{a, b, y})
	}
	ds := buildDataset(t, []string{"a", "b", "y"}, []int{3, 3, 2}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			want := 0
			if a == 1 && b == 1 {
				want = 1
			}
			if ml.Predict(c, []int{a, b, 0}) != want {
				errs++
			}
		}
	}
	if errs > 0 {
		t.Errorf("%d of 9 input combinations misclassified", errs)
	}
}

func TestDefaultRuleIsMajority(t *testing.T) {
	// Pure noise: the learner should fall back to the majority class.
	rng := rand.New(rand.NewSource(3))
	var rows [][]int
	for i := 0; i < 300; i++ {
		y := 0
		if rng.Float64() < 0.2 {
			y = 1
		}
		rows = append(rows, []int{rng.Intn(4), y})
	}
	ds := buildDataset(t, []string{"noise", "y"}, []int{4, 2}, rows)
	c, err := NewLearner().Fit(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for v := 0; v < 4; v++ {
		if ml.Predict(c, []int{v, 0}) != 0 {
			wrong++
		}
	}
	if wrong > 1 {
		t.Errorf("noise inputs predicted minority class %d/4 times", wrong)
	}
}

func TestProbabilitiesAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var rows [][]int
	for i := 0; i < 200; i++ {
		rows = append(rows, []int{rng.Intn(3), rng.Intn(3), rng.Intn(3)})
	}
	ds := buildDataset(t, []string{"a", "b", "y"}, []int{3, 3, 3}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		p := c.PredictProba([]int{int(a % 3), int(b % 3), 0})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{Conds: []Cond{{Attr: 0, Val: 1}, {Attr: 2, Val: 3}}}
	if !r.Matches([]int{1, 9, 3}) {
		t.Error("matching instance rejected")
	}
	if r.Matches([]int{1, 9, 2}) {
		t.Error("non-matching instance accepted")
	}
	if r.Matches([]int{1}) {
		t.Error("short instance accepted")
	}
}

func TestFirstMatchSemantics(t *testing.T) {
	rs := &RuleSet{
		Classes: 2,
		Rules: []Rule{
			{Conds: []Cond{{Attr: 0, Val: 0}}, Class: 1, Counts: []int{0, 10}},
			{Conds: nil, Class: 0, Counts: []int{10, 0}}, // catch-all
		},
		Default: []int{5, 5},
	}
	if got := ml.Predict(rs, []int{0}); got != 1 {
		t.Errorf("first rule should win, got class %d", got)
	}
	if got := ml.Predict(rs, []int{1}); got != 0 {
		t.Errorf("catch-all should fire, got class %d", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var rows [][]int
	for i := 0; i < 200; i++ {
		x := rng.Intn(3)
		rows = append(rows, []int{x, rng.Intn(2), x})
	}
	ds := buildDataset(t, []string{"x", "n", "y"}, []int{3, 2, 3}, rows)
	a, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		x := []int{rng.Intn(3), rng.Intn(2), 0}
		pa, pb := a.PredictProba(x), b.PredictProba(x)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("same seed, different models at %v", x)
			}
		}
	}
}

func TestFitErrors(t *testing.T) {
	ds := buildDataset(t, []string{"a", "y"}, []int{2, 2}, [][]int{{0, 0}})
	if _, err := NewLearner().Fit(ds, 7); err == nil {
		t.Error("bad target accepted")
	}
	empty := ml.NewDataset([]ml.Attr{{Name: "a", Card: 2}})
	if _, err := NewLearner().Fit(empty, 0); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestMaxCondsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var rows [][]int
	for i := 0; i < 300; i++ {
		a, b, c, d := rng.Intn(2), rng.Intn(2), rng.Intn(2), rng.Intn(2)
		y := a & b & c & d
		rows = append(rows, []int{a, b, c, d, y})
	}
	ds := buildDataset(t, []string{"a", "b", "c", "d", "y"}, []int{2, 2, 2, 2, 2}, rows)
	l := NewLearner()
	l.MaxConds = 2
	c, err := l.Fit(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.(*RuleSet).Rules {
		if len(r.Conds) > 2 {
			t.Errorf("rule has %d conditions, cap is 2", len(r.Conds))
		}
	}
}

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rows [][]int
	for i := 0; i < 200; i++ {
		x := rng.Intn(3)
		rows = append(rows, []int{x, rng.Intn(2), (x + 1) % 3})
	}
	ds := buildDataset(t, []string{"x", "n", "y"}, []int{3, 2, 3}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.(*RuleSet)); err != nil {
		t.Fatal(err)
	}
	var back RuleSet
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		x := []int{rng.Intn(3), rng.Intn(2), 0}
		pa, pb := c.PredictProba(x), back.PredictProba(x)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("round trip differs at %v", x)
			}
		}
	}
}

func TestRender(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var rows [][]int
	for i := 0; i < 300; i++ {
		x := rng.Intn(3)
		y := 0
		if x == 1 {
			y = 1
		}
		rows = append(rows, []int{x, rng.Intn(2), y})
	}
	ds := buildDataset(t, []string{"x", "n", "y"}, []int{3, 2, 2}, rows)
	c, err := NewLearner().Fit(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"x", "n", "y"}
	out := c.(*RuleSet).Render(func(i int) string { return names[i] })
	if !strings.Contains(out, "rule set for target y") || !strings.Contains(out, "IF ") ||
		!strings.Contains(out, "default:") {
		t.Errorf("render output wrong:\n%s", out)
	}
}
