// Package ripper implements a RIPPER-style ordered rule learner (Cohen,
// "Fast Effective Rule Induction", ICML 1995): classes are handled from
// least to most frequent, rules are grown condition-by-condition to
// maximise FOIL information gain on a growing set, then pruned greedily
// against a separate pruning set, and rule addition stops when a new rule's
// error on the pruning set exceeds one half. The most frequent class
// becomes the default rule. Each rule retains its training-coverage class
// histogram so the classifier can emit calibrated probabilities for
// Algorithm 3.
package ripper

import (
	"fmt"
	"math"
	"math/rand"

	"crossfeature/internal/ml"
)

// Learner configures rule induction.
type Learner struct {
	// GrowFrac is the fraction of data used for growing (the rest prunes);
	// Cohen's default is 2/3.
	GrowFrac float64
	// MaxConds caps conditions per rule; 0 means unbounded.
	MaxConds int
	// MaxRulesPerClass caps the rule count per class; 0 means unbounded.
	MaxRulesPerClass int
	// Seed drives the grow/prune shuffle, keeping training deterministic.
	Seed int64
}

// NewLearner returns a learner with Cohen's defaults.
func NewLearner() *Learner {
	return &Learner{GrowFrac: 2.0 / 3.0, Seed: 1}
}

// Name implements ml.Learner.
func (l *Learner) Name() string { return "RIPPER" }

// Cond is one equality test attr == val.
type Cond struct {
	Attr int
	Val  int
}

// Rule is a conjunction of conditions predicting Class, with the class
// histogram of the training instances it covers.
type Rule struct {
	Conds  []Cond
	Class  int
	Counts []int
}

// Matches reports whether the rule covers instance x.
func (r *Rule) Matches(x []int) bool {
	for _, c := range r.Conds {
		if c.Attr >= len(x) || x[c.Attr] != c.Val {
			return false
		}
	}
	return true
}

// RuleSet is a fitted ordered rule list for one target attribute.
type RuleSet struct {
	Rules   []Rule
	Default []int // class histogram backing the default rule
	Target  int
	Classes int
}

var (
	_ ml.Classifier = (*RuleSet)(nil)
	_ ml.IntoProber = (*RuleSet)(nil)
)

// Fit implements ml.Learner. Rule induction runs on the dataset's shared
// column-major view: FOIL gain for every (attribute, value) candidate
// comes from AND+popcount of the rule-coverage bitset with posting
// bitsets, and pruning evaluates all condition prefixes incrementally.
func (l *Learner) Fit(ds *ml.Dataset, target int) (ml.Classifier, error) {
	return l.fitWith(ds, target, ds.Columns())
}

// fitWith induces the rule list with the columnar kernels when cols is
// non-nil, or with the naive row-major reference path otherwise. The two
// paths are pinned bit-identical by differential tests (the grow/prune
// shuffle consumes the seeded rng identically in both).
func (l *Learner) fitWith(ds *ml.Dataset, target int, cols *ml.Columns) (ml.Classifier, error) {
	if target < 0 || target >= len(ds.Attrs) {
		return nil, fmt.Errorf("ripper: target %d outside schema of %d attributes", target, len(ds.Attrs))
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("ripper: empty dataset")
	}
	growFrac := l.GrowFrac
	if growFrac <= 0 || growFrac >= 1 {
		growFrac = 2.0 / 3.0
	}
	classes := ds.Attrs[target].Card
	rs := &RuleSet{Target: target, Classes: classes}
	f := newFitter(l, ds, target, cols)

	// Order classes by ascending frequency; the most frequent is default.
	counts := ds.ClassCounts(target)
	order := make([]int, classes)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < classes; i++ {
		for j := i; j > 0 && counts[order[j]] < counts[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	remaining := make([]int, ds.Len())
	for i := range remaining {
		remaining[i] = i
	}
	rng := rand.New(rand.NewSource(l.Seed))

	for oi := 0; oi < classes-1; oi++ {
		cls := order[oi]
		if counts[cls] == 0 {
			continue
		}
		remaining = f.coverClass(cls, remaining, rs, rng)
	}

	// Default rule: histogram of the leftovers (or global counts if empty).
	def := make([]int, classes)
	for _, i := range remaining {
		def[ds.X[i][target]]++
	}
	empty := true
	for _, c := range def {
		if c > 0 {
			empty = false
			break
		}
	}
	if empty {
		def = counts
	}
	rs.Default = def

	// Final pass: refresh every rule's coverage histogram against the full
	// ordered list semantics (first-match) on the whole training set.
	if cols != nil {
		rs.recountCols(cols)
	} else {
		rs.recount(ds)
	}
	return rs, nil
}

// fitter carries one fit's context and (for the columnar path) its reused
// bitset scratch. Each induction step dispatches to the columnar kernel
// when cols is non-nil and to the naive reference function otherwise.
type fitter struct {
	l      *Learner
	ds     *ml.Dataset
	target int
	cols   *ml.Columns
	// cov/pos hold the grow-set rule coverage and its positive subset
	// during growRule; set/tmp serve pruning, coverage and filtering.
	cov, pos, set, tmp ml.Bitset
	// tcol is the target column; tallyCut is the coverage size below which
	// growRuleCols switches from popcount kernels to row tallies (the
	// popcount cost per attribute is ~card × words, the tally cost ~|cov|).
	tcol     []int32
	tallyCut int
	// rowBuf, pv, nv and fixed are growRuleCols scratch.
	rowBuf []int
	pv, nv []int
	fixed  []bool
}

func newFitter(l *Learner, ds *ml.Dataset, target int, cols *ml.Columns) *fitter {
	f := &fitter{l: l, ds: ds, target: target, cols: cols}
	if cols != nil {
		f.cov = ml.NewBitset(cols.NumRows)
		f.pos = ml.NewBitset(cols.NumRows)
		f.set = ml.NewBitset(cols.NumRows)
		f.tmp = ml.NewBitset(cols.NumRows)
		f.tcol = cols.Cols[target]
		maxCard, totalCard := 1, 0
		for _, at := range ds.Attrs {
			totalCard += at.Card
			if at.Card > maxCard {
				maxCard = at.Card
			}
		}
		words := (cols.NumRows + 63) / 64
		f.tallyCut = totalCard / len(ds.Attrs) * words
		f.rowBuf = make([]int, 0, cols.NumRows)
		f.pv = make([]int, maxCard)
		f.nv = make([]int, maxCard)
		f.fixed = make([]bool, len(ds.Attrs))
	}
	return f
}

func (f *fitter) growRule(cls int, grow []int) *Rule {
	if f.cols != nil {
		return f.growRuleCols(cls, grow)
	}
	return f.l.growRule(f.ds, f.target, cls, grow)
}

func (f *fitter) pruneRule(cls int, rule *Rule, prune []int) {
	if f.cols != nil {
		f.pruneRuleCols(cls, rule, prune)
		return
	}
	pruneRule(f.ds, f.target, cls, rule, prune)
}

func (f *fitter) coverage(cls int, rule *Rule, rows []int) (p, n int) {
	if f.cols != nil {
		return f.coverageCols(cls, rule, rows)
	}
	return coverage(f.ds, f.target, cls, rule, rows)
}

// coverClass induces rules for cls until the positives among remaining are
// covered or rule quality degrades; it returns the uncovered instances.
func (f *fitter) coverClass(cls int, remaining []int, rs *RuleSet, rng *rand.Rand) []int {
	l, ds, target := f.l, f.ds, f.target
	added := 0
	for {
		pos := 0
		if f.tcol != nil {
			for _, i := range remaining {
				if int(f.tcol[i]) == cls {
					pos++
				}
			}
		} else {
			for _, i := range remaining {
				if ds.X[i][target] == cls {
					pos++
				}
			}
		}
		if pos == 0 {
			return remaining
		}
		if l.MaxRulesPerClass > 0 && added >= l.MaxRulesPerClass {
			return remaining
		}
		grow, prune := split(remaining, l.GrowFrac, rng)
		rule := f.growRule(cls, grow)
		if rule == nil {
			return remaining
		}
		f.pruneRule(cls, rule, prune)
		// Accept only if the rule is better than chance on the prune set
		// (Cohen's stopping criterion: error rate <= 50%).
		p, n := f.coverage(cls, rule, prune)
		if p+n > 0 && float64(n)/float64(p+n) > 0.5 {
			return remaining
		}
		if p+n == 0 {
			// No prune data matched; fall back to the grow set estimate.
			gp, gn := f.coverage(cls, rule, grow)
			if gp == 0 || float64(gn)/float64(gp+gn) > 0.5 {
				return remaining
			}
		}
		rs.Rules = append(rs.Rules, *rule)
		added++
		// Remove covered instances from remaining.
		out := remaining[:0]
		if f.cols != nil {
			rb := f.ruleBits(rule)
			for _, i := range remaining {
				if !rb.Contains(i) {
					out = append(out, i)
				}
			}
		} else {
			for _, i := range remaining {
				if !rule.Matches(ds.X[i]) {
					out = append(out, i)
				}
			}
		}
		if len(out) == len(remaining) {
			return remaining // defensive: rule covered nothing
		}
		remaining = out
	}
}

// growRule adds the condition with the best FOIL gain until the rule is
// pure on the grow set or no condition helps.
func (l *Learner) growRule(ds *ml.Dataset, target, cls int, grow []int) *Rule {
	rule := &Rule{Class: cls}
	covered := append([]int(nil), grow...)
	for {
		p0, n0 := 0, 0
		for _, i := range covered {
			if ds.X[i][target] == cls {
				p0++
			} else {
				n0++
			}
		}
		if p0 == 0 {
			return nil
		}
		if n0 == 0 {
			break // pure
		}
		if l.MaxConds > 0 && len(rule.Conds) >= l.MaxConds {
			break
		}
		bestGain := 0.0
		var best Cond
		found := false
		base := math.Log2(float64(p0) / float64(p0+n0))
		// Candidate conditions: every (attr,value) not already fixed.
		fixed := make(map[int]bool, len(rule.Conds))
		for _, c := range rule.Conds {
			fixed[c.Attr] = true
		}
		for a := range ds.Attrs {
			if a == target || fixed[a] || ds.Attrs[a].Card < 2 {
				continue
			}
			// Count p,n per value of a in one pass.
			card := ds.Attrs[a].Card
			pv := make([]int, card)
			nv := make([]int, card)
			for _, i := range covered {
				v := ds.X[i][a]
				if ds.X[i][target] == cls {
					pv[v]++
				} else {
					nv[v]++
				}
			}
			for v := 0; v < card; v++ {
				p, n := pv[v], nv[v]
				if p == 0 {
					continue
				}
				gain := float64(p) * (math.Log2(float64(p)/float64(p+n)) - base)
				if gain > bestGain+1e-12 {
					bestGain = gain
					best = Cond{Attr: a, Val: v}
					found = true
				}
			}
		}
		if !found {
			break
		}
		rule.Conds = append(rule.Conds, best)
		out := covered[:0]
		for _, i := range covered {
			if ds.X[i][best.Attr] == best.Val {
				out = append(out, i)
			}
		}
		covered = out
	}
	if len(rule.Conds) == 0 {
		return nil
	}
	return rule
}

// pruneRule greedily deletes trailing conditions while the pruning metric
// v = (p - n) / (p + n) on the prune set does not decrease. Every prefix's
// metric comes from one pass over the prune rows — each row's first
// failing condition index is histogrammed, and prefix coverage falls out
// as suffix sums — instead of a full rescan per candidate prefix, which
// was quadratic in conditions × prune rows.
func pruneRule(ds *ml.Dataset, target, cls int, rule *Rule, prune []int) {
	k := len(rule.Conds)
	if len(prune) == 0 || k <= 1 {
		return
	}
	// A row matches the prefix Conds[:j] iff its first failing condition
	// index is >= j (k means the row matches the whole rule).
	posAt := make([]int, k+1)
	negAt := make([]int, k+1)
	for _, i := range prune {
		x := ds.X[i]
		fail := k
		for j, c := range rule.Conds {
			if x[c.Attr] != c.Val {
				fail = j
				break
			}
		}
		if x[target] == cls {
			posAt[fail]++
		} else {
			negAt[fail]++
		}
	}
	metric := prefixMetrics(posAt, negAt)
	trimByMetric(rule, metric)
}

// prefixMetrics converts first-fail histograms into the pruning metric of
// every condition prefix: metric[j] is (p-n)/(p+n) over the rows matching
// Conds[:j], or -Inf when none do.
func prefixMetrics(posAt, negAt []int) []float64 {
	metric := make([]float64, len(posAt))
	p, n := 0, 0
	for j := len(posAt) - 1; j >= 0; j-- {
		p += posAt[j]
		n += negAt[j]
		if p+n == 0 {
			metric[j] = math.Inf(-1)
		} else {
			metric[j] = float64(p-n) / float64(p+n)
		}
	}
	return metric
}

// trimByMetric applies the greedy trailing-condition deletion given the
// precomputed per-prefix metrics.
func trimByMetric(rule *Rule, metric []float64) {
	for len(rule.Conds) > 1 {
		k := len(rule.Conds)
		if metric[k-1] >= metric[k] {
			rule.Conds = rule.Conds[:k-1]
			continue
		}
		break
	}
}

// coverage counts positives and negatives the rule matches within rows.
func coverage(ds *ml.Dataset, target, cls int, rule *Rule, rows []int) (p, n int) {
	for _, i := range rows {
		if !rule.Matches(ds.X[i]) {
			continue
		}
		if ds.X[i][target] == cls {
			p++
		} else {
			n++
		}
	}
	return p, n
}

// split partitions rows into grow and prune subsets after a shuffle.
func split(rows []int, growFrac float64, rng *rand.Rand) (grow, prune []int) {
	shuffled := append([]int(nil), rows...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := int(float64(len(shuffled)) * growFrac)
	if cut < 1 {
		cut = len(shuffled)
	}
	return shuffled[:cut], shuffled[cut:]
}

// recount rebuilds per-rule class histograms under first-match semantics on
// the full training set, so probabilities reflect deployment behaviour.
func (rs *RuleSet) recount(ds *ml.Dataset) {
	for r := range rs.Rules {
		rs.Rules[r].Counts = make([]int, rs.Classes)
	}
	def := make([]int, rs.Classes)
	for _, x := range ds.X {
		cls := x[rs.Target]
		hit := false
		for r := range rs.Rules {
			if rs.Rules[r].Matches(x) {
				rs.Rules[r].Counts[cls]++
				hit = true
				break
			}
		}
		if !hit {
			def[cls]++
		}
	}
	empty := true
	for _, c := range def {
		if c > 0 {
			empty = false
			break
		}
	}
	if !empty {
		rs.Default = def
	}
}

// PredictProba implements ml.Classifier: the first matching rule's
// Laplace-smoothed coverage distribution, or the default rule's.
func (rs *RuleSet) PredictProba(x []int) []float64 {
	return rs.PredictProbaInto(x, make([]float64, len(rs.Default)))
}

// PredictProbaInto implements ml.IntoProber: the first matching rule's
// (or the default's) Laplace distribution is written into out (length
// >= the target's cardinality) without allocating.
func (rs *RuleSet) PredictProbaInto(x []int, out []float64) []float64 {
	for i := range rs.Rules {
		if rs.Rules[i].Matches(x) {
			return ml.LaplaceInto(rs.Rules[i].Counts, out)
		}
	}
	return ml.LaplaceInto(rs.Default, out)
}

// NumRules reports the number of induced rules (excluding the default).
func (rs *RuleSet) NumRules() int { return len(rs.Rules) }
