package ripper

import (
	"math"

	"crossfeature/internal/ml"
)

// Columnar rule-induction kernels: candidate evaluation, pruning and
// recounting all reduce to AND+popcount over the dataset's posting
// bitsets. Every count equals what the row-major reference path tallies,
// so gains and metrics — and therefore the induced rule lists — are
// bit-identical.

// growRuleCols is growRule with the grow-set coverage kept as a bitset:
// FOIL gain for a candidate (attr, val) needs only |cov ∧ posting| and
// |pos ∧ posting|, and accepting a condition is one AND. Once the rule's
// coverage shrinks below tallyCut the AND+popcount sweep (fixed ~card ×
// words cost per attribute regardless of coverage) loses to walking the
// covered rows directly, so the candidate counts switch to a row tally
// over the columns — the integer (p, n) pairs are the same either way,
// hence the same gains, the same accepted conditions, the same rule.
func (f *fitter) growRuleCols(cls int, grow []int) *Rule {
	l, cols := f.l, f.cols
	clsBits := cols.Postings[f.target][cls]
	cov := f.cov
	cov.Clear()
	for _, i := range grow {
		cov.Set(i)
	}
	pos := f.pos
	pos.AndInto(cov, clsBits)
	fixed := f.fixed
	for a := range fixed {
		fixed[a] = false
	}
	rule := &Rule{Class: cls}
	for {
		covn := cov.Count()
		p0 := pos.Count()
		n0 := covn - p0
		if p0 == 0 {
			return nil
		}
		if n0 == 0 {
			break // pure
		}
		if l.MaxConds > 0 && len(rule.Conds) >= l.MaxConds {
			break
		}
		bestGain := 0.0
		var best Cond
		found := false
		base := math.Log2(float64(p0) / float64(p0+n0))
		if covn <= f.tallyCut {
			// Sparse coverage: materialise the covered rows once and tally
			// per-value (p, n) from the contiguous columns.
			rows := f.rowBuf[:0]
			cov.ForEach(func(i int) { rows = append(rows, i) })
			f.rowBuf = rows
			tcol := f.tcol
			for a := range f.ds.Attrs {
				if a == f.target || fixed[a] || f.ds.Attrs[a].Card < 2 {
					continue
				}
				card := f.ds.Attrs[a].Card
				pv, nv := f.pv[:card], f.nv[:card]
				for v := 0; v < card; v++ {
					pv[v], nv[v] = 0, 0
				}
				col := cols.Cols[a]
				for _, i := range rows {
					if int(tcol[i]) == cls {
						pv[col[i]]++
					} else {
						nv[col[i]]++
					}
				}
				for v := 0; v < card; v++ {
					p, n := pv[v], nv[v]
					if p == 0 {
						continue
					}
					gain := float64(p) * (math.Log2(float64(p)/float64(p+n)) - base)
					if gain > bestGain+1e-12 {
						bestGain = gain
						best = Cond{Attr: a, Val: v}
						found = true
					}
				}
			}
		} else {
			for a := range f.ds.Attrs {
				if a == f.target || fixed[a] || f.ds.Attrs[a].Card < 2 {
					continue
				}
				posts := cols.Postings[a]
				for v := range posts {
					p := ml.AndCount(pos, posts[v])
					if p == 0 {
						continue
					}
					n := ml.AndCount(cov, posts[v]) - p
					gain := float64(p) * (math.Log2(float64(p)/float64(p+n)) - base)
					if gain > bestGain+1e-12 {
						bestGain = gain
						best = Cond{Attr: a, Val: v}
						found = true
					}
				}
			}
		}
		if !found {
			break
		}
		rule.Conds = append(rule.Conds, best)
		fixed[best.Attr] = true
		cov.And(cols.Postings[best.Attr][best.Val])
		pos.And(cols.Postings[best.Attr][best.Val])
	}
	if len(rule.Conds) == 0 {
		return nil
	}
	return rule
}

// pruneRuleCols evaluates every condition prefix's pruning metric from
// incremental bitset intersections: prefix k's coverage is prefix k-1's
// ANDed with one more posting set.
func (f *fitter) pruneRuleCols(cls int, rule *Rule, prune []int) {
	k := len(rule.Conds)
	if len(prune) == 0 || k <= 1 {
		return
	}
	cols := f.cols
	clsBits := cols.Postings[f.target][cls]
	cur := f.set
	cur.Clear()
	for _, i := range prune {
		cur.Set(i)
	}
	metric := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		if j > 0 {
			c := rule.Conds[j-1]
			cur.And(cols.Postings[c.Attr][c.Val])
		}
		total := cur.Count()
		if total == 0 {
			metric[j] = math.Inf(-1)
			continue
		}
		p := ml.AndCount(cur, clsBits)
		metric[j] = float64(2*p-total) / float64(total)
	}
	trimByMetric(rule, metric)
}

// coverageCols counts the rule's positives and negatives within rows.
func (f *fitter) coverageCols(cls int, rule *Rule, rows []int) (p, n int) {
	set := f.tmp
	set.Clear()
	for _, i := range rows {
		set.Set(i)
	}
	for _, c := range rule.Conds {
		set.And(f.cols.Postings[c.Attr][c.Val])
	}
	total := set.Count()
	p = ml.AndCount(set, f.cols.Postings[f.target][cls])
	return p, total - p
}

// ruleBits returns the full-dataset coverage of rule as a bitset (valid
// until the next scratch use).
func (f *fitter) ruleBits(rule *Rule) ml.Bitset {
	set := f.set
	set.CopyFrom(f.cols.Postings[rule.Conds[0].Attr][rule.Conds[0].Val])
	for _, c := range rule.Conds[1:] {
		set.And(f.cols.Postings[c.Attr][c.Val])
	}
	return set
}

// recountCols is recount on postings: each rule's first-match coverage is
// the still-active rows intersected with its condition postings, and class
// histograms are popcounts against the target's posting sets.
func (rs *RuleSet) recountCols(cols *ml.Columns) {
	active := ml.NewFullBitset(cols.NumRows)
	matched := ml.NewBitset(cols.NumRows)
	clsPosts := cols.Postings[rs.Target]
	for r := range rs.Rules {
		rule := &rs.Rules[r]
		matched.CopyFrom(active)
		for _, c := range rule.Conds {
			matched.And(cols.Postings[c.Attr][c.Val])
		}
		rule.Counts = make([]int, rs.Classes)
		for c := 0; c < rs.Classes; c++ {
			rule.Counts[c] = ml.AndCount(matched, clsPosts[c])
		}
		active.AndNot(matched)
	}
	def := make([]int, rs.Classes)
	empty := true
	for c := 0; c < rs.Classes; c++ {
		def[c] = ml.AndCount(active, clsPosts[c])
		if def[c] > 0 {
			empty = false
		}
	}
	if !empty {
		rs.Default = def
	}
}
