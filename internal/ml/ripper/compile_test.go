package ripper

import (
	"math/rand"
	"reflect"
	"testing"

	"crossfeature/internal/ml"
)

// TestCompiledDifferential pins the condition-matrix form bit-identical
// to the rule-list walk — both the per-row scan and the columnar batch
// kernel — on random datasets and probes.
func TestCompiledDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	configs := []*Learner{
		NewLearner(),
		{GrowFrac: 0.5, Seed: 2},
		{MaxConds: 2, Seed: 3},
		{MaxRulesPerClass: 2, Seed: 4},
	}
	for trial := 0; trial < 40; trial++ {
		ds := randomDataset(rng)
		target := rng.Intn(len(ds.Attrs))
		l := configs[trial%len(configs)]
		c, err := l.Fit(ds, target)
		if err != nil {
			continue
		}
		rs := c.(*RuleSet)
		comp := rs.Compile()
		if comp.NumRules() != rs.NumRules() {
			t.Fatalf("trial %d: compiled %d rules, set has %d", trial, comp.NumRules(), rs.NumRules())
		}
		classes := ds.Attrs[target].Card
		refBuf := make([]float64, classes)
		gotBuf := make([]float64, classes)
		x := make([]int, len(ds.Attrs))
		for probe := 0; probe < 30; probe++ {
			for j, at := range ds.Attrs {
				x[j] = rng.Intn(at.Card+2) - 1
			}
			px := x
			if probe%7 == 0 {
				px = x[:rng.Intn(len(x)+1)]
			}
			ref := rs.PredictProbaInto(px, refBuf)
			got := comp.PredictProbaInto(px, gotBuf)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("trial %d: distribution mismatch on %v: ref=%v got=%v", trial, px, ref, got)
			}
			for v := 0; v <= classes; v++ {
				wantP := 0.0
				if v < len(ref) {
					wantP = ref[v]
				}
				wantM := ml.ArgMax(ref) == v
				p, m := comp.TrueScore(px, v, nil)
				if p != wantP || m != wantM {
					t.Fatalf("trial %d: TrueScore(%v, %d) = (%v,%v), want (%v,%v)",
						trial, px, v, p, m, wantP, wantM)
				}
			}
		}

		// The batch kernel must agree with the per-row scan on every
		// training row (valid rows, including guard/unknown buckets).
		n := ds.Len()
		p := make([]float64, n)
		match := make([]bool, n)
		comp.TrueScoreAll(ds, target, p, match)
		for r := 0; r < n; r++ {
			ref := rs.PredictProbaInto(ds.X[r], refBuf)
			v := ds.X[r][target]
			wantP := 0.0
			if v < len(ref) {
				wantP = ref[v]
			}
			wantM := ml.ArgMax(ref) == v
			if p[r] != wantP || match[r] != wantM {
				t.Fatalf("trial %d row %d: batch = (%v,%v), want (%v,%v)",
					trial, r, p[r], match[r], wantP, wantM)
			}
		}
	}
}
