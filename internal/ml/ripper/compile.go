package ripper

import "crossfeature/internal/ml"

// Compiled is the flat inference form of an ordered RuleSet: all
// conditions live in two parallel int32 arrays (a condition matrix in CSR
// layout, rule r's conditions spanning ruleOff[r]..ruleOff[r+1]), and
// every rule's Laplace-smoothed coverage distribution — plus the default
// rule's as the final row — is precomputed into one []float64 slab. Row
// evaluation is an early-exit scan over the matrix; batch evaluation
// assigns whole row sets per rule with bitset intersections over the
// dataset's posting lists. A Compiled snapshot never observes later
// mutation of the source rule set.
type Compiled struct {
	condAttr []int32
	condVal  []int32
	ruleOff  []int32 // len rules+1; rule r's conditions span [ruleOff[r], ruleOff[r+1])

	// dist holds rules+1 distribution rows (the last is the default
	// rule's); row r is dist[distOff[r]:distOff[r+1]], argmax[r] its
	// precomputed ml.ArgMax.
	dist    []float64
	distOff []int32
	argmax  []int32

	rules   int
	target  int
	classes int
	maxDlen int
}

var (
	_ ml.Classifier       = (*Compiled)(nil)
	_ ml.IntoProber       = (*Compiled)(nil)
	_ ml.ScoreKernel      = (*Compiled)(nil)
	_ ml.BatchScoreKernel = (*Compiled)(nil)
	_ ml.KernelCompiler   = (*RuleSet)(nil)
)

// Compile flattens the rule set into its condition-matrix form. The
// compiled predictions are pinned bit-identical to the rule-list walk by
// differential tests.
func (rs *RuleSet) Compile() *Compiled {
	nc := 0
	for i := range rs.Rules {
		nc += len(rs.Rules[i].Conds)
	}
	c := &Compiled{
		condAttr: make([]int32, 0, nc),
		condVal:  make([]int32, 0, nc),
		ruleOff:  make([]int32, 1, len(rs.Rules)+1),
		distOff:  make([]int32, 1, len(rs.Rules)+2),
		argmax:   make([]int32, 0, len(rs.Rules)+1),
		rules:    len(rs.Rules),
		target:   rs.Target,
		classes:  rs.Classes,
	}
	for i := range rs.Rules {
		r := &rs.Rules[i]
		for _, cd := range r.Conds {
			c.condAttr = append(c.condAttr, int32(cd.Attr))
			c.condVal = append(c.condVal, int32(cd.Val))
		}
		c.ruleOff = append(c.ruleOff, int32(len(c.condAttr)))
		c.appendDist(r.Counts)
	}
	c.appendDist(rs.Default)
	return c
}

// CompileKernel implements ml.KernelCompiler.
func (rs *RuleSet) CompileKernel() ml.ScoreKernel { return rs.Compile() }

func (c *Compiled) appendDist(counts []int) {
	off := int32(len(c.dist))
	c.dist = append(c.dist, ml.Laplace(counts)...)
	c.distOff = append(c.distOff, int32(len(c.dist)))
	c.argmax = append(c.argmax, int32(ml.ArgMax(c.dist[off:])))
	if len(counts) > c.maxDlen {
		c.maxDlen = len(counts)
	}
}

// matchRow returns the first matching rule's row index, or the default
// row c.rules — an early-exit scan mirroring Rule.Matches exactly.
func (c *Compiled) matchRow(x []int) int {
	for r := 0; r < c.rules; r++ {
		matched := true
		for ci := c.ruleOff[r]; ci < c.ruleOff[r+1]; ci++ {
			a := int(c.condAttr[ci])
			if a >= len(x) || x[a] != int(c.condVal[ci]) {
				matched = false
				break
			}
		}
		if matched {
			return r
		}
	}
	return c.rules
}

// TrueScore implements ml.ScoreKernel: one matrix scan, then two O(1)
// reads from the precomputed slab.
func (c *Compiled) TrueScore(x []int, v int, _ []float64) (p float64, match bool) {
	r := c.matchRow(x)
	off, end := c.distOff[r], c.distOff[r+1]
	if v >= 0 && int32(v) < end-off {
		p = c.dist[off+int32(v)]
	}
	return p, int32(v) == c.argmax[r]
}

// TrueScoreAll implements ml.BatchScoreKernel. First-match semantics
// vectorise over the ordered list: rule r's coverage is the AND of its
// conditions' posting bitsets restricted to rows no earlier rule claimed,
// and every covered row takes the rule's precomputed distribution row.
// Rows no rule claims take the default row.
func (c *Compiled) TrueScoreAll(ds *ml.Dataset, target int, p []float64, match []bool) {
	cols := ds.Columns()
	tcol := cols.Cols[target]
	unclaimed := ml.NewFullBitset(cols.NumRows)
	cov := ml.NewBitset(cols.NumRows)
	for r := 0; r <= c.rules; r++ {
		rowSet := unclaimed // the default row claims everything left
		if r < c.rules {
			cov.CopyFrom(unclaimed)
			dead := false
			for ci := c.ruleOff[r]; ci < c.ruleOff[r+1]; ci++ {
				a, v := int(c.condAttr[ci]), int(c.condVal[ci])
				if a >= len(cols.Postings) || v < 0 || v >= len(cols.Postings[a]) {
					// No row of this dataset can carry the value, so the
					// rule covers nothing — exactly the scan's outcome.
					dead = true
					break
				}
				cov.And(cols.Postings[a][v])
			}
			if dead {
				continue
			}
			rowSet = cov
		}
		d := c.dist[c.distOff[r]:c.distOff[r+1]]
		am := c.argmax[r]
		rowSet.ForEach(func(i int) {
			v := tcol[i]
			if int(v) < len(d) {
				p[i] = d[v]
			} else {
				p[i] = 0
			}
			match[i] = v == am
		})
		if r < c.rules {
			unclaimed.AndNot(cov)
		}
	}
}

// PredictProba implements ml.Classifier.
func (c *Compiled) PredictProba(x []int) []float64 {
	return c.PredictProbaInto(x, make([]float64, c.maxDlen))
}

// PredictProbaInto implements ml.IntoProber by copying the matched
// rule's precomputed distribution.
func (c *Compiled) PredictProbaInto(x []int, out []float64) []float64 {
	r := c.matchRow(x)
	off, end := c.distOff[r], c.distOff[r+1]
	out = out[:end-off]
	copy(out, c.dist[off:end])
	return out
}

// NumConds reports the condition-matrix size (total conditions across all
// rules).
func (c *Compiled) NumConds() int { return len(c.condAttr) }

// NumRules reports the compiled rule count (excluding the default).
func (c *Compiled) NumRules() int { return c.rules }
