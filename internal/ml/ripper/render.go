package ripper

import (
	"fmt"
	"strings"

	"crossfeature/internal/ml"
)

// Render pretty-prints the ordered rule list for human inspection.
// attrName maps attribute indices to names (nil falls back to f<i>).
func (rs *RuleSet) Render(attrName func(int) string) string {
	if attrName == nil {
		attrName = func(i int) string { return fmt.Sprintf("f%d", i) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rule set for target %s (%d rules + default)\n", attrName(rs.Target), len(rs.Rules))
	for i, r := range rs.Rules {
		conds := make([]string, 0, len(r.Conds))
		for _, c := range r.Conds {
			conds = append(conds, fmt.Sprintf("%s=%d", attrName(c.Attr), c.Val))
		}
		cond := "TRUE"
		if len(conds) > 0 {
			cond = strings.Join(conds, " AND ")
		}
		probs := ml.Laplace(r.Counts)
		fmt.Fprintf(&b, "  %2d. IF %s THEN class %d (p=%.2f, n=%d)\n",
			i+1, cond, r.Class, probs[r.Class], sumCounts(r.Counts))
	}
	def := ml.ArgMax(ml.Laplace(rs.Default))
	fmt.Fprintf(&b, "  default: class %d (n=%d)\n", def, sumCounts(rs.Default))
	return b.String()
}

func sumCounts(counts []int) int {
	s := 0
	for _, c := range counts {
		s += c
	}
	return s
}
