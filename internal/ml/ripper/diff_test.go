package ripper

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"crossfeature/internal/ml"
)

// randomDataset builds a seeded random dataset with mixed cardinalities
// and latent structure (see the c45 differential tests for the shape).
func randomDataset(rng *rand.Rand) *ml.Dataset {
	nAttrs := 3 + rng.Intn(9)
	attrs := make([]ml.Attr, nAttrs)
	for j := range attrs {
		card := 1 + rng.Intn(6)
		attrs[j] = ml.Attr{
			Name:       fmt.Sprintf("f%d", j),
			Card:       card,
			HasUnknown: card > 2 && rng.Intn(3) == 0,
		}
	}
	ds := ml.NewDataset(attrs)
	rows := 1 + rng.Intn(300)
	row := make([]int, nAttrs)
	for i := 0; i < rows; i++ {
		latent := rng.Intn(4)
		for j, at := range attrs {
			v := latent % at.Card
			if rng.Float64() < 0.3 {
				v = rng.Intn(at.Card)
			}
			row[j] = v
		}
		if err := ds.Add(row); err != nil {
			panic(err)
		}
	}
	return ds
}

// TestColumnarDifferential pins the bitset-kernel rule induction
// bit-identical to the naive row-major reference: same rule lists in the
// same order, same coverage histograms, same predictions.
func TestColumnarDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	configs := []*Learner{
		NewLearner(),
		{GrowFrac: 0.5, Seed: 3},
		{GrowFrac: 2.0 / 3.0, Seed: 9, MaxConds: 2},
		{GrowFrac: 2.0 / 3.0, Seed: 5, MaxRulesPerClass: 1},
	}
	for trial := 0; trial < 40; trial++ {
		ds := randomDataset(rng)
		target := rng.Intn(len(ds.Attrs))
		l := configs[trial%len(configs)]

		ref, refErr := l.fitWith(ds, target, nil)
		fast, fastErr := l.fitWith(ds, target, ds.Columns())
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("trial %d: error mismatch: ref=%v fast=%v", trial, refErr, fastErr)
		}
		if refErr != nil {
			continue
		}
		refRS, fastRS := ref.(*RuleSet), fast.(*RuleSet)
		if !reflect.DeepEqual(refRS, fastRS) {
			t.Fatalf("trial %d (target %d, learner %+v): columnar rule set differs from reference\nref:  %+v\nfast: %+v",
				trial, target, l, refRS, fastRS)
		}
		x := make([]int, len(ds.Attrs))
		for probe := 0; probe < 20; probe++ {
			for j, at := range ds.Attrs {
				x[j] = rng.Intn(at.Card + 1)
			}
			if !reflect.DeepEqual(refRS.PredictProba(x), fastRS.PredictProba(x)) {
				t.Fatalf("trial %d: prediction mismatch on %v", trial, x)
			}
		}
	}
}

// TestPruneRuleIncremental pins the incremental prefix-metric pruning
// against a brute-force reference that rescans the prune rows for every
// candidate prefix — the behaviour pruneRule had before the single-pass
// rewrite.
func TestPruneRuleIncremental(t *testing.T) {
	bruteMetric := func(ds *ml.Dataset, target, cls int, conds []Cond, prune []int) float64 {
		p, n := 0, 0
	outer:
		for _, i := range prune {
			for _, c := range conds {
				if ds.X[i][c.Attr] != c.Val {
					continue outer
				}
			}
			if ds.X[i][target] == cls {
				p++
			} else {
				n++
			}
		}
		if p+n == 0 {
			return math.Inf(-1)
		}
		return float64(p-n) / float64(p+n)
	}
	brutePrune := func(ds *ml.Dataset, target, cls int, rule *Rule, prune []int) {
		if len(prune) == 0 {
			return
		}
		for len(rule.Conds) > 1 {
			cur := bruteMetric(ds, target, cls, rule.Conds, prune)
			trimmed := rule.Conds[:len(rule.Conds)-1]
			if bruteMetric(ds, target, cls, trimmed, prune) >= cur {
				rule.Conds = trimmed
				continue
			}
			break
		}
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		ds := randomDataset(rng)
		target := rng.Intn(len(ds.Attrs))
		cls := rng.Intn(ds.Attrs[target].Card)
		// A random rule over distinct non-target attributes.
		var conds []Cond
		for a := range ds.Attrs {
			if a == target || ds.Attrs[a].Card < 2 || rng.Intn(2) == 0 {
				continue
			}
			conds = append(conds, Cond{Attr: a, Val: rng.Intn(ds.Attrs[a].Card)})
		}
		if len(conds) == 0 {
			continue
		}
		// A random prune subset (possibly empty).
		var prune []int
		for i := 0; i < ds.Len(); i++ {
			if rng.Intn(3) != 0 {
				prune = append(prune, i)
			}
		}

		want := &Rule{Class: cls, Conds: append([]Cond(nil), conds...)}
		brutePrune(ds, target, cls, want, prune)

		got := &Rule{Class: cls, Conds: append([]Cond(nil), conds...)}
		pruneRule(ds, target, cls, got, prune)
		if !reflect.DeepEqual(got.Conds, want.Conds) {
			t.Fatalf("trial %d: incremental pruneRule diverged: got %v want %v (from %v)",
				trial, got.Conds, want.Conds, conds)
		}

		// The columnar prefix-bitset pruning must agree as well.
		f := newFitter(NewLearner(), ds, target, ds.Columns())
		gotCols := &Rule{Class: cls, Conds: append([]Cond(nil), conds...)}
		f.pruneRuleCols(cls, gotCols, prune)
		if !reflect.DeepEqual(gotCols.Conds, want.Conds) {
			t.Fatalf("trial %d: columnar pruneRule diverged: got %v want %v (from %v)",
				trial, gotCols.Conds, want.Conds, conds)
		}
	}
}
