package factor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// planarRows generates data living on a 2-D subspace of R^4 plus noise:
// f2 = f0+f1, f3 = f0-f1.
func planarRows(n int, noise float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		rows[i] = []float64{
			a + noise*rng.NormFloat64(),
			b + noise*rng.NormFloat64(),
			a + b + noise*rng.NormFloat64(),
			a - b + noise*rng.NormFloat64(),
		}
	}
	return rows
}

func TestJacobiEigenOnKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs := jacobiEigen([][]float64{{2, 1}, {1, 2}})
	got := []float64{vals[0], vals[1]}
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-3) > 1e-9 || math.Abs(got[1]-1) > 1e-9 {
		t.Errorf("eigenvalues = %v, want [3 1]", got)
	}
	// Eigenvectors are orthonormal.
	dot := vecs[0][0]*vecs[0][1] + vecs[1][0]*vecs[1][1]
	if math.Abs(dot) > 1e-9 {
		t.Errorf("eigenvectors not orthogonal: %v", dot)
	}
}

func TestExplainedVarianceOnSubspaceData(t *testing.T) {
	rows := planarRows(500, 0.01, 1)
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ev := m.ExplainedVariance(); ev < 0.95 {
		t.Errorf("2 components explain %.3f of planar data, want > 0.95", ev)
	}
}

func TestReconstructionErrorSeparates(t *testing.T) {
	rows := planarRows(500, 0.05, 2)
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	var normalErr float64
	for _, r := range rows[:100] {
		normalErr += m.ReconstructionError(r)
	}
	normalErr /= 100
	// An off-subspace event: f2 violating f0+f1.
	anomaly := []float64{1, 1, -5, 0}
	if e := m.ReconstructionError(anomaly); e < 10*normalErr {
		t.Errorf("anomaly residual %v not well above normal %v", e, normalErr)
	}
}

func TestConstantFeatureTolerated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 200)
	for i := range rows {
		a := rng.NormFloat64()
		rows[i] = []float64{a, 2 * a, 7}
	}
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatalf("constant feature broke fitting: %v", err)
	}
	if e := m.ReconstructionError(rows[0]); math.IsNaN(e) || math.IsInf(e, 0) {
		t.Errorf("residual on training row = %v", e)
	}
}

func TestTransformDimensions(t *testing.T) {
	rows := planarRows(100, 0.1, 4)
	m, err := Fit(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Transform(rows[0])); got != 3 {
		t.Errorf("transform emits %d factors, want 3", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 2); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("ragged rows accepted")
	}
}

// Property: reconstruction error is non-negative and finite for any
// finite input.
func TestQuickResidualNonNegative(t *testing.T) {
	rows := planarRows(200, 0.1, 5)
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		e := m.ReconstructionError([]float64{a, b, c, d})
		return e >= 0 && !math.IsNaN(e) && !math.IsInf(e, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: retained components are orthonormal.
func TestComponentsOrthonormal(t *testing.T) {
	rows := planarRows(300, 0.2, 6)
	m, err := Fit(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Components {
		for j := i; j < len(m.Components); j++ {
			var dot float64
			for k := range m.Components[i] {
				dot += m.Components[i][k] * m.Components[j][k]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Errorf("components %d.%d dot = %v, want %v", i, j, dot, want)
			}
		}
	}
}
