// Package factor implements principal-component factor analysis, the
// second cost-reduction direction named in the paper's future work
// ("approaches based on both correlation analysis and factor analysis").
// Feature vectors are standardised, the correlation matrix is
// eigendecomposed (cyclic Jacobi), and the top-k components define a
// normal subspace. The reconstruction residual of an event — how far it
// lies outside the subspace spanned by normal variation — serves both as
// a feature-compression tool and as an anomaly score in its own right.
package factor

import (
	"fmt"
	"math"
	"sort"
)

// Model is a fitted factor model.
type Model struct {
	// Mean and Std standardise inputs per feature (Std floors at a small
	// epsilon so constant features are harmless).
	Mean, Std []float64
	// Components holds the top-k eigenvectors (rows, unit length) of the
	// standardised correlation matrix, by descending eigenvalue.
	Components [][]float64
	// Eigenvalues are the corresponding variances.
	Eigenvalues []float64
}

// Fit computes the top-k factor model from rows. k is clamped to the
// feature count.
func Fit(rows [][]float64, k int) (*Model, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("factor: empty data")
	}
	d := len(rows[0])
	if d == 0 {
		return nil, fmt.Errorf("factor: zero-width rows")
	}
	if k <= 0 || k > d {
		k = d
	}
	m := &Model{Mean: make([]float64, d), Std: make([]float64, d)}
	n := float64(len(rows))
	for _, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("factor: ragged row of %d values, want %d", len(r), d)
		}
		for j, v := range r {
			m.Mean[j] += v
		}
	}
	for j := range m.Mean {
		m.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			dv := v - m.Mean[j]
			m.Std[j] += dv * dv
		}
	}
	const eps = 1e-9
	for j := range m.Std {
		m.Std[j] = math.Sqrt(m.Std[j] / n)
		if m.Std[j] < eps {
			m.Std[j] = 1 // constant feature: standardises to zero
		}
	}

	// Correlation matrix of the standardised data.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	z := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			z[j] = (v - m.Mean[j]) / m.Std[j]
		}
		for a := 0; a < d; a++ {
			za := z[a]
			if za == 0 {
				continue
			}
			row := cov[a]
			for b := a; b < d; b++ {
				row[b] += za * z[b]
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			cov[a][b] /= n
			cov[b][a] = cov[a][b]
		}
	}

	vals, vecs := jacobiEigen(cov)
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })
	m.Components = make([][]float64, k)
	m.Eigenvalues = make([]float64, k)
	for r := 0; r < k; r++ {
		col := order[r]
		m.Eigenvalues[r] = vals[col]
		vec := make([]float64, d)
		for i := 0; i < d; i++ {
			vec[i] = vecs[i][col]
		}
		m.Components[r] = vec
	}
	return m, nil
}

// standardise maps a raw row into z-score space.
func (m *Model) standardise(row []float64) []float64 {
	z := make([]float64, len(m.Mean))
	for j := range z {
		v := 0.0
		if j < len(row) {
			v = row[j]
		}
		z[j] = (v - m.Mean[j]) / m.Std[j]
	}
	return z
}

// Transform projects a row onto the k factors.
func (m *Model) Transform(row []float64) []float64 {
	z := m.standardise(row)
	out := make([]float64, len(m.Components))
	for r, comp := range m.Components {
		var s float64
		for j, c := range comp {
			s += c * z[j]
		}
		out[r] = s
	}
	return out
}

// ReconstructionError is the squared distance (in standardised space)
// between a row and its projection onto the factor subspace, normalised
// by the feature count — the classic subspace anomaly score: normal
// events lie near the subspace of normal variation, anomalies do not.
func (m *Model) ReconstructionError(row []float64) float64 {
	z := m.standardise(row)
	// Residual = z - sum_r (z . c_r) c_r; components are orthonormal.
	proj := make([]float64, len(z))
	for _, comp := range m.Components {
		var s float64
		for j, c := range comp {
			s += c * z[j]
		}
		for j, c := range comp {
			proj[j] += s * c
		}
	}
	var errSum float64
	for j := range z {
		dv := z[j] - proj[j]
		errSum += dv * dv
	}
	return errSum / float64(len(z))
}

// ExplainedVariance reports the fraction of total standardised variance
// captured by the retained components.
func (m *Model) ExplainedVariance() float64 {
	var kept float64
	for _, v := range m.Eigenvalues {
		kept += v
	}
	total := float64(len(m.Mean)) // trace of a correlation matrix
	if total == 0 {
		return 0
	}
	f := kept / total
	if f > 1 {
		return 1
	}
	return f
}

// jacobiEigen diagonalises a symmetric matrix with the cyclic Jacobi
// method, returning eigenvalues and the eigenvector matrix (columns).
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	d := len(a)
	// Work on a copy.
	m := make([][]float64, d)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := make([][]float64, d)
	for i := range v {
		v[i] = make([]float64, d)
		v[i][i] = 1
	}
	const maxSweeps = 50
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < d-1; p++ {
			for q := p + 1; q < d; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s, d)
			}
		}
	}
	vals := make([]float64, d)
	for i := 0; i < d; i++ {
		vals[i] = m[i][i]
	}
	return vals, v
}

// rotate applies the Jacobi rotation G(p,q,c,s) to m (two-sided) and
// accumulates it into v.
func rotate(m, v [][]float64, p, q int, c, s float64, d int) {
	for i := 0; i < d; i++ {
		mip, miq := m[i][p], m[i][q]
		m[i][p] = c*mip - s*miq
		m[i][q] = s*mip + c*miq
	}
	for j := 0; j < d; j++ {
		mpj, mqj := m[p][j], m[q][j]
		m[p][j] = c*mpj - s*mqj
		m[q][j] = s*mpj + c*mqj
	}
	for i := 0; i < d; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}
