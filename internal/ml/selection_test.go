package ml

import (
	"math"
	"math/rand"
	"testing"
)

// correlatedPairDataset: f0 and f1 are identical, f2 independent noise.
func correlatedPairDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := NewDataset([]Attr{
		{Name: "a", Card: 4}, {Name: "b", Card: 4}, {Name: "noise", Card: 4},
	})
	for i := 0; i < n; i++ {
		v := rng.Intn(4)
		_ = ds.Add([]int{v, v, rng.Intn(4)})
	}
	return ds
}

func TestMutualInformationIdenticalFeatures(t *testing.T) {
	ds := correlatedPairDataset(1000, 1)
	mi := ds.MutualInformation(0, 1)
	h := Entropy(ds.ClassCounts(0))
	if math.Abs(mi-h) > 0.05 {
		t.Errorf("I(a;b) = %v for identical features, want about H(a) = %v", mi, h)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	ds := correlatedPairDataset(2000, 2)
	mi := ds.MutualInformation(0, 2)
	if mi > 0.05 {
		t.Errorf("I(a;noise) = %v, want about 0", mi)
	}
}

func TestMutualInformationSymmetry(t *testing.T) {
	ds := correlatedPairDataset(500, 3)
	if a, b := ds.MutualInformation(0, 1), ds.MutualInformation(1, 0); math.Abs(a-b) > 1e-9 {
		t.Errorf("MI not symmetric: %v vs %v", a, b)
	}
}

func TestSymmetricUncertaintyRange(t *testing.T) {
	ds := correlatedPairDataset(800, 4)
	identical := ds.SymmetricUncertainty(0, 1)
	indep := ds.SymmetricUncertainty(0, 2)
	if identical < 0.9 || identical > 1 {
		t.Errorf("SU of identical features = %v, want near 1", identical)
	}
	if indep > 0.1 {
		t.Errorf("SU of independent features = %v, want near 0", indep)
	}
	if su := ds.SymmetricUncertainty(0, 0); math.Abs(su-1) > 1e-9 {
		t.Errorf("SU of a feature with itself = %v", su)
	}
}

func TestRankByCorrelation(t *testing.T) {
	ds := correlatedPairDataset(1000, 5)
	ranking := ds.RankByCorrelation(0)
	if len(ranking) != 3 {
		t.Fatalf("%d ranked features", len(ranking))
	}
	// The correlated pair must outrank the noise channel.
	if ranking[2].Name != "noise" {
		t.Errorf("noise ranked above correlated features: %+v", ranking)
	}
	if ranking[0].Score <= ranking[2].Score {
		t.Error("ranking not descending")
	}
}

func TestSelectColumns(t *testing.T) {
	ds := correlatedPairDataset(10, 6)
	sub := ds.SelectColumns([]int{2, 0})
	if len(sub.Attrs) != 2 || sub.Attrs[0].Name != "noise" || sub.Attrs[1].Name != "a" {
		t.Errorf("selected schema %v", sub.Attrs)
	}
	if sub.Len() != 10 {
		t.Errorf("selected %d rows", sub.Len())
	}
	for i, row := range sub.X {
		if row[0] != ds.X[i][2] || row[1] != ds.X[i][0] {
			t.Fatalf("row %d mis-selected", i)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRankByCorrelationSampled(t *testing.T) {
	ds := correlatedPairDataset(300, 7)
	full := ds.RankByCorrelation(0)
	sampled := ds.RankByCorrelation(1)
	if len(full) != len(sampled) {
		t.Fatal("sampling changed the ranking length")
	}
}
