package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// oldQueue replicates the pre-refactor container/heap implementation to
// differentially test the hand-rolled value heap against it.
type oldQueue []*event

func (q oldQueue) Len() int { return len(q) }
func (q oldQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q oldQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *oldQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *oldQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func TestQueueMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var nq eventQueue
	var oq oldQueue
	var seq uint64
	for round := 0; round < 200000; round++ {
		if len(nq) == 0 || rng.Intn(3) > 0 {
			seq++
			at := float64(rng.Intn(40)) + rng.Float64()
			nq.push(event{at: at, seq: seq})
			heap.Push(&oq, &event{at: at, seq: seq})
		} else {
			a := nq.pop()
			b := heap.Pop(&oq).(*event)
			if a.at != b.at || a.seq != b.seq {
				t.Fatalf("round %d: new=(%v,%d) old=(%v,%d)", round, a.at, a.seq, b.at, b.seq)
			}
		}
	}
}
