package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunProcessesInTimeOrder(t *testing.T) {
	e := New(1)
	var got []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("fired %d events, want 5", len(got))
	}
	if e.Now() != 10 {
		t.Errorf("clock at %v after Run(10)", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 20; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestHorizonExcludesLaterEvents(t *testing.T) {
	e := New(1)
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(5, func() { fired++ })
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired %d events before horizon 3, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d, want 1", e.Pending())
	}
	// The later event fires on a subsequent Run.
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired %d total, want 2", fired)
	}
}

func TestEventAtExactHorizonFires(t *testing.T) {
	e := New(1)
	fired := false
	e.At(3, func() { fired = true })
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event scheduled exactly at the horizon did not fire")
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New(1)
	at := -1.0
	e.Schedule(2, func() {
		e.Schedule(-5, func() { at = e.Now() })
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if at != 2 {
		t.Errorf("negative delay fired at %v, want 2", at)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	e := New(1)
	at := -1.0
	e.Schedule(4, func() {
		e.At(1, func() { at = e.Now() })
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Errorf("past At fired at %v, want clock hold at 4", at)
	}
}

func TestRunBackwardsErrors(t *testing.T) {
	e := New(1)
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(3); err == nil {
		t.Error("Run with horizon in the past should error")
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	fired := 0
	e.Schedule(1, func() {
		fired++
		e.Stop()
	})
	e.Schedule(2, func() { fired++ })
	err := e.Run(10)
	if err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Errorf("fired %d after Stop, want 1", fired)
	}
}

func TestNilCallbackIgnored(t *testing.T) {
	e := New(1)
	e.At(1, nil)
	if e.Pending() != 0 {
		t.Error("nil callback was queued")
	}
}

func TestQueueHighWater(t *testing.T) {
	e := New(1)
	for i := 0; i < 10; i++ {
		e.At(float64(i), func() {})
	}
	if hw := e.QueueHighWater(); hw != 10 {
		t.Errorf("high water = %d, want 10", hw)
	}
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	// Draining the queue must not lower the recorded peak.
	if e.Pending() != 0 || e.QueueHighWater() != 10 {
		t.Errorf("after run: pending %d, high water %d", e.Pending(), e.QueueHighWater())
	}
}

func TestCascadedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(0.5, recurse)
		}
	}
	e.Schedule(0, recurse)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if depth != 100 {
		t.Errorf("cascade reached depth %d, want 100", depth)
	}
	if e.Processed() != 100 {
		t.Errorf("processed %d, want 100", e.Processed())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

// TestQuickTimeOrdering is a property test: any batch of random delays is
// processed in non-decreasing time order.
func TestQuickTimeOrdering(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		e := New(seed)
		rng := rand.New(rand.NewSource(seed))
		var fired []float64
		for range raw {
			e.Schedule(rng.Float64()*100, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(200); err != nil {
			return false
		}
		return sort.Float64sAreSorted(fired) && len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.AfterFunc(2, func() { fired = true })
	e.Schedule(1, func() {
		if !tm.Cancel() {
			t.Error("first Cancel should succeed")
		}
		if tm.Cancel() {
			t.Error("second Cancel should report false")
		}
	})
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestTimerFires(t *testing.T) {
	e := New(1)
	tm := e.AfterFunc(2, func() {})
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if !tm.Fired() {
		t.Error("timer did not fire")
	}
	if tm.Cancel() {
		t.Error("Cancel after firing should report false")
	}
}

func TestTickerPeriodic(t *testing.T) {
	e := New(1)
	ticks := 0
	tk := e.Tick(1, 0, func() { ticks++ })
	if err := e.Run(10.5); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Errorf("got %d ticks in 10.5s at 1Hz, want 10", ticks)
	}
	tk.Cancel()
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Errorf("ticker kept firing after Cancel: %d", ticks)
	}
}

func TestTickerJitterStaggersFirstTick(t *testing.T) {
	e := New(1)
	var first []float64
	for i := 0; i < 10; i++ {
		e.Tick(1, 1.0, func() {})
	}
	_ = first
	// All first ticks must land in (1, 2]; verify via pending count after 1s
	// and after 2s.
	if err := e.Run(0.999); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != 0 {
		t.Errorf("jittered tickers fired before one interval: %d", e.Processed())
	}
	if err := e.Run(2.01); err != nil {
		t.Fatal(err)
	}
	if e.Processed() < 10 {
		t.Errorf("only %d first ticks within jitter window", e.Processed())
	}
}

// TestQueueHeapOrder stress-tests the hand-rolled event heap directly:
// random interleaved pushes and pops must always yield events in strict
// (time, sequence) order.
func TestQueueHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	var seq uint64
	var popped []event
	for round := 0; round < 2000; round++ {
		if len(q) == 0 || rng.Intn(3) > 0 {
			seq++
			q.push(event{at: float64(rng.Intn(50)), seq: seq})
		} else {
			popped = append(popped, q.pop())
		}
	}
	for len(q) > 0 {
		popped = append(popped, q.pop())
	}
	if len(popped) != int(seq) {
		t.Fatalf("popped %d events, pushed %d", len(popped), seq)
	}
	// Each pop returns the minimum of what was in the queue at that moment,
	// so a pop may legitimately precede a later-pushed smaller event; verify
	// instead against a replayed reference: same-time events keep sequence
	// order and within any drain-run times are non-decreasing.
	for i := 1; i < len(popped); i++ {
		if popped[i].at == popped[i-1].at && popped[i].seq < popped[i-1].seq {
			prev, cur := popped[i-1], popped[i]
			// Only a violation if both were in the queue together, which
			// same-instant events pushed before either pop always are when
			// sequence decreases across an equal-time pair popped back to
			// back from one drain; the heap must never emit that.
			t.Fatalf("same-instant events reordered: (%v,%d) before (%v,%d)",
				prev.at, prev.seq, cur.at, cur.seq)
		}
	}
}

// TestQueueDrainSorted drains a fully pre-populated queue and checks the
// total (time, sequence) order, the strongest guarantee the heap makes.
func TestQueueDrainSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var q eventQueue
	for i := 0; i < 5000; i++ {
		q.push(event{at: float64(rng.Intn(100)), seq: uint64(i)})
	}
	prev := event{at: -1}
	for len(q) > 0 {
		ev := q.pop()
		if ev.at < prev.at || (ev.at == prev.at && ev.seq < prev.seq) {
			t.Fatalf("heap order violated: (%v,%d) after (%v,%d)", ev.at, ev.seq, prev.at, prev.seq)
		}
		prev = ev
	}
}

// BenchmarkScheduleRun measures raw event-loop throughput: the cost of
// scheduling and dispatching one event, including queue maintenance. The
// value-based heap keeps this allocation-free apart from slice growth.
func BenchmarkScheduleRun(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		if i%1024 == 1023 {
			if err := e.Run(e.Now() + 2); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestTickerCancelInsideCallback(t *testing.T) {
	e := New(1)
	ticks := 0
	var tk *Ticker
	tk = e.Tick(1, 0, func() {
		ticks++
		if ticks == 3 {
			tk.Cancel()
		}
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Errorf("got %d ticks, want 3 (cancelled from callback)", ticks)
	}
}
