// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in scheduling order,
// which together with explicit seeding makes every run reproducible. All
// simulation subsystems (mobility, radio, routing, traffic, attacks) hang
// off a single Engine, mirroring the single-threaded event loop of ns-2.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrStopped is returned by Run when the engine was halted via Stop before
// the horizon was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a callback scheduled to run at a virtual time.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventQueue is a binary min-heap of event values ordered by (time,
// sequence). It is hand-rolled rather than built on container/heap so
// pushes and pops move plain struct values: no per-event heap allocation
// and no boxing of events through the `any` interface, which together
// account for one allocation per scheduled event on the simulator's
// hottest path.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push inserts ev and restores the heap invariant (sift-up).
func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest event (sift-down).
func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = event{} // release the callback for GC
	h = h[:n]
	*q = h
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// Engine is a single-threaded discrete-event scheduler with a virtual clock
// measured in seconds. The zero value is not usable; construct with New.
type Engine struct {
	now       float64
	seq       uint64
	queue     eventQueue
	rng       *rand.Rand
	stopped   bool
	processed uint64
	highWater int
}

// New returns an engine whose random stream is seeded with seed. All
// stochastic simulation components must draw from Engine.Rand so that a
// scenario is fully determined by its seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// QueueHighWater reports the largest number of events ever pending at
// once — the event queue's memory high-water mark, an observability
// signal for runaway scheduling (e.g. a broadcast storm).
func (e *Engine) QueueHighWater() int { return e.highWater }

// Schedule runs fn after delay seconds of virtual time. A negative delay is
// treated as zero (fire as soon as possible, after already-queued events at
// the current instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current instant so the clock never moves backwards.
func (e *Engine) At(t float64, fn func()) {
	if fn == nil {
		return
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.push(event{at: t, seq: e.seq, fn: fn})
	if n := len(e.queue); n > e.highWater {
		e.highWater = n
	}
}

// Stop halts a Run in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in timestamp order until the queue drains or the
// virtual clock would pass until. Events scheduled exactly at the horizon
// still fire. It returns ErrStopped if Stop was called.
func (e *Engine) Run(until float64) error {
	if until < e.now {
		return fmt.Errorf("sim: horizon %v is before current time %v", until, e.now)
	}
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		if e.queue[0].at > until {
			break
		}
		next := e.queue.pop()
		e.now = next.at
		e.processed++
		next.fn()
	}
	e.now = until
	return nil
}
