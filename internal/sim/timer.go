package sim

// Timer is a cancellable scheduled callback. Protocol layers use timers for
// retransmissions, route lifetimes and periodic beacons; cancelling marks
// the event dead rather than removing it from the heap, which keeps
// scheduling O(log n).
type Timer struct {
	cancelled bool
	fired     bool
}

// AfterFunc schedules fn to run after delay seconds and returns a handle
// that can cancel it before it fires.
func (e *Engine) AfterFunc(delay float64, fn func()) *Timer {
	t := &Timer{}
	e.Schedule(delay, func() {
		if t.cancelled {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// Cancel prevents the timer's callback from running. It reports whether the
// call actually stopped the timer (false if it already fired or was already
// cancelled).
func (t *Timer) Cancel() bool {
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	return true
}

// Fired reports whether the callback has run.
func (t *Timer) Fired() bool { return t.fired }

// Ticker invokes fn every interval seconds until cancelled. The first tick
// fires after one full interval plus the optional jitter drawn once at
// creation (jitterFrac of the interval), which prevents network-wide beacon
// synchronisation just as ns-2 staggers HELLO timers.
type Ticker struct {
	cancelled bool
}

// Tick schedules a periodic callback and returns a cancellation handle.
func (e *Engine) Tick(interval, jitterFrac float64, fn func()) *Ticker {
	tk := &Ticker{}
	first := interval
	if jitterFrac > 0 {
		first += interval * jitterFrac * e.rng.Float64()
	}
	var loop func()
	loop = func() {
		if tk.cancelled {
			return
		}
		fn()
		if tk.cancelled {
			return
		}
		e.Schedule(interval, loop)
	}
	e.Schedule(first, loop)
	return tk
}

// Cancel stops future ticks. Safe to call multiple times.
func (t *Ticker) Cancel() { t.cancelled = true }
