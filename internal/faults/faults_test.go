package faults

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"crossfeature/internal/packet"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		NodeCrash:       "node-crash",
		LinkFlap:        "link-flap",
		NoiseBurst:      "noise-burst",
		SamplerDrop:     "sampler-drop",
		SamplerTruncate: "sampler-truncate",
		SamplerJitter:   "sampler-jitter",
		Kind(99):        "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestSessionsHelperSorts(t *testing.T) {
	s := Sessions(50, 300, 100, 200)
	if len(s) != 3 || s[0].Start != 100 || s[1].Start != 200 || s[2].Start != 300 {
		t.Errorf("Sessions = %v (must sort by start)", s)
	}
	if s[0].End() != 150 {
		t.Errorf("End = %v, want 150", s[0].End())
	}
}

func TestValidateSessions(t *testing.T) {
	cases := []struct {
		name     string
		sessions []Session
		wantErr  string
	}{
		{"empty", nil, "no sessions"},
		{"zero duration", []Session{{Start: 10, Duration: 0}}, "non-positive duration"},
		{"negative duration", []Session{{Start: 10, Duration: -5}}, "non-positive duration"},
		{"negative start", []Session{{Start: -1, Duration: 5}}, "negative"},
		{"overlap", []Session{{Start: 0, Duration: 20}, {Start: 10, Duration: 5}}, "overlaps"},
		{"touching ok", []Session{{Start: 0, Duration: 10}, {Start: 10, Duration: 5}}, ""},
		{"disjoint ok", []Session{{Start: 0, Duration: 5}, {Start: 100, Duration: 5}}, ""},
	}
	for _, c := range cases {
		err := ValidateSessions(c.sessions)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	ok := Sessions(10, 100)
	cases := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{"crash ok", Spec{Kind: NodeCrash, Node: 3, Sessions: ok}, false},
		{"crash node high", Spec{Kind: NodeCrash, Node: 10, Sessions: ok}, true},
		{"crash node negative", Spec{Kind: NodeCrash, Node: -1, Sessions: ok}, true},
		{"flap ok", Spec{Kind: LinkFlap, Node: 0, Peer: 1, Sessions: ok}, false},
		{"flap same endpoints", Spec{Kind: LinkFlap, Node: 2, Peer: 2, Sessions: ok}, true},
		{"flap peer high", Spec{Kind: LinkFlap, Node: 0, Peer: 10, Sessions: ok}, true},
		{"noise ok", Spec{Kind: NoiseBurst, Sessions: ok}, false},
		{"sampler drop ok", Spec{Kind: SamplerDrop, Node: 0, Sessions: ok}, false},
		{"unknown kind", Spec{Kind: Kind(42), Node: 0, Sessions: ok}, true},
		{"no sessions", Spec{Kind: NodeCrash, Node: 0}, true},
		{"bad dead frac", Spec{Kind: LinkFlap, Node: 0, Peer: 1, Sessions: ok, FlapDeadFrac: 1.5}, true},
		{"bad flap loss", Spec{Kind: LinkFlap, Node: 0, Peer: 1, Sessions: ok, FlapLoss: -0.5}, true},
		{"bad noise loss", Spec{Kind: NoiseBurst, Sessions: ok, NoiseLoss: 1.0}, true},
		{"bad jitter", Spec{Kind: SamplerJitter, Node: 0, Sessions: ok, MaxJitter: -1}, true},
	}
	for _, c := range cases {
		err := c.spec.Validate(10)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: Validate = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

func TestPlanValidateCrossSpecOverlap(t *testing.T) {
	// Two crash specs on the same node with overlapping sessions: invalid.
	p := Plan{Specs: []Spec{
		{Kind: NodeCrash, Node: 3, Sessions: Sessions(100, 1000)},
		{Kind: NodeCrash, Node: 3, Sessions: Sessions(100, 1050)},
	}}
	if err := p.Validate(10); err == nil {
		t.Error("overlapping same-kind same-node sessions across specs accepted")
	}
	// Same schedule on different nodes: fine.
	p.Specs[1].Node = 4
	if err := p.Validate(10); err != nil {
		t.Errorf("disjoint nodes rejected: %v", err)
	}
	// Different kinds on one node may overlap (a crash during a sampler
	// jitter window is coherent).
	p = Plan{Specs: []Spec{
		{Kind: NodeCrash, Node: 3, Sessions: Sessions(100, 1000)},
		{Kind: SamplerJitter, Node: 3, Sessions: Sessions(100, 1000)},
	}}
	if err := p.Validate(10); err != nil {
		t.Errorf("different kinds on one node rejected: %v", err)
	}
	// Noise bursts stack additively; overlap is legal.
	p = Plan{Specs: []Spec{
		{Kind: NoiseBurst, Sessions: Sessions(100, 1000)},
		{Kind: NoiseBurst, Sessions: Sessions(100, 1050)},
	}}
	if err := p.Validate(10); err != nil {
		t.Errorf("overlapping noise bursts rejected: %v", err)
	}
}

func TestPlanQueries(t *testing.T) {
	p := Plan{Specs: []Spec{
		{Kind: NodeCrash, Node: 2, Sessions: Sessions(50, 100)},
		{Kind: SamplerDrop, Node: 0, Sessions: Sessions(50, 200)},
		{Kind: SamplerTruncate, Node: 0, Sessions: Sessions(50, 300)},
		{Kind: SamplerJitter, Node: 0, Sessions: Sessions(50, 400), MaxJitter: 2.5},
	}}
	if !p.CrashedAt(2, 120) || p.CrashedAt(2, 160) || p.CrashedAt(0, 120) {
		t.Error("CrashedAt wrong")
	}
	if !p.SamplerDropAt(0, 220) || p.SamplerDropAt(0, 260) || p.SamplerDropAt(1, 220) {
		t.Error("SamplerDropAt wrong")
	}
	if !p.SamplerTruncateAt(0, 320) || p.SamplerTruncateAt(0, 360) {
		t.Error("SamplerTruncateAt wrong")
	}
	if j := p.SamplerJitterAt(0, 420); j != 2.5 {
		t.Errorf("SamplerJitterAt = %v, want 2.5", j)
	}
	if j := p.SamplerJitterAt(0, 460); j != 0 {
		t.Errorf("SamplerJitterAt outside session = %v, want 0", j)
	}
	if !p.HasSamplerFaults(0) {
		t.Error("node 0 has sampler faults")
	}
	if !p.HasSamplerFaults(2) {
		t.Error("a crashing node cannot snapshot: HasSamplerFaults must be true")
	}
	if p.HasSamplerFaults(1) {
		t.Error("node 1 has no sampler faults")
	}
	if !(Plan{}).Empty() || p.Empty() {
		t.Error("Empty wrong")
	}
}

func TestDefaultJitter(t *testing.T) {
	p := Plan{Specs: []Spec{
		{Kind: SamplerJitter, Node: 0, Sessions: Sessions(50, 100)},
	}}
	if j := p.SamplerJitterAt(0, 120); j != DefaultMaxJitter {
		t.Errorf("default jitter = %v, want %v", j, DefaultMaxJitter)
	}
}

// fakeHost records fault actions against the virtual times they fire at.
type fakeHost struct {
	now   float64
	queue []event
	log   []string
}

type event struct {
	at float64
	fn func()
}

func (h *fakeHost) At(t float64, fn func()) {
	h.queue = append(h.queue, event{at: t, fn: fn})
}

func (h *fakeHost) record(at float64, format string, args ...interface{}) {
	h.log = append(h.log, fmt.Sprintf("%g: ", at)+fmt.Sprintf(format, args...))
}

// run fires queued events in time order, letting callbacks log with their
// fire time.
func (h *fakeHost) run() {
	sort.SliceStable(h.queue, func(i, j int) bool { return h.queue[i].at < h.queue[j].at })
	for i := 0; i < len(h.queue); i++ {
		h.now = h.queue[i].at
		h.queue[i].fn()
	}
}

func (h *fakeHost) SetNodeDown(id packet.NodeID, down bool) {
	h.record(h.now, "down(%d)=%v", id, down)
}
func (h *fakeHost) RestartNode(id packet.NodeID) { h.record(h.now, "restart(%d)", id) }
func (h *fakeHost) SetLinkLoss(a, b packet.NodeID, loss float64) {
	h.record(h.now, "link(%d,%d)=%g", a, b, loss)
}
func (h *fakeHost) AddNoise(delta float64) { h.record(h.now, "noise%+g", delta) }

func TestInstallNodeCrash(t *testing.T) {
	h := &fakeHost{}
	Install(h, Plan{Specs: []Spec{
		{Kind: NodeCrash, Node: 7, Sessions: Sessions(20, 100)},
	}})
	h.run()
	want := []string{"100: down(7)=true", "120: down(7)=false", "120: restart(7)"}
	if fmt.Sprint(h.log) != fmt.Sprint(want) {
		t.Errorf("crash schedule:\n got %v\nwant %v", h.log, want)
	}
}

func TestInstallLinkFlapDutyCycle(t *testing.T) {
	h := &fakeHost{}
	Install(h, Plan{Specs: []Spec{
		{Kind: LinkFlap, Node: 1, Peer: 2, Sessions: []Session{{Start: 0, Duration: 10}},
			FlapPeriod: 4, FlapDeadFrac: 0.5, FlapLoss: 0.9},
	}})
	h.run()
	// Dead phases [0,2), [4,6), [8,10); session-end clears at 10.
	want := []string{
		"0: link(1,2)=0.9", "2: link(1,2)=0",
		"4: link(1,2)=0.9", "6: link(1,2)=0",
		"8: link(1,2)=0.9", "10: link(1,2)=0", "10: link(1,2)=0",
	}
	if fmt.Sprint(h.log) != fmt.Sprint(want) {
		t.Errorf("flap schedule:\n got %v\nwant %v", h.log, want)
	}
}

func TestInstallNoiseBurst(t *testing.T) {
	h := &fakeHost{}
	Install(h, Plan{Specs: []Spec{
		{Kind: NoiseBurst, NoiseLoss: 0.25, Sessions: Sessions(30, 50)},
	}})
	h.run()
	want := []string{"50: noise+0.25", "80: noise-0.25"}
	if fmt.Sprint(h.log) != fmt.Sprint(want) {
		t.Errorf("noise schedule:\n got %v\nwant %v", h.log, want)
	}
}

func TestInstallSamplerFaultsScheduleNothing(t *testing.T) {
	h := &fakeHost{}
	Install(h, Plan{Specs: []Spec{
		{Kind: SamplerDrop, Node: 0, Sessions: Sessions(10, 100)},
		{Kind: SamplerTruncate, Node: 0, Sessions: Sessions(10, 200)},
		{Kind: SamplerJitter, Node: 0, Sessions: Sessions(10, 300)},
	}})
	if len(h.queue) != 0 {
		t.Errorf("sampler faults scheduled %d radio events; the sampler queries the plan instead", len(h.queue))
	}
}
