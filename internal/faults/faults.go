// Package faults injects benign environmental faults into the simulator.
// Where internal/attack models deliberate intrusions (black hole, selective
// dropping, update storm), this package models the failures a production
// anomaly detector must survive without drowning in false alarms: node
// crash/restart cycles, link flapping, region-wide noise bursts and audit
// sampler faults (dropped or truncated snapshots, sampler clock jitter).
// It reuses the Spec/Session/Plan session-scheduling idiom of the attack
// package so fault campaigns compose with intrusion schedules.
package faults

import (
	"fmt"
	"sort"

	"crossfeature/internal/packet"
)

// Kind enumerates the implemented environmental faults.
type Kind int

const (
	// NodeCrash silences a node for each session: it neither transmits nor
	// receives, and on restart it has lost its route table and its audit
	// counters (a cold reboot).
	NodeCrash Kind = iota + 1
	// LinkFlap degrades one link on a duty cycle: during the dead phase of
	// each flap period the link's delivery probability drops to ~0.
	LinkFlap
	// NoiseBurst raises the frame loss probability network-wide for the
	// duration of each session (a jamming-like interference event, benign
	// in intent).
	NoiseBurst
	// SamplerDrop loses the monitored node's audit snapshots that fall
	// inside a session, leaving gaps in the snapshot sequence.
	SamplerDrop
	// SamplerTruncate truncates snapshots inside a session: the traffic
	// statistics table is lost and only Feature Set I survives.
	SamplerTruncate
	// SamplerJitter perturbs the sampler's clock during a session, so
	// snapshots are taken late by a bounded random offset.
	SamplerJitter
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case LinkFlap:
		return "link-flap"
	case NoiseBurst:
		return "noise-burst"
	case SamplerDrop:
		return "sampler-drop"
	case SamplerTruncate:
		return "sampler-truncate"
	case SamplerJitter:
		return "sampler-jitter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Session is one on-interval of a fault.
type Session struct {
	Start    float64
	Duration float64
}

// End is the session's off time.
func (s Session) End() float64 { return s.Start + s.Duration }

// Sessions builds a schedule of equal-duration sessions at the given start
// times, sorted by start.
func Sessions(duration float64, starts ...float64) []Session {
	out := make([]Session, 0, len(starts))
	for _, s := range starts {
		out = append(out, Session{Start: s, Duration: duration})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ValidateSessions rejects empty schedules, non-positive durations,
// negative starts and overlapping sessions.
func ValidateSessions(sessions []Session) error {
	if len(sessions) == 0 {
		return fmt.Errorf("no sessions scheduled")
	}
	sorted := append([]Session(nil), sessions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, s := range sorted {
		if s.Duration <= 0 {
			return fmt.Errorf("session at %g has non-positive duration %g", s.Start, s.Duration)
		}
		if s.Start < 0 {
			return fmt.Errorf("session start %g is negative", s.Start)
		}
		if i > 0 && s.Start < sorted[i-1].End() {
			return fmt.Errorf("session at %g overlaps session [%g,%g)",
				s.Start, sorted[i-1].Start, sorted[i-1].End())
		}
	}
	return nil
}

// Default fault-shape parameters, used when the corresponding Spec field is
// zero.
const (
	// DefaultFlapPeriod is the link-flap duty-cycle period in seconds.
	DefaultFlapPeriod = 4.0
	// DefaultFlapDeadFrac is the fraction of each flap period the link is
	// dead.
	DefaultFlapDeadFrac = 0.5
	// DefaultFlapLoss is the frame loss probability on a dead link — the
	// link's delivery probability drops to ~0, not exactly 0, so a rare
	// frame still sneaks through as on real flapping radios.
	DefaultFlapLoss = 0.98
	// DefaultNoiseLoss is the extra network-wide frame loss during a noise
	// burst.
	DefaultNoiseLoss = 0.3
	// DefaultMaxJitter is the sampler clock jitter bound in seconds.
	DefaultMaxJitter = 1.0
)

// Spec describes one fault deployment.
type Spec struct {
	Kind Kind
	// Node is the crashing node (NodeCrash), one endpoint of the flapping
	// link (LinkFlap) or the monitored node whose sampler misbehaves
	// (Sampler* kinds). Unused for NoiseBurst.
	Node packet.NodeID
	// Peer is the other endpoint of the flapping link (LinkFlap only).
	Peer     packet.NodeID
	Sessions []Session

	// FlapPeriod and FlapDeadFrac shape the LinkFlap duty cycle; FlapLoss
	// is the loss probability during the dead phase. Zero values take the
	// package defaults.
	FlapPeriod   float64
	FlapDeadFrac float64
	FlapLoss     float64
	// NoiseLoss is the extra loss probability during a NoiseBurst.
	NoiseLoss float64
	// MaxJitter bounds the SamplerJitter clock offset in seconds.
	MaxJitter float64
}

// flapPeriod returns the effective duty-cycle period.
func (s Spec) flapPeriod() float64 {
	if s.FlapPeriod > 0 {
		return s.FlapPeriod
	}
	return DefaultFlapPeriod
}

// flapDeadFrac returns the effective dead fraction.
func (s Spec) flapDeadFrac() float64 {
	if s.FlapDeadFrac > 0 {
		return s.FlapDeadFrac
	}
	return DefaultFlapDeadFrac
}

// flapLoss returns the effective dead-phase loss probability.
func (s Spec) flapLoss() float64 {
	if s.FlapLoss > 0 {
		return s.FlapLoss
	}
	return DefaultFlapLoss
}

// noiseLoss returns the effective noise-burst loss probability.
func (s Spec) noiseLoss() float64 {
	if s.NoiseLoss > 0 {
		return s.NoiseLoss
	}
	return DefaultNoiseLoss
}

// maxJitter returns the effective sampler jitter bound.
func (s Spec) maxJitter() float64 {
	if s.MaxJitter > 0 {
		return s.MaxJitter
	}
	return DefaultMaxJitter
}

// Validate reports structural errors in one spec for a network of the
// given size.
func (s Spec) Validate(nodes int) error {
	if err := ValidateSessions(s.Sessions); err != nil {
		return fmt.Errorf("faults: %s: %w", s.Kind, err)
	}
	switch s.Kind {
	case NodeCrash, SamplerDrop, SamplerTruncate, SamplerJitter:
		if int(s.Node) < 0 || int(s.Node) >= nodes {
			return fmt.Errorf("faults: %s node %d outside [0,%d)", s.Kind, s.Node, nodes)
		}
	case LinkFlap:
		if int(s.Node) < 0 || int(s.Node) >= nodes {
			return fmt.Errorf("faults: %s node %d outside [0,%d)", s.Kind, s.Node, nodes)
		}
		if int(s.Peer) < 0 || int(s.Peer) >= nodes {
			return fmt.Errorf("faults: %s peer %d outside [0,%d)", s.Kind, s.Peer, nodes)
		}
		if s.Peer == s.Node {
			return fmt.Errorf("faults: %s endpoints are both node %d", s.Kind, s.Node)
		}
	case NoiseBurst:
		// network-wide: no node constraints
	default:
		return fmt.Errorf("faults: unknown kind %d", int(s.Kind))
	}
	if s.FlapDeadFrac < 0 || s.FlapDeadFrac > 1 {
		return fmt.Errorf("faults: flap dead fraction %g outside [0,1]", s.FlapDeadFrac)
	}
	if s.FlapLoss < 0 || s.FlapLoss > 1 {
		return fmt.Errorf("faults: flap loss %g outside [0,1]", s.FlapLoss)
	}
	if s.NoiseLoss < 0 || s.NoiseLoss >= 1 {
		return fmt.Errorf("faults: noise loss %g outside [0,1)", s.NoiseLoss)
	}
	if s.MaxJitter < 0 {
		return fmt.Errorf("faults: negative sampler jitter %g", s.MaxJitter)
	}
	return nil
}

// Plan is the full fault schedule of a scenario.
type Plan struct {
	Specs []Spec
}

// Empty reports whether no fault is scheduled.
func (p Plan) Empty() bool { return len(p.Specs) == 0 }

// Validate checks every spec and rejects overlapping sessions of the same
// kind on the same node across specs (two crash schedules fighting over one
// node toggle each other's state incoherently).
func (p Plan) Validate(nodes int) error {
	for _, s := range p.Specs {
		if err := s.Validate(nodes); err != nil {
			return err
		}
	}
	type groupKey struct {
		kind Kind
		node packet.NodeID
	}
	merged := make(map[groupKey][]Session)
	for _, s := range p.Specs {
		if s.Kind == NoiseBurst {
			continue // network-wide bursts stack additively; overlap is legal
		}
		merged[groupKey{s.Kind, s.Node}] = append(merged[groupKey{s.Kind, s.Node}], s.Sessions...)
	}
	for k, sessions := range merged {
		if err := ValidateSessions(sessions); err != nil {
			return fmt.Errorf("faults: %s on node %d: %w", k.kind, k.node, err)
		}
	}
	return nil
}

// activeAt reports whether any session of a spec covers time t.
func activeAt(sessions []Session, t float64) bool {
	for _, s := range sessions {
		if t >= s.Start && t < s.End() {
			return true
		}
	}
	return false
}

// CrashedAt reports whether node is inside a crash session at time t.
func (p Plan) CrashedAt(node packet.NodeID, t float64) bool {
	for _, s := range p.Specs {
		if s.Kind == NodeCrash && s.Node == node && activeAt(s.Sessions, t) {
			return true
		}
	}
	return false
}

// SamplerDropAt reports whether node's snapshot at time t is lost.
func (p Plan) SamplerDropAt(node packet.NodeID, t float64) bool {
	for _, s := range p.Specs {
		if s.Kind == SamplerDrop && s.Node == node && activeAt(s.Sessions, t) {
			return true
		}
	}
	return false
}

// SamplerTruncateAt reports whether node's snapshot at time t is truncated.
func (p Plan) SamplerTruncateAt(node packet.NodeID, t float64) bool {
	for _, s := range p.Specs {
		if s.Kind == SamplerTruncate && s.Node == node && activeAt(s.Sessions, t) {
			return true
		}
	}
	return false
}

// SamplerJitterAt returns the clock jitter bound in force for node's
// sampler at time t (zero when no jitter session is active).
func (p Plan) SamplerJitterAt(node packet.NodeID, t float64) float64 {
	for _, s := range p.Specs {
		if s.Kind == SamplerJitter && s.Node == node && activeAt(s.Sessions, t) {
			return s.maxJitter()
		}
	}
	return 0
}

// HasSamplerFaults reports whether any sampler-level fault targets node;
// the audit loop takes a slower, fault-aware path only when this is true.
func (p Plan) HasSamplerFaults(node packet.NodeID) bool {
	for _, s := range p.Specs {
		switch s.Kind {
		case SamplerDrop, SamplerTruncate, SamplerJitter:
			if s.Node == node {
				return true
			}
		case NodeCrash:
			// A crashed node cannot snapshot either.
			if s.Node == node {
				return true
			}
		}
	}
	return false
}

// Host is what fault injection needs from the network runtime: absolute-
// time scheduling plus the radio and node hooks the faults toggle.
type Host interface {
	// At runs fn at absolute virtual time t.
	At(t float64, fn func())
	// SetNodeDown silences or revives a node's radio.
	SetNodeDown(id packet.NodeID, down bool)
	// RestartNode cold-boots a node: route table and audit counters reset.
	RestartNode(id packet.NodeID)
	// SetLinkLoss sets (or clears, with loss <= 0) an extra loss
	// probability on the link between two nodes.
	SetLinkLoss(a, b packet.NodeID, loss float64)
	// AddNoise adds delta to the network-wide extra loss probability;
	// negative deltas remove a previously added burst.
	AddNoise(delta float64)
}

// Install schedules every radio-level fault of the plan on the host.
// Sampler-level faults (SamplerDrop/SamplerTruncate/SamplerJitter) are not
// scheduled here: the audit sampler queries the plan directly. The plan
// must already be validated.
func Install(h Host, p Plan) {
	for _, spec := range p.Specs {
		spec := spec
		switch spec.Kind {
		case NodeCrash:
			for _, s := range spec.Sessions {
				s := s
				h.At(s.Start, func() { h.SetNodeDown(spec.Node, true) })
				h.At(s.End(), func() {
					h.SetNodeDown(spec.Node, false)
					h.RestartNode(spec.Node)
				})
			}
		case LinkFlap:
			period := spec.flapPeriod()
			dead := period * spec.flapDeadFrac()
			loss := spec.flapLoss()
			for _, s := range spec.Sessions {
				s := s
				for t := s.Start; t < s.End(); t += period {
					t := t
					h.At(t, func() { h.SetLinkLoss(spec.Node, spec.Peer, loss) })
					up := t + dead
					if up > s.End() {
						up = s.End()
					}
					h.At(up, func() { h.SetLinkLoss(spec.Node, spec.Peer, 0) })
				}
				// Belt and braces: whatever phase the duty cycle ended in,
				// the link is healthy after the session.
				h.At(s.End(), func() { h.SetLinkLoss(spec.Node, spec.Peer, 0) })
			}
		case NoiseBurst:
			loss := spec.noiseLoss()
			for _, s := range spec.Sessions {
				s := s
				h.At(s.Start, func() { h.AddNoise(loss) })
				h.At(s.End(), func() { h.AddNoise(-loss) })
			}
		}
	}
}
