package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// RegisterGobModels makes the concrete classifier types gob-encodable
// behind the ml.Classifier interface. Save/Load call it automatically;
// callers embedding an Analyzer in their own gob streams must call it
// before encoding or decoding.
func RegisterGobModels() {
	gob.Register(&c45.Tree{})
	gob.Register(&ripper.RuleSet{})
	gob.Register(&nbayes.Model{})
}

// Save serialises the analyzer with encoding/gob.
func (a *Analyzer) Save(w io.Writer) error {
	RegisterGobModels()
	if err := gob.NewEncoder(w).Encode(a); err != nil {
		return fmt.Errorf("core: encode analyzer: %w", err)
	}
	return nil
}

// Load deserialises an analyzer written by Save.
func Load(r io.Reader) (*Analyzer, error) {
	RegisterGobModels()
	var a Analyzer
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("core: decode analyzer: %w", err)
	}
	return &a, nil
}

// SaveFile writes the analyzer to path.
func (a *Analyzer) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create model file: %w", err)
	}
	defer f.Close()
	if err := a.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads an analyzer from path.
func LoadFile(path string) (*Analyzer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open model file: %w", err)
	}
	defer f.Close()
	return Load(f)
}
