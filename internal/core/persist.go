package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"crossfeature/internal/failpoint"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// Durable cfa files (model snapshots, serve checkpoints) carry a fixed
// frame header in front of their payload so a loader can tell a valid
// file from a truncated, corrupted or foreign/legacy one *before*
// handing bytes to the payload decoder (gob panics or misbehaves on
// garbage). Layout, all integers big-endian:
//
//	offset size
//	0      4    magic (4 ASCII bytes naming the file kind, e.g. "CFAS")
//	4      2    format version
//	6      4    CRC32-C (Castagnoli) of the payload
//	10     8    payload length in bytes
//	18     n    payload
//
// The file must end exactly at the payload: trailing bytes are treated
// as corruption, as is any length or checksum mismatch. Model snapshots
// use magic "CFAS" with a gob payload; the serve checkpoint format
// reuses the same frame (WriteFrame/ReadFrame) under its own magic.
const (
	snapshotMagic   = "CFAS"
	snapshotVersion = 1
	// FrameHeaderLen is the fixed size of the frame header in bytes.
	FrameHeaderLen = 18
	snapshotHdrLen = FrameHeaderLen
	// snapshotMaxLen caps the declared payload length so a corrupt header
	// cannot drive a multi-gigabyte allocation.
	snapshotMaxLen = 1 << 31
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// Failpoints on the durable-write path; disarmed in production, armed by
// the chaos suites to manufacture crashes and torn files on demand.
var (
	fpPersistPayload = failpoint.At("core/persist/payload")
	fpPersistRename  = failpoint.At("core/persist/pre-rename")
)

// ErrSnapshotFormat marks files that are not versioned cfa snapshots at
// all: wrong magic (legacy raw-gob model files, arbitrary files) or a
// format version newer than this binary understands.
var ErrSnapshotFormat = errors.New("unrecognised model snapshot format")

// ErrSnapshotCorrupt marks files that carry the snapshot header but fail
// validation: truncated payload, checksum mismatch, trailing garbage or
// an undecodable payload.
var ErrSnapshotCorrupt = errors.New("model snapshot corrupt")

// RegisterGobModels makes the concrete classifier types gob-encodable
// behind the ml.Classifier interface. The snapshot codec calls it
// automatically; callers embedding an Analyzer in their own gob streams
// must call it before encoding or decoding.
func RegisterGobModels() {
	gob.Register(&c45.Tree{})
	gob.Register(&ripper.RuleSet{})
	gob.Register(&nbayes.Model{})
}

// WriteFrame writes payload under a versioned, CRC-checked frame header.
// magic must be exactly 4 ASCII bytes naming the file kind.
func WriteFrame(w io.Writer, magic string, version uint16, payload []byte) error {
	if len(magic) != 4 {
		return fmt.Errorf("core: frame magic %q must be 4 bytes", magic)
	}
	var hdr [FrameHeaderLen]byte
	copy(hdr[:4], magic)
	binary.BigEndian.PutUint16(hdr[4:6], version)
	binary.BigEndian.PutUint32(hdr[6:10], crc32.Checksum(payload, snapshotCRC))
	binary.BigEndian.PutUint64(hdr[10:18], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("core: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame validates a frame written by WriteFrame — magic, version,
// length, checksum — and returns its payload. Every failure mode maps to
// ErrSnapshotFormat (not one of ours, or a version this build does not
// read) or ErrSnapshotCorrupt (damaged), so callers holding previous
// state can keep it on any error.
func ReadFrame(r io.Reader, magic string, version uint16) ([]byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header truncated (%v)", ErrSnapshotCorrupt, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q, want %q (legacy unversioned file?)", ErrSnapshotFormat, hdr[:4], magic)
	}
	if ver := binary.BigEndian.Uint16(hdr[4:6]); ver != version {
		return nil, fmt.Errorf("%w: file version %d, this build reads version %d",
			ErrSnapshotFormat, ver, version)
	}
	wantCRC := binary.BigEndian.Uint32(hdr[6:10])
	length := binary.BigEndian.Uint64(hdr[10:18])
	if length > snapshotMaxLen {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrSnapshotCorrupt, length)
	}
	payload := bytes.NewBuffer(make([]byte, 0, int(length)))
	n, err := io.Copy(payload, io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrSnapshotCorrupt, err)
	}
	if uint64(n) < length {
		return nil, fmt.Errorf("%w: payload truncated at %d of %d bytes", ErrSnapshotCorrupt, n, length)
	}
	if extra, _ := io.CopyN(io.Discard, r, 1); extra != 0 {
		return nil, fmt.Errorf("%w: trailing data after %d-byte payload", ErrSnapshotCorrupt, length)
	}
	if got := crc32.Checksum(payload.Bytes(), snapshotCRC); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, payload %08x)", ErrSnapshotCorrupt, wantCRC, got)
	}
	return payload.Bytes(), nil
}

// WriteSnapshot writes v as a versioned, checksummed snapshot.
func WriteSnapshot(w io.Writer, v any) error {
	RegisterGobModels()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return WriteFrame(w, snapshotMagic, snapshotVersion, payload.Bytes())
}

// ReadSnapshot validates a snapshot written by WriteSnapshot — magic,
// version, length, checksum — and only then gob-decodes the payload into
// v. Every failure mode maps to ErrSnapshotFormat or ErrSnapshotCorrupt
// so callers can distinguish "not one of ours" from "damaged".
func ReadSnapshot(r io.Reader, v any) error {
	RegisterGobModels()
	payload, err := ReadFrame(r, snapshotMagic, snapshotVersion)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("%w: decode payload: %v", ErrSnapshotCorrupt, err)
	}
	return nil
}

// AtomicWriteFile writes a file atomically: write produces the content
// into a temp file in path's directory, which is flushed to disk and only
// then renamed over path. A crash (or write error) at any point leaves
// either the old file or the new one in place — never a half-written
// file. Exposed so other durable artifacts (the serve checkpoint) share
// one battle-tested install sequence.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: create temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("core: sync %s: %w", filepath.Base(path), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("core: close %s: %w", filepath.Base(path), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: install %s: %w", filepath.Base(path), err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteSnapshotFile writes v to path atomically via AtomicWriteFile. The
// payload write runs through the core/persist/payload failpoint (torn and
// failed writes on demand) and core/persist/pre-rename fires between the
// payload landing and the rename, where a crash is most interesting.
func WriteSnapshotFile(path string, v any) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		if err := WriteSnapshot(fpPersistPayload.Writer(w), v); err != nil {
			return err
		}
		if err := fpPersistRename.Hit(); err != nil {
			return fmt.Errorf("core: write model file: %w", err)
		}
		return nil
	})
}

// ReadSnapshotFile reads a snapshot written by WriteSnapshotFile. Errors
// carry the path and stay on one line, fit for an operator-facing CLI.
func ReadSnapshotFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: open model file: %w", err)
	}
	defer f.Close()
	if err := ReadSnapshot(f, v); err != nil {
		return fmt.Errorf("model %s: %w", path, err)
	}
	return nil
}

// Save serialises the analyzer as a versioned snapshot.
func (a *Analyzer) Save(w io.Writer) error {
	return WriteSnapshot(w, a)
}

// Load deserialises an analyzer written by Save.
func Load(r io.Reader) (*Analyzer, error) {
	var a Analyzer
	if err := ReadSnapshot(r, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// SaveFile writes the analyzer to path atomically.
func (a *Analyzer) SaveFile(path string) error {
	return WriteSnapshotFile(path, a)
}

// LoadFile reads an analyzer from path.
func LoadFile(path string) (*Analyzer, error) {
	var a Analyzer
	if err := ReadSnapshotFile(path, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// Bundle is the deployable model artifact `cfa train` emits and the
// scoring paths (`cfa detect/curve/inspect/serve`) consume: the trained
// analyzer, the discretiser that maps raw audit vectors onto its schema,
// and the calibrated operating point.
type Bundle struct {
	Analyzer    *Analyzer
	Discretizer *features.Discretizer
	Threshold   float64
	Scorer      Scorer

	// Fallback, when present, is a cheap naive-Bayes ensemble trained on
	// the same discretised dataset as Analyzer, with its own calibrated
	// threshold. The serving layer's brownout mode scores through it when
	// the primary ensemble can no longer keep up with offered load: NB
	// inference compiles to flat count-table lookups, the cheapest kernel
	// of the three learners. Nil when the primary learner is already NBC
	// (the fallback would be the primary) and in bundles written before
	// the field existed — gob leaves absent fields zero, so old snapshots
	// load unchanged.
	Fallback          *Analyzer
	FallbackThreshold float64
}

// Validate checks the structural invariants a loaded bundle must satisfy
// before it may serve traffic. Load goes through this, so a snapshot that
// decodes but is semantically hollow (nil analyzer, no sub-models, schema
// mismatch, non-finite threshold) is rejected like any other corruption.
func (b *Bundle) Validate() error {
	switch {
	case b.Analyzer == nil:
		return fmt.Errorf("%w: bundle has no analyzer", ErrSnapshotCorrupt)
	case b.Analyzer.NumModels() == 0:
		return fmt.Errorf("%w: bundle analyzer has no sub-models", ErrSnapshotCorrupt)
	case b.Discretizer == nil:
		return fmt.Errorf("%w: bundle has no discretizer", ErrSnapshotCorrupt)
	case len(b.Discretizer.Cuts) != len(b.Analyzer.Attrs):
		return fmt.Errorf("%w: discretizer width %d does not match analyzer schema %d",
			ErrSnapshotCorrupt, len(b.Discretizer.Cuts), len(b.Analyzer.Attrs))
	case math.IsNaN(b.Threshold) || math.IsInf(b.Threshold, 0):
		return fmt.Errorf("%w: non-finite threshold %v", ErrSnapshotCorrupt, b.Threshold)
	case b.Scorer != MatchCount && b.Scorer != Probability:
		return fmt.Errorf("%w: unknown scorer %d", ErrSnapshotCorrupt, int(b.Scorer))
	}
	if b.Fallback != nil {
		switch {
		case b.Fallback.NumModels() == 0:
			return fmt.Errorf("%w: bundle fallback analyzer has no sub-models", ErrSnapshotCorrupt)
		case len(b.Fallback.Attrs) != len(b.Analyzer.Attrs):
			return fmt.Errorf("%w: fallback schema width %d does not match primary %d",
				ErrSnapshotCorrupt, len(b.Fallback.Attrs), len(b.Analyzer.Attrs))
		case math.IsNaN(b.FallbackThreshold) || math.IsInf(b.FallbackThreshold, 0):
			return fmt.Errorf("%w: non-finite fallback threshold %v", ErrSnapshotCorrupt, b.FallbackThreshold)
		}
	}
	return nil
}

// Detector builds the bundle's detector at its calibrated threshold.
func (b *Bundle) Detector() *Detector {
	return &Detector{Analyzer: b.Analyzer, Scorer: b.Scorer, Threshold: b.Threshold}
}

// FallbackDetector builds the degraded-mode NB detector at its own
// calibrated threshold, or nil when the bundle carries no fallback. The
// combination rule is shared with the primary so scores from both stay in
// the same [0,1] range.
func (b *Bundle) FallbackDetector() *Detector {
	if b.Fallback == nil {
		return nil
	}
	return &Detector{Analyzer: b.Fallback, Scorer: b.Scorer, Threshold: b.FallbackThreshold}
}

// SaveFile writes the bundle to path atomically.
func (b *Bundle) SaveFile(path string) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("core: refusing to save invalid bundle: %w", err)
	}
	return WriteSnapshotFile(path, b)
}

// LoadBundleFile reads and fully validates a bundle from path: header,
// checksum, gob payload and structural invariants all pass before the
// bundle is returned, so a caller holding an old model can safely keep it
// on any error.
func LoadBundleFile(path string) (*Bundle, error) {
	var b Bundle
	if err := ReadSnapshotFile(path, &b); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("model %s: %w", path, err)
	}
	return &b, nil
}
