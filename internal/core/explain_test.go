package core

import (
	"strings"
	"testing"

	"crossfeature/internal/ml"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/obs"
)

func TestExplainMatchesScores(t *testing.T) {
	a := &Analyzer{
		Attrs: []ml.Attr{{Name: "f0", Card: 2}, {Name: "f1", Card: 2}, {Name: "f2", Card: 2}},
		Models: []ml.Classifier{
			fixedClassifier{[]float64{0.9, 0.1}},
			nil,
			fixedClassifier{[]float64{0.3, 0.7}},
		},
	}
	x := []int{0, 1, 1}
	res := a.Explain(x)
	if res.MatchScore != a.AvgMatchCount(x) {
		t.Errorf("MatchScore = %v, AvgMatchCount = %v", res.MatchScore, a.AvgMatchCount(x))
	}
	if res.ProbScore != a.AvgProbability(x) {
		t.Errorf("ProbScore = %v, AvgProbability = %v", res.ProbScore, a.AvgProbability(x))
	}
	if res.Score(MatchCount) != res.MatchScore || res.Score(Probability) != res.ProbScore {
		t.Error("Score(scorer) does not select the matching field")
	}
	// Nil models contribute nothing; two retained sub-models remain.
	if len(res.Contribs) != 2 {
		t.Fatalf("contribs = %d, want 2", len(res.Contribs))
	}
	c0, c2 := res.Contribs[0], res.Contribs[1]
	if c0.Index != 0 || c0.Feature != "f0" || !c0.Match || c0.Prob != 0.9 {
		t.Errorf("f0 contribution = %+v", c0)
	}
	if c2.Index != 2 || c2.Feature != "f2" || !c2.Match || c2.Prob != 0.7 {
		t.Errorf("f2 contribution = %+v", c2)
	}
}

func TestExplainMissingFeature(t *testing.T) {
	a := &Analyzer{
		Attrs: []ml.Attr{{Name: "f0", Card: 3, HasUnknown: true}, {Name: "f1", Card: 2}},
		Models: []ml.Classifier{
			fixedClassifier{[]float64{0.6, 0.3, 0.1}},
			fixedClassifier{[]float64{0.2, 0.8}},
		},
	}
	x := []int{2, 1} // f0's value 2 is its unknown class
	res := a.Explain(x)
	if res.MatchScore != a.AvgMatchCount(x) || res.ProbScore != a.AvgProbability(x) {
		t.Errorf("partial-average scores diverge: %+v", res)
	}
	if len(res.Contribs) != 2 || !res.Contribs[0].Missing || res.Contribs[1].Missing {
		t.Errorf("missing flags wrong: %+v", res.Contribs)
	}
}

// TestExplainTrainedParity is the load-bearing guarantee: on a trained
// analyzer (normal levels recorded, so partial averages are debiased),
// Explain must reproduce Score bit-for-bit for complete and degraded
// events alike.
func TestExplainTrainedParity(t *testing.T) {
	ds := correlatedDataset(t, 300, 7)
	a, err := Train(ds, nbayes.NewLearner(), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events := [][]int{
		{0, 0, 1},
		{1, 2, 0},  // broken correlation
		{2, -1, 1}, // degraded record: f1 missing -> debias path
		{-1, -1, 2},
	}
	for _, x := range events {
		res := a.Explain(x)
		if got, want := res.MatchScore, a.AvgMatchCount(x); got != want {
			t.Errorf("Explain(%v).MatchScore = %v, AvgMatchCount = %v", x, got, want)
		}
		if got, want := res.ProbScore, a.AvgProbability(x); got != want {
			t.Errorf("Explain(%v).ProbScore = %v, AvgProbability = %v", x, got, want)
		}
		for _, c := range res.Contribs {
			if c.NormalProb <= 0 || c.NormalProb > 1 {
				t.Errorf("contribution %q has NormalProb %v outside (0,1]", c.Feature, c.NormalProb)
			}
		}
	}
}

func TestScoreMetrics(t *testing.T) {
	a := &Analyzer{
		Attrs: []ml.Attr{{Name: "f0", Card: 2}, {Name: "f1", Card: 3, HasUnknown: true}},
		Models: []ml.Classifier{
			fixedClassifier{[]float64{0.9, 0.1}},
			fixedClassifier{[]float64{0.5, 0.4, 0.1}},
		},
	}
	reg := obs.NewRegistry()
	m := NewScoreMetrics(reg, a, "cfa")
	m.Observe(a.Explain([]int{0, 0})) // both match
	m.Observe(a.Explain([]int{1, 1})) // both mismatch
	m.Observe(a.Explain([]int{0, 2})) // f1 missing

	var counts = map[string]float64{}
	for _, p := range reg.Snapshot() {
		key := p.Name
		for _, l := range p.Labels {
			key += "{" + l.Value + "}"
		}
		counts[key] = p.Value
	}
	want := map[string]float64{
		"cfa_feature_checked_total{f0}": 3,
		"cfa_feature_checked_total{f1}": 2,
		"cfa_feature_match_total{f0}":   2,
		"cfa_feature_match_total{f1}":   1,
		"cfa_feature_missing_total{f0}": 0,
		"cfa_feature_missing_total{f1}": 1,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("%s = %v, want %v", k, counts[k], v)
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `cfa_feature_prob_count{feature="f0"} 3`) {
		t.Errorf("probability histogram not exported:\n%s", out)
	}
	// Sum of f0's observed probabilities: 0.9 + 0.1 + 0.9.
	if !strings.Contains(out, `cfa_feature_prob_sum{feature="f0"} 1.9`) {
		t.Errorf("probability histogram sum wrong:\n%s", out)
	}
}

func TestScoreMetricsIgnoresForeignContribs(t *testing.T) {
	a := &Analyzer{
		Attrs:  []ml.Attr{{Name: "f0", Card: 2}},
		Models: []ml.Classifier{fixedClassifier{[]float64{0.9, 0.1}}},
	}
	reg := obs.NewRegistry()
	m := NewScoreMetrics(reg, a, "x")
	// A contribution whose index exceeds the metric tables must be skipped,
	// not panic — the explained event may come from a newer model.
	m.Observe(ExplainResult{Contribs: []Contribution{{Index: 5, Feature: "ghost"}}})
	if got := len(reg.Snapshot()); got == 0 {
		t.Fatal("registry empty")
	}
}
