package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossfeature/internal/failpoint"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/nbayes"
)

// testBundle trains a small but real bundle: correlated continuous rows,
// a fitted discretizer and a naive Bayes ensemble.
func testBundle(t *testing.T) *Bundle {
	t.Helper()
	rows := make([][]float64, 0, 120)
	for i := 0; i < 120; i++ {
		base := float64(i % 10)
		rows = append(rows, []float64{base, base * 2, base * 3, float64(i % 3)})
	}
	disc, err := features.Fit(rows, []string{"a", "b", "c", "d"}, features.FitOptions{Buckets: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Train(ds, nbayes.NewLearner(), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scores := a.ScoreAll(ds, Probability)
	return &Bundle{Analyzer: a, Discretizer: disc, Threshold: Threshold(scores, 0.02), Scorer: Probability}
}

func TestSnapshotRoundTrip(t *testing.T) {
	b := testBundle(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, b); err != nil {
		t.Fatal(err)
	}
	var got Bundle
	if err := ReadSnapshot(bytes.NewReader(buf.Bytes()), &got); err != nil {
		t.Fatal(err)
	}
	if got.Threshold != b.Threshold || got.Scorer != b.Scorer {
		t.Errorf("round trip lost calibration: %+v", got)
	}
	if got.Analyzer.NumModels() != b.Analyzer.NumModels() {
		t.Errorf("round trip lost sub-models: %d != %d", got.Analyzer.NumModels(), b.Analyzer.NumModels())
	}
	// The reloaded model must score identically.
	x, err := got.Discretizer.Transform([]float64{4, 8, 12, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w, g := b.Analyzer.Score(x, b.Scorer), got.Analyzer.Score(x, got.Scorer); w != g {
		t.Errorf("reloaded score %v != original %v", g, w)
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	b := testBundle(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, b); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	var legacy bytes.Buffer
	RegisterGobModels()
	if err := gob.NewEncoder(&legacy).Encode(b); err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xff
	badVersion := append([]byte(nil), good...)
	badVersion[5] = 99
	trailing := append(append([]byte(nil), good...), 'x')

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrSnapshotCorrupt},
		{"truncated header", good[:10], ErrSnapshotCorrupt},
		{"truncated payload", good[:len(good)/2], ErrSnapshotCorrupt},
		{"payload bit flip", flipped, ErrSnapshotCorrupt},
		{"trailing data", trailing, ErrSnapshotCorrupt},
		{"legacy raw gob", legacy.Bytes(), ErrSnapshotFormat},
		{"future version", badVersion, ErrSnapshotFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got Bundle
			err := ReadSnapshot(bytes.NewReader(tc.data), &got)
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Errorf("error spans multiple lines: %q", err)
			}
		})
	}
}

func TestSnapshotChecksumCoversWholePayload(t *testing.T) {
	b := testBundle(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, b); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte at several depths inside the payload; every corruption
	// must be caught before gob sees it.
	for _, off := range []int{snapshotHdrLen, snapshotHdrLen + 100, len(data) / 2, len(data) - 2} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x20
		var got Bundle
		if err := ReadSnapshot(bytes.NewReader(mut), &got); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("flip at %d: error = %v, want checksum failure", off, err)
		}
	}
}

func TestAnalyzerSaveLoadFile(t *testing.T) {
	b := testBundle(t)
	path := filepath.Join(t.TempDir(), "analyzer.bin")
	if err := b.Analyzer.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumModels() != b.Analyzer.NumModels() {
		t.Errorf("NumModels = %d, want %d", got.NumModels(), b.Analyzer.NumModels())
	}
}

func TestLoadBundleFileValidates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	// A structurally hollow bundle decodes fine but must still be rejected.
	if err := WriteSnapshotFile(path, &Bundle{Threshold: 0.5, Scorer: Probability}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundleFile(path); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("hollow bundle error = %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := LoadBundleFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBundleSaveFileRefusesInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := (&Bundle{}).SaveFile(path); err == nil {
		t.Fatal("empty bundle saved")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("invalid bundle left a file behind: %v", err)
	}
}

func TestWriteSnapshotFileAtomicUnderInterruption(t *testing.T) {
	b := testBundle(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash after the payload is written but before the rename
	// (the core/persist/pre-rename failpoint): the destination must be
	// byte-identical and no temp litter remains.
	if err := failpoint.Arm("core/persist/pre-rename", "error(crash mid-write)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm("core/persist/pre-rename")
	b.Threshold *= 0.5
	if err := b.SaveFile(path); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("interrupted write error = %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("interrupted write altered the installed model file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "model.bin" {
			t.Errorf("interrupted write left %q behind", e.Name())
		}
	}
	// And the surviving file still loads.
	if _, err := LoadBundleFile(path); err != nil {
		t.Errorf("surviving model unreadable: %v", err)
	}
}

// TestSnapshotTruncationSweep truncates a snapshot at every byte offset
// and asserts each prefix fails with an ErrSnapshot* class error — never
// a panic, never a silently partial bundle.
func TestSnapshotTruncationSweep(t *testing.T) {
	b := testBundle(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, b); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		var got Bundle
		err := ReadSnapshot(bytes.NewReader(data[:cut]), &got)
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(data))
		}
		if !errors.Is(err, ErrSnapshotCorrupt) && !errors.Is(err, ErrSnapshotFormat) {
			t.Fatalf("truncation at %d: error %v is not a snapshot-class error", cut, err)
		}
	}
}

// TestWriteSnapshotFilePayloadFailpoints drives the two write-path
// failpoints: an injected write error must leave the old file intact,
// and a torn write (partial) must produce a file the loader rejects as
// corrupt rather than serving half a model.
func TestWriteSnapshotFilePayloadFailpoints(t *testing.T) {
	b := testBundle(t)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("write error keeps old file", func(t *testing.T) {
		if err := failpoint.Arm("core/persist/payload", "error(disk full)"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm("core/persist/payload")
		if err := b.SaveFile(path); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("injected write failure returned %v", err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Error("failed write altered the installed model")
		}
	})

	t.Run("torn write installs a rejectable file", func(t *testing.T) {
		if err := failpoint.Arm("core/persist/payload", "partial(25)"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm("core/persist/payload")
		// The torn write itself "succeeds" — the crash happened after the
		// rename in this scenario — but the loader must refuse the result.
		if err := b.SaveFile(path); err != nil {
			t.Fatalf("torn write surfaced an error: %v", err)
		}
		if _, err := LoadBundleFile(path); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("torn file load error = %v, want ErrSnapshotCorrupt", err)
		}
		// Recovery: a clean save over the torn file works.
		failpoint.Disarm("core/persist/payload")
		if err := b.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBundleFile(path); err != nil {
			t.Errorf("recovered model unreadable: %v", err)
		}
	})
}

// TestFrameRoundTripForeignMagic pins the exported frame API the serve
// checkpoint format builds on: a frame reads back only under its own
// magic and version.
func TestFrameRoundTripForeignMagic(t *testing.T) {
	payload := []byte("per-stream detector state goes here")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "CFAC", 1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bytes.NewReader(buf.Bytes()), "CFAC", 1)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %v %q", err, got)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), "CFAS", 1); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("foreign magic error = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), "CFAC", 2); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("future version error = %v, want ErrSnapshotFormat", err)
	}
	if err := WriteFrame(&buf, "TOOLONG", 1, payload); err == nil {
		t.Error("5+ byte magic accepted")
	}
}
