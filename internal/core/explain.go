package core

import (
	"crossfeature/internal/ml"
	"crossfeature/internal/obs"
)

// Contribution is one sub-model's share of a cross-feature score: whether
// its prediction matched the feature's true value, the probability it
// assigned to that value, and the sub-model's normal in-sample levels for
// comparison. A feature whose true-value probability sits far below its
// NormalProb is a feature whose inter-feature correlation the event broke
// — the sub-model "driving" the anomaly verdict.
type Contribution struct {
	// Index is the feature's position in the analyzer's schema.
	Index int
	// Feature is the attribute name.
	Feature string
	// Missing marks a feature whose true value was unusable; such
	// features are excluded from the averages.
	Missing bool
	// Match reports whether the sub-model's prediction equals the true
	// value (Algorithm 2's 0/1 contribution).
	Match bool
	// Prob is the probability the sub-model assigned to the true value
	// (Algorithm 3's contribution).
	Prob float64
	// NormalMatch and NormalProb are the sub-model's mean levels on the
	// normal training data (zero on analyzers without recorded levels).
	NormalMatch float64
	NormalProb  float64
}

// ExplainResult decomposes both combination rules for one event.
type ExplainResult struct {
	// Contribs has one entry per retained sub-model, in schema order.
	Contribs []Contribution
	// MatchScore and ProbScore equal AvgMatchCount(x) and
	// AvgProbability(x) exactly (same debiasing of partial averages).
	MatchScore float64
	ProbScore  float64
}

// Score returns the result under the given combination rule.
func (r ExplainResult) Score(s Scorer) float64 {
	if s == MatchCount {
		return r.MatchScore
	}
	return r.ProbScore
}

// Explain scores one event while keeping every sub-model's contribution.
// It is the observable twin of Score: the returned scores are identical,
// and the contribution list is what `cfa inspect -explain` and the
// per-feature metrics surface to say which sub-model drove a verdict.
func (a *Analyzer) Explain(x []int) ExplainResult {
	buf := make([]float64, a.maxCard())
	res := ExplainResult{Contribs: make([]Contribution, 0, len(a.Models))}
	haveMatchLevels := len(a.NormalMatch) == len(a.Models)
	haveProbLevels := len(a.NormalProb) == len(a.Models)
	var matches, probSum, total float64
	var availMatch, availProb float64
	anyMissing := false
	for i, m := range a.Models {
		if m == nil {
			continue
		}
		c := Contribution{Index: i, Feature: a.Attrs[i].Name}
		if haveMatchLevels {
			c.NormalMatch = a.NormalMatch[i]
		}
		if haveProbLevels {
			c.NormalProb = a.NormalProb[i]
		}
		if a.missing(x, i) {
			c.Missing = true
			anyMissing = true
			res.Contribs = append(res.Contribs, c)
			continue
		}
		p := ml.ProbaInto(m, x, buf)
		c.Match = ml.ArgMax(p) == x[i]
		if v := x[i]; v >= 0 && v < len(p) {
			c.Prob = p[v]
		}
		total++
		if c.Match {
			matches++
		}
		probSum += c.Prob
		availMatch += c.NormalMatch
		availProb += c.NormalProb
		res.Contribs = append(res.Contribs, c)
	}
	if total > 0 {
		res.MatchScore = a.debias(matches/total, availMatch, total, anyMissing, a.NormalMatch)
		res.ProbScore = a.debias(probSum/total, availProb, total, anyMissing, a.NormalProb)
	}
	return res
}

// ScoreMetrics publishes per-feature contribution distributions to an obs
// registry: how often each sub-model's prediction matches, the histogram
// of probabilities it assigns to true values, and how often its feature is
// missing. Feature names are a closed set fixed by the schema, so the
// label cardinality is bounded by the feature count.
type ScoreMetrics struct {
	checked []*obs.Counter
	matched []*obs.Counter
	missed  []*obs.Counter
	prob    []*obs.Histogram
}

// NewScoreMetrics registers the per-feature families for every retained
// sub-model of a. The prefix namespaces the families (e.g. "cfa").
func NewScoreMetrics(reg *obs.Registry, a *Analyzer, prefix string) *ScoreMetrics {
	l := len(a.Models)
	m := &ScoreMetrics{
		checked: make([]*obs.Counter, l),
		matched: make([]*obs.Counter, l),
		missed:  make([]*obs.Counter, l),
		prob:    make([]*obs.Histogram, l),
	}
	probBuckets := obs.LinearBuckets(0.05, 0.05, 19)
	for i, sub := range a.Models {
		if sub == nil {
			continue
		}
		lbl := obs.L("feature", a.Attrs[i].Name)
		m.checked[i] = reg.Counter(prefix+"_feature_checked_total",
			"Events in which this feature's sub-model contributed to the score.", lbl)
		m.matched[i] = reg.Counter(prefix+"_feature_match_total",
			"Events in which this feature's sub-model predicted the true value.", lbl)
		m.missed[i] = reg.Counter(prefix+"_feature_missing_total",
			"Events in which this feature's true value was missing.", lbl)
		m.prob[i] = reg.Histogram(prefix+"_feature_prob",
			"Probability this feature's sub-model assigned to the true value.",
			probBuckets, lbl)
	}
	return m
}

// Observe records one explained event.
func (m *ScoreMetrics) Observe(res ExplainResult) {
	for _, c := range res.Contribs {
		if c.Index >= len(m.checked) || m.checked[c.Index] == nil {
			continue
		}
		if c.Missing {
			m.missed[c.Index].Inc()
			continue
		}
		m.checked[c.Index].Inc()
		if c.Match {
			m.matched[c.Index].Inc()
		}
		m.prob[c.Index].Observe(c.Prob)
	}
}
