package core

import (
	"time"

	"crossfeature/internal/ml"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// CompileStats describes one flat-form kernel build: how many sub-models
// compiled, the footprint of each compiled representation, and the wall
// time of the pass. Serving exports these so reload cost is visible.
type CompileStats struct {
	// Models counts sub-models that compiled to a flat kernel (the rest
	// score through their reference implementation).
	Models int
	// TreeNodes is the total flattened C4.5 node count.
	TreeNodes int
	// RuleConds is the total RIPPER condition-matrix size.
	RuleConds int
	// TableEntries is the total flattened Naive Bayes log-prob entries.
	TableEntries int
	// Duration is the wall time of the compile pass.
	Duration time.Duration
}

// compiledSet is one immutable generation of compiled kernels, built from
// a snapshot of the analyzer's Models slice. Freshness is checked against
// that snapshot so swapping a sub-model (retraining, ablation masking)
// invalidates the generation, mirroring how a mutated Dataset invalidates
// its cached column view.
type compiledSet struct {
	kernels []ml.ScoreKernel // nil entries score via the reference model
	src     []ml.Classifier  // the Models values the kernels came from
	stats   CompileStats
}

// fresh reports whether the set still matches the analyzer's models.
func (c *compiledSet) fresh(models []ml.Classifier) bool {
	if c == nil || len(c.src) != len(models) {
		return false
	}
	for i := range models {
		if c.src[i] != models[i] {
			return false
		}
	}
	return true
}

// Compile builds (or, after a model swap, rebuilds) the analyzer's flat
// inference kernels: contiguous node arrays for C4.5 trees, condition
// matrices for RIPPER rule sets and packed log-prob slabs for Naive
// Bayes. Scoring uses the kernels automatically once built; calling
// Compile up front just moves the one-time cost to load time (the serve
// path does this on every bundle load so no request pays it). The
// returned stats describe the build. Compilation never changes scores:
// every kernel is pinned bit-identical to its reference model.
func (a *Analyzer) Compile() CompileStats {
	return a.compiled().stats
}

// compiled returns the current kernel generation, building it on first
// use or when stale.
func (a *Analyzer) compiled() *compiledSet {
	if c := a.comp.Load(); c.fresh(a.Models) {
		return c
	}
	a.compMu.Lock()
	defer a.compMu.Unlock()
	if c := a.comp.Load(); c.fresh(a.Models) {
		return c
	}
	c := a.buildCompiled()
	a.comp.Store(c)
	return c
}

// compiledOrNil returns the kernels only when the analyzer has opted
// into compiled scoring: an analyzer that was never Compiled (nor
// batch-scored) keeps the reference pointer-walking path. Once a
// generation exists, a stale one — a sub-model swapped by retraining or
// ablation — is rebuilt rather than abandoned, so Score stays on the
// compiled path across model updates.
func (a *Analyzer) compiledOrNil() *compiledSet {
	c := a.comp.Load()
	if c == nil {
		return nil
	}
	if c.fresh(a.Models) {
		return c
	}
	return a.compiled()
}

func (a *Analyzer) buildCompiled() *compiledSet {
	start := time.Now()
	c := &compiledSet{
		kernels: make([]ml.ScoreKernel, len(a.Models)),
		src:     append([]ml.Classifier(nil), a.Models...),
	}
	for i, m := range a.Models {
		kc, ok := m.(ml.KernelCompiler)
		if !ok {
			continue
		}
		k := kc.CompileKernel()
		c.kernels[i] = k
		c.stats.Models++
		switch t := k.(type) {
		case *c45.Compiled:
			c.stats.TreeNodes += t.NumNodes()
		case *ripper.Compiled:
			c.stats.RuleConds += t.NumConds()
		case *nbayes.Compiled:
			c.stats.TableEntries += t.NumEntries()
		}
	}
	c.stats.Duration = time.Since(start)
	return c
}

// kernelScore scores one event through the compiled kernels, replicating
// avgMatchCount/avgProbability — including the missing-feature skip and
// partial-average debias — bit for bit.
func (a *Analyzer) kernelScore(c *compiledSet, x []int, s Scorer, buf []float64) float64 {
	levels := a.NormalProb
	if s == MatchCount {
		levels = a.NormalMatch
	}
	haveLevels := len(levels) == len(a.Models)
	var sum, total, availLevel float64
	anyMissing := false
	for i, m := range a.Models {
		if m == nil {
			continue
		}
		if a.missing(x, i) {
			anyMissing = true
			continue
		}
		total++
		if haveLevels {
			availLevel += levels[i]
		}
		v := x[i]
		var p float64
		var match bool
		if k := c.kernels[i]; k != nil {
			p, match = k.TrueScore(x, v, buf)
		} else {
			pr := ml.ProbaInto(m, x, buf)
			match = ml.ArgMax(pr) == v
			if v < len(pr) {
				p = pr[v]
			}
		}
		if s == MatchCount {
			if match {
				sum++
			}
		} else {
			sum += p
		}
	}
	if total == 0 {
		return 0
	}
	return a.debias(sum/total, availLevel, total, anyMissing, levels)
}

// ScoreAll scores every row of ds through the compiled kernels and the
// dataset's columnar view, compiling on first use. The accumulation is
// model-major — each sub-model streams down its column with buffers
// reused across rows — but visits models in the same ascending order per
// row as the per-event path, so the results are bit-identical to calling
// Score on each row. A dataset whose schema width differs from the
// analyzer's, or whose rows violate its own schema, falls back to the
// row-major per-event path (which tolerates anything).
func (a *Analyzer) ScoreAll(ds *ml.Dataset, s Scorer) []float64 {
	if ds == nil {
		return nil
	}
	out := make([]float64, ds.Len())
	if len(out) == 0 {
		return out
	}
	if len(ds.Attrs) != len(a.Attrs) || ds.Validate() != nil {
		a.scoreEventsInto(ds.X, s, out)
		return out
	}
	c := a.compiled()
	cols := ds.Columns()
	levels := a.NormalProb
	if s == MatchCount {
		levels = a.NormalMatch
	}
	haveLevels := len(levels) == len(a.Models)
	n := len(out)
	var (
		sum        = make([]float64, n)
		avail      = make([]float64, n)
		totals     = make([]int32, n)
		anyMissing = make([]bool, n)
		scratch    = make([]float64, a.maxCard())
		pbuf       []float64
		mbuf       []bool
	)
	for i, m := range a.Models {
		if m == nil {
			continue
		}
		at := a.Attrs[i]
		col := cols.Cols[i]
		lvl := 0.0
		if haveLevels {
			lvl = levels[i]
		}
		k := c.kernels[i]
		if bk, ok := k.(ml.BatchScoreKernel); ok {
			if pbuf == nil {
				pbuf = make([]float64, n)
				mbuf = make([]bool, n)
			}
			bk.TrueScoreAll(ds, i, pbuf, mbuf)
			for r := 0; r < n; r++ {
				if at.Missing(int(col[r])) {
					anyMissing[r] = true
					continue
				}
				totals[r]++
				avail[r] += lvl
				if s == MatchCount {
					if mbuf[r] {
						sum[r]++
					}
				} else {
					sum[r] += pbuf[r]
				}
			}
			continue
		}
		for r := 0; r < n; r++ {
			v := int(col[r])
			if at.Missing(v) {
				anyMissing[r] = true
				continue
			}
			totals[r]++
			avail[r] += lvl
			var p float64
			var match bool
			if k != nil {
				p, match = k.TrueScore(ds.X[r], v, scratch)
			} else {
				pr := ml.ProbaInto(m, ds.X[r], scratch)
				match = ml.ArgMax(pr) == v
				if v < len(pr) {
					p = pr[v]
				}
			}
			if s == MatchCount {
				if match {
					sum[r]++
				}
			} else {
				sum[r] += p
			}
		}
	}
	for r := range out {
		if totals[r] == 0 {
			continue
		}
		t := float64(totals[r])
		out[r] = a.debias(sum[r]/t, avail[r], t, anyMissing[r], levels)
	}
	return out
}

// ScoreEvents scores a batch of raw event rows through the compiled
// kernels (compiling on first use), sharing one prediction buffer across
// the batch. Unlike ScoreAll it assumes nothing about the rows — short,
// over-long or out-of-range vectors degrade per feature exactly as
// Score's missing-value handling dictates.
func (a *Analyzer) ScoreEvents(xs [][]int, s Scorer) []float64 {
	out := make([]float64, len(xs))
	a.scoreEventsInto(xs, s, out)
	return out
}

func (a *Analyzer) scoreEventsInto(xs [][]int, s Scorer, out []float64) {
	if len(xs) == 0 {
		return
	}
	c := a.compiled()
	buf := make([]float64, a.maxCard())
	for i, x := range xs {
		out[i] = a.kernelScore(c, x, s, buf)
	}
}
