// Package core implements the paper's primary contribution: cross-feature
// analysis for anomaly detection.
//
// Given normal-only training vectors over features {f_1..f_L}, the
// training procedure (Algorithm 1) fits one sub-model per feature,
// C_i: {f_1..f_L}\{f_i} -> f_i. At test time an event is scored either by
// the average match count (Algorithm 2) — the fraction of sub-models whose
// prediction equals the feature's true value — or by the average
// probability (Algorithm 3) — the mean probability the sub-models assign
// to the true values. Normal events score high because normal inter-
// feature correlations hold; anomalies break those correlations and score
// low. An event is flagged as an anomaly when its score falls below a
// decision threshold calibrated on normal data at a chosen confidence
// level (one minus the acceptable false-alarm rate).
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"crossfeature/internal/ml"
)

// Scorer selects the combination rule applied over the sub-models.
type Scorer int

const (
	// MatchCount is Algorithm 2: average 0/1 prediction matches.
	MatchCount Scorer = iota + 1
	// Probability is Algorithm 3: average probability of the true values.
	Probability
)

// String implements fmt.Stringer.
func (s Scorer) String() string {
	switch s {
	case MatchCount:
		return "avg-match-count"
	case Probability:
		return "avg-probability"
	default:
		return fmt.Sprintf("Scorer(%d)", int(s))
	}
}

// TrainOptions tunes Algorithm 1.
type TrainOptions struct {
	// Parallelism bounds concurrent sub-model fits; <=0 uses GOMAXPROCS.
	Parallelism int
	// SkipConstant omits sub-models for features that take a single value
	// in training. Such models trivially predict that value with
	// probability one, diluting scores equally for all events; the paper
	// keeps all L features, so the default is false.
	SkipConstant bool
}

// Analyzer is the trained cross-feature model: one classifier per
// (retained) feature.
type Analyzer struct {
	// Attrs is the nominal feature schema.
	Attrs []ml.Attr
	// Models holds one classifier per feature; nil when skipped.
	Models []ml.Classifier
	// LearnerName records which base learner produced the sub-models.
	LearnerName string
	// NormalMatch and NormalProb record each sub-model's mean match rate
	// and mean true-value probability on the normal training data. Sub-
	// models differ widely in how predictable their target feature is, so
	// an event scored over a subset of models (degraded audit records with
	// missing features) is biased by whichever subset survived; these
	// levels let scoring debias such partial averages. Empty on analyzers
	// built without Train (scores then fall back to plain averages).
	NormalMatch []float64
	NormalProb  []float64

	// compMu serialises flat-form kernel compilation; comp caches the
	// current compiled generation together with the Models snapshot it
	// came from, so a swapped sub-model triggers recompilation (see
	// compile.go). Both are ignored by gob, which persists only the
	// exported model fields.
	compMu sync.Mutex
	comp   atomic.Pointer[compiledSet]
}

// Train runs Algorithm 1: fit classifier C_i for every feature f_i on the
// normal-only dataset ds. Sub-model training is embarrassingly parallel
// and runs on a bounded worker pool.
func Train(ds *ml.Dataset, learner ml.Learner, opts TrainOptions) (*Analyzer, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if learner == nil {
		return nil, fmt.Errorf("core: nil learner")
	}
	l := len(ds.Attrs)
	a := &Analyzer{
		Attrs:       append([]ml.Attr(nil), ds.Attrs...),
		Models:      make([]ml.Classifier, l),
		LearnerName: learner.Name(),
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > l {
		workers = l
	}

	// Pre-build the dataset's column-major view before fanning out: all L
	// sub-model fits run their count kernels on this one shared read-only
	// structure, so constructing it up front keeps the first worker from
	// building it while the rest block on the cache mutex.
	ds.Columns()

	targets := make(chan int)
	errs := make([]error, l)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range targets {
				c, err := learner.Fit(ds, i)
				if err != nil {
					errs[i] = fmt.Errorf("core: sub-model for %q: %w", ds.Attrs[i].Name, err)
					continue
				}
				a.Models[i] = c
			}
		}()
	}
	for i := 0; i < l; i++ {
		if opts.SkipConstant && ds.Attrs[i].Card < 2 {
			continue
		}
		targets <- i
	}
	close(targets)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if a.NumModels() == 0 {
		return nil, fmt.Errorf("core: no sub-models trained")
	}
	a.fitNormalLevels(ds)
	return a, nil
}

// fitNormalLevels measures every sub-model's in-sample score level — its
// mean 0/1 match rate and mean true-value probability over the normal
// training rows. Scoring uses these to keep partial averages (events with
// missing features) on the same scale as full ones.
func (a *Analyzer) fitNormalLevels(ds *ml.Dataset) {
	l := len(a.Models)
	a.NormalMatch = make([]float64, l)
	a.NormalProb = make([]float64, l)
	n := float64(ds.Len())
	buf := make([]float64, a.maxCard())
	for i, m := range a.Models {
		if m == nil {
			continue
		}
		var match, prob float64
		for _, x := range ds.X {
			// One shared prediction serves both levels: the argmax of the
			// distribution is exactly what ml.Predict computes.
			p := ml.ProbaInto(m, x, buf)
			if ml.ArgMax(p) == x[i] {
				match++
			}
			if v := x[i]; v >= 0 && v < len(p) {
				prob += p[v]
			}
		}
		a.NormalMatch[i] = match / n
		a.NormalProb[i] = prob / n
	}
}

// maxCard reports the largest attribute cardinality — the prediction
// buffer size that fits every sub-model's class distribution.
func (a *Analyzer) maxCard() int {
	max := 1
	for _, at := range a.Attrs {
		if at.Card > max {
			max = at.Card
		}
	}
	return max
}

// NumModels reports how many sub-models were retained.
func (a *Analyzer) NumModels() int {
	n := 0
	for _, m := range a.Models {
		if m != nil {
			n++
		}
	}
	return n
}

// missing reports whether event value x[i] is unusable as the true value
// of feature i: absent from the vector, outside the attribute's range, or
// the attribute's dedicated unknown class. Such features are skipped by
// the combination rules — the remaining sub-models still yield a usable
// (if lower-confidence) score, so a degraded audit record never errors.
func (a *Analyzer) missing(x []int, i int) bool {
	if i >= len(x) {
		return true
	}
	return a.Attrs[i].Missing(x[i])
}

// AvgMatchCount implements Algorithm 2 for one event. Features with a
// missing true value are excluded from the average, and the partial
// average is debiased back to the full-model scale.
func (a *Analyzer) AvgMatchCount(x []int) float64 {
	return a.avgMatchCount(x, make([]float64, a.maxCard()))
}

func (a *Analyzer) avgMatchCount(x []int, buf []float64) float64 {
	var matches, total, availLevel float64
	anyMissing := false
	for i, m := range a.Models {
		if m == nil {
			continue
		}
		if a.missing(x, i) {
			anyMissing = true
			continue
		}
		total++
		if len(a.NormalMatch) == len(a.Models) {
			availLevel += a.NormalMatch[i]
		}
		if ml.ArgMax(ml.ProbaInto(m, x, buf)) == x[i] {
			matches++
		}
	}
	if total == 0 {
		return 0
	}
	return a.debias(matches/total, availLevel, total, anyMissing, a.NormalMatch)
}

// AvgProbability implements Algorithm 3 for one event: the mean estimated
// probability p(f_i(x) | x) of the true feature values. Features with a
// missing true value are excluded from the average, and the partial
// average is debiased back to the full-model scale.
func (a *Analyzer) AvgProbability(x []int) float64 {
	return a.avgProbability(x, make([]float64, a.maxCard()))
}

func (a *Analyzer) avgProbability(x []int, buf []float64) float64 {
	var sum, total, availLevel float64
	anyMissing := false
	for i, m := range a.Models {
		if m == nil {
			continue
		}
		if a.missing(x, i) {
			anyMissing = true
			continue
		}
		total++
		if len(a.NormalProb) == len(a.Models) {
			availLevel += a.NormalProb[i]
		}
		p := ml.ProbaInto(m, x, buf)
		if v := x[i]; v >= 0 && v < len(p) {
			sum += p[v]
		}
	}
	if total == 0 {
		return 0
	}
	return a.debias(sum/total, availLevel, total, anyMissing, a.NormalProb)
}

// debias rescales the partial average of an event with missing features so
// its expected value on normal data matches the full-model level, then
// shrinks it toward that level in proportion to how much of the ensemble
// is missing. Sub-models score their targets at very different normal
// levels (a node's mobility is far less predictable than, say, its
// control-traffic volume), so averaging whichever subset survives a
// degraded audit record shifts the score for structural reasons unrelated
// to anomaly; the rescale cancels the subset's level relative to the full
// ensemble. The shrink accounts for the remaining estimator variance: a
// mean over k of L sub-models swings sqrt(L/k) times wider than the full
// average, so a degraded record is a lower-confidence observation and its
// score moves proportionally less far from the normal level — it still
// alarms under a real anomaly, but random excursions of a small surviving
// subset do not cross the threshold. Events with no missing features, and
// analyzers without recorded levels, pass through unchanged.
func (a *Analyzer) debias(raw, availLevel, total float64, anyMissing bool, levels []float64) float64 {
	if !anyMissing || len(levels) != len(a.Models) || availLevel <= 0 {
		return raw
	}
	var fullSum, models float64
	for i, m := range a.Models {
		if m != nil {
			fullSum += levels[i]
			models++
		}
	}
	if models == 0 || fullSum <= 0 {
		return raw
	}
	level := fullSum / models
	scaled := raw * level / (availLevel / total)
	scaled = level + (scaled-level)*math.Sqrt(total/models)
	if scaled > 1 {
		scaled = 1
	}
	if scaled < 0 {
		scaled = 0
	}
	return scaled
}

// Score applies the selected combination rule. A compiled analyzer (see
// Compile) scores through its flat kernels; otherwise this is the
// reference pointer-walking path of AvgMatchCount/AvgProbability. The
// two are bit-identical.
func (a *Analyzer) Score(x []int, s Scorer) float64 {
	if c := a.compiledOrNil(); c != nil {
		return a.kernelScore(c, x, s, make([]float64, a.maxCard()))
	}
	if s == MatchCount {
		return a.AvgMatchCount(x)
	}
	return a.AvgProbability(x)
}

// Threshold calibrates the decision threshold from normal-data scores: the
// lower quantile at the given false-alarm rate, so that a fraction
// (1 - falseAlarmRate) of normal events score at or above it — the
// paper's "lower bound of output values with certain confidence level".
//
// The calibration is total: non-finite scores are ignored, an empty (or
// all-non-finite) input yields threshold 0 (nothing is ever flagged, the
// conservative default for an uncalibrated detector), and a degenerate
// all-identical score distribution yields that score — combined with the
// strict "score < threshold" alarm rule, identical normal scores are never
// flagged. The returned threshold is always a finite number.
func Threshold(normalScores []float64, falseAlarmRate float64) float64 {
	th, _ := Calibrate(normalScores, falseAlarmRate)
	return th
}

// Calibrate is Threshold with visibility into degenerate calibration: it
// additionally reports how many non-finite scores were dropped from the
// normal sample, so callers can warn the operator that the model is
// emitting NaN/Inf on its own training data instead of silently
// calibrating on the survivors.
func Calibrate(normalScores []float64, falseAlarmRate float64) (threshold float64, dropped int) {
	sorted := make([]float64, 0, len(normalScores))
	for _, s := range normalScores {
		if !math.IsNaN(s) && !math.IsInf(s, 0) {
			sorted = append(sorted, s)
		}
	}
	dropped = len(normalScores) - len(sorted)
	if len(sorted) == 0 {
		return 0, dropped
	}
	if math.IsNaN(falseAlarmRate) || falseAlarmRate < 0 {
		falseAlarmRate = 0
	}
	if falseAlarmRate > 1 {
		falseAlarmRate = 1
	}
	sort.Float64s(sorted)
	idx := int(falseAlarmRate * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], dropped
}

// Detector couples an analyzer with a scorer and calibrated threshold
// (Algorithms 2/3 end-to-end).
type Detector struct {
	Analyzer  *Analyzer
	Scorer    Scorer
	Threshold float64
}

// NewDetector calibrates a detector on normal calibration events at the
// given false-alarm rate.
func NewDetector(a *Analyzer, s Scorer, normalEvents [][]int, falseAlarmRate float64) *Detector {
	scores := a.ScoreEvents(normalEvents, s)
	return &Detector{Analyzer: a, Scorer: s, Threshold: Threshold(scores, falseAlarmRate)}
}

// IsAnomaly classifies one event: true when the score falls below the
// threshold.
func (d *Detector) IsAnomaly(x []int) bool {
	return d.Analyzer.Score(x, d.Scorer) < d.Threshold
}

// Score exposes the detector's raw score for an event.
func (d *Detector) Score(x []int) float64 { return d.Analyzer.Score(x, d.Scorer) }
