// Package core implements the paper's primary contribution: cross-feature
// analysis for anomaly detection.
//
// Given normal-only training vectors over features {f_1..f_L}, the
// training procedure (Algorithm 1) fits one sub-model per feature,
// C_i: {f_1..f_L}\{f_i} -> f_i. At test time an event is scored either by
// the average match count (Algorithm 2) — the fraction of sub-models whose
// prediction equals the feature's true value — or by the average
// probability (Algorithm 3) — the mean probability the sub-models assign
// to the true values. Normal events score high because normal inter-
// feature correlations hold; anomalies break those correlations and score
// low. An event is flagged as an anomaly when its score falls below a
// decision threshold calibrated on normal data at a chosen confidence
// level (one minus the acceptable false-alarm rate).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"crossfeature/internal/ml"
)

// Scorer selects the combination rule applied over the sub-models.
type Scorer int

const (
	// MatchCount is Algorithm 2: average 0/1 prediction matches.
	MatchCount Scorer = iota + 1
	// Probability is Algorithm 3: average probability of the true values.
	Probability
)

// String implements fmt.Stringer.
func (s Scorer) String() string {
	switch s {
	case MatchCount:
		return "avg-match-count"
	case Probability:
		return "avg-probability"
	default:
		return fmt.Sprintf("Scorer(%d)", int(s))
	}
}

// TrainOptions tunes Algorithm 1.
type TrainOptions struct {
	// Parallelism bounds concurrent sub-model fits; <=0 uses GOMAXPROCS.
	Parallelism int
	// SkipConstant omits sub-models for features that take a single value
	// in training. Such models trivially predict that value with
	// probability one, diluting scores equally for all events; the paper
	// keeps all L features, so the default is false.
	SkipConstant bool
}

// Analyzer is the trained cross-feature model: one classifier per
// (retained) feature.
type Analyzer struct {
	// Attrs is the nominal feature schema.
	Attrs []ml.Attr
	// Models holds one classifier per feature; nil when skipped.
	Models []ml.Classifier
	// LearnerName records which base learner produced the sub-models.
	LearnerName string
}

// Train runs Algorithm 1: fit classifier C_i for every feature f_i on the
// normal-only dataset ds. Sub-model training is embarrassingly parallel
// and runs on a bounded worker pool.
func Train(ds *ml.Dataset, learner ml.Learner, opts TrainOptions) (*Analyzer, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if learner == nil {
		return nil, fmt.Errorf("core: nil learner")
	}
	l := len(ds.Attrs)
	a := &Analyzer{
		Attrs:       append([]ml.Attr(nil), ds.Attrs...),
		Models:      make([]ml.Classifier, l),
		LearnerName: learner.Name(),
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > l {
		workers = l
	}

	targets := make(chan int)
	errs := make([]error, l)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range targets {
				c, err := learner.Fit(ds, i)
				if err != nil {
					errs[i] = fmt.Errorf("core: sub-model for %q: %w", ds.Attrs[i].Name, err)
					continue
				}
				a.Models[i] = c
			}
		}()
	}
	for i := 0; i < l; i++ {
		if opts.SkipConstant && ds.Attrs[i].Card < 2 {
			continue
		}
		targets <- i
	}
	close(targets)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if a.NumModels() == 0 {
		return nil, fmt.Errorf("core: no sub-models trained")
	}
	return a, nil
}

// NumModels reports how many sub-models were retained.
func (a *Analyzer) NumModels() int {
	n := 0
	for _, m := range a.Models {
		if m != nil {
			n++
		}
	}
	return n
}

// AvgMatchCount implements Algorithm 2 for one event.
func (a *Analyzer) AvgMatchCount(x []int) float64 {
	var matches, total float64
	for i, m := range a.Models {
		if m == nil {
			continue
		}
		total++
		if ml.Predict(m, x) == x[i] {
			matches++
		}
	}
	if total == 0 {
		return 0
	}
	return matches / total
}

// AvgProbability implements Algorithm 3 for one event: the mean estimated
// probability p(f_i(x) | x) of the true feature values.
func (a *Analyzer) AvgProbability(x []int) float64 {
	var sum, total float64
	for i, m := range a.Models {
		if m == nil {
			continue
		}
		total++
		p := m.PredictProba(x)
		if v := x[i]; v >= 0 && v < len(p) {
			sum += p[v]
		}
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// Score applies the selected combination rule.
func (a *Analyzer) Score(x []int, s Scorer) float64 {
	if s == MatchCount {
		return a.AvgMatchCount(x)
	}
	return a.AvgProbability(x)
}

// ScoreAll scores a batch of events.
func (a *Analyzer) ScoreAll(xs [][]int, s Scorer) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = a.Score(x, s)
	}
	return out
}

// Threshold calibrates the decision threshold from normal-data scores: the
// lower quantile at the given false-alarm rate, so that a fraction
// (1 - falseAlarmRate) of normal events score at or above it — the
// paper's "lower bound of output values with certain confidence level".
func Threshold(normalScores []float64, falseAlarmRate float64) float64 {
	if len(normalScores) == 0 {
		return 0
	}
	if falseAlarmRate < 0 {
		falseAlarmRate = 0
	}
	if falseAlarmRate > 1 {
		falseAlarmRate = 1
	}
	sorted := append([]float64(nil), normalScores...)
	sort.Float64s(sorted)
	idx := int(falseAlarmRate * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Detector couples an analyzer with a scorer and calibrated threshold
// (Algorithms 2/3 end-to-end).
type Detector struct {
	Analyzer  *Analyzer
	Scorer    Scorer
	Threshold float64
}

// NewDetector calibrates a detector on normal calibration events at the
// given false-alarm rate.
func NewDetector(a *Analyzer, s Scorer, normalEvents [][]int, falseAlarmRate float64) *Detector {
	scores := a.ScoreAll(normalEvents, s)
	return &Detector{Analyzer: a, Scorer: s, Threshold: Threshold(scores, falseAlarmRate)}
}

// IsAnomaly classifies one event: true when the score falls below the
// threshold.
func (d *Detector) IsAnomaly(x []int) bool {
	return d.Analyzer.Score(x, d.Scorer) < d.Threshold
}

// Score exposes the detector's raw score for an event.
func (d *Detector) Score(x []int) float64 { return d.Analyzer.Score(x, d.Scorer) }
