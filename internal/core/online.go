package core

import (
	"fmt"
	"math"
)

// OnlineDetector wraps a Detector for streaming deployment on a live
// audit feed: scores are smoothed with an exponentially weighted moving
// average and an alarm requires several consecutive sub-threshold records
// before raising, so single noisy snapshots do not page anyone. The alarm
// clears symmetrically after enough consecutive normal records.
//
// This is the operational layer the paper's introduction motivates ("an
// alert on intrusion then triggers a response") on top of Algorithms 2/3.
type OnlineDetector struct {
	det *Detector

	// Smoothing is the EWMA weight of the newest score in (0,1]; 1 means
	// no smoothing.
	Smoothing float64
	// RaiseAfter is how many consecutive anomalous records raise an alarm.
	RaiseAfter int
	// ClearAfter is how many consecutive normal records clear it.
	ClearAfter int

	initialized bool
	ewma        float64
	anomRun     int
	normRun     int
	alarm       bool
	records     uint64
	alarms      uint64
	invalid     uint64
}

// NewOnlineDetector wraps det with default smoothing (0.5) and 3-record
// raise / 5-record clear hysteresis.
func NewOnlineDetector(det *Detector) *OnlineDetector {
	return &OnlineDetector{det: det, Smoothing: 0.5, RaiseAfter: 3, ClearAfter: 5}
}

// State is the detector's externally visible condition after a record.
type State struct {
	Score    float64 // raw score of the record
	Smoothed float64 // EWMA-smoothed score
	Alarm    bool    // current alarm condition
	Raised   bool    // this record raised the alarm
	Cleared  bool    // this record cleared the alarm
}

// Observe consumes one discretised audit record and returns the updated
// state.
//
// A non-finite score — possible when a degenerate sub-model emits NaN
// probabilities — is treated as anomalous: it counts toward the raise
// hysteresis like any sub-threshold record, but is kept out of the EWMA
// so one poisoned record cannot turn the smoothed state NaN forever.
func (o *OnlineDetector) Observe(x []int) State {
	o.records++
	raw := o.det.Score(x)
	finite := !math.IsNaN(raw) && !math.IsInf(raw, 0)
	if finite {
		alpha := o.Smoothing
		if alpha <= 0 || alpha > 1 {
			alpha = 0.5
		}
		if !o.initialized {
			o.ewma = raw
			o.initialized = true
		} else {
			o.ewma = alpha*raw + (1-alpha)*o.ewma
		}
	} else {
		o.invalid++
	}
	st := State{Score: raw, Smoothed: o.ewma, Alarm: o.alarm}

	// Hysteresis counts raw per-record decisions: a single deep outlier
	// must not satisfy the "consecutive anomalous records" requirement by
	// dragging the smoothed score under the threshold for several steps.
	if !finite || raw < o.det.Threshold {
		o.anomRun++
		o.normRun = 0
	} else {
		o.normRun++
		o.anomRun = 0
	}
	raiseAfter := o.RaiseAfter
	if raiseAfter < 1 {
		raiseAfter = 1
	}
	clearAfter := o.ClearAfter
	if clearAfter < 1 {
		clearAfter = 1
	}
	switch {
	case !o.alarm && o.anomRun >= raiseAfter:
		o.alarm = true
		o.alarms++
		st.Raised = true
	case o.alarm && o.normRun >= clearAfter:
		o.alarm = false
		st.Cleared = true
	}
	st.Alarm = o.alarm
	return st
}

// Alarm reports the current alarm condition.
func (o *OnlineDetector) Alarm() bool { return o.alarm }

// Stats reports (records observed, alarms raised).
func (o *OnlineDetector) Stats() (records, alarms uint64) { return o.records, o.alarms }

// Invalid reports how many observed records scored non-finite.
func (o *OnlineDetector) Invalid() uint64 { return o.invalid }

// SwapDetector replaces the underlying detector in place — the hot model
// reload path — while preserving the stream's smoothed score, hysteresis
// runs and alarm condition, so a reload mid-incident neither silences an
// active alarm nor re-pages for one already raised. A nil detector is
// ignored.
func (o *OnlineDetector) SwapDetector(det *Detector) {
	if det != nil {
		o.det = det
	}
}

// Reset returns the detector to its initial state.
func (o *OnlineDetector) Reset() {
	o.initialized = false
	o.ewma = 0
	o.anomRun = 0
	o.normRun = 0
	o.alarm = false
}

// String aids logging.
func (o *OnlineDetector) String() string {
	return fmt.Sprintf("OnlineDetector(alarm=%v, ewma=%.3f, threshold=%.3f)",
		o.alarm, o.ewma, o.det.Threshold)
}
