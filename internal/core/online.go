package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// OnlineDetector wraps a Detector for streaming deployment on a live
// audit feed: scores are smoothed with an exponentially weighted moving
// average and an alarm requires several consecutive sub-threshold records
// before raising, so single noisy snapshots do not page anyone. The alarm
// clears symmetrically after enough consecutive normal records.
//
// This is the operational layer the paper's introduction motivates ("an
// alert on intrusion then triggers a response") on top of Algorithms 2/3.
type OnlineDetector struct {
	det *Detector

	// Smoothing is the EWMA weight of the newest score in (0,1]; 1 means
	// no smoothing.
	Smoothing float64
	// RaiseAfter is how many consecutive anomalous records raise an alarm.
	RaiseAfter int
	// ClearAfter is how many consecutive normal records clear it.
	ClearAfter int

	initialized bool
	ewma        float64
	anomRun     int
	normRun     int
	alarm       bool
	records     uint64
	alarms      uint64
	invalid     uint64
}

// NewOnlineDetector wraps det with default smoothing (0.5) and 3-record
// raise / 5-record clear hysteresis.
func NewOnlineDetector(det *Detector) *OnlineDetector {
	return &OnlineDetector{det: det, Smoothing: 0.5, RaiseAfter: 3, ClearAfter: 5}
}

// NewOnlineDetectors returns n detectors in one backing slab, each
// initialised exactly as NewOnlineDetector(det). Checkpoint restore warms
// thousands of streams at boot, and allocating each detector individually
// dominated that path's allocation profile; the slab costs one.
func NewOnlineDetectors(det *Detector, n int) []OnlineDetector {
	ods := make([]OnlineDetector, n)
	for i := range ods {
		ods[i] = OnlineDetector{det: det, Smoothing: 0.5, RaiseAfter: 3, ClearAfter: 5}
	}
	return ods
}

// State is the detector's externally visible condition after a record.
type State struct {
	Score    float64 // raw score of the record
	Smoothed float64 // EWMA-smoothed score
	Alarm    bool    // current alarm condition
	Raised   bool    // this record raised the alarm
	Cleared  bool    // this record cleared the alarm
}

// Observe consumes one discretised audit record and returns the updated
// state.
//
// A non-finite score — possible when a degenerate sub-model emits NaN
// probabilities — is treated as anomalous: it counts toward the raise
// hysteresis like any sub-threshold record, but is kept out of the EWMA
// so one poisoned record cannot turn the smoothed state NaN forever.
func (o *OnlineDetector) Observe(x []int) State {
	return o.ObserveScore(o.det.Score(x))
}

// ObserveScore consumes one record whose raw score was already computed —
// the batch serving path scores whole requests through Analyzer.ScoreAll
// and then feeds each stream's detector here. State transitions are
// identical to Observe: Observe(x) is exactly
// ObserveScore(det.Score(x)), and ScoreAll is pinned bit-identical to
// Score, so batch and per-record scoring cannot diverge.
func (o *OnlineDetector) ObserveScore(raw float64) State {
	o.records++
	finite := !math.IsNaN(raw) && !math.IsInf(raw, 0)
	if finite {
		alpha := o.Smoothing
		if alpha <= 0 || alpha > 1 {
			alpha = 0.5
		}
		if !o.initialized {
			o.ewma = raw
			o.initialized = true
		} else {
			o.ewma = alpha*raw + (1-alpha)*o.ewma
		}
	} else {
		o.invalid++
	}
	st := State{Score: raw, Smoothed: o.ewma, Alarm: o.alarm}

	// Hysteresis counts raw per-record decisions: a single deep outlier
	// must not satisfy the "consecutive anomalous records" requirement by
	// dragging the smoothed score under the threshold for several steps.
	if !finite || raw < o.det.Threshold {
		o.anomRun++
		o.normRun = 0
	} else {
		o.normRun++
		o.anomRun = 0
	}
	raiseAfter := o.RaiseAfter
	if raiseAfter < 1 {
		raiseAfter = 1
	}
	clearAfter := o.ClearAfter
	if clearAfter < 1 {
		clearAfter = 1
	}
	switch {
	case !o.alarm && o.anomRun >= raiseAfter:
		o.alarm = true
		o.alarms++
		st.Raised = true
	case o.alarm && o.normRun >= clearAfter:
		o.alarm = false
		st.Cleared = true
	}
	st.Alarm = o.alarm
	return st
}

// Alarm reports the current alarm condition.
func (o *OnlineDetector) Alarm() bool { return o.alarm }

// Stats reports (records observed, alarms raised).
func (o *OnlineDetector) Stats() (records, alarms uint64) { return o.records, o.alarms }

// Invalid reports how many observed records scored non-finite.
func (o *OnlineDetector) Invalid() uint64 { return o.invalid }

// SwapDetector replaces the underlying detector in place — the hot model
// reload path — while preserving the stream's smoothed score, hysteresis
// runs and alarm condition, so a reload mid-incident neither silences an
// active alarm nor re-pages for one already raised. A nil detector is
// ignored.
func (o *OnlineDetector) SwapDetector(det *Detector) {
	if det != nil {
		o.det = det
	}
}

// Online detector state travels in serve checkpoints as a compact,
// fixed-width binary record (one per live stream, so millions of streams
// must stay cheap to encode). Layout, integers big-endian:
//
//	offset size
//	0      1    state format version (currently 1)
//	1      1    flags (bit 0 initialized, bit 1 alarm)
//	2      8    ewma (IEEE 754 bits)
//	10     8    Smoothing (IEEE 754 bits)
//	18     4    anomRun     22  4  normRun
//	26     4    RaiseAfter  30  4  ClearAfter
//	34     8    records     42  8  alarms    50  8  invalid
const (
	onlineStateVersion = 1
	// OnlineStateLen is the encoded size of one detector's state.
	OnlineStateLen = 58
)

// ErrOnlineState marks a state blob AppendState did not produce: wrong
// version, short buffer, or values (non-finite EWMA, out-of-range knobs)
// that could poison a detector restored from it.
var ErrOnlineState = errors.New("online detector state invalid")

// AppendState appends the detector's full state — EWMA, hysteresis runs,
// alarm condition, counters and smoothing knobs — to buf and returns the
// extended slice. The underlying Detector (model weights, threshold) is
// deliberately not captured: checkpoints restore stream state against
// whatever model generation is serving, exactly as a hot reload keeps
// stream state across model swaps.
func (o *OnlineDetector) AppendState(buf []byte) []byte {
	var flags byte
	if o.initialized {
		flags |= 1
	}
	if o.alarm {
		flags |= 2
	}
	var b [OnlineStateLen]byte
	b[0] = onlineStateVersion
	b[1] = flags
	binary.BigEndian.PutUint64(b[2:10], math.Float64bits(o.ewma))
	binary.BigEndian.PutUint64(b[10:18], math.Float64bits(o.Smoothing))
	binary.BigEndian.PutUint32(b[18:22], uint32(o.anomRun))
	binary.BigEndian.PutUint32(b[22:26], uint32(o.normRun))
	binary.BigEndian.PutUint32(b[26:30], uint32(o.RaiseAfter))
	binary.BigEndian.PutUint32(b[30:34], uint32(o.ClearAfter))
	binary.BigEndian.PutUint64(b[34:42], o.records)
	binary.BigEndian.PutUint64(b[42:50], o.alarms)
	binary.BigEndian.PutUint64(b[50:58], o.invalid)
	return append(buf, b[:]...)
}

// RestoreState overwrites the detector's state from a blob written by
// AppendState, validating it first: a detector must never come back with
// a NaN EWMA or negative hysteresis runs, whatever the file said. The
// underlying Detector is untouched. Returns the bytes after the blob.
func (o *OnlineDetector) RestoreState(data []byte) ([]byte, error) {
	if len(data) < OnlineStateLen {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrOnlineState, len(data), OnlineStateLen)
	}
	if data[0] != onlineStateVersion {
		return nil, fmt.Errorf("%w: state version %d, this build reads %d", ErrOnlineState, data[0], onlineStateVersion)
	}
	flags := data[1]
	if flags&^3 != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %#x", ErrOnlineState, flags)
	}
	ewma := math.Float64frombits(binary.BigEndian.Uint64(data[2:10]))
	smoothing := math.Float64frombits(binary.BigEndian.Uint64(data[10:18]))
	initialized := flags&1 != 0
	if initialized && (math.IsNaN(ewma) || math.IsInf(ewma, 0)) {
		return nil, fmt.Errorf("%w: non-finite ewma %v", ErrOnlineState, ewma)
	}
	if math.IsNaN(smoothing) || smoothing < 0 || smoothing > 1 {
		return nil, fmt.Errorf("%w: smoothing %v out of [0,1]", ErrOnlineState, smoothing)
	}
	anomRun := binary.BigEndian.Uint32(data[18:22])
	normRun := binary.BigEndian.Uint32(data[22:26])
	raiseAfter := binary.BigEndian.Uint32(data[26:30])
	clearAfter := binary.BigEndian.Uint32(data[30:34])
	const maxRun = 1 << 30 // far past any plausible hysteresis setting
	if anomRun > maxRun || normRun > maxRun || raiseAfter > maxRun || clearAfter > maxRun {
		return nil, fmt.Errorf("%w: implausible hysteresis values", ErrOnlineState)
	}
	o.initialized = initialized
	o.alarm = flags&2 != 0
	o.ewma = ewma
	o.Smoothing = smoothing
	o.anomRun = int(anomRun)
	o.normRun = int(normRun)
	o.RaiseAfter = int(raiseAfter)
	o.ClearAfter = int(clearAfter)
	o.records = binary.BigEndian.Uint64(data[34:42])
	o.alarms = binary.BigEndian.Uint64(data[42:50])
	o.invalid = binary.BigEndian.Uint64(data[50:58])
	return data[OnlineStateLen:], nil
}

// Reset returns the detector to its initial state.
func (o *OnlineDetector) Reset() {
	o.initialized = false
	o.ewma = 0
	o.anomRun = 0
	o.normRun = 0
	o.alarm = false
}

// String aids logging.
func (o *OnlineDetector) String() string {
	return fmt.Sprintf("OnlineDetector(alarm=%v, ewma=%.3f, threshold=%.3f)",
		o.alarm, o.ewma, o.det.Threshold)
}
