package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crossfeature/internal/ml"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// fixedClassifier returns a constant distribution, for algorithm tests.
type fixedClassifier struct {
	probs []float64
}

func (f fixedClassifier) PredictProba([]int) []float64 { return f.probs }

func TestAvgMatchCountAlgorithm2(t *testing.T) {
	// Three binary sub-models predicting [0.9 0.1], [0.2 0.8], [0.6 0.4]:
	// argmax classes are 0, 1, 0.
	a := &Analyzer{
		Attrs: []ml.Attr{{Card: 2}, {Card: 2}, {Card: 2}},
		Models: []ml.Classifier{
			fixedClassifier{[]float64{0.9, 0.1}},
			fixedClassifier{[]float64{0.2, 0.8}},
			fixedClassifier{[]float64{0.6, 0.4}},
		},
	}
	// Event (0,1,0): all three predictions match -> 1.
	if got := a.AvgMatchCount([]int{0, 1, 0}); got != 1 {
		t.Errorf("all-match = %v, want 1", got)
	}
	// Event (1,1,0): first mismatches -> 2/3.
	if got := a.AvgMatchCount([]int{1, 1, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("two-match = %v, want 2/3", got)
	}
	// Event (1,0,1): none match -> 0.
	if got := a.AvgMatchCount([]int{1, 0, 1}); got != 0 {
		t.Errorf("no-match = %v, want 0", got)
	}
}

func TestAvgProbabilityAlgorithm3(t *testing.T) {
	a := &Analyzer{
		Attrs: []ml.Attr{{Card: 2}, {Card: 2}},
		Models: []ml.Classifier{
			fixedClassifier{[]float64{0.9, 0.1}},
			fixedClassifier{[]float64{0.3, 0.7}},
		},
	}
	// Event (0,1): p = (0.9 + 0.7)/2.
	if got := a.AvgProbability([]int{0, 1}); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("avg probability = %v, want 0.8", got)
	}
	// Event (1,0): p = (0.1 + 0.3)/2.
	if got := a.AvgProbability([]int{1, 0}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("avg probability = %v, want 0.2", got)
	}
}

func TestNilModelsAreSkipped(t *testing.T) {
	a := &Analyzer{
		Attrs: []ml.Attr{{Card: 2}, {Card: 2}},
		Models: []ml.Classifier{
			nil,
			fixedClassifier{[]float64{0.25, 0.75}},
		},
	}
	if got := a.AvgProbability([]int{0, 1}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("skip-nil avg = %v, want 0.75", got)
	}
	if a.NumModels() != 1 {
		t.Errorf("NumModels = %d, want 1", a.NumModels())
	}
}

// correlatedDataset builds normal data where f1 = f0 and f2 is noise.
func correlatedDataset(t *testing.T, n int, seed int64) *ml.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := ml.NewDataset([]ml.Attr{
		{Name: "f0", Card: 3}, {Name: "f1", Card: 3}, {Name: "f2", Card: 3},
	})
	for i := 0; i < n; i++ {
		v := rng.Intn(3)
		if err := ds.Add([]int{v, v, rng.Intn(3)}); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestTrainDetectsBrokenCorrelation(t *testing.T) {
	ds := correlatedDataset(t, 300, 1)
	for _, learner := range []ml.Learner{c45.NewLearner(), ripper.NewLearner(), nbayes.NewLearner()} {
		a, err := Train(ds, learner, TrainOptions{})
		if err != nil {
			t.Fatalf("%s: %v", learner.Name(), err)
		}
		normal := a.AvgProbability([]int{1, 1, 0})
		broken := a.AvgProbability([]int{1, 2, 0}) // f1 != f0: impossible
		if normal <= broken {
			t.Errorf("%s: normal %v not above anomalous %v", learner.Name(), normal, broken)
		}
	}
}

func TestTrainParallelismEquivalence(t *testing.T) {
	ds := correlatedDataset(t, 200, 2)
	seq, err := Train(ds, c45.NewLearner(), TrainOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Train(ds, c45.NewLearner(), TrainOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		x := []int{rng.Intn(3), rng.Intn(3), rng.Intn(3)}
		if math.Abs(seq.AvgProbability(x)-par.AvgProbability(x)) > 1e-12 {
			t.Fatal("parallel training changed the model")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, c45.NewLearner(), TrainOptions{}); err == nil {
		t.Error("nil dataset accepted")
	}
	ds := correlatedDataset(t, 10, 4)
	if _, err := Train(ds, nil, TrainOptions{}); err == nil {
		t.Error("nil learner accepted")
	}
}

func TestSkipConstantFeatures(t *testing.T) {
	ds := ml.NewDataset([]ml.Attr{{Name: "const", Card: 1}, {Name: "v", Card: 2}})
	for i := 0; i < 20; i++ {
		if err := ds.Add([]int{0, i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := Train(ds, nbayes.NewLearner(), TrainOptions{SkipConstant: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Models[0] != nil {
		t.Error("constant feature was not skipped")
	}
	if a.Models[1] == nil {
		t.Error("varying feature was skipped")
	}
}

func TestThresholdQuantile(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// 20% false-alarm rate: the 20th percentile of normal scores.
	if got := Threshold(scores, 0.2); got != 0.3 {
		t.Errorf("threshold = %v, want 0.3", got)
	}
	if got := Threshold(scores, 0); got != 0.1 {
		t.Errorf("zero-FAR threshold = %v, want min 0.1", got)
	}
	if got := Threshold(scores, 1); got != 1.0 {
		t.Errorf("FAR 1 threshold = %v, want max", got)
	}
	if got := Threshold(nil, 0.5); got != 0 {
		t.Errorf("empty threshold = %v, want 0", got)
	}
}

// Property: at calibration time, the fraction of normal events below the
// threshold is at most the requested false-alarm rate (plus ties).
func TestQuickThresholdFalseAlarmBound(t *testing.T) {
	f := func(raw []uint8, farRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		far := float64(farRaw%100) / 100
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v) / 255
		}
		th := Threshold(scores, far)
		below := 0
		for _, s := range scores {
			if s < th {
				below++
			}
		}
		return float64(below)/float64(len(scores)) <= far+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDetectorEndToEnd(t *testing.T) {
	ds := correlatedDataset(t, 300, 5)
	a, err := Train(ds, nbayes.NewLearner(), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(a, Probability, ds.X, 0.05)
	// Normal events mostly pass, broken-correlation events mostly alarm.
	normalsFlagged, anomsFlagged := 0, 0
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		v := rng.Intn(3)
		if d.IsAnomaly([]int{v, v, rng.Intn(3)}) {
			normalsFlagged++
		}
		w := (v + 1 + rng.Intn(2)) % 3
		if d.IsAnomaly([]int{v, w, rng.Intn(3)}) {
			anomsFlagged++
		}
	}
	if normalsFlagged > 20 {
		t.Errorf("%d/100 normal events flagged", normalsFlagged)
	}
	if anomsFlagged < 80 {
		t.Errorf("only %d/100 anomalies flagged", anomsFlagged)
	}
}

func TestScorerString(t *testing.T) {
	if MatchCount.String() != "avg-match-count" || Probability.String() != "avg-probability" {
		t.Error("scorer stringers wrong")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := correlatedDataset(t, 200, 7)
	for _, learner := range []ml.Learner{c45.NewLearner(), ripper.NewLearner(), nbayes.NewLearner()} {
		a, err := Train(ds, learner, TrainOptions{})
		if err != nil {
			t.Fatalf("%s: %v", learner.Name(), err)
		}
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			t.Fatalf("%s save: %v", learner.Name(), err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s load: %v", learner.Name(), err)
		}
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 30; i++ {
			x := []int{rng.Intn(3), rng.Intn(3), rng.Intn(3)}
			if math.Abs(a.AvgProbability(x)-back.AvgProbability(x)) > 1e-12 {
				t.Fatalf("%s: round trip changed scores", learner.Name())
			}
			if a.AvgMatchCount(x) != back.AvgMatchCount(x) {
				t.Fatalf("%s: round trip changed match counts", learner.Name())
			}
		}
	}
}

func TestCalibrateCountsDroppedScores(t *testing.T) {
	scores := []float64{0.2, math.NaN(), 0.4, math.Inf(1), 0.6, math.Inf(-1), 0.8}
	th, dropped := Calibrate(scores, 0)
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}
	if th != 0.2 {
		t.Errorf("threshold = %v, want 0.2", th)
	}
	if th2 := Threshold(scores, 0); th2 != th {
		t.Errorf("Threshold disagrees with Calibrate: %v != %v", th2, th)
	}
	if th, dropped := Calibrate([]float64{math.NaN()}, 0.1); th != 0 || dropped != 1 {
		t.Errorf("all-NaN calibration = (%v, %d), want (0, 1)", th, dropped)
	}
}
