package core

import (
	"fmt"
	"math/rand"
	"testing"

	"crossfeature/internal/ml"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
)

// compileTestDataset builds a random correlated dataset whose schema
// includes unknown-guard attributes, so scoring exercises the
// missing-feature skip and debias paths.
func compileTestDataset(rng *rand.Rand, rows int) *ml.Dataset {
	nAttrs := 6 + rng.Intn(4)
	attrs := make([]ml.Attr, nAttrs)
	for j := range attrs {
		card := 2 + rng.Intn(5)
		attrs[j] = ml.Attr{
			Name:       fmt.Sprintf("f%d", j),
			Card:       card,
			HasUnknown: card > 2 && rng.Intn(3) == 0,
		}
	}
	ds := ml.NewDataset(attrs)
	row := make([]int, nAttrs)
	for i := 0; i < rows; i++ {
		latent := rng.Intn(5)
		for j, at := range attrs {
			v := latent % at.Card
			if rng.Float64() < 0.3 {
				v = rng.Intn(at.Card) // includes the guard bucket when present
			}
			row[j] = v
		}
		if err := ds.Add(row); err != nil {
			t := fmt.Sprintf("bad row: %v", err)
			panic(t)
		}
	}
	return ds
}

// referenceScores is the retained pointer-walking path, record by record.
func referenceScores(a *Analyzer, xs [][]int, s Scorer) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if s == MatchCount {
			out[i] = a.AvgMatchCount(x)
		} else {
			out[i] = a.AvgProbability(x)
		}
	}
	return out
}

// TestScoreKernelDifferential trains bundles with every base learner and
// pins the compiled scoring paths — per-event Score after Compile,
// ScoreEvents, and the columnar ScoreAll — bit-identical to the
// pointer-walking reference over >1000 random records per learner,
// including guard-bucket, short, and out-of-range rows.
func TestScoreKernelDifferential(t *testing.T) {
	learners := []ml.Learner{
		c45.NewLearner(),
		&c45.Learner{MinLeaf: 2, Prune: true, CF: 0.25, HoldoutFrac: 1.0 / 3.0},
		ripper.NewLearner(),
		nbayes.NewLearner(),
	}
	for li, learner := range learners {
		rng := rand.New(rand.NewSource(int64(100 + li)))
		train := compileTestDataset(rng, 300)
		a, err := Train(train, learner, TrainOptions{Parallelism: 2})
		if err != nil {
			t.Fatalf("%s: train: %v", learner.Name(), err)
		}

		// Valid probe rows under the training schema (guard buckets
		// included), as both a Dataset and raw rows.
		probeDS := ml.NewDataset(train.Attrs)
		row := make([]int, len(train.Attrs))
		for i := 0; i < 600; i++ {
			for j, at := range train.Attrs {
				row[j] = rng.Intn(at.Card)
			}
			if err := probeDS.Add(row); err != nil {
				t.Fatal(err)
			}
		}
		// Degraded probes: short rows, negative and out-of-range values.
		degraded := make([][]int, 0, 600)
		for i := 0; i < 600; i++ {
			x := make([]int, len(train.Attrs))
			for j, at := range train.Attrs {
				x[j] = rng.Intn(at.Card+2) - 1
			}
			if i%5 == 0 {
				x = x[:rng.Intn(len(x)+1)]
			}
			degraded = append(degraded, x)
		}

		for _, s := range []Scorer{MatchCount, Probability} {
			wantValid := referenceScores(a, probeDS.X, s)
			wantDegraded := referenceScores(a, degraded, s)

			a.Compile()
			gotAll := a.ScoreAll(probeDS, s)
			gotEvents := a.ScoreEvents(degraded, s)
			for i := range wantValid {
				if gotAll[i] != wantValid[i] {
					t.Fatalf("%s/%v: ScoreAll row %d = %v, reference %v",
						learner.Name(), s, i, gotAll[i], wantValid[i])
				}
				if got := a.Score(probeDS.X[i], s); got != wantValid[i] {
					t.Fatalf("%s/%v: compiled Score row %d = %v, reference %v",
						learner.Name(), s, i, got, wantValid[i])
				}
			}
			for i := range wantDegraded {
				if gotEvents[i] != wantDegraded[i] {
					t.Fatalf("%s/%v: ScoreEvents row %d (%v) = %v, reference %v",
						learner.Name(), s, i, degraded[i], gotEvents[i], wantDegraded[i])
				}
			}
		}
	}
}

// TestCompileInvalidation is the stale-compiled-state regression test:
// swapping a sub-model (retraining) must recompile the flat forms, and a
// dataset mutated after a batch score must rescore at its new size —
// mirroring the columnar view's invalidation.
func TestCompileInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ds := compileTestDataset(rng, 200)
	a, err := Train(ds, c45.NewLearner(), TrainOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.Compile()
	gen1 := a.comp.Load()
	if gen1 == nil {
		t.Fatal("Compile left no kernel generation")
	}
	if a.comp.Load() != gen1 {
		t.Fatal("idempotent Compile rebuilt a fresh generation")
	}

	// Retrain a sub-model on different data and splice it in: the stale
	// kernels must not serve it.
	ds2 := compileTestDataset(rng, 200)
	b, err := Train(ds2, c45.NewLearner(), TrainOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.Models[0] = b.Models[0]
	probe := make([]int, len(a.Attrs))
	for j, at := range a.Attrs {
		probe[j] = rng.Intn(at.Card)
	}
	want := a.AvgProbability(probe) // reference always reads Models directly
	if got := a.Score(probe, Probability); got != want {
		t.Fatalf("Score after model swap = %v, reference %v (stale kernels?)", got, want)
	}
	if a.comp.Load() == gen1 {
		t.Fatal("model swap did not recompile the kernel generation")
	}

	// Mutating the scored dataset must be picked up by the next ScoreAll.
	before := a.ScoreAll(ds, Probability)
	row := make([]int, len(ds.Attrs))
	for j, at := range ds.Attrs {
		row[j] = rng.Intn(at.Card)
	}
	if err := ds.Add(row); err != nil {
		t.Fatal(err)
	}
	after := a.ScoreAll(ds, Probability)
	if len(after) != len(before)+1 {
		t.Fatalf("ScoreAll after Add scored %d rows, want %d", len(after), len(before)+1)
	}
	if want := a.AvgProbability(row); after[len(after)-1] != want {
		t.Fatalf("appended row scored %v, reference %v", after[len(after)-1], want)
	}
}
