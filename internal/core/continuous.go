package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"crossfeature/internal/ml/linreg"
)

// ContinuousAnalyzer is the paper's generalisation of cross-feature
// analysis to continuous features (section 3): one multiple linear
// regression per feature predicts it from the remaining features, and the
// deviation of an event is the average log distance |log(C_i(x)/f_i(x))|
// across the sub-models. Unlike the nominal Analyzer, HIGHER scores mean
// MORE anomalous.
type ContinuousAnalyzer struct {
	Names  []string
	Models []*linreg.Model
}

// ContinuousOptions tunes continuous training.
type ContinuousOptions struct {
	// Lambda is the ridge regulariser keeping collinear or constant
	// feature columns harmless; <= 0 uses a small default.
	Lambda float64
	// Parallelism bounds concurrent sub-model fits; <= 0 uses GOMAXPROCS.
	Parallelism int
}

// TrainContinuous fits one regression per feature on normal-only rows.
func TrainContinuous(rows [][]float64, names []string, opts ContinuousOptions) (*ContinuousAnalyzer, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: empty continuous training set")
	}
	d := len(rows[0])
	if len(names) != d {
		return nil, fmt.Errorf("core: %d names for %d feature columns", len(names), d)
	}
	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	a := &ContinuousAnalyzer{
		Names:  append([]string(nil), names...),
		Models: make([]*linreg.Model, d),
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d {
		workers = d
	}
	targets := make(chan int)
	errs := make([]error, d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range targets {
				m, err := linreg.Fit(rows, j, lambda)
				if err != nil {
					errs[j] = fmt.Errorf("core: regression for %q: %w", names[j], err)
					continue
				}
				a.Models[j] = m
			}
		}()
	}
	for j := 0; j < d; j++ {
		targets <- j
	}
	close(targets)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// AvgLogDistance scores one continuous event: the mean log distance of
// the true feature values from the sub-model predictions. Zero means the
// event lies exactly on every learned relationship.
func (a *ContinuousAnalyzer) AvgLogDistance(row []float64) float64 {
	var sum float64
	var n int
	for _, m := range a.Models {
		if m == nil {
			continue
		}
		sum += m.LogDistance(row)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ScoreAll scores a batch of continuous events.
func (a *ContinuousAnalyzer) ScoreAll(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = a.AvgLogDistance(r)
	}
	return out
}

// ContinuousThreshold calibrates the alarm threshold from normal-data
// distances: the upper quantile at the given false-alarm rate (distances
// ABOVE the threshold raise alarms).
func ContinuousThreshold(normalDistances []float64, falseAlarmRate float64) float64 {
	if len(normalDistances) == 0 {
		return 0
	}
	if falseAlarmRate < 0 {
		falseAlarmRate = 0
	}
	if falseAlarmRate > 1 {
		falseAlarmRate = 1
	}
	sorted := append([]float64(nil), normalDistances...)
	sort.Float64s(sorted)
	idx := int((1 - falseAlarmRate) * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// ContinuousDetector couples a continuous analyzer with its threshold.
type ContinuousDetector struct {
	Analyzer  *ContinuousAnalyzer
	Threshold float64
}

// NewContinuousDetector calibrates on normal rows at a false-alarm rate.
func NewContinuousDetector(a *ContinuousAnalyzer, normalRows [][]float64, falseAlarmRate float64) *ContinuousDetector {
	return &ContinuousDetector{
		Analyzer:  a,
		Threshold: ContinuousThreshold(a.ScoreAll(normalRows), falseAlarmRate),
	}
}

// IsAnomaly classifies one continuous event.
func (d *ContinuousDetector) IsAnomaly(row []float64) bool {
	return d.Analyzer.AvgLogDistance(row) > d.Threshold
}
