package core

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"crossfeature/internal/ml"
	"crossfeature/internal/ml/nbayes"
)

// onlineFixture trains a detector on correlated data and returns it with
// generators for normal and anomalous events.
func onlineFixture(t *testing.T) (*OnlineDetector, func() []int, func() []int) {
	t.Helper()
	ds := correlatedDataset(t, 400, 21)
	a, err := Train(ds, nbayes.NewLearner(), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(a, Probability, ds.X, 0.02)
	rng := rand.New(rand.NewSource(22))
	normal := func() []int {
		v := rng.Intn(3)
		return []int{v, v, rng.Intn(3)}
	}
	anomalous := func() []int {
		v := rng.Intn(3)
		return []int{v, (v + 1) % 3, rng.Intn(3)}
	}
	return NewOnlineDetector(det), normal, anomalous
}

func TestOnlineRaisesOnSustainedAnomaly(t *testing.T) {
	o, normal, anomalous := onlineFixture(t)
	for i := 0; i < 30; i++ {
		if st := o.Observe(normal()); st.Alarm {
			t.Fatalf("alarm on normal stream at record %d", i)
		}
	}
	raised := false
	for i := 0; i < 20; i++ {
		st := o.Observe(anomalous())
		if st.Raised {
			raised = true
			if i < o.RaiseAfter-1 {
				t.Errorf("raised after only %d records, hysteresis is %d", i+1, o.RaiseAfter)
			}
			break
		}
	}
	if !raised {
		t.Fatal("sustained anomaly never raised the alarm")
	}
	if !o.Alarm() {
		t.Fatal("alarm state not sticky")
	}
}

func TestOnlineClearsAfterRecovery(t *testing.T) {
	o, normal, anomalous := onlineFixture(t)
	for i := 0; i < 20; i++ {
		o.Observe(anomalous())
	}
	if !o.Alarm() {
		t.Fatal("setup: alarm not raised")
	}
	cleared := false
	for i := 0; i < 40; i++ {
		if st := o.Observe(normal()); st.Cleared {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("alarm never cleared after recovery")
	}
	if o.Alarm() {
		t.Fatal("alarm state did not reset")
	}
	_, alarms := o.Stats()
	if alarms != 1 {
		t.Errorf("alarms = %d, want 1", alarms)
	}
}

func TestOnlineSingleBlipDoesNotAlarm(t *testing.T) {
	o, normal, anomalous := onlineFixture(t)
	for i := 0; i < 10; i++ {
		o.Observe(normal())
	}
	// One isolated anomalous record: smoothing + hysteresis absorb it.
	if st := o.Observe(anomalous()); st.Raised {
		t.Error("single blip raised the alarm")
	}
	for i := 0; i < 10; i++ {
		if st := o.Observe(normal()); st.Alarm {
			t.Fatal("blip left a lingering alarm")
		}
	}
}

func TestOnlineReset(t *testing.T) {
	o, _, anomalous := onlineFixture(t)
	for i := 0; i < 20; i++ {
		o.Observe(anomalous())
	}
	o.Reset()
	if o.Alarm() {
		t.Error("Reset did not clear the alarm")
	}
}

func TestOnlineSmoothingTracksRaw(t *testing.T) {
	o, normal, _ := onlineFixture(t)
	o.Smoothing = 1 // no smoothing: EWMA equals raw
	for i := 0; i < 5; i++ {
		st := o.Observe(normal())
		if st.Score != st.Smoothed {
			t.Fatalf("smoothing=1 but smoothed %v != raw %v", st.Smoothed, st.Score)
		}
	}
}

// scriptedDetector builds an OnlineDetector whose per-record verdicts the
// test controls exactly: a single binary sub-model predicting class 0
// with certainty, threshold 0.5, MatchCount scoring. Event [0] scores 1
// (normal), event [1] scores 0 (anomalous).
func scriptedDetector() *OnlineDetector {
	a := &Analyzer{
		Attrs:  []ml.Attr{{Name: "f", Card: 2}},
		Models: []ml.Classifier{fixedClassifier{[]float64{0.9, 0.1}}},
	}
	return NewOnlineDetector(&Detector{Analyzer: a, Scorer: MatchCount, Threshold: 0.5})
}

var lowRec, highRec = []int{1}, []int{0}

func TestHysteresisExactRaiseBoundary(t *testing.T) {
	o := scriptedDetector()
	// Exactly RaiseAfter-1 consecutive anomalous records must not alarm.
	for i := 0; i < o.RaiseAfter-1; i++ {
		if st := o.Observe(lowRec); st.Alarm || st.Raised {
			t.Fatalf("alarmed after %d of %d records", i+1, o.RaiseAfter)
		}
	}
	// The RaiseAfter-th does, and exactly once.
	st := o.Observe(lowRec)
	if !st.Raised || !st.Alarm {
		t.Fatalf("record %d did not raise: %+v", o.RaiseAfter, st)
	}
	if st := o.Observe(lowRec); st.Raised {
		t.Error("alarm re-raised while already up")
	}
}

func TestHysteresisExactClearBoundary(t *testing.T) {
	o := scriptedDetector()
	for i := 0; i < o.RaiseAfter; i++ {
		o.Observe(lowRec)
	}
	if !o.Alarm() {
		t.Fatal("setup: alarm not raised")
	}
	// ClearAfter-1 consecutive normal records must leave the alarm up.
	for i := 0; i < o.ClearAfter-1; i++ {
		if st := o.Observe(highRec); !st.Alarm || st.Cleared {
			t.Fatalf("cleared after %d of %d records", i+1, o.ClearAfter)
		}
	}
	// Exactly ClearAfter highs clear it.
	st := o.Observe(highRec)
	if !st.Cleared || st.Alarm {
		t.Fatalf("record %d did not clear: %+v", o.ClearAfter, st)
	}
}

func TestHysteresisAlternatingNeverLatches(t *testing.T) {
	o := scriptedDetector()
	for i := 0; i < 200; i++ {
		rec := highRec
		if i%2 == 0 {
			rec = lowRec
		}
		if st := o.Observe(rec); st.Alarm || st.Raised {
			t.Fatalf("alternating stream latched the alarm at record %d", i)
		}
	}
	// A broken run resets the count: RaiseAfter-1 lows, one high, then
	// RaiseAfter-1 lows again must not alarm either.
	for round := 0; round < 3; round++ {
		for i := 0; i < o.RaiseAfter-1; i++ {
			if st := o.Observe(lowRec); st.Alarm {
				t.Fatal("non-consecutive lows latched the alarm")
			}
		}
		o.Observe(highRec)
	}
}

// nanClassifier poisons its class distribution with NaN.
type nanClassifier struct{}

func (nanClassifier) PredictProba([]int) []float64 {
	return []float64{math.NaN(), math.NaN()}
}

func TestObserveNaNScoreIsAnomalousNotPoisonous(t *testing.T) {
	good := fixedClassifier{[]float64{0.9, 0.1}}
	a := &Analyzer{
		Attrs:  []ml.Attr{{Name: "f", Card: 2}},
		Models: []ml.Classifier{good},
	}
	o := NewOnlineDetector(&Detector{Analyzer: a, Scorer: Probability, Threshold: 0.5})

	// Establish a healthy smoothed state.
	for i := 0; i < 5; i++ {
		o.Observe(highRec)
	}
	before := o.Observe(highRec).Smoothed
	if math.IsNaN(before) {
		t.Fatal("setup: smoothed state already NaN")
	}

	// Swap in a NaN-emitting sub-model: scores go non-finite.
	a.Models[0] = nanClassifier{}
	var st State
	for i := 0; i < o.RaiseAfter; i++ {
		st = o.Observe(highRec)
		if !math.IsNaN(st.Score) {
			t.Fatalf("fixture: expected NaN score, got %v", st.Score)
		}
		if math.IsNaN(st.Smoothed) {
			t.Fatal("NaN score poisoned the smoothed state")
		}
	}
	if !st.Alarm {
		t.Error("sustained NaN scores did not raise the alarm")
	}
	if got := o.Invalid(); got != uint64(o.RaiseAfter) {
		t.Errorf("Invalid() = %d, want %d", got, o.RaiseAfter)
	}

	// Recovery: healthy records clear the alarm and the EWMA picks up
	// from its pre-poisoning value.
	a.Models[0] = good
	for i := 0; i < o.ClearAfter; i++ {
		st = o.Observe(highRec)
	}
	if st.Alarm {
		t.Error("alarm did not clear after recovery from NaN scores")
	}
	if math.IsNaN(st.Smoothed) || st.Smoothed < before {
		t.Errorf("smoothed state did not recover: %v (before %v)", st.Smoothed, before)
	}
}

func TestSwapDetectorPreservesState(t *testing.T) {
	o := scriptedDetector()
	for i := 0; i < o.RaiseAfter; i++ {
		o.Observe(lowRec)
	}
	if !o.Alarm() {
		t.Fatal("setup: alarm not raised")
	}
	smoothedBefore := o.Observe(lowRec).Smoothed

	// Hot-swap to a retrained detector (same schema, new threshold).
	a2 := &Analyzer{
		Attrs:  []ml.Attr{{Name: "f", Card: 2}},
		Models: []ml.Classifier{fixedClassifier{[]float64{0.8, 0.2}}},
	}
	o.SwapDetector(&Detector{Analyzer: a2, Scorer: MatchCount, Threshold: 0.4})
	if !o.Alarm() {
		t.Error("swap dropped the active alarm")
	}
	st := o.Observe(lowRec)
	if math.Abs(st.Smoothed-smoothedBefore/2) > 1e-12 {
		t.Errorf("swap reset the EWMA: got %v", st.Smoothed)
	}
	o.SwapDetector(nil) // must be a no-op, not a panic
	o.Observe(highRec)
}

// TestOnlineStateRoundTrip pins the checkpoint encoding: a detector
// restored from AppendState bytes must produce bit-identical verdicts to
// the original from that point on — this is the continuity guarantee the
// serve checkpoint format is built on.
func TestOnlineStateRoundTrip(t *testing.T) {
	o, normal, anomalous := onlineFixture(t)
	o.Smoothing = 0.25
	o.RaiseAfter = 2
	o.ClearAfter = 4
	// Drive the detector into a non-trivial condition: mid-run, alarmed.
	for i := 0; i < 40; i++ {
		o.Observe(normal())
	}
	for i := 0; i < 7; i++ {
		o.Observe(anomalous())
	}

	blob := o.AppendState(nil)
	if len(blob) != OnlineStateLen {
		t.Fatalf("state blob = %d bytes, want %d", len(blob), OnlineStateLen)
	}
	restored := NewOnlineDetector(o.det)
	rest, err := o.AppendState(nil), error(nil)
	if rest, err = restored.RestoreState(rest); err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("restore left %d bytes", len(rest))
	}
	if restored.Smoothing != o.Smoothing || restored.RaiseAfter != o.RaiseAfter || restored.ClearAfter != o.ClearAfter {
		t.Errorf("knobs lost: %+v", restored)
	}
	if restored.Alarm() != o.Alarm() {
		t.Errorf("alarm condition lost")
	}
	r1, a1 := o.Stats()
	r2, a2 := restored.Stats()
	if r1 != r2 || a1 != a2 || o.Invalid() != restored.Invalid() {
		t.Errorf("counters lost: (%d,%d,%d) != (%d,%d,%d)", r1, a1, o.Invalid(), r2, a2, restored.Invalid())
	}

	// From here on the two must agree on every record, bit for bit.
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		var x []int
		if rng.Intn(3) == 0 {
			x = anomalous()
		} else {
			x = normal()
		}
		s1 := o.Observe(x)
		s2 := restored.Observe(append([]int(nil), x...))
		if s1 != s2 {
			t.Fatalf("record %d: original %+v, restored %+v", i, s1, s2)
		}
	}
}

// TestOnlineStateRejectsDamage feeds RestoreState every kind of broken
// blob; all must fail with ErrOnlineState and leave the detector usable.
func TestOnlineStateRejectsDamage(t *testing.T) {
	o, normal, _ := onlineFixture(t)
	for i := 0; i < 10; i++ {
		o.Observe(normal())
	}
	good := o.AppendState(nil)

	badVersion := append([]byte(nil), good...)
	badVersion[0] = 9
	badFlags := append([]byte(nil), good...)
	badFlags[1] = 0xff
	nanEwma := append([]byte(nil), good...)
	binary.BigEndian.PutUint64(nanEwma[2:10], math.Float64bits(math.NaN()))
	badSmoothing := append([]byte(nil), good...)
	binary.BigEndian.PutUint64(badSmoothing[10:18], math.Float64bits(7.5))
	hugeRun := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(hugeRun[18:22], 1<<31-1)

	for name, data := range map[string][]byte{
		"empty":           nil,
		"short":           good[:OnlineStateLen-1],
		"bad version":     badVersion,
		"unknown flags":   badFlags,
		"nan ewma":        nanEwma,
		"bad smoothing":   badSmoothing,
		"implausible run": hugeRun,
	} {
		fresh := NewOnlineDetector(o.det)
		if _, err := fresh.RestoreState(data); !errors.Is(err, ErrOnlineState) {
			t.Errorf("%s: error = %v, want ErrOnlineState", name, err)
		}
		// The detector must stay usable after a rejected restore.
		fresh.Observe(normal())
	}
}

// TestOnlineStateUninitializedEwma: a never-observed detector (EWMA not
// yet initialised) round-trips, including the zero EWMA.
func TestOnlineStateUninitializedEwma(t *testing.T) {
	o, normal, _ := onlineFixture(t)
	fresh := NewOnlineDetector(o.det)
	blob := fresh.AppendState(nil)
	restored := NewOnlineDetector(o.det)
	if _, err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	x := normal()
	s1, s2 := fresh.Observe(x), restored.Observe(x)
	if s1 != s2 {
		t.Errorf("first observation diverged: %+v vs %+v", s1, s2)
	}
}
