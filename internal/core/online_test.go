package core

import (
	"math/rand"
	"testing"

	"crossfeature/internal/ml/nbayes"
)

// onlineFixture trains a detector on correlated data and returns it with
// generators for normal and anomalous events.
func onlineFixture(t *testing.T) (*OnlineDetector, func() []int, func() []int) {
	t.Helper()
	ds := correlatedDataset(t, 400, 21)
	a, err := Train(ds, nbayes.NewLearner(), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(a, Probability, ds.X, 0.02)
	rng := rand.New(rand.NewSource(22))
	normal := func() []int {
		v := rng.Intn(3)
		return []int{v, v, rng.Intn(3)}
	}
	anomalous := func() []int {
		v := rng.Intn(3)
		return []int{v, (v + 1) % 3, rng.Intn(3)}
	}
	return NewOnlineDetector(det), normal, anomalous
}

func TestOnlineRaisesOnSustainedAnomaly(t *testing.T) {
	o, normal, anomalous := onlineFixture(t)
	for i := 0; i < 30; i++ {
		if st := o.Observe(normal()); st.Alarm {
			t.Fatalf("alarm on normal stream at record %d", i)
		}
	}
	raised := false
	for i := 0; i < 20; i++ {
		st := o.Observe(anomalous())
		if st.Raised {
			raised = true
			if i < o.RaiseAfter-1 {
				t.Errorf("raised after only %d records, hysteresis is %d", i+1, o.RaiseAfter)
			}
			break
		}
	}
	if !raised {
		t.Fatal("sustained anomaly never raised the alarm")
	}
	if !o.Alarm() {
		t.Fatal("alarm state not sticky")
	}
}

func TestOnlineClearsAfterRecovery(t *testing.T) {
	o, normal, anomalous := onlineFixture(t)
	for i := 0; i < 20; i++ {
		o.Observe(anomalous())
	}
	if !o.Alarm() {
		t.Fatal("setup: alarm not raised")
	}
	cleared := false
	for i := 0; i < 40; i++ {
		if st := o.Observe(normal()); st.Cleared {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("alarm never cleared after recovery")
	}
	if o.Alarm() {
		t.Fatal("alarm state did not reset")
	}
	_, alarms := o.Stats()
	if alarms != 1 {
		t.Errorf("alarms = %d, want 1", alarms)
	}
}

func TestOnlineSingleBlipDoesNotAlarm(t *testing.T) {
	o, normal, anomalous := onlineFixture(t)
	for i := 0; i < 10; i++ {
		o.Observe(normal())
	}
	// One isolated anomalous record: smoothing + hysteresis absorb it.
	if st := o.Observe(anomalous()); st.Raised {
		t.Error("single blip raised the alarm")
	}
	for i := 0; i < 10; i++ {
		if st := o.Observe(normal()); st.Alarm {
			t.Fatal("blip left a lingering alarm")
		}
	}
}

func TestOnlineReset(t *testing.T) {
	o, _, anomalous := onlineFixture(t)
	for i := 0; i < 20; i++ {
		o.Observe(anomalous())
	}
	o.Reset()
	if o.Alarm() {
		t.Error("Reset did not clear the alarm")
	}
}

func TestOnlineSmoothingTracksRaw(t *testing.T) {
	o, normal, _ := onlineFixture(t)
	o.Smoothing = 1 // no smoothing: EWMA equals raw
	for i := 0; i < 5; i++ {
		st := o.Observe(normal())
		if st.Score != st.Smoothed {
			t.Fatalf("smoothing=1 but smoothed %v != raw %v", st.Smoothed, st.Score)
		}
	}
}
