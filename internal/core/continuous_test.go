package core

import (
	"math/rand"
	"testing"
)

// continuousRows builds normal data where f1 = 2*f0 + noise and f2 is an
// independent channel.
func continuousRows(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		x := rng.Float64() * 10
		rows[i] = []float64{x, 2*x + rng.Float64()*0.1, rng.Float64() * 5}
	}
	return rows
}

func TestContinuousSeparatesBrokenCorrelation(t *testing.T) {
	rows := continuousRows(300, 1)
	a, err := TrainContinuous(rows, []string{"f0", "f1", "f2"}, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	normal := a.AvgLogDistance([]float64{5, 10.05, 2})
	broken := a.AvgLogDistance([]float64{5, 0.1, 2}) // f1 should be ~10
	if broken <= normal {
		t.Errorf("broken correlation distance %v not above normal %v", broken, normal)
	}
}

func TestContinuousDetectorEndToEnd(t *testing.T) {
	rows := continuousRows(500, 2)
	a, err := TrainContinuous(rows, []string{"f0", "f1", "f2"}, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det := NewContinuousDetector(a, rows, 0.05)
	rng := rand.New(rand.NewSource(3))
	normalFlagged, anomFlagged := 0, 0
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		if det.IsAnomaly([]float64{x, 2*x + rng.Float64()*0.1, rng.Float64() * 5}) {
			normalFlagged++
		}
		if det.IsAnomaly([]float64{x, 2*x + 8 + rng.Float64(), rng.Float64() * 5}) {
			anomFlagged++
		}
	}
	if normalFlagged > 15 {
		t.Errorf("%d/100 normal rows flagged", normalFlagged)
	}
	if anomFlagged < 85 {
		t.Errorf("only %d/100 anomalous rows flagged", anomFlagged)
	}
}

func TestContinuousParallelEquivalence(t *testing.T) {
	rows := continuousRows(200, 4)
	names := []string{"f0", "f1", "f2"}
	seq, err := TrainContinuous(rows, names, ContinuousOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := TrainContinuous(rows, names, ContinuousOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows[:50] {
		if seq.AvgLogDistance(r) != par.AvgLogDistance(r) {
			t.Fatalf("row %d: parallel training changed the model", i)
		}
	}
}

func TestContinuousTrainErrors(t *testing.T) {
	if _, err := TrainContinuous(nil, nil, ContinuousOptions{}); err == nil {
		t.Error("empty training accepted")
	}
	if _, err := TrainContinuous([][]float64{{1, 2}}, []string{"a"}, ContinuousOptions{}); err == nil {
		t.Error("name mismatch accepted")
	}
}

func TestContinuousThresholdQuantile(t *testing.T) {
	dists := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// 20% FAR: threshold at the 80th percentile.
	if got := ContinuousThreshold(dists, 0.2); got != 0.9 {
		t.Errorf("threshold = %v, want 0.9", got)
	}
	if got := ContinuousThreshold(nil, 0.1); got != 0 {
		t.Errorf("empty threshold = %v", got)
	}
}

func TestContinuousConstantColumnTolerated(t *testing.T) {
	rows := make([][]float64, 100)
	rng := rand.New(rand.NewSource(5))
	for i := range rows {
		x := rng.Float64()
		rows[i] = []float64{x, 3 * x, 7} // constant third column
	}
	a, err := TrainContinuous(rows, []string{"a", "b", "const"}, ContinuousOptions{})
	if err != nil {
		t.Fatalf("constant column broke training: %v", err)
	}
	if d := a.AvgLogDistance(rows[0]); d > 0.5 {
		t.Errorf("in-sample distance %v unexpectedly large", d)
	}
}
