package features

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary input never panics the trace parser —
// it must either parse or return an error.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	good := []Vector{{Time: 5, Values: make([]float64, NumFeatures)}}
	if err := WriteCSV(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("time,velocity\n1,2\n")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = ReadCSV(strings.NewReader(s))
	})
}

// FuzzTransformValue ensures discretisation is total over float inputs.
func FuzzTransformValue(f *testing.F) {
	rows := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	d, err := Fit(rows, []string{"x"}, FitOptions{Buckets: 5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(0.0)
	f.Add(5.5)
	f.Add(-1e300)
	f.Add(1e300)
	f.Fuzz(func(t *testing.T, v float64) {
		b := d.TransformValue(0, v)
		if b < 0 || b >= d.Cardinality(0) {
			t.Fatalf("value %v mapped to bucket %d of %d", v, b, d.Cardinality(0))
		}
	})
}
