package features

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary input never panics the trace parser —
// it must either parse or return an error.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	good := []Vector{{Time: 5, Values: make([]float64, NumFeatures)}}
	if err := WriteCSV(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("time,velocity\n1,2\n")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = ReadCSV(strings.NewReader(s))
	})
}

// FuzzTransformValue ensures discretisation is total over float inputs.
func FuzzTransformValue(f *testing.F) {
	rows := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	d, err := Fit(rows, []string{"x"}, FitOptions{Buckets: 5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(0.0)
	f.Add(5.5)
	f.Add(-1e300)
	f.Add(1e300)
	f.Fuzz(func(t *testing.T, v float64) {
		b := d.TransformValue(0, v)
		if b < 0 || b >= d.Cardinality(0) {
			t.Fatalf("value %v mapped to bucket %d of %d", v, b, d.Cardinality(0))
		}
	})
}

// TestTransformHostileValues pins the bucket each degraded reading lands
// in: NaN in the unknown bucket, ±Inf and out-of-range values in the
// below-/above-range guards — explicit classes, never a panic or a fold
// into a normal bucket.
func TestTransformHostileValues(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	d, err := Fit(rows, []string{"x"}, FitOptions{Buckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	cuts := len(d.Cuts[0])
	below, above, unknown := cuts+1, cuts+2, cuts+3
	cases := []struct {
		v    float64
		want int
	}{
		{math.NaN(), unknown},
		{math.Inf(-1), below},
		{math.Inf(1), above},
		{0.5, below},
		{-1e300, below},
		{10.5, above},
		{1e300, above},
		{1, 0},
		{10, cuts},
	}
	for _, c := range cases {
		if got := d.TransformValue(0, c.v); got != c.want {
			t.Errorf("TransformValue(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if u := d.UnknownBucket(0); u != unknown || u != d.Cardinality(0)-1 {
		t.Errorf("UnknownBucket = %d, want %d (Cardinality-1)", u, unknown)
	}
	// A full hostile row transforms without error and every bucket is in
	// range.
	x, err := d.Transform([]float64{math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != unknown {
		t.Errorf("row transform mapped NaN to %d, want %d", x[0], unknown)
	}
}

// TestTransformDeterministic feeds the same hostile values twice and
// demands identical buckets: degraded audit data must not introduce
// nondeterminism.
func TestTransformDeterministic(t *testing.T) {
	rows := [][]float64{{1, -5}, {2, 0}, {3, 5}, {4, 10}, {5, 15}, {6, 20}}
	d, err := Fit(rows, []string{"x", "y"}, FitOptions{Buckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	hostile := [][]float64{
		{math.NaN(), math.Inf(1)},
		{math.Inf(-1), math.NaN()},
		{1e308, -1e308},
		{3.5, 7.5},
	}
	for _, row := range hostile {
		a, err := d.Transform(row)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Transform(row)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("row %v feature %d: buckets %d then %d", row, j, a[j], b[j])
			}
			if a[j] < 0 || a[j] >= d.Cardinality(j) {
				t.Errorf("row %v feature %d: bucket %d outside [0,%d)", row, j, a[j], d.Cardinality(j))
			}
		}
	}
}

// TestFitDegenerateInputs covers pathological training sets: no rows is an
// error; all-non-finite and constant columns fit fine and stay total at
// transform time.
func TestFitDegenerateInputs(t *testing.T) {
	if _, err := Fit(nil, nil, FitOptions{}); err == nil {
		t.Error("Fit on zero rows must error")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, []string{"a", "b"}, FitOptions{}); err == nil {
		t.Error("Fit on ragged rows must error")
	}
	if _, err := Fit([][]float64{{1}}, []string{"a", "b"}, FitOptions{}); err == nil {
		t.Error("Fit with mismatched names must error")
	}

	// A column with no finite observation: the range is pinned and every
	// finite value is out-of-range, NaN still maps to unknown.
	d, err := Fit([][]float64{{math.NaN()}, {math.Inf(1)}}, []string{"x"}, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TransformValue(0, math.NaN()); got != d.UnknownBucket(0) {
		t.Errorf("NaN -> %d, want unknown %d", got, d.UnknownBucket(0))
	}
	if got := d.TransformValue(0, 0); got < 0 || got >= d.Cardinality(0) {
		t.Errorf("finite value -> bucket %d outside schema", got)
	}

	// A constant column yields no cuts but stays total.
	d, err = Fit([][]float64{{7}, {7}, {7}}, []string{"x"}, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cuts[0]) != 0 {
		t.Errorf("constant column produced %d cuts", len(d.Cuts[0]))
	}
	if got := d.TransformValue(0, 7); got != 0 {
		t.Errorf("the constant value -> bucket %d, want 0", got)
	}
	if got := d.TransformValue(0, 8); got != d.Cardinality(0)-2 {
		t.Errorf("above-range value -> bucket %d, want above-guard %d", got, d.Cardinality(0)-2)
	}
}
