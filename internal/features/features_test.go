package features

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"crossfeature/internal/packet"
	"crossfeature/internal/trace"
)

func TestFeatureCount(t *testing.T) {
	// The paper's arithmetic: (6*4-2)*3*2 = 132 traffic features, plus the
	// 8 classified topology/route features of Table 4.
	if NumTrafficFeatures != 132 {
		t.Errorf("traffic features = %d, want 132", NumTrafficFeatures)
	}
	if NumFeatures != 140 {
		t.Errorf("total features = %d, want 140", NumFeatures)
	}
	names := Names()
	if len(names) != NumFeatures {
		t.Fatalf("Names() has %d entries", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestNoExcludedComboNames(t *testing.T) {
	for _, n := range Names() {
		if strings.HasPrefix(n, "data.fwd") || strings.HasPrefix(n, "data.drop") {
			t.Errorf("excluded combination leaked into features: %q", n)
		}
	}
}

func TestFromSnapshotMapping(t *testing.T) {
	col := trace.NewCollector()
	col.RecordPacket(4, packet.RouteRequest, trace.Received)
	col.RecordRoute(trace.RouteAdd)
	col.RecordRoute(trace.RouteNotice)
	snap := col.Snapshot(5, 7.5, 2.5)
	v := FromSnapshot(snap)
	if v.Time != 5 {
		t.Errorf("time = %v", v.Time)
	}
	if len(v.Values) != NumFeatures {
		t.Fatalf("vector has %d values", len(v.Values))
	}
	idx := indexByName(t, "velocity")
	if v.Values[idx] != 7.5 {
		t.Errorf("velocity = %v", v.Values[idx])
	}
	idx = indexByName(t, "route_add_count")
	if v.Values[idx] != 1 {
		t.Errorf("route_add = %v", v.Values[idx])
	}
	idx = indexByName(t, "route_notice_count")
	if v.Values[idx] != 1 {
		t.Errorf("route_notice = %v", v.Values[idx])
	}
	idx = indexByName(t, "avg_route_length")
	if v.Values[idx] != 2.5 {
		t.Errorf("avg_route_length = %v", v.Values[idx])
	}
	idx = indexByName(t, "rreq.recv.5s.count")
	if v.Values[idx] != 1 {
		t.Errorf("rreq.recv.5s.count = %v", v.Values[idx])
	}
	idx = indexByName(t, "route.recv.5s.count")
	if v.Values[idx] != 1 {
		t.Errorf("route.recv.5s.count = %v (aggregate)", v.Values[idx])
	}
}

func indexByName(t *testing.T, name string) int {
	t.Helper()
	for i, n := range Names() {
		if n == name {
			return i
		}
	}
	t.Fatalf("no feature named %q", name)
	return -1
}

func TestDiscretizerEqualFrequency(t *testing.T) {
	// 100 uniform values in [0,100): five buckets of ~20 values each.
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{float64(i)}
	}
	d, err := Fit(rows, []string{"x"}, FitOptions{Buckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, d.Cardinality(0))
	for _, r := range rows {
		counts[d.TransformValue(0, r[0])]++
	}
	for b := 0; b < 5; b++ {
		if counts[b] < 15 || counts[b] > 25 {
			t.Errorf("bucket %d holds %d of 100 values, want about 20", b, counts[b])
		}
	}
	// Out-of-range buckets are empty on training data.
	if counts[5] != 0 || counts[6] != 0 {
		t.Errorf("training values landed out of range: %v", counts)
	}
}

func TestDiscretizerZeroHeavyFeature(t *testing.T) {
	// 90% zeros: quantile cuts collapse, cardinality shrinks but transform
	// stays total.
	rows := make([][]float64, 100)
	for i := range rows {
		v := 0.0
		if i >= 90 {
			v = float64(i)
		}
		rows[i] = []float64{v}
	}
	d, err := Fit(rows, []string{"x"}, FitOptions{Buckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cardinality(0) >= 8 {
		t.Errorf("cardinality = %d for a near-constant feature", d.Cardinality(0))
	}
	for _, r := range rows {
		b := d.TransformValue(0, r[0])
		if b < 0 || b >= d.Cardinality(0) {
			t.Fatalf("bucket %d outside cardinality %d", b, d.Cardinality(0))
		}
	}
}

func TestOutOfRangeBuckets(t *testing.T) {
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{float64(10 + i)} // range [10, 59]
	}
	d, err := Fit(rows, []string{"x"}, FitOptions{Buckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	lo := d.TransformValue(0, 5)
	hi := d.TransformValue(0, 100)
	inRange := d.TransformValue(0, 30)
	if lo == hi {
		t.Error("below-range and above-range buckets collide")
	}
	if lo < len(d.Cuts[0])+1 || hi < len(d.Cuts[0])+1 {
		t.Errorf("out-of-range values mapped to in-range buckets: lo=%d hi=%d", lo, hi)
	}
	if inRange >= len(d.Cuts[0])+1 {
		t.Errorf("in-range value mapped out of range: %d", inRange)
	}
	// Boundary values stay in range.
	if b := d.TransformValue(0, 10); b >= len(d.Cuts[0])+1 {
		t.Errorf("minimum mapped out of range: %d", b)
	}
	if b := d.TransformValue(0, 59); b >= len(d.Cuts[0])+1 {
		t.Errorf("maximum mapped out of range: %d", b)
	}
}

func TestDiscretizerSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 1000)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64()}
	}
	d, err := Fit(rows, []string{"x"}, FitOptions{Buckets: 5, SampleSize: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Range guard must still come from the full data: no training value
	// may land out of range.
	for _, r := range rows {
		if b := d.TransformValue(0, r[0]); b > len(d.Cuts[0]) {
			t.Fatalf("training value %v out of range (bucket %d)", r[0], b)
		}
	}
}

func TestDatasetConstruction(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}}
	d, err := Fit(rows, []string{"a", "b"}, FitOptions{Buckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := d.Dataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 5 || len(ds.Attrs) != 2 {
		t.Errorf("dataset %dx%d", ds.Len(), len(ds.Attrs))
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("constructed dataset invalid: %v", err)
	}
}

func TestTransformShapeErrors(t *testing.T) {
	d, err := Fit([][]float64{{1, 2}}, []string{"a", "b"}, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Transform([]float64{1}); err == nil {
		t.Error("short row accepted")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, FitOptions{}); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([][]float64{{1}}, []string{"a", "b"}, FitOptions{}); err == nil {
		t.Error("name/width mismatch accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, []string{"a", "b"}, FitOptions{}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var vs []Vector
	for i := 0; i < 20; i++ {
		v := Vector{Time: float64(i) * 5, Values: make([]float64, NumFeatures)}
		for j := range v.Values {
			v.Values[j] = rng.Float64() * 100
		}
		vs = append(vs, v)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, vs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(vs) {
		t.Fatalf("round trip length %d != %d", len(back), len(vs))
	}
	for i := range vs {
		if back[i].Time != vs[i].Time {
			t.Fatalf("row %d time differs", i)
		}
		for j := range vs[i].Values {
			if back[i].Values[j] != vs[i].Values[j] {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestCSVRejectsWrongHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("foreign CSV accepted")
	}
}

// Property: TransformValue is total and within cardinality for any input,
// and monotone in the value.
func TestQuickTransformTotalAndMonotone(t *testing.T) {
	rows := make([][]float64, 200)
	rng := rand.New(rand.NewSource(5))
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 50}
	}
	d, err := Fit(rows, []string{"x"}, FitOptions{Buckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	inRangeBuckets := len(d.Cuts[0]) + 1
	f := func(v float64) bool {
		if v != v { // NaN
			return true
		}
		b := d.TransformValue(0, v)
		if b < 0 || b >= d.Cardinality(0) {
			return false
		}
		// In-range values get in-range buckets.
		if v >= d.Min[0] && v <= d.Max[0] && b >= inRangeBuckets {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
