package features

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crossfeature/internal/ml"
)

// DefaultBuckets is the paper's bucket count for equal-frequency
// discretisation.
const DefaultBuckets = 5

// Discretizer maps continuous feature vectors to nominal values using the
// paper's frequency-bucket scheme: each feature's value space is divided
// into ranges with (approximately) equal occurrence frequency on normal
// data, and a value is replaced by its bucket index. Features whose
// observed values collapse to fewer distinct cut points get a
// correspondingly smaller cardinality.
//
// Values outside the range observed on normal data map to two dedicated
// out-of-range buckets with zero normal mass. This range guard implements
// the paper's separability assumption — "a feature vector not related to
// any normal events" must be distinguishable — which plain equal-frequency
// bucketing violates: folding a pathological extreme into the top normal
// bucket makes a saturated attack regime look like an ordinary busy
// period.
//
// Hostile or degraded inputs are also total: NaN maps to a dedicated
// unknown bucket (the highest index) that scoring treats as a missing
// value, and ±Inf map to the below-/above-range guard buckets. Every
// float64 therefore lands in exactly one deterministic bucket and no
// input can panic the transform.
type Discretizer struct {
	// Cuts[j] holds the ascending bucket boundaries of feature j; a value v
	// maps to the number of cuts strictly below or equal to it.
	Cuts [][]float64
	// Min and Max are the value ranges observed on normal data; values
	// strictly outside map to the out-of-range buckets.
	Min, Max []float64
	// FeatureNames records the schema for dataset construction.
	FeatureNames []string
}

// FitOptions tunes discretiser fitting.
type FitOptions struct {
	Buckets int
	// SampleSize, when positive, fits on a random subset of rows — the
	// paper's "pre-filtering process using a small random subset".
	SampleSize int
	// Seed drives the sampling.
	Seed int64
}

// Fit learns equal-frequency bucket boundaries from normal-data rows.
func Fit(rows [][]float64, names []string, opts FitOptions) (*Discretizer, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("features: no rows to fit discretizer")
	}
	d := len(rows[0])
	if len(names) != d {
		return nil, fmt.Errorf("features: %d names for %d features", len(names), d)
	}
	buckets := opts.Buckets
	if buckets <= 1 {
		buckets = DefaultBuckets
	}
	sample := rows
	if opts.SampleSize > 0 && opts.SampleSize < len(rows) {
		rng := rand.New(rand.NewSource(opts.Seed))
		idx := rng.Perm(len(rows))[:opts.SampleSize]
		sample = make([][]float64, 0, opts.SampleSize)
		for _, i := range idx {
			sample = append(sample, rows[i])
		}
	}
	disc := &Discretizer{
		Cuts:         make([][]float64, d),
		Min:          make([]float64, d),
		Max:          make([]float64, d),
		FeatureNames: append([]string(nil), names...),
	}
	for _, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("features: ragged row with %d values, want %d", len(r), d)
		}
	}
	col := make([]float64, 0, len(sample))
	for j := 0; j < d; j++ {
		// Non-finite training values (a degraded audit trail) carry no
		// boundary information; cuts come from the finite mass only.
		col = col[:0]
		for _, r := range sample {
			if isFinite(r[j]) {
				col = append(col, r[j])
			}
		}
		disc.Cuts[j] = equalFrequencyCuts(col, buckets)
	}
	// Range guard boundaries come from the full normal data, not just the
	// pre-filtering sample, so ordinary normal variation stays in range.
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range rows {
			if !isFinite(r[j]) {
				continue
			}
			if r[j] < lo {
				lo = r[j]
			}
			if r[j] > hi {
				hi = r[j]
			}
		}
		if lo > hi {
			// No finite observation at all: pin the range so transforms
			// stay deterministic (everything finite is out-of-range).
			lo, hi = 0, 0
		}
		disc.Min[j], disc.Max[j] = lo, hi
	}
	return disc, nil
}

// isFinite reports whether v is an ordinary float (not NaN, not ±Inf).
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// equalFrequencyCuts returns deduplicated boundaries placed at the
// quantiles that split values into `buckets` equally populated ranges.
// Values equal to a cut fall into the lower bucket.
func equalFrequencyCuts(values []float64, buckets int) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return nil
	}
	cuts := make([]float64, 0, buckets-1)
	for b := 1; b < buckets; b++ {
		q := sorted[(n*b)/buckets]
		if len(cuts) > 0 && q <= cuts[len(cuts)-1] {
			continue // duplicate quantile: value mass is concentrated
		}
		// A cut equal to the maximum creates an always-empty top bucket.
		if q >= sorted[n-1] {
			break
		}
		cuts = append(cuts, q)
	}
	return cuts
}

// Cardinality reports the number of buckets feature j maps to: the
// in-range buckets, the two out-of-range guard buckets and the unknown
// bucket.
func (d *Discretizer) Cardinality(j int) int { return len(d.Cuts[j]) + 4 }

// UnknownBucket is feature j's dedicated bucket for missing or undefined
// values (NaN); it is the highest index and has zero normal mass. Scoring
// in internal/core treats it as a missing value: the feature's sub-model
// is skipped rather than scored against a fabricated value.
func (d *Discretizer) UnknownBucket(j int) int { return len(d.Cuts[j]) + 3 }

// TransformValue maps one continuous value of feature j to its bucket.
// Values outside the normal-data range land in the dedicated below-range
// and above-range guard buckets, NaN in the unknown bucket; the transform
// is total over float64.
func (d *Discretizer) TransformValue(j int, v float64) int {
	cuts := d.Cuts[j]
	if math.IsNaN(v) {
		return len(cuts) + 3
	}
	if v < d.Min[j] {
		return len(cuts) + 1
	}
	if v > d.Max[j] {
		return len(cuts) + 2
	}
	// First bucket whose upper boundary is >= v; values above all cuts go
	// to the last in-range bucket.
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Transform maps a continuous row to bucket indices.
func (d *Discretizer) Transform(row []float64) ([]int, error) {
	if len(row) != len(d.Cuts) {
		return nil, fmt.Errorf("features: row has %d values, discretizer has %d", len(row), len(d.Cuts))
	}
	out := make([]int, len(row))
	for j, v := range row {
		out[j] = d.TransformValue(j, v)
	}
	return out, nil
}

// Schema builds the nominal attribute schema induced by the fitted cuts.
// Every attribute's top value is the unknown bucket, flagged so scoring
// treats it as a missing reading rather than evidence.
func (d *Discretizer) Schema() []ml.Attr {
	attrs := make([]ml.Attr, len(d.Cuts))
	for j := range d.Cuts {
		attrs[j] = ml.Attr{Name: d.FeatureNames[j], Card: d.Cardinality(j), HasUnknown: true}
	}
	return attrs
}

// Dataset discretises a matrix of continuous rows into an ml.Dataset.
func (d *Discretizer) Dataset(rows [][]float64) (*ml.Dataset, error) {
	ds := ml.NewDataset(d.Schema())
	for _, r := range rows {
		x, err := d.Transform(r)
		if err != nil {
			return nil, err
		}
		// Transform allocates x fresh, so hand it over without the
		// defensive copy ml.Dataset.Add makes.
		if err := ds.AddOwned(x); err != nil {
			return nil, err
		}
	}
	return ds, nil
}
