// Package features constructs the paper's feature vectors from audit
// snapshots.
//
// Feature Set I (Table 4) covers topology and route-fabric measures:
// absolute velocity, the five route-event counts (add, removal, find,
// notice, repair), total route change and average route length. Time is
// recorded but excluded from classification, exactly as the paper notes.
//
// Feature Set II (Table 5) covers traffic: for each valid combination of
// packet type (data, route-all, RREQ, RREP, RERR, HELLO) and flow
// direction (received, sent, forwarded, dropped) — excluding data
// forwarded/dropped — sampled over 5 s, 60 s and 900 s windows, two
// statistics: packet count and the standard deviation of inter-packet
// intervals. That is (6*4-2)*3*2 = 132 traffic features, 140 in total.
//
// Continuous values are discretised with the paper's equal-frequency
// bucket scheme (5 buckets) fitted on normal data.
package features

import (
	"fmt"
	"math"

	"crossfeature/internal/trace"
)

// NumRouteFeatures is the size of Feature Set I as used for classification.
const NumRouteFeatures = 8

// NumTrafficFeatures is the size of Feature Set II.
const NumTrafficFeatures = (trace.NumClasses*trace.NumDirections - 2) * trace.NumPeriods * 2

// NumFeatures is the total feature count (140).
const NumFeatures = NumRouteFeatures + NumTrafficFeatures

// Vector is one continuous feature vector plus its timestamp (the
// timestamp is reference-only, never classified).
type Vector struct {
	Time   float64
	Values []float64
}

// Names returns the canonical feature names in vector order. Traffic
// feature names follow the paper's <type, direction, period, measure>
// encoding, e.g. "rreq.recv.5s.ipistd".
func Names() []string {
	names := make([]string, 0, NumFeatures)
	names = append(names,
		"velocity",
		"route_add_count",
		"route_removal_count",
		"route_find_count",
		"route_notice_count",
		"route_repair_count",
		"total_route_change",
		"avg_route_length",
	)
	measures := [2]string{"count", "ipistd"}
	for cls := trace.Class(0); cls < trace.NumClasses; cls++ {
		for dir := trace.Direction(0); dir < trace.NumDirections; dir++ {
			if !trace.ValidCombo(cls, dir) {
				continue
			}
			for pi := 0; pi < trace.NumPeriods; pi++ {
				for _, meas := range measures {
					names = append(names, fmt.Sprintf("%s.%s.%ds.%s",
						cls, dir, int(trace.Periods[pi]), meas))
				}
			}
		}
	}
	return names
}

// FromSnapshot flattens one audit snapshot into a continuous vector. A
// truncated snapshot (its traffic table lost to an audit sampler fault)
// yields NaN for every traffic feature rather than fabricated zeros; the
// discretiser maps NaN to its dedicated unknown bucket and scoring treats
// the value as missing, so such records still get a (lower-confidence)
// score.
func FromSnapshot(s trace.Snapshot) Vector {
	v := Vector{Time: s.Time, Values: make([]float64, 0, NumFeatures)}
	v.Values = append(v.Values,
		s.Velocity,
		float64(s.RouteCounts[trace.RouteAdd]),
		float64(s.RouteCounts[trace.RouteRemoval]),
		float64(s.RouteCounts[trace.RouteFind]),
		float64(s.RouteCounts[trace.RouteNotice]),
		float64(s.RouteCounts[trace.RouteRepair]),
		float64(s.TotalRouteChange),
		s.AvgRouteLength,
	)
	for cls := trace.Class(0); cls < trace.NumClasses; cls++ {
		for dir := trace.Direction(0); dir < trace.NumDirections; dir++ {
			if !trace.ValidCombo(cls, dir) {
				continue
			}
			for pi := 0; pi < trace.NumPeriods; pi++ {
				if s.Truncated {
					v.Values = append(v.Values, math.NaN(), math.NaN())
					continue
				}
				st := s.Traffic[cls][dir][pi]
				v.Values = append(v.Values, float64(st.Count), st.IPIStdDev)
			}
		}
	}
	return v
}

// FromSnapshots converts a snapshot series.
func FromSnapshots(snaps []trace.Snapshot) []Vector {
	out := make([]Vector, 0, len(snaps))
	for _, s := range snaps {
		out = append(out, FromSnapshot(s))
	}
	return out
}

// Matrix extracts the raw value rows of a vector series.
func Matrix(vs []Vector) [][]float64 {
	out := make([][]float64, 0, len(vs))
	for _, v := range vs {
		out = append(out, v.Values)
	}
	return out
}
