package features

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serialises a vector series as CSV with a header row of "time"
// followed by the canonical feature names.
func WriteCSV(w io.Writer, vs []Vector) error {
	cw := csv.NewWriter(w)
	header := append([]string{"time"}, Names()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("features: write csv header: %w", err)
	}
	row := make([]string, len(header))
	for _, v := range vs {
		if len(v.Values) != NumFeatures {
			return fmt.Errorf("features: vector has %d values, want %d", len(v.Values), NumFeatures)
		}
		row[0] = strconv.FormatFloat(v.Time, 'g', -1, 64)
		for j, x := range v.Values {
			row[j+1] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("features: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a vector series written by WriteCSV. The header must
// match the canonical feature names so stale traces fail loudly instead
// of silently mis-mapping columns.
func ReadCSV(r io.Reader) ([]Vector, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("features: read csv header: %w", err)
	}
	names := Names()
	if len(header) != len(names)+1 || header[0] != "time" {
		return nil, fmt.Errorf("features: csv header has %d columns, want %d", len(header), len(names)+1)
	}
	for j, n := range names {
		if header[j+1] != n {
			return nil, fmt.Errorf("features: csv column %d is %q, want %q", j+1, header[j+1], n)
		}
	}
	var out []Vector
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("features: read csv: %w", err)
		}
		v := Vector{Values: make([]float64, len(names))}
		if v.Time, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("features: csv line %d time: %w", line, err)
		}
		for j := range names {
			if v.Values[j], err = strconv.ParseFloat(rec[j+1], 64); err != nil {
				return nil, fmt.Errorf("features: csv line %d column %q: %w", line, names[j], err)
			}
		}
		out = append(out, v)
	}
	return out, nil
}
