package experiments

import (
	"os"
	"testing"

	"crossfeature/internal/core"
	"crossfeature/internal/netsim"
)

// TestPaperScaleAODVUDP validates the headline result at the paper's full
// scale (10 000 s, 50 nodes, 100 connections): a C4.5 cross-feature
// detector on AODV/UDP must reach near-perfect recall-precision, in line
// with the paper's reported optimal points. The run takes a couple of
// minutes, so it is opt-in via CROSSFEATURE_PAPER=1.
func TestPaperScaleAODVUDP(t *testing.T) {
	if os.Getenv("CROSSFEATURE_PAPER") == "" {
		t.Skip("set CROSSFEATURE_PAPER=1 to run the full-scale validation")
	}
	p := PaperPreset()
	p.NormalSeeds = p.NormalSeeds[:1]
	p.AttackSeeds = p.AttackSeeds[:1]
	lab, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		t.Fatal(err)
	}
	r, err := lab.runCurve(sc, learner, core.Probability)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("paper-scale AODV/UDP C4.5: AUC=%.3f optimal=(%.2f,%.2f)", r.AUC, r.Optimal.Recall, r.Optimal.Precision)
	if r.AUC < 0.95 {
		t.Errorf("AUC %.3f below 0.95 at paper scale", r.AUC)
	}
	if r.Optimal.Recall < 0.9 || r.Optimal.Precision < 0.9 {
		t.Errorf("optimal point (%.2f,%.2f) below the paper's regime", r.Optimal.Recall, r.Optimal.Precision)
	}
}
