package experiments

import (
	"fmt"
	"io"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/netsim"
)

// StormStudy is an extension beyond the paper's evaluated attacks: it
// exercises the update-storm attack the paper describes in section 2.3
// (flooding the network with meaningless route discovery messages) on the
// AODV/UDP scenario with a C4.5 detector. Unlike the black hole, a storm
// does no persistent damage, so ground truth follows the attack sessions
// (with one long-window tail) rather than everything-after-onset.
func (l *Lab) StormStudy(w io.Writer) ([]CurveResult, error) {
	fmt.Fprintln(w, "Extension: update-storm detection (AODV/UDP, C4.5)")
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	a, d, err := l.Train(sc, learner)
	if err != nil {
		return nil, err
	}
	var events []eval.Scored
	normals, err := LabelledScores(a, d.Disc, d.Normal, core.Probability, l.Preset.Warmup)
	if err != nil {
		return nil, err
	}
	events = append(events, normals...)
	for _, seed := range l.Preset.AttackSeeds {
		t, err := l.RunTrace(sc, StormOnly, seed)
		if err != nil {
			return nil, err
		}
		scores, err := ScoreTrace(a, d.Disc, t, core.Probability)
		if err != nil {
			return nil, err
		}
		labels := t.SessionLabels(60) // 60 s tail: the medium window drains
		for i, s := range scores {
			if t.Vectors[i].Time < l.Preset.Warmup {
				continue
			}
			events = append(events, eval.Scored{Score: s, Intrusion: labels[i]})
		}
	}
	pts := eval.Curve(events)
	r := CurveResult{
		Scenario: sc,
		Learner:  learner.Name(),
		Scorer:   core.Probability,
		Points:   pts,
		AUC:      eval.AUC(pts),
		Optimal:  eval.OptimalPoint(pts),
	}
	printCurve(w, r)
	return []CurveResult{r}, nil
}
