package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"

	"crossfeature/internal/obs"
)

// ManifestSchema versions the run-manifest JSON layout.
const ManifestSchema = "cfa-experiments-run/1"

// SeedSet records every random seed a run depended on, so a manifest pins
// the run down to reproducible inputs.
type SeedSet struct {
	Train    int64   `json:"train"`
	Workload int64   `json:"workload"`
	Normal   []int64 `json:"normal"`
	Attack   []int64 `json:"attack"`
}

// Seeds extracts the preset's seed set.
func (p Preset) Seeds() SeedSet {
	return SeedSet{
		Train:    p.TrainSeed,
		Workload: p.WorkloadSeed,
		Normal:   append([]int64(nil), p.NormalSeeds...),
		Attack:   append([]int64(nil), p.AttackSeeds...),
	}
}

// RunManifest is the machine-readable record of one experiments run: what
// was run (preset, selection, seeds, build), how long each pipeline stage
// took, and the final metrics snapshot (simulation counts, dataset sizes,
// sub-model counts). `make bench` folds the stage timings into
// BENCH_<date>.json, and regressions are diagnosed by diffing two
// manifests rather than rerunning under a profiler.
type RunManifest struct {
	Schema        string            `json:"schema"`
	Preset        string            `json:"preset"`
	Only          string            `json:"only"`
	Workers       int               `json:"workers"`
	Parallelism   int               `json:"parallelism"`
	Seeds         SeedSet           `json:"seeds"`
	GoVersion     string            `json:"go_version"`
	BuildRevision string            `json:"build_revision,omitempty"`
	TotalSeconds  float64           `json:"total_seconds"`
	Stages        []obs.StageTiming `json:"stages"`
	Experiments   []obs.StageTiming `json:"experiments,omitempty"`
	Simulations   int64             `json:"simulations"`
	Metrics       []obs.MetricPoint `json:"metrics,omitempty"`
}

// WriteFile writes the manifest as indented JSON.
func (m RunManifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: manifest: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return fmt.Errorf("experiments: manifest: %w", err)
	}
	return f.Close()
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (RunManifest, error) {
	var m RunManifest
	b, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("experiments: manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return m, fmt.Errorf("experiments: manifest %s has schema %q, want %q", path, m.Schema, ManifestSchema)
	}
	return m, nil
}

// BuildRevision reports the binary's VCS revision, empty when built
// outside a checkout.
func BuildRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return ""
}
