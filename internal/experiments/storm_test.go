package experiments

import (
	"io"
	"testing"

	"crossfeature/internal/attack"
	"crossfeature/internal/features"
)

func TestStormStudyDetects(t *testing.T) {
	if testing.Short() {
		t.Skip("storm study in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.StormStudy(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("%d results", len(rs))
	}
	t.Logf("storm AUC=%.3f optimal=(%.2f,%.2f)", rs[0].AUC, rs[0].Optimal.Recall, rs[0].Optimal.Precision)
	if rs[0].AUC < 0.7 {
		t.Errorf("update storm AUC %.3f too low; the flood should be obvious", rs[0].AUC)
	}
}

func TestSessionLabels(t *testing.T) {
	tr := Trace{
		Vectors: []features.Vector{
			{Time: 95}, {Time: 100}, {Time: 145}, {Time: 150},
			{Time: 200}, {Time: 215}, {Time: 500},
		},
		Plan: attack.Plan{Specs: []attack.Spec{{
			Kind:     attack.UpdateStorm,
			Sessions: attack.Sessions(50, 100),
		}}},
	}
	// Session covers [100, 150); tail 60 extends labels to ~210.
	labels := tr.SessionLabels(60)
	want := []bool{false, true, true, true, true, false, false}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label at t=%v is %v, want %v", tr.Vectors[i].Time, labels[i], want[i])
		}
	}
}
