package experiments

import (
	"fmt"
	"io"
	"sort"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/features"
	"crossfeature/internal/ml"
	"crossfeature/internal/netsim"
	"crossfeature/internal/packet"
)

// AblationFeatureReduction implements the paper's second cost-reduction
// direction: shrink the FEATURE SET itself (not just the model count)
// using correlation analysis. Features are ranked by mean symmetric
// uncertainty with the rest of the vector; the top-k subset is kept and
// the whole pipeline — discretised schema, sub-models — is retrained on
// it. Sub-models then both predict fewer targets and condition on fewer
// inputs.
func (l *Lab) AblationFeatureReduction(w io.Writer) ([]AblationResult, error) {
	sc := ablationScenario()
	d, err := l.Data(sc)
	if err != nil {
		return nil, err
	}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	ranking := d.TrainDS.RankByCorrelation(0)

	var results []AblationResult
	for _, k := range []int{20, 50, len(ranking)} {
		if k > len(ranking) {
			k = len(ranking)
		}
		idx := make([]int, 0, k)
		for _, fsc := range ranking[:k] {
			idx = append(idx, fsc.Index)
		}
		sort.Ints(idx)
		reduced := d.TrainDS.SelectColumns(idx)
		a, err := core.Train(reduced, learner, core.TrainOptions{Parallelism: l.Preset.Parallelism})
		if err != nil {
			return nil, err
		}
		var events []eval.Scored
		for _, group := range [][]*Trace{d.Normal, d.Mixed} {
			scored, err := scoreReduced(a, d.Disc, idx, group, l.Preset.Warmup)
			if err != nil {
				return nil, err
			}
			events = append(events, scored...)
		}
		pts := eval.Curve(events)
		results = append(results, AblationResult{
			Study:   "feature-reduction",
			Variant: fmt.Sprintf("top %d of %d features", k, len(ranking)),
			AUC:     eval.AUC(pts),
			Optimal: eval.OptimalPoint(pts),
		})
	}
	printAblation(w, "Ablation: correlation-ranked feature-set reduction (C4.5, AODV/UDP)", results)
	return results, nil
}

// scoreReduced scores traces through a column-selected analyzer. Each
// trace's projected rows satisfy the reduced schema by construction, so
// the batch runs through the compiled columnar ScoreAll path.
func scoreReduced(a *core.Analyzer, disc *features.Discretizer, idx []int,
	traces []*Trace, warmup float64) ([]eval.Scored, error) {
	var out []eval.Scored
	for _, t := range traces {
		labels := t.Labels()
		var xs [][]int
		var intrusion []bool
		for i, v := range t.Vectors {
			if v.Time < warmup {
				continue
			}
			full, err := disc.Transform(v.Values)
			if err != nil {
				return nil, err
			}
			x := make([]int, len(idx))
			for k, j := range idx {
				x[k] = full[j]
			}
			xs = append(xs, x)
			intrusion = append(intrusion, labels[i])
		}
		scores := a.ScoreAll(ml.DatasetOf(a.Attrs, xs), core.Probability)
		for i, s := range scores {
			out = append(out, eval.Scored{Score: s, Intrusion: intrusion[i]})
		}
	}
	return out, nil
}

// MultiNodeResult is one node's detection quality in the multi-node study.
type MultiNodeResult struct {
	Node    packet.NodeID
	AUC     float64
	Optimal eval.Point
}

// MultiNodeStudy verifies the paper's remark that "similar results and
// performance have been verified on other nodes": it monitors several
// nodes in the same scenario, trains an independent detector per node on
// that node's own normal audit trail, and reports each node's detection
// quality on the mixed-intrusion trace.
func (l *Lab) MultiNodeStudy(w io.Writer, nodes []packet.NodeID) ([]MultiNodeResult, error) {
	if len(nodes) == 0 {
		nodes = []packet.NodeID{0, 1, 2}
	}
	p := l.Preset
	sc := ablationScenario()
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	runMulti := func(mix AttackMix, seed int64) (map[packet.NodeID][]features.Vector, error) {
		cfg := l.config(sc, mix, NoFaults, seed)
		cfg.MonitorNodes = nodes
		net, err := netsim.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := net.Run(); err != nil {
			return nil, err
		}
		out := make(map[packet.NodeID][]features.Vector, len(nodes))
		for _, id := range nodes {
			out[id] = features.FromSnapshots(net.Snapshots(id))
		}
		return out, nil
	}
	train, err := runMulti(NoAttack, p.TrainSeed)
	if err != nil {
		return nil, err
	}
	normal, err := runMulti(NoAttack, p.NormalSeeds[0])
	if err != nil {
		return nil, err
	}
	attacked, err := runMulti(Mixed, p.AttackSeeds[0])
	if err != nil {
		return nil, err
	}
	onset := p.BlackHoleStart

	var results []MultiNodeResult
	for _, id := range nodes {
		rows := features.Matrix(trimWarmup(train[id], p.Warmup))
		disc, err := features.Fit(rows, features.Names(), features.FitOptions{
			Buckets: p.Buckets, SampleSize: p.PrefilterSize, Seed: p.TrainSeed,
		})
		if err != nil {
			return nil, err
		}
		ds, err := disc.Dataset(rows)
		if err != nil {
			return nil, err
		}
		a, err := core.Train(ds, learner, core.TrainOptions{Parallelism: p.Parallelism})
		if err != nil {
			return nil, err
		}
		var events []eval.Scored
		add := func(vs []features.Vector, intrusive bool) error {
			var xs [][]int
			var intrusion []bool
			for _, v := range vs {
				if v.Time < p.Warmup {
					continue
				}
				x, err := disc.Transform(v.Values)
				if err != nil {
					return err
				}
				xs = append(xs, x)
				intrusion = append(intrusion, intrusive && v.Time >= onset)
			}
			scores := a.ScoreAll(ml.DatasetOf(a.Attrs, xs), core.Probability)
			for i, s := range scores {
				events = append(events, eval.Scored{Score: s, Intrusion: intrusion[i]})
			}
			return nil
		}
		if err := add(normal[id], false); err != nil {
			return nil, err
		}
		if err := add(attacked[id], true); err != nil {
			return nil, err
		}
		pts := eval.Curve(events)
		results = append(results, MultiNodeResult{
			Node:    id,
			AUC:     eval.AUC(pts),
			Optimal: eval.OptimalPoint(pts),
		})
	}
	fmt.Fprintln(w, "Extension: per-node detection (C4.5, AODV/UDP, mixed intrusions)")
	for _, r := range results {
		fmt.Fprintf(w, "  node %d: AUC=%.3f optimal=(recall=%.2f, precision=%.2f)\n",
			r.Node, r.AUC, r.Optimal.Recall, r.Optimal.Precision)
	}
	return results, nil
}
