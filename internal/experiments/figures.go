package experiments

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/ml"
	"crossfeature/internal/netsim"
)

// forEach runs f(0..n-1) on n goroutines and returns the first error in
// index order. Figure sweeps use it to evaluate independent work units
// (scenario x learner cells, per-seed traces) concurrently while
// collecting results into index-addressed slots, so output order — and
// therefore the rendered report — is identical to the serial loops it
// replaces. The heavy stages inside f are already bounded: simulations
// by the Lab's worker semaphore and sub-model training by
// TrainOptions.Parallelism.
func forEach(n int, f func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CurveResult is one recall-precision curve with its summary statistics.
type CurveResult struct {
	Scenario Scenario
	Learner  string
	Scorer   core.Scorer
	Points   []eval.Point
	AUC      float64
	Optimal  eval.Point
}

// runCurve trains one detector configuration and evaluates its
// recall-precision curve on the scenario's normal and mixed test traces.
func (l *Lab) runCurve(sc Scenario, learner ml.Learner, scorer core.Scorer) (CurveResult, error) {
	a, d, err := l.Train(sc, learner)
	if err != nil {
		return CurveResult{}, err
	}
	var events []eval.Scored
	normals, err := LabelledScores(a, d.Disc, d.Normal, scorer, l.Preset.Warmup)
	if err != nil {
		return CurveResult{}, err
	}
	events = append(events, normals...)
	attacks, err := LabelledScores(a, d.Disc, d.Mixed, scorer, l.Preset.Warmup)
	if err != nil {
		return CurveResult{}, err
	}
	events = append(events, attacks...)
	pts := eval.Curve(events)
	return CurveResult{
		Scenario: sc,
		Learner:  learner.Name(),
		Scorer:   scorer,
		Points:   pts,
		AUC:      eval.AUC(pts),
		Optimal:  eval.OptimalPoint(pts),
	}, nil
}

// Figure1 reproduces the paper's Figure 1: recall-precision curves using
// average probability for C4.5, RIPPER and NBC over the four scenarios.
func (l *Lab) Figure1(w io.Writer) ([]CurveResult, error) {
	fmt.Fprintln(w, "Figure 1: Recall-Precision curves (average probability)")
	type unit struct {
		sc      Scenario
		learner ml.Learner
	}
	var units []unit
	for _, sc := range FourScenarios() {
		for _, learner := range Learners() {
			units = append(units, unit{sc: sc, learner: learner})
		}
	}
	results := make([]CurveResult, len(units))
	err := forEach(len(units), func(i int) error {
		r, err := l.runCurve(units[i].sc, units[i].learner, core.Probability)
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		printCurve(w, r)
	}
	return results, nil
}

// Figure2 reproduces Figure 2: average match count versus average
// probability with RIPPER on the four scenarios.
func (l *Lab) Figure2(w io.Writer) ([]CurveResult, error) {
	fmt.Fprintln(w, "Figure 2: match count vs probability (RIPPER)")
	learner, err := LearnerByName("RIPPER")
	if err != nil {
		return nil, err
	}
	type unit struct {
		sc     Scenario
		scorer core.Scorer
	}
	var units []unit
	for _, sc := range FourScenarios() {
		for _, scorer := range []core.Scorer{core.MatchCount, core.Probability} {
			units = append(units, unit{sc: sc, scorer: scorer})
		}
	}
	results := make([]CurveResult, len(units))
	err = forEach(len(units), func(i int) error {
		r, err := l.runCurve(units[i].sc, learner, units[i].scorer)
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		printCurve(w, r)
	}
	return results, nil
}

// printCurve renders a curve summary plus a compact point list.
func printCurve(w io.Writer, r CurveResult) {
	fmt.Fprintf(w, "%s %s %s: AUC=%.3f AUC-above-diagonal=%.3f optimal=(recall=%.2f, precision=%.2f)\n",
		r.Scenario.Name(), r.Learner, r.Scorer, r.AUC, eval.AUCAboveDiagonal(r.Points),
		r.Optimal.Recall, r.Optimal.Precision)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  recall\tprecision\tthreshold")
	step := len(r.Points) / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Points); i += step {
		p := r.Points[i]
		fmt.Fprintf(tw, "  %.3f\t%.3f\t%.4f\n", p.Recall, p.Precision, p.Threshold)
	}
	tw.Flush()
}

// SeriesResult is one averaged score time series for a test condition.
type SeriesResult struct {
	Scenario  Scenario
	Learner   string
	Condition AttackMix
	Points    []eval.SeriesPoint
	Threshold float64
}

// traceRequests builds the prefetch plan for one condition's seed set.
func traceRequests(sc Scenario, mix AttackMix, seeds []int64) []TraceRequest {
	reqs := make([]TraceRequest, len(seeds))
	for i, seed := range seeds {
		reqs[i] = TraceRequest{Scenario: sc, Mix: mix, Seed: seed}
	}
	return reqs
}

// runSeries scores traces of one condition and averages them point-wise.
// The condition's traces are prefetched as one plan and the per-seed
// scoring runs concurrently, with scores collected in seed order.
func (l *Lab) runSeries(sc Scenario, learner ml.Learner, mix AttackMix, seeds []int64) (SeriesResult, error) {
	a, d, err := l.Train(sc, learner)
	if err != nil {
		return SeriesResult{}, err
	}
	if err := l.Prefetch(traceRequests(sc, mix, seeds)); err != nil {
		return SeriesResult{}, err
	}
	series := make([][]float64, len(seeds))
	err = forEach(len(seeds), func(i int) error {
		t, err := l.RunTrace(sc, mix, seeds[i])
		if err != nil {
			return err
		}
		scores, err := ScoreTrace(a, d.Disc, t, core.Probability)
		if err != nil {
			return err
		}
		series[i] = scores
		return nil
	})
	if err != nil {
		return SeriesResult{}, err
	}
	var times []float64
	if len(seeds) > 0 {
		t, err := l.RunTrace(sc, mix, seeds[0]) // cached
		if err != nil {
			return SeriesResult{}, err
		}
		times = make([]float64, len(t.Vectors))
		for i, v := range t.Vectors {
			times[i] = v.Time
		}
	}
	trainScores := a.ScoreAll(d.TrainDS, core.Probability)
	return SeriesResult{
		Scenario:  sc,
		Learner:   learner.Name(),
		Condition: mix,
		Points:    eval.AverageSeries(times, series),
		Threshold: core.Threshold(trainScores, l.Preset.FalseAlarmRate),
	}, nil
}

// Figure3 reproduces Figure 3: average-probability time series for normal
// versus (mixed) abnormal traces with C4.5 on all four scenarios.
func (l *Lab) Figure3(w io.Writer) ([]SeriesResult, error) {
	fmt.Fprintln(w, "Figure 3: average probability over time, normal vs abnormal (C4.5)")
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	scenarios := FourScenarios()
	results := make([]SeriesResult, 2*len(scenarios))
	err = forEach(2*len(scenarios), func(i int) error {
		sc := scenarios[i/2]
		var r SeriesResult
		var err error
		if i%2 == 0 {
			r, err = l.runSeries(sc, learner, NoAttack, l.Preset.NormalSeeds)
		} else {
			r, err = l.runSeries(sc, learner, Mixed, l.Preset.AttackSeeds)
		}
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(results); i += 2 {
		printSeriesPair(w, scenarios[i/2].Name(), results[i], results[i+1])
	}
	return results, nil
}

// Figure5 reproduces Figure 5: time series for single-intrusion traces
// (black hole only, dropping only) with AODV/UDP and C4.5.
func (l *Lab) Figure5(w io.Writer) ([]SeriesResult, error) {
	fmt.Fprintln(w, "Figure 5: per-intrusion time series (AODV/UDP, C4.5)")
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	conditions := []struct {
		mix   AttackMix
		seeds []int64
	}{
		{NoAttack, l.Preset.NormalSeeds},
		{BlackHoleOnly, l.Preset.AttackSeeds},
		{DropOnly, l.Preset.AttackSeeds},
	}
	results := make([]SeriesResult, len(conditions))
	err = forEach(len(conditions), func(i int) error {
		r, err := l.runSeries(sc, learner, conditions[i].mix, conditions[i].seeds)
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results[1:] {
		printSeriesPair(w, fmt.Sprintf("%s (%s)", sc.Name(), r.Condition), results[0], r)
	}
	return results, nil
}

// printSeriesPair renders normal and abnormal series side by side.
func printSeriesPair(w io.Writer, label string, normal, abnormal SeriesResult) {
	fmt.Fprintf(w, "%s (threshold %.3f)\n", label, normal.Threshold)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  time\tnormal\tabnormal")
	k := len(normal.Points) / 20
	if k < 1 {
		k = 1
	}
	np := eval.Downsample(normal.Points, k)
	ap := eval.Downsample(abnormal.Points, k)
	for i := range np {
		ab := ""
		if i < len(ap) {
			ab = fmt.Sprintf("%.3f", ap[i].Score)
		}
		fmt.Fprintf(tw, "  %.0f\t%.3f\t%s\n", np[i].Time, np[i].Score, ab)
	}
	tw.Flush()
}

// DensityResult is one score density distribution for a test condition.
type DensityResult struct {
	Scenario  Scenario
	Condition AttackMix
	Bins      []eval.DensityBin
	Threshold float64
}

// runDensity computes the score density over all traces of a condition.
// Traces are prefetched as one plan and scored concurrently; per-seed
// score blocks concatenate in seed order, matching the serial loop.
func (l *Lab) runDensity(sc Scenario, learner ml.Learner, mix AttackMix, seeds []int64) (DensityResult, error) {
	a, d, err := l.Train(sc, learner)
	if err != nil {
		return DensityResult{}, err
	}
	if err := l.Prefetch(traceRequests(sc, mix, seeds)); err != nil {
		return DensityResult{}, err
	}
	parts := make([][]float64, len(seeds))
	err = forEach(len(seeds), func(i int) error {
		t, err := l.RunTrace(sc, mix, seeds[i])
		if err != nil {
			return err
		}
		s, err := ScoreTrace(a, d.Disc, t, core.Probability)
		if err != nil {
			return err
		}
		// For attack traces, only post-onset records characterise the
		// abnormal distribution (pre-onset behaviour is normal by design).
		if mix == NoAttack {
			parts[i] = s
			return nil
		}
		labels := t.Labels()
		kept := s[:0:0]
		for j, v := range s {
			if labels[j] {
				kept = append(kept, v)
			}
		}
		parts[i] = kept
		return nil
	})
	if err != nil {
		return DensityResult{}, err
	}
	var scores []float64
	for _, part := range parts {
		scores = append(scores, part...)
	}
	trainScores := a.ScoreAll(d.TrainDS, core.Probability)
	return DensityResult{
		Scenario:  sc,
		Condition: mix,
		Bins:      eval.Density(scores, 20),
		Threshold: core.Threshold(trainScores, l.Preset.FalseAlarmRate),
	}, nil
}

// Figure4 reproduces Figure 4: average-probability density distributions,
// normal versus abnormal, with C4.5 on all four scenarios.
func (l *Lab) Figure4(w io.Writer) ([]DensityResult, error) {
	fmt.Fprintln(w, "Figure 4: score density, normal vs abnormal (C4.5)")
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	scenarios := FourScenarios()
	results := make([]DensityResult, 2*len(scenarios))
	err = forEach(2*len(scenarios), func(i int) error {
		sc := scenarios[i/2]
		var r DensityResult
		var err error
		if i%2 == 0 {
			r, err = l.runDensity(sc, learner, NoAttack, l.Preset.NormalSeeds)
		} else {
			r, err = l.runDensity(sc, learner, Mixed, l.Preset.AttackSeeds)
		}
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(results); i += 2 {
		printDensityPair(w, scenarios[i/2].Name(), results[i], results[i+1])
	}
	return results, nil
}

// Figure6 reproduces Figure 6: density distributions per intrusion type
// with AODV/UDP and C4.5.
func (l *Lab) Figure6(w io.Writer) ([]DensityResult, error) {
	fmt.Fprintln(w, "Figure 6: score density per intrusion type (AODV/UDP, C4.5)")
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	conditions := []struct {
		mix   AttackMix
		seeds []int64
	}{
		{NoAttack, l.Preset.NormalSeeds},
		{BlackHoleOnly, l.Preset.AttackSeeds},
		{DropOnly, l.Preset.AttackSeeds},
	}
	results := make([]DensityResult, len(conditions))
	err = forEach(len(conditions), func(i int) error {
		r, err := l.runDensity(sc, learner, conditions[i].mix, conditions[i].seeds)
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results[1:] {
		printDensityPair(w, fmt.Sprintf("%s (%s)", sc.Name(), r.Condition), results[0], r)
	}
	return results, nil
}

// printDensityPair renders two densities with the threshold marked.
func printDensityPair(w io.Writer, label string, normal, abnormal DensityResult) {
	fmt.Fprintf(w, "%s (threshold %.3f; alarms fire left of it)\n", label, normal.Threshold)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  score bin\tnormal\tabnormal")
	for i := range normal.Bins {
		mark := " "
		if normal.Bins[i].Low <= normal.Threshold && normal.Threshold < normal.Bins[i].High {
			mark = "*"
		}
		fmt.Fprintf(tw, "%s [%.2f,%.2f)\t%.3f\t%.3f\n",
			mark, normal.Bins[i].Low, normal.Bins[i].High,
			normal.Bins[i].Density, abnormal.Bins[i].Density)
	}
	tw.Flush()
}
