package experiments

import (
	"io"
	"testing"

	"crossfeature/internal/packet"
)

func TestAblationFeatureReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("feature reduction in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.AblationFeatureReduction(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d variants, want 3", len(rs))
	}
	for _, r := range rs {
		if r.AUC <= 0 || r.AUC > 1 {
			t.Errorf("%s: AUC %v out of range", r.Variant, r.AUC)
		}
	}
}

func TestMultiNodeStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node study in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.MultiNodeStudy(io.Discard, []packet.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d node results, want 3", len(rs))
	}
	for _, r := range rs {
		t.Logf("node %d: AUC=%.3f", r.Node, r.AUC)
		if r.AUC < 0.5 {
			t.Errorf("node %d AUC %.3f below chance", r.Node, r.AUC)
		}
	}
}
