package experiments

import (
	"strings"
	"testing"
)

// TestFiguresTinyScale drives every figure pipeline end-to-end at a tiny
// scale, checking result shapes and that the printed output carries the
// expected structure.
func TestFiguresTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipelines in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder

	f2, err := lab.Figure2(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) != 8 { // 4 scenarios x 2 scorers
		t.Errorf("figure 2 has %d curves, want 8", len(f2))
	}
	for _, r := range f2 {
		if r.Learner != "RIPPER" {
			t.Errorf("figure 2 used learner %s", r.Learner)
		}
	}

	f3, err := lab.Figure3(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3) != 8 { // 4 scenarios x {normal, abnormal}
		t.Errorf("figure 3 has %d series, want 8", len(f3))
	}
	for _, r := range f3 {
		if len(r.Points) == 0 {
			t.Errorf("figure 3 %s/%s series empty", r.Scenario.Name(), r.Condition)
		}
		if r.Threshold <= 0 || r.Threshold >= 1 {
			t.Errorf("threshold %v out of range", r.Threshold)
		}
	}

	f4, err := lab.Figure4(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4) != 8 {
		t.Errorf("figure 4 has %d densities, want 8", len(f4))
	}
	for _, r := range f4 {
		var sum float64
		for _, b := range r.Bins {
			sum += b.Density
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("figure 4 %s/%s density sums to %v", r.Scenario.Name(), r.Condition, sum)
		}
	}

	f5, err := lab.Figure5(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5) != 3 { // normal + blackhole-only + dropping-only
		t.Errorf("figure 5 has %d series, want 3", len(f5))
	}
	conditions := map[AttackMix]bool{}
	for _, r := range f5 {
		conditions[r.Condition] = true
	}
	if !conditions[NoAttack] || !conditions[BlackHoleOnly] || !conditions[DropOnly] {
		t.Errorf("figure 5 conditions: %v", conditions)
	}

	f6, err := lab.Figure6(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 3 {
		t.Errorf("figure 6 has %d densities, want 3", len(f6))
	}

	s := out.String()
	for _, needle := range []string{"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "recall", "score bin"} {
		if !strings.Contains(s, needle) {
			t.Errorf("figure output missing %q", needle)
		}
	}
}

// TestFigure3AbnormalBelowNormal is the paper's core Figure 3 claim at
// tiny scale: after the intrusion onset, the abnormal trace's average
// probability falls below the normal trace's.
func TestFigure3AbnormalBelowNormal(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipeline in -short mode")
	}
	p := tinyPreset()
	lab, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := lab.Figure3(discard{})
	if err != nil {
		t.Fatal(err)
	}
	// Find the AODV/UDP pair.
	var normal, abnormal *SeriesResult
	for i := range f3 {
		r := &f3[i]
		if r.Scenario.Name() != "AODV/UDP" {
			continue
		}
		if r.Condition == NoAttack {
			normal = r
		} else {
			abnormal = r
		}
	}
	if normal == nil || abnormal == nil {
		t.Fatal("missing AODV/UDP series")
	}
	var nSum, aSum float64
	var n int
	for i := range normal.Points {
		if normal.Points[i].Time < p.BlackHoleStart || i >= len(abnormal.Points) {
			continue
		}
		nSum += normal.Points[i].Score
		aSum += abnormal.Points[i].Score
		n++
	}
	if n == 0 {
		t.Fatal("no post-onset points")
	}
	if aSum/float64(n) >= nSum/float64(n) {
		t.Errorf("post-onset abnormal mean %.3f not below normal %.3f",
			aSum/float64(n), nSum/float64(n))
	}
}

// discard is an io.Writer black hole without importing io in this file.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
