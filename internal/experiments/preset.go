// Package experiments reproduces the paper's evaluation: it builds the
// four scenarios (AODV/DSR x TCP/UDP), runs normal and intrusion traces,
// constructs and discretises features, trains cross-feature detectors with
// the three base learners, and regenerates each table and figure of the
// paper as textual rows/series.
package experiments

import (
	"fmt"

	"crossfeature/internal/netsim"
	"crossfeature/internal/packet"
)

// Scenario is one of the paper's four routing/transport combinations.
type Scenario struct {
	Routing   netsim.RoutingKind
	Transport netsim.TransportKind
}

// Name renders "AODV/TCP"-style scenario labels.
func (s Scenario) Name() string {
	return fmt.Sprintf("%s/%s", s.Routing, s.Transport)
}

// FourScenarios enumerates the paper's evaluation matrix.
func FourScenarios() []Scenario {
	return []Scenario{
		{Routing: netsim.AODV, Transport: netsim.TCP},
		{Routing: netsim.AODV, Transport: netsim.CBR},
		{Routing: netsim.DSR, Transport: netsim.TCP},
		{Routing: netsim.DSR, Transport: netsim.CBR},
	}
}

// Preset bundles every knob of an experiment campaign. The paper's values
// are in PaperPreset; QuickPreset shrinks the time axis for tests and
// benchmarks while preserving the structure (relative onset times scale
// with the duration).
type Preset struct {
	Nodes       int
	Connections int
	Duration    float64
	Sample      float64

	// Seeds: one training trace, several normal and attack test traces.
	TrainSeed   int64
	NormalSeeds []int64
	AttackSeeds []int64

	// Mixed-intrusion schedule: black hole starting at BlackHoleStart and
	// selective dropping at DropStart, periodic sessions of
	// SessionDuration with equal gaps until the end of the run.
	BlackHoleStart  float64
	DropStart       float64
	SessionDuration float64

	// Single-intrusion schedule (Figures 5/6): three sessions of
	// SingleSessionDuration starting at SingleStarts.
	SingleStarts          []float64
	SingleSessionDuration float64

	// AttackerNode is the compromised host; DropTarget the destination
	// whose packets the selective-dropping attack discards.
	AttackerNode packet.NodeID
	DropTarget   packet.NodeID

	// WorkloadSeed fixes the connection pattern across all traces of a
	// scenario (ns-2 style reused traffic scenario files).
	WorkloadSeed int64

	// Warmup excludes records whose long-window statistics are still
	// ramping in (the 900 s window fills only after 900 s) from training
	// and recall/precision evaluation. Time-series figures keep full runs.
	Warmup float64

	// Feature handling.
	Buckets        int
	PrefilterSize  int // discretiser fitting sample ("small random subset")
	FalseAlarmRate float64

	// Parallelism bounds concurrent sub-model training (0 = GOMAXPROCS).
	Parallelism int

	// Workers bounds concurrent trace simulations in the Lab's worker
	// pool (0 = GOMAXPROCS). Results are deterministic for any value.
	Workers int
}

// PaperPreset is the paper's full-scale setup: 10 000 s runs sampled every
// 5 s, mixed intrusions starting at 2500 s (black hole) and 5000 s
// (dropping), single-intrusion traces with three 100 s sessions at
// 2500/5000/7500 s.
func PaperPreset() Preset {
	return Preset{
		Nodes:                 50,
		Connections:           100,
		Duration:              10000,
		Sample:                5,
		TrainSeed:             101,
		NormalSeeds:           []int64{201, 202, 203},
		AttackSeeds:           []int64{301, 302, 303},
		BlackHoleStart:        2500,
		DropStart:             5000,
		SessionDuration:       250,
		SingleStarts:          []float64{2500, 5000, 7500},
		SingleSessionDuration: 100,
		AttackerNode:          5,
		DropTarget:            0,
		WorkloadSeed:          42,
		Warmup:                900,
		Buckets:               5,
		PrefilterSize:         400,
		FalseAlarmRate:        0.02,
	}
}

// QuickPreset shrinks the paper preset by roughly a factor of five in time
// and network size so the full pipeline runs in seconds; onset times keep
// the same fractional positions.
func QuickPreset() Preset {
	p := PaperPreset()
	p.Nodes = 30
	p.Connections = 30
	p.Duration = 2000
	p.TrainSeed = 111
	p.NormalSeeds = []int64{211, 212}
	p.AttackSeeds = []int64{311, 312}
	p.BlackHoleStart = 500
	p.DropStart = 1000
	p.SessionDuration = 100
	p.SingleStarts = []float64{500, 1000, 1500}
	p.SingleSessionDuration = 50
	p.Warmup = 250
	p.PrefilterSize = 200
	return p
}

// SmokePreset is a minimal end-to-end configuration: the smallest
// network and shortest runs that still exercise every stage (simulate,
// discretise, train, score). It exists for fast golden/determinism tests
// — e.g. diffing full-report output across worker counts — not for
// meaningful detection accuracy.
func SmokePreset() Preset {
	p := PaperPreset()
	p.Nodes = 12
	p.Connections = 8
	p.Duration = 400
	p.TrainSeed = 121
	p.NormalSeeds = []int64{221}
	p.AttackSeeds = []int64{321}
	p.BlackHoleStart = 100
	p.DropStart = 200
	p.SessionDuration = 50
	p.SingleStarts = []float64{100, 200, 300}
	p.SingleSessionDuration = 25
	p.Warmup = 50
	p.PrefilterSize = 100
	return p
}

// Validate reports preset inconsistencies.
func (p Preset) Validate() error {
	switch {
	case p.Nodes < 3:
		return fmt.Errorf("experiments: need at least 3 nodes, have %d", p.Nodes)
	case p.Duration <= 0 || p.Sample <= 0:
		return fmt.Errorf("experiments: duration %g and sample %g must be positive", p.Duration, p.Sample)
	case int(p.AttackerNode) <= 0 || int(p.AttackerNode) >= p.Nodes:
		return fmt.Errorf("experiments: attacker node %d must be in (0,%d)", p.AttackerNode, p.Nodes)
	case p.BlackHoleStart >= p.Duration || p.DropStart >= p.Duration:
		return fmt.Errorf("experiments: intrusion onsets beyond run duration")
	case len(p.NormalSeeds) == 0 || len(p.AttackSeeds) == 0:
		return fmt.Errorf("experiments: need normal and attack test seeds")
	}
	return nil
}
