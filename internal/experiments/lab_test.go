package experiments

import (
	"testing"

	"crossfeature/internal/attack"
	"crossfeature/internal/features"
	"crossfeature/internal/netsim"
)

func TestPresetsValidate(t *testing.T) {
	if err := PaperPreset().Validate(); err != nil {
		t.Errorf("paper preset invalid: %v", err)
	}
	if err := QuickPreset().Validate(); err != nil {
		t.Errorf("quick preset invalid: %v", err)
	}
}

func TestPresetValidationRejects(t *testing.T) {
	cases := []func(*Preset){
		func(p *Preset) { p.Nodes = 2 },
		func(p *Preset) { p.Duration = 0 },
		func(p *Preset) { p.AttackerNode = 0 }, // must not be the monitored node
		func(p *Preset) { p.BlackHoleStart = p.Duration + 1 },
		func(p *Preset) { p.NormalSeeds = nil },
	}
	for i, mut := range cases {
		p := QuickPreset()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestFourScenarios(t *testing.T) {
	scs := FourScenarios()
	if len(scs) != 4 {
		t.Fatalf("%d scenarios, want 4", len(scs))
	}
	names := map[string]bool{}
	for _, sc := range scs {
		names[sc.Name()] = true
	}
	for _, want := range []string{"AODV/TCP", "AODV/UDP", "DSR/TCP", "DSR/UDP"} {
		if !names[want] {
			t.Errorf("missing scenario %s", want)
		}
	}
}

func TestLearnersMatchPaper(t *testing.T) {
	names := map[string]bool{}
	for _, l := range Learners() {
		names[l.Name()] = true
	}
	for _, want := range []string{"C4.5", "RIPPER", "NBC"} {
		if !names[want] {
			t.Errorf("missing learner %s", want)
		}
	}
	if _, err := LearnerByName("C4.5"); err != nil {
		t.Error(err)
	}
	if _, err := LearnerByName("J48"); err == nil {
		t.Error("unknown learner accepted")
	}
}

func TestTraceLabelsFromOnset(t *testing.T) {
	tr := Trace{
		Vectors: []features.Vector{{Time: 100}, {Time: 499}, {Time: 500}, {Time: 900}},
		Plan: attack.Plan{Specs: []attack.Spec{{
			Kind:     attack.BlackHole,
			Sessions: attack.Sessions(100, 500),
		}}},
	}
	labels := tr.Labels()
	want := []bool{false, false, true, true}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label[%d] = %v, want %v", i, labels[i], want[i])
		}
	}
	clean := Trace{Vectors: tr.Vectors}
	for i, l := range clean.Labels() {
		if l {
			t.Errorf("clean trace labelled intrusive at %d", i)
		}
	}
}

func TestTrimWarmup(t *testing.T) {
	vs := []features.Vector{{Time: 5}, {Time: 250}, {Time: 255}}
	out := trimWarmup(vs, 250)
	if len(out) != 2 || out[0].Time != 250 {
		t.Errorf("trimWarmup = %v", out)
	}
	if got := trimWarmup(vs, 0); len(got) != 3 {
		t.Error("zero warmup should keep everything")
	}
}

func TestAttackSpecsComposition(t *testing.T) {
	p := QuickPreset()
	lab, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	mixed := lab.attackSpecs(Mixed)
	if len(mixed) != 2 {
		t.Fatalf("mixed has %d specs", len(mixed))
	}
	if mixed[0].Kind != attack.BlackHole || mixed[1].Kind != attack.SelectiveDrop {
		t.Error("mixed spec kinds wrong")
	}
	if mixed[0].Sessions[0].Start != p.BlackHoleStart {
		t.Errorf("black hole starts at %v", mixed[0].Sessions[0].Start)
	}
	// Sessions alternate on/off with equal duration and gap.
	s := mixed[0].Sessions
	if len(s) < 2 {
		t.Fatal("expected periodic sessions")
	}
	if gap := s[1].Start - s[0].End(); gap != p.SessionDuration {
		t.Errorf("gap = %v, want %v (equal to duration)", gap, p.SessionDuration)
	}

	single := lab.attackSpecs(BlackHoleOnly)
	if len(single) != 1 || len(single[0].Sessions) != len(p.SingleStarts) {
		t.Error("single-intrusion schedule wrong")
	}
	if specs := lab.attackSpecs(NoAttack); specs != nil {
		t.Error("no-attack mix produced specs")
	}
}

func TestRunTraceMemoised(t *testing.T) {
	p := QuickPreset()
	p.Nodes = 12
	p.Connections = 8
	p.Duration = 100
	p.Warmup = 20
	p.BlackHoleStart = 30
	p.DropStart = 50
	p.SessionDuration = 10
	p.SingleStarts = []float64{30, 50, 70}
	lab, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	a, err := lab.RunTrace(sc, NoAttack, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.RunTrace(sc, NoAttack, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical trace request was not memoised")
	}
	c, err := lab.RunTrace(sc, NoAttack, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds shared a memoised trace")
	}
}

func TestScenarioDataShapes(t *testing.T) {
	p := QuickPreset()
	p.Nodes = 12
	p.Connections = 8
	p.Duration = 200
	p.Warmup = 50
	p.BlackHoleStart = 60
	p.DropStart = 100
	p.SessionDuration = 20
	p.SingleStarts = []float64{60, 100, 150}
	p.NormalSeeds = p.NormalSeeds[:1]
	p.AttackSeeds = p.AttackSeeds[:1]
	lab, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	d, err := lab.Data(sc)
	if err != nil {
		t.Fatal(err)
	}
	if d.TrainDS.Len() == 0 {
		t.Fatal("empty training dataset")
	}
	if len(d.TrainDS.Attrs) != features.NumFeatures {
		t.Errorf("training schema has %d attributes, want %d", len(d.TrainDS.Attrs), features.NumFeatures)
	}
	if len(d.Normal) != 1 || len(d.Mixed) != 1 {
		t.Errorf("test trace counts: %d normal, %d mixed", len(d.Normal), len(d.Mixed))
	}
	// Training rows all start at/after warmup.
	wantRows := int((p.Duration - p.Warmup) / p.Sample)
	if d.TrainDS.Len() < wantRows-1 || d.TrainDS.Len() > wantRows+1 {
		t.Errorf("training rows = %d, want about %d", d.TrainDS.Len(), wantRows)
	}
}
