package experiments

import (
	"sync"
	"testing"

	"crossfeature/internal/attack"
	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/features"
	"crossfeature/internal/netsim"
)

// microPreset is the smallest preset that exercises the full pipeline,
// shared by the concurrency tests (simulations stay in the tens of
// milliseconds).
func microPreset() Preset {
	p := QuickPreset()
	p.Nodes = 12
	p.Connections = 8
	p.Duration = 100
	p.Warmup = 20
	p.BlackHoleStart = 30
	p.DropStart = 50
	p.SessionDuration = 10
	p.SingleStarts = []float64{30, 50, 70}
	p.SingleSessionDuration = 10
	p.NormalSeeds = []int64{211}
	p.AttackSeeds = []int64{311}
	return p
}

// TestSingleFlightTrace is the dedicated regression test for the
// duplicate-work race that used to live in RunFaultTrace's
// check-unlock-simulate-store sequence: concurrent requests for one key
// must share a single simulation and return the identical *Trace.
func TestSingleFlightTrace(t *testing.T) {
	lab, err := NewLab(microPreset())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}

	const goroutines = 16
	traces := make([]*Trace, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			traces[g], errs[g] = lab.RunTrace(sc, NoAttack, 1)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if traces[g] != traces[0] {
			t.Fatalf("goroutine %d got a different *Trace", g)
		}
	}
	if n := lab.Simulations(); n != 1 {
		t.Errorf("%d simulations for one key requested %d times, want 1", n, goroutines)
	}
}

// TestConcurrentLabOverlappingKeys hammers the lab from many goroutines
// with overlapping trace keys: per key all callers must observe the same
// *Trace pointer, and the number of simulations must equal the number of
// unique keys. Run with -race to check memory safety.
func TestConcurrentLabOverlappingKeys(t *testing.T) {
	lab, err := NewLab(microPreset())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	keys := []struct {
		mix  AttackMix
		seed int64
	}{
		{NoAttack, 1}, {NoAttack, 2}, {Mixed, 1}, {Mixed, 2}, {BlackHoleOnly, 1},
	}

	const rounds = 8
	got := make([][]*Trace, len(keys))
	for k := range keys {
		got[k] = make([]*Trace, rounds)
	}
	var wg sync.WaitGroup
	for k := range keys {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(k, r int) {
				defer wg.Done()
				tr, err := lab.RunTrace(sc, keys[k].mix, keys[k].seed)
				if err != nil {
					t.Error(err)
					return
				}
				got[k][r] = tr
			}(k, r)
		}
	}
	wg.Wait()
	for k := range keys {
		for r := 1; r < rounds; r++ {
			if got[k][r] != got[k][0] {
				t.Errorf("key %d: round %d returned a different *Trace", k, r)
			}
		}
	}
	if n := lab.Simulations(); n != int64(len(keys)) {
		t.Errorf("%d simulations, want %d (one per unique key)", n, len(keys))
	}
}

// TestPrefetchCoalesces declares a plan with duplicates and checks the
// cache afterwards serves every request without further simulations.
func TestPrefetchCoalesces(t *testing.T) {
	lab, err := NewLab(microPreset())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	plan := []TraceRequest{
		{Scenario: sc, Mix: NoAttack, Seed: 1},
		{Scenario: sc, Mix: NoAttack, Seed: 1}, // duplicate
		{Scenario: sc, Mix: Mixed, Seed: 1},
	}
	if err := lab.Prefetch(plan); err != nil {
		t.Fatal(err)
	}
	if n := lab.Simulations(); n != 2 {
		t.Errorf("%d simulations after prefetch of 2 unique keys, want 2", n)
	}
	if _, err := lab.RunTrace(sc, NoAttack, 1); err != nil {
		t.Fatal(err)
	}
	if n := lab.Simulations(); n != 2 {
		t.Errorf("cache miss after prefetch: %d simulations", n)
	}
}

// TestTrainMemoised verifies the analyzer cache: two Train calls for the
// same (scenario, learner) return the identical *core.Analyzer.
func TestTrainMemoised(t *testing.T) {
	lab, err := NewLab(microPreset())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	learner, err := LearnerByName("NBC")
	if err != nil {
		t.Fatal(err)
	}
	a1, _, err := lab.Train(sc, learner)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := lab.Train(sc, learner)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same (scenario, learner) trained twice")
	}
}

// TestLabelledScoresMatchesSerial compares the concurrent LabelledScores
// against a straightforward serial reimplementation: same traces, same
// order, same scores.
func TestLabelledScoresMatchesSerial(t *testing.T) {
	lab, err := NewLab(microPreset())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	learner, err := LearnerByName("NBC")
	if err != nil {
		t.Fatal(err)
	}
	a, d, err := lab.Train(sc, learner)
	if err != nil {
		t.Fatal(err)
	}
	traces := append(append([]*Trace(nil), d.Normal...), d.Mixed...)

	got, err := LabelledScores(a, d.Disc, traces, core.Probability, lab.Preset.Warmup)
	if err != nil {
		t.Fatal(err)
	}

	var want []eval.Scored
	for _, tr := range traces {
		scores, err := ScoreTrace(a, d.Disc, tr, core.Probability)
		if err != nil {
			t.Fatal(err)
		}
		labels := tr.Labels()
		for i, s := range scores {
			if tr.Vectors[i].Time < lab.Preset.Warmup {
				continue
			}
			want = append(want, eval.Scored{Score: s, Intrusion: labels[i]})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("concurrent returned %d events, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: concurrent %+v, serial %+v", i, got[i], want[i])
		}
	}
}

// TestSessionLabelsIntervalEquivalence checks the precomputed-interval
// SessionLabels against the probe-loop semantics it replaced: a record
// is intrusive iff some 5 s-grid offset back <= tail hits an active
// session.
func TestSessionLabelsIntervalEquivalence(t *testing.T) {
	probeLabels := func(tr Trace, tail float64) []bool {
		labels := make([]bool, len(tr.Vectors))
		for i, v := range tr.Vectors {
			for back := 0.0; back <= tail; back += 5 {
				if tr.Plan.ActiveAt(v.Time - back) {
					labels[i] = true
					break
				}
			}
		}
		return labels
	}

	var vectors []features.Vector
	for ts := 0.0; ts <= 400; ts += 5 {
		vectors = append(vectors, features.Vector{Time: ts})
	}
	tr := Trace{
		Vectors: vectors,
		Plan: attack.Plan{Specs: []attack.Spec{
			{Kind: attack.UpdateStorm, Sessions: attack.Sessions(25, 100, 200, 300)},
			{Kind: attack.BlackHole, Sessions: attack.Sessions(50, 150)},
		}},
	}
	for _, tail := range []float64{0, 30, 60} {
		got := tr.SessionLabels(tail)
		want := probeLabels(tr, tail)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("tail %v: label[%d] (t=%v) = %v, probe loop says %v",
					tail, i, tr.Vectors[i].Time, got[i], want[i])
			}
		}
	}
	// A trace without sessions labels nothing.
	for i, l := range (Trace{Vectors: vectors}).SessionLabels(60) {
		if l {
			t.Fatalf("sessionless trace labelled intrusive at %d", i)
		}
	}
}
