package experiments

import (
	"fmt"
	"io"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/netsim"
)

// OLSRStudy is an extension beyond the paper's two evaluated protocols:
// cross-feature detection on the proactive OLSR protocol (which the paper
// names in section 2 but does not evaluate). The audit signature differs
// fundamentally from AODV/DSR — periodic HELLO/TC control instead of
// on-demand floods — so this probes how protocol-agnostic the framework
// really is. Mixed intrusions (black hole + selective dropping) follow
// the paper's schedule; OLSR heals from bogus advertisements within one
// TC interval, so labels follow attack sessions (60 s tail) rather than
// everything-after-onset.
func (l *Lab) OLSRStudy(w io.Writer) ([]CurveResult, error) {
	fmt.Fprintln(w, "Extension: cross-feature detection on OLSR (UDP, C4.5)")
	sc := Scenario{Routing: netsim.OLSR, Transport: netsim.CBR}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	a, d, err := l.Train(sc, learner)
	if err != nil {
		return nil, err
	}
	var events []eval.Scored
	normals, err := LabelledScores(a, d.Disc, d.Normal, core.Probability, l.Preset.Warmup)
	if err != nil {
		return nil, err
	}
	events = append(events, normals...)
	for _, t := range d.Mixed {
		scores, err := ScoreTrace(a, d.Disc, t, core.Probability)
		if err != nil {
			return nil, err
		}
		labels := t.SessionLabels(60)
		for i, s := range scores {
			if t.Vectors[i].Time < l.Preset.Warmup {
				continue
			}
			events = append(events, eval.Scored{Score: s, Intrusion: labels[i]})
		}
	}
	pts := eval.Curve(events)
	r := CurveResult{
		Scenario: sc,
		Learner:  learner.Name(),
		Scorer:   core.Probability,
		Points:   pts,
		AUC:      eval.AUC(pts),
		Optimal:  eval.OptimalPoint(pts),
	}
	printCurve(w, r)
	return []CurveResult{r}, nil
}
