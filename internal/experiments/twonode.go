package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// The two-node illustrative example of section 3: three binary features —
// "Reachable?", "Delivered?", "Cached?" — with four normal events
// (Table 1). The paper's illustrative classifier, per labelled feature,
// maps each assignment of the other two features to a prediction:
//
//   - exactly one class seen among normal events -> that class, prob 1.0
//   - both classes seen                          -> True, prob 0.5
//   - combination never seen                     -> the label appearing
//     more often in the other rules, prob 0.5
//
// The probability of the true class is the predicted probability when the
// prediction matches and one minus it otherwise.

// TwoNodeFeatureNames are the example's feature names in order.
var TwoNodeFeatureNames = [3]string{"Reachable?", "Delivered?", "Cached?"}

// TwoNodeEvent is one event of the example.
type TwoNodeEvent [3]bool

// TwoNodeNormalEvents reproduces Table 1: the complete set of normal
// events in the 2-node network.
func TwoNodeNormalEvents() []TwoNodeEvent {
	return []TwoNodeEvent{
		{true, true, true},
		{true, false, false},
		{false, false, true},
		{false, false, false},
	}
}

// TwoNodeAllEvents enumerates all 8 possible events in Table 3's order:
// the four normal events followed by the four abnormal ones.
func TwoNodeAllEvents() (events []TwoNodeEvent, normal []bool) {
	norm := TwoNodeNormalEvents()
	isNormal := func(e TwoNodeEvent) bool {
		for _, n := range norm {
			if n == e {
				return true
			}
		}
		return false
	}
	events = append(events, norm...)
	normal = []bool{true, true, true, true}
	for _, e := range []TwoNodeEvent{
		{true, true, false},
		{true, false, true},
		{false, true, true},
		{false, true, false},
	} {
		events = append(events, e)
		normal = append(normal, isNormal(e))
	}
	return events, normal
}

// TwoNodeRule is one row of a sub-model table (Table 2): the values of the
// two non-labelled features, the predicted class and its probability.
type TwoNodeRule struct {
	Others    [2]bool // values of the non-labelled features, in feature order
	Predicted bool
	Prob      float64
}

// TwoNodeSubModel is the illustrative sub-model with respect to one
// labelled feature.
type TwoNodeSubModel struct {
	Labeled int // index of the labelled feature
	Rules   [4]TwoNodeRule
}

// ruleIndex maps a pair of boolean inputs to a rule slot.
func ruleIndex(a, b bool) int {
	i := 0
	if a {
		i |= 2
	}
	if b {
		i |= 1
	}
	return i
}

// others extracts the non-labelled feature values of an event.
func others(e TwoNodeEvent, labeled int) (a, b bool) {
	vals := make([]bool, 0, 2)
	for i, v := range e {
		if i != labeled {
			vals = append(vals, v)
		}
	}
	return vals[0], vals[1]
}

// BuildTwoNodeSubModel constructs the illustrative sub-model with respect
// to the given labelled feature from the normal events (Table 2).
func BuildTwoNodeSubModel(labeled int) TwoNodeSubModel {
	m := TwoNodeSubModel{Labeled: labeled}
	var seenTrue, seenFalse [4]bool
	for _, e := range TwoNodeNormalEvents() {
		a, b := others(e, labeled)
		idx := ruleIndex(a, b)
		if e[labeled] {
			seenTrue[idx] = true
		} else {
			seenFalse[idx] = true
		}
	}
	// First pass: rules backed by observations.
	trueVotes, falseVotes := 0, 0
	for idx := 0; idx < 4; idx++ {
		r := &m.Rules[idx]
		r.Others = [2]bool{idx&2 != 0, idx&1 != 0}
		switch {
		case seenTrue[idx] && seenFalse[idx]:
			r.Predicted, r.Prob = true, 0.5
		case seenTrue[idx]:
			r.Predicted, r.Prob = true, 1.0
		case seenFalse[idx]:
			r.Predicted, r.Prob = false, 1.0
		default:
			continue // unseen; filled in the second pass
		}
		if r.Predicted {
			trueVotes++
		} else {
			falseVotes++
		}
	}
	// Second pass: unseen combinations take the majority label of the
	// other rules.
	for idx := 0; idx < 4; idx++ {
		r := &m.Rules[idx]
		if r.Prob != 0 {
			continue
		}
		r.Predicted = trueVotes >= falseVotes
		r.Prob = 0.5
	}
	return m
}

// Predict returns the predicted class and its probability for an event.
func (m TwoNodeSubModel) Predict(e TwoNodeEvent) (bool, float64) {
	a, b := others(e, m.Labeled)
	r := m.Rules[ruleIndex(a, b)]
	return r.Predicted, r.Prob
}

// TrueClassProb is the probability assigned to the event's true value of
// the labelled feature.
func (m TwoNodeSubModel) TrueClassProb(e TwoNodeEvent) float64 {
	pred, prob := m.Predict(e)
	if pred == e[m.Labeled] {
		return prob
	}
	return 1 - prob
}

// TwoNodeScore is one row of Table 3.
type TwoNodeScore struct {
	Event         TwoNodeEvent
	Normal        bool
	AvgMatchCount float64
	AvgProb       float64
}

// TwoNodeScores reproduces Table 3: average match count and average
// probability for all eight possible events.
func TwoNodeScores() []TwoNodeScore {
	models := [3]TwoNodeSubModel{
		BuildTwoNodeSubModel(0),
		BuildTwoNodeSubModel(1),
		BuildTwoNodeSubModel(2),
	}
	events, normal := TwoNodeAllEvents()
	out := make([]TwoNodeScore, 0, len(events))
	for i, e := range events {
		var match, prob float64
		for _, m := range models {
			pred, _ := m.Predict(e)
			if pred == e[m.Labeled] {
				match++
			}
			prob += m.TrueClassProb(e)
		}
		out = append(out, TwoNodeScore{
			Event:         e,
			Normal:        normal[i],
			AvgMatchCount: match / 3,
			AvgProb:       prob / 3,
		})
	}
	return out
}

// --- rendering ------------------------------------------------------------------

func tf(b bool) string {
	if b {
		return "True"
	}
	return "False"
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Complete set of normal events in the 2-node network example")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Reachable?\tDelivered?\tCached?")
	for _, e := range TwoNodeNormalEvents() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", tf(e[0]), tf(e[1]), tf(e[2]))
	}
	tw.Flush()
}

// PrintTable2 renders the three sub-models of Table 2.
func PrintTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Sub-models in the 2-node network example")
	for labeled := 0; labeled < 3; labeled++ {
		m := BuildTwoNodeSubModel(labeled)
		fmt.Fprintf(w, "(%c) Sub-model with respect to %q\n", 'a'+labeled, TwoNodeFeatureNames[labeled])
		var otherNames []string
		for i, n := range TwoNodeFeatureNames {
			if i != labeled {
				otherNames = append(otherNames, n)
			}
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "%s\t%s\t%s\tProbability\n", otherNames[0], otherNames[1], TwoNodeFeatureNames[labeled])
		for _, r := range m.Rules {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f\n", tf(r.Others[0]), tf(r.Others[1]), tf(r.Predicted), r.Prob)
		}
		tw.Flush()
	}
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Scores for all events in the 2-node network example")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Reachable?\tDelivered?\tCached?\tClass\tAvg match count\tAvg probability")
	for _, s := range TwoNodeScores() {
		cls := "Abnormal"
		if s.Normal {
			cls = "Normal"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.2f\t%.2f\n",
			tf(s.Event[0]), tf(s.Event[1]), tf(s.Event[2]), cls, s.AvgMatchCount, s.AvgProb)
	}
	tw.Flush()
}
