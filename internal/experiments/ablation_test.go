package experiments

import (
	"io"
	"testing"
)

// tinyPreset is small enough for ablation tests to run in seconds.
func tinyPreset() Preset {
	p := QuickPreset()
	p.Nodes = 12
	p.Connections = 8
	p.Duration = 400
	p.Warmup = 100
	p.TrainSeed = 11
	p.NormalSeeds = []int64{21}
	p.AttackSeeds = []int64{31}
	p.BlackHoleStart = 150
	p.DropStart = 250
	p.SessionDuration = 40
	p.SingleStarts = []float64{150, 250, 350}
	p.SingleSessionDuration = 25
	p.PrefilterSize = 0
	return p
}

func TestAblationBuckets(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.AblationBuckets(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d bucket variants, want 3", len(rs))
	}
	for _, r := range rs {
		if r.AUC <= 0 || r.AUC > 1 {
			t.Errorf("%s: AUC %v out of range", r.Variant, r.AUC)
		}
	}
}

func TestAblationPeriodsAndReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.AblationPeriods(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("%d period variants, want 4", len(rs))
	}
	rs, err = lab.AblationModelReduction(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("%d reduction variants, want 4", len(rs))
	}
	// The full-model variant must match having all sub-models.
	full := rs[len(rs)-1]
	if full.AUC <= 0 {
		t.Error("full-model reduction variant has no AUC")
	}
}

func TestAblationContinuous(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.AblationContinuous(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d continuous variants, want 2", len(rs))
	}
	for _, r := range rs {
		if r.AUC < 0.3 {
			t.Errorf("%s: AUC %v suspiciously low", r.Variant, r.AUC)
		}
	}
}

func TestFeatureSubset(t *testing.T) {
	all := featureSubset("all")
	if all != nil {
		t.Error("all should keep everything (nil mask)")
	}
	only5 := featureSubset("5s")
	count := 0
	for range only5 {
		count++
	}
	// 8 route features + 22 combos * 2 measures for one period = 52.
	if count != 52 {
		t.Errorf("5s subset keeps %d features, want 52", count)
	}
}

func TestAblationFactorAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.AblationFactorAnalysis(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d factor variants, want 3", len(rs))
	}
	for _, r := range rs {
		t.Logf("%s: AUC=%.3f", r.Variant, r.AUC)
		if r.AUC < 0.4 {
			t.Errorf("%s: AUC %v below chance margin", r.Variant, r.AUC)
		}
	}
}
