package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/features"
	"crossfeature/internal/ml"
	"crossfeature/internal/ml/factor"
	"crossfeature/internal/netsim"
)

// The ablation suite goes beyond the paper's figures to probe the design
// choices DESIGN.md calls out and the directions its future-work section
// names: the discretisation bucket count, the contribution of each
// sampling window, combining rule x learner interactions, reducing the
// number of sub-models ("fewer number of models involved in the
// combination process"), and the continuous (regression) variant.

// AblationResult is one ablation measurement.
type AblationResult struct {
	Study   string
	Variant string
	AUC     float64
	Optimal eval.Point
}

// ablationScenario is the fixed test bed: AODV/UDP, the scenario the
// paper uses for its own single-variable studies (Figures 5-6).
func ablationScenario() Scenario {
	return Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
}

// evaluateDiscrete trains on a prepared dataset and scores the scenario's
// test traces with the given scorer, returning curve statistics.
func (l *Lab) evaluateDiscrete(d *ScenarioData, disc *features.Discretizer, ds *ml.Dataset,
	learner ml.Learner, scorer core.Scorer, keep func(*core.Analyzer) *core.Analyzer) (eval.Point, float64, error) {
	a, err := core.Train(ds, learner, core.TrainOptions{Parallelism: l.Preset.Parallelism})
	if err != nil {
		return eval.Point{}, 0, err
	}
	if keep != nil {
		a = keep(a)
	}
	var events []eval.Scored
	normals, err := LabelledScores(a, disc, d.Normal, scorer, l.Preset.Warmup)
	if err != nil {
		return eval.Point{}, 0, err
	}
	attacks, err := LabelledScores(a, disc, d.Mixed, scorer, l.Preset.Warmup)
	if err != nil {
		return eval.Point{}, 0, err
	}
	events = append(events, normals...)
	events = append(events, attacks...)
	pts := eval.Curve(events)
	return eval.OptimalPoint(pts), eval.AUC(pts), nil
}

// AblationBuckets sweeps the equal-frequency bucket count (the paper
// fixes it at 5).
func (l *Lab) AblationBuckets(w io.Writer) ([]AblationResult, error) {
	sc := ablationScenario()
	d, err := l.Data(sc)
	if err != nil {
		return nil, err
	}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	train, err := l.RunTrace(sc, NoAttack, l.Preset.TrainSeed)
	if err != nil {
		return nil, err
	}
	rows := features.Matrix(trimWarmup(train.Vectors, l.Preset.Warmup))
	bucketCounts := []int{3, 5, 8}
	results := make([]AblationResult, len(bucketCounts))
	err = forEach(len(bucketCounts), func(i int) error {
		buckets := bucketCounts[i]
		disc, err := features.Fit(rows, features.Names(), features.FitOptions{
			Buckets: buckets, SampleSize: l.Preset.PrefilterSize, Seed: l.Preset.TrainSeed,
		})
		if err != nil {
			return err
		}
		ds, err := disc.Dataset(rows)
		if err != nil {
			return err
		}
		opt, auc, err := l.evaluateDiscrete(d, disc, ds, learner, core.Probability, nil)
		if err != nil {
			return err
		}
		results[i] = AblationResult{
			Study:   "buckets",
			Variant: fmt.Sprintf("%d buckets", buckets),
			AUC:     auc,
			Optimal: opt,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	printAblation(w, "Ablation: equal-frequency bucket count (C4.5, AODV/UDP)", results)
	return results, nil
}

// AblationPeriods retrains with traffic features restricted to a single
// sampling window, quantifying what each horizon contributes.
func (l *Lab) AblationPeriods(w io.Writer) ([]AblationResult, error) {
	sc := ablationScenario()
	d, err := l.Data(sc)
	if err != nil {
		return nil, err
	}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	// All variants mask the same fully trained analyzer: dropped
	// sub-models are zeroed out rather than refitted, which isolates the
	// combination effect without refitting the discretiser — and means
	// training happens once, not once per variant.
	a, _, err := l.Train(sc, learner)
	if err != nil {
		return nil, err
	}
	variants := []string{"all", "5s", "60s", "900s"}
	results := make([]AblationResult, len(variants))
	err = forEach(len(variants), func(i int) error {
		variant := variants[i]
		masked := maskAnalyzer(a, featureSubset(variant))
		var events []eval.Scored
		for _, group := range [][]*Trace{d.Normal, d.Mixed} {
			scored, err := LabelledScores(masked, d.Disc, group, core.Probability, l.Preset.Warmup)
			if err != nil {
				return err
			}
			events = append(events, scored...)
		}
		pts := eval.Curve(events)
		results[i] = AblationResult{
			Study:   "periods",
			Variant: variant,
			AUC:     eval.AUC(pts),
			Optimal: eval.OptimalPoint(pts),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	printAblation(w, "Ablation: sampling-period subsets (C4.5, AODV/UDP)", results)
	return results, nil
}

// featureSubset returns the retained feature indices for a period variant:
// the 8 route/topology features plus the traffic features of one window
// ("all" keeps everything).
func featureSubset(variant string) map[int]bool {
	if variant == "all" {
		return nil
	}
	keep := make(map[int]bool)
	for i, name := range features.Names() {
		if i < features.NumRouteFeatures || strings.Contains(name, "."+variant+".") {
			keep[i] = true
		}
	}
	return keep
}

// maskAnalyzer returns a copy of a with only the kept sub-models (nil set
// keeps everything).
func maskAnalyzer(a *core.Analyzer, keep map[int]bool) *core.Analyzer {
	if keep == nil {
		return a
	}
	masked := &core.Analyzer{
		Attrs:       a.Attrs,
		Models:      make([]ml.Classifier, len(a.Models)),
		LearnerName: a.LearnerName,
	}
	for i, m := range a.Models {
		if keep[i] {
			masked.Models[i] = m
		}
	}
	return masked
}

// AblationModelReduction implements the paper's future-work direction of
// using fewer sub-models: rank features by how predictable they are on
// normal training data and keep only the top k most predictable
// sub-models in the combination.
func (l *Lab) AblationModelReduction(w io.Writer) ([]AblationResult, error) {
	sc := ablationScenario()
	d, err := l.Data(sc)
	if err != nil {
		return nil, err
	}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	a, _, err := l.Train(sc, learner)
	if err != nil {
		return nil, err
	}
	// Rank sub-models by mean probability of the true class on training
	// data: high means the feature is reliably predictable from the rest.
	type ranked struct {
		idx  int
		prob float64
	}
	maxCard := 1
	for _, at := range a.Attrs {
		if at.Card > maxCard {
			maxCard = at.Card
		}
	}
	buf := make([]float64, maxCard)
	sums := make([]float64, len(a.Models))
	for _, x := range d.TrainEvents {
		for j, m := range a.Models {
			if m == nil {
				continue
			}
			p := ml.ProbaInto(m, x, buf)
			if x[j] < len(p) {
				sums[j] += p[x[j]]
			}
		}
	}
	order := make([]ranked, 0, len(a.Models))
	for j, m := range a.Models {
		if m != nil {
			order = append(order, ranked{idx: j, prob: sums[j]})
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].prob > order[j].prob })

	ks := []int{20, 50, 100, len(order)}
	results := make([]AblationResult, len(ks))
	err = forEach(len(ks), func(i int) error {
		k := ks[i]
		if k > len(order) {
			k = len(order)
		}
		keep := make(map[int]bool, k)
		for _, r := range order[:k] {
			keep[r.idx] = true
		}
		masked := maskAnalyzer(a, keep)
		var events []eval.Scored
		for _, group := range [][]*Trace{d.Normal, d.Mixed} {
			scored, err := LabelledScores(masked, d.Disc, group, core.Probability, l.Preset.Warmup)
			if err != nil {
				return err
			}
			events = append(events, scored...)
		}
		pts := eval.Curve(events)
		results[i] = AblationResult{
			Study:   "model-reduction",
			Variant: fmt.Sprintf("top %d of %d sub-models", k, len(order)),
			AUC:     eval.AUC(pts),
			Optimal: eval.OptimalPoint(pts),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	printAblation(w, "Ablation: reduced sub-model count (C4.5, AODV/UDP)", results)
	return results, nil
}

// AblationScorerMatrix extends Figure 2 to every learner: both combining
// rules for C4.5, RIPPER and NBC.
func (l *Lab) AblationScorerMatrix(w io.Writer) ([]AblationResult, error) {
	sc := ablationScenario()
	type unit struct {
		learner ml.Learner
		scorer  core.Scorer
	}
	var units []unit
	for _, learner := range Learners() {
		for _, scorer := range []core.Scorer{core.MatchCount, core.Probability} {
			units = append(units, unit{learner: learner, scorer: scorer})
		}
	}
	results := make([]AblationResult, len(units))
	err := forEach(len(units), func(i int) error {
		r, err := l.runCurve(sc, units[i].learner, units[i].scorer)
		if err != nil {
			return err
		}
		results[i] = AblationResult{
			Study:   "scorer-matrix",
			Variant: fmt.Sprintf("%s / %s", units[i].learner.Name(), units[i].scorer),
			AUC:     r.AUC,
			Optimal: r.Optimal,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	printAblation(w, "Ablation: combining rule x learner (AODV/UDP)", results)
	return results, nil
}

// AblationContinuous compares the paper's continuous variant (multiple
// linear regression with log-distance scoring, no discretisation) against
// the discrete pipeline on the same traces.
func (l *Lab) AblationContinuous(w io.Writer) ([]AblationResult, error) {
	sc := ablationScenario()
	d, err := l.Data(sc)
	if err != nil {
		return nil, err
	}
	train, err := l.RunTrace(sc, NoAttack, l.Preset.TrainSeed)
	if err != nil {
		return nil, err
	}
	rows := features.Matrix(trimWarmup(train.Vectors, l.Preset.Warmup))
	ca, err := core.TrainContinuous(rows, features.Names(), core.ContinuousOptions{
		Parallelism: l.Preset.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	// Continuous distances grow with anomaly; negate so the shared
	// "alarm below threshold" machinery applies.
	var events []eval.Scored
	score := func(traces []*Trace) error {
		for _, t := range traces {
			labels := t.Labels()
			for i, v := range t.Vectors {
				if v.Time < l.Preset.Warmup {
					continue
				}
				events = append(events, eval.Scored{
					Score:     -ca.AvgLogDistance(v.Values),
					Intrusion: labels[i],
				})
			}
		}
		return nil
	}
	if err := score(d.Normal); err != nil {
		return nil, err
	}
	if err := score(d.Mixed); err != nil {
		return nil, err
	}
	pts := eval.Curve(events)
	results := []AblationResult{{
		Study:   "continuous",
		Variant: "linear regression + log distance",
		AUC:     eval.AUC(pts),
		Optimal: eval.OptimalPoint(pts),
	}}
	// Reference: the discrete C4.5 pipeline on the same traces.
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	r, err := l.runCurve(sc, learner, core.Probability)
	if err != nil {
		return nil, err
	}
	results = append(results, AblationResult{
		Study:   "continuous",
		Variant: "discrete C4.5 reference",
		AUC:     r.AUC,
		Optimal: r.Optimal,
	})
	printAblation(w, "Ablation: continuous (regression) variant vs discrete (AODV/UDP)", results)
	return results, nil
}

// AblationFactorAnalysis compares the paper's named factor-analysis
// direction against cross-feature analysis: a PCA model fitted on normal
// continuous vectors scores events by reconstruction residual (distance
// from the normal subspace), with the discrete C4.5 pipeline as the
// reference on identical traces.
func (l *Lab) AblationFactorAnalysis(w io.Writer) ([]AblationResult, error) {
	sc := ablationScenario()
	d, err := l.Data(sc)
	if err != nil {
		return nil, err
	}
	train, err := l.RunTrace(sc, NoAttack, l.Preset.TrainSeed)
	if err != nil {
		return nil, err
	}
	rows := features.Matrix(trimWarmup(train.Vectors, l.Preset.Warmup))
	var results []AblationResult
	for _, k := range []int{10, 30} {
		fm, err := factor.Fit(rows, k)
		if err != nil {
			return nil, err
		}
		var events []eval.Scored
		for _, group := range [][]*Trace{d.Normal, d.Mixed} {
			for _, t := range group {
				labels := t.Labels()
				for i, v := range t.Vectors {
					if v.Time < l.Preset.Warmup {
						continue
					}
					// Residuals grow with anomaly; negate for the shared
					// alarm-below-threshold convention.
					events = append(events, eval.Scored{
						Score:     -fm.ReconstructionError(v.Values),
						Intrusion: labels[i],
					})
				}
			}
		}
		pts := eval.Curve(events)
		results = append(results, AblationResult{
			Study:   "factor-analysis",
			Variant: fmt.Sprintf("%d components (%.0f%% variance)", k, 100*fm.ExplainedVariance()),
			AUC:     eval.AUC(pts),
			Optimal: eval.OptimalPoint(pts),
		})
	}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	r, err := l.runCurve(sc, learner, core.Probability)
	if err != nil {
		return nil, err
	}
	results = append(results, AblationResult{
		Study:   "factor-analysis",
		Variant: "cross-feature C4.5 reference",
		AUC:     r.AUC,
		Optimal: r.Optimal,
	})
	printAblation(w, "Ablation: factor-analysis residual detector vs cross-feature (AODV/UDP)", results)
	return results, nil
}

// Ablations runs the full suite.
func (l *Lab) Ablations(w io.Writer) ([]AblationResult, error) {
	var all []AblationResult
	for _, f := range []func(io.Writer) ([]AblationResult, error){
		l.AblationBuckets,
		l.AblationPeriods,
		l.AblationModelReduction,
		l.AblationFeatureReduction,
		l.AblationScorerMatrix,
		l.AblationContinuous,
		l.AblationFactorAnalysis,
	} {
		rs, err := f(w)
		if err != nil {
			return nil, err
		}
		all = append(all, rs...)
	}
	return all, nil
}

func printAblation(w io.Writer, title string, results []AblationResult) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  variant\tAUC\toptimal recall\toptimal precision")
	for _, r := range results {
		fmt.Fprintf(tw, "  %s\t%.3f\t%.2f\t%.2f\n", r.Variant, r.AUC, r.Optimal.Recall, r.Optimal.Precision)
	}
	tw.Flush()
}
