package experiments

import (
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 0.005 }

// TestTable3ExactReproduction asserts the paper's Table 3 numbers exactly:
// average match count and average probability for all eight events of the
// two-node example.
func TestTable3ExactReproduction(t *testing.T) {
	want := []struct {
		event TwoNodeEvent
		cls   bool // normal?
		match float64
		prob  float64
	}{
		{TwoNodeEvent{true, true, true}, true, 1, 1},
		{TwoNodeEvent{true, false, false}, true, 1, 0.833},
		{TwoNodeEvent{false, false, true}, true, 1, 0.833},
		{TwoNodeEvent{false, false, false}, true, 1.0 / 3, 0.667},
		{TwoNodeEvent{true, true, false}, false, 1.0 / 3, 0.167},
		{TwoNodeEvent{true, false, true}, false, 0, 0},
		{TwoNodeEvent{false, true, true}, false, 1.0 / 3, 0.167},
		{TwoNodeEvent{false, true, false}, false, 0, 1.0 / 3},
	}
	got := TwoNodeScores()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Event != w.event || g.Normal != w.cls {
			t.Errorf("row %d is %v/%v, want %v/%v", i, g.Event, g.Normal, w.event, w.cls)
		}
		if !almost(g.AvgMatchCount, w.match) {
			t.Errorf("row %d match count = %v, want %v", i, g.AvgMatchCount, w.match)
		}
		if !almost(g.AvgProb, w.prob) {
			t.Errorf("row %d probability = %v, want %v", i, g.AvgProb, w.prob)
		}
	}
}

// TestTable3ThresholdSeparation reproduces the paper's observation: with a
// threshold of 0.5, average probability separates normal from abnormal
// perfectly, while average match count has exactly one false alarm (the
// all-False normal event).
func TestTable3ThresholdSeparation(t *testing.T) {
	const threshold = 0.5
	probErrors, matchErrors := 0, 0
	for _, s := range TwoNodeScores() {
		if (s.AvgProb >= threshold) != s.Normal {
			probErrors++
		}
		if (s.AvgMatchCount >= threshold) != s.Normal {
			matchErrors++
		}
	}
	if probErrors != 0 {
		t.Errorf("average probability misclassifies %d events, paper says 0", probErrors)
	}
	if matchErrors != 1 {
		t.Errorf("average match count misclassifies %d events, paper says 1", matchErrors)
	}
}

// TestTable2SubModels checks the sub-model rules against Table 2.
func TestTable2SubModels(t *testing.T) {
	// Sub-model (a) w.r.t. "Reachable?": rows keyed by (Delivered, Cached).
	a := BuildTwoNodeSubModel(0)
	checkRule := func(m TwoNodeSubModel, o1, o2, pred bool, prob float64) {
		t.Helper()
		r := m.Rules[ruleIndex(o1, o2)]
		if r.Predicted != pred || !almost(r.Prob, prob) {
			t.Errorf("model %d rule (%v,%v) = (%v,%v), want (%v,%v)",
				m.Labeled, o1, o2, r.Predicted, r.Prob, pred, prob)
		}
	}
	checkRule(a, true, true, true, 1.0)
	checkRule(a, false, false, true, 0.5)
	checkRule(a, false, true, false, 1.0)
	checkRule(a, true, false, true, 0.5) // the unseen combination

	// Sub-model (b) w.r.t. "Delivered?": keyed by (Reachable, Cached).
	b := BuildTwoNodeSubModel(1)
	checkRule(b, true, true, true, 1.0)
	checkRule(b, true, false, false, 1.0)
	checkRule(b, false, true, false, 1.0)
	checkRule(b, false, false, false, 1.0)

	// Sub-model (c) w.r.t. "Cached?": keyed by (Reachable, Delivered).
	c := BuildTwoNodeSubModel(2)
	checkRule(c, true, true, true, 1.0)
	checkRule(c, true, false, false, 1.0)
	checkRule(c, false, false, true, 0.5)
	checkRule(c, false, true, true, 0.5) // the unseen combination
}

func TestTable1NormalEvents(t *testing.T) {
	events := TwoNodeNormalEvents()
	if len(events) != 4 {
		t.Fatalf("%d normal events, want 4", len(events))
	}
	want := []TwoNodeEvent{
		{true, true, true},
		{true, false, false},
		{false, false, true},
		{false, false, false},
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, events[i], want[i])
		}
	}
}

func TestPrintersProduceTables(t *testing.T) {
	var b strings.Builder
	PrintTable1(&b)
	PrintTable2(&b)
	PrintTable3(&b)
	out := b.String()
	for _, needle := range []string{"Table 1", "Table 2", "Table 3", "Reachable?", "0.83", "Abnormal"} {
		if !strings.Contains(out, needle) {
			t.Errorf("printed tables missing %q", needle)
		}
	}
}
