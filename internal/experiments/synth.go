package experiments

import (
	"math/rand"

	"crossfeature/internal/features"
	"crossfeature/internal/ml"
)

// SyntheticAuditDataset builds a deterministic nominal dataset shaped like
// the paper's discretised audit traces at full scale: one attribute per
// cross-feature (features.NumFeatures = 140), cardinalities matching the
// equal-frequency discretiser's output (len(cuts)+4 with the top value
// flagged as the unknown bucket), and rows drawn from a small number of
// latent traffic regimes so features are strongly inter-correlated — the
// structure Algorithm 1's sub-models exist to learn. The generator is a
// pure function of (seed, rows); training benchmarks and differential
// tests use it to get paper-shaped data without running a simulation.
func SyntheticAuditDataset(seed int64, rows int) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := features.Names()
	attrs := make([]ml.Attr, len(names))
	cuts := make([]int, len(names))
	group := make([]int, len(names))
	const latents = 4
	for j := range attrs {
		// Most features keep all DefaultBuckets-1 cuts; some collapse to
		// fewer (concentrated value mass), as real traces produce.
		c := 1 + rng.Intn(features.DefaultBuckets-1)
		if rng.Float64() < 0.08 {
			c = 0
		}
		cuts[j] = c
		group[j] = rng.Intn(latents)
		attrs[j] = ml.Attr{Name: names[j], Card: c + 4, HasUnknown: true}
	}
	ds := ml.NewDataset(attrs)
	const regimes = 5
	row := make([]int, len(attrs))
	for i := 0; i < rows; i++ {
		// One latent value per feature group: features in the same group
		// move together (route activity vs. traffic volume vs. mobility...),
		// so cross-feature models have real signal to capture.
		var lat [latents]int
		for g := range lat {
			lat[g] = rng.Intn(regimes)
		}
		for j := range attrs {
			span := cuts[j] + 1 // in-range buckets
			v := lat[group[j]] % span
			if rng.Float64() < 0.15 {
				v = rng.Intn(span) // observation noise
			}
			row[j] = v
		}
		// Add copies the row, so the buffer is safely reused.
		if err := ds.Add(row); err != nil {
			panic(err) // unreachable: values are in range by construction
		}
	}
	return ds
}
