package experiments

import (
	"fmt"
	"io"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/faults"
	"crossfeature/internal/netsim"
	"crossfeature/internal/packet"
)

// FaultMix selects the environmental-fault composition of a trace,
// orthogonally to its AttackMix.
type FaultMix int

const (
	// NoFaults produces a fault-free trace (the paper's conditions).
	NoFaults FaultMix = iota
	// EnvFaults runs the full benign-fault campaign: node crash/restart
	// cycles, link flapping on the monitored node's links, a network-wide
	// noise burst and audit-sampler faults (dropped snapshots, truncated
	// snapshots, sampler clock jitter).
	EnvFaults
)

// String implements fmt.Stringer.
func (m FaultMix) String() string {
	switch m {
	case NoFaults:
		return "no-faults"
	case EnvFaults:
		return "env-faults"
	default:
		return fmt.Sprintf("FaultMix(%d)", int(m))
	}
}

// faultSpecs builds the environmental-fault campaign for a mix. Sessions
// are placed after the warmup horizon and scaled to the post-warmup span so
// the same campaign shape works at paper and quick scale.
func (l *Lab) faultSpecs(fmix FaultMix) []faults.Spec {
	if fmix == NoFaults {
		return nil
	}
	p := l.Preset
	span := p.Duration - p.Warmup
	at := func(frac float64) float64 { return p.Warmup + frac*span }
	monitor := packet.NodeID(0)
	// Crash a bystander: neither the monitored node (its audit trail is the
	// experiment's subject) nor the attacker (its schedule is the ground
	// truth).
	crash := p.AttackerNode + 1
	if int(crash) >= p.Nodes {
		crash = p.AttackerNode - 1
	}
	return []faults.Spec{
		{Kind: faults.NodeCrash, Node: crash,
			Sessions: faults.Sessions(0.04*span, at(0.10), at(0.55))},
		{Kind: faults.LinkFlap, Node: monitor, Peer: 1,
			Sessions: faults.Sessions(0.08*span, at(0.25))},
		{Kind: faults.NoiseBurst, NoiseLoss: 0.1,
			Sessions: faults.Sessions(0.04*span, at(0.40))},
		{Kind: faults.SamplerDrop, Node: monitor,
			Sessions: faults.Sessions(0.02*span, at(0.65))},
		{Kind: faults.SamplerTruncate, Node: monitor,
			Sessions: faults.Sessions(0.03*span, at(0.75))},
		{Kind: faults.SamplerJitter, Node: monitor,
			Sessions: faults.Sessions(0.05*span, at(0.85))},
	}
}

// FaultRobustnessResult summarises the graceful-degradation study.
type FaultRobustnessResult struct {
	Scenario  Scenario
	Learner   string
	Scorer    core.Scorer
	Threshold float64
	// CleanFA and FaultFA are the false-alarm rates at the operating
	// threshold on fault-free and fault-only normal traces.
	CleanFA float64
	FaultFA float64
	// CleanDetect and FaultDetect are black-hole detection rates (recall at
	// the operating threshold) without and with the fault campaign.
	CleanDetect float64
	FaultDetect float64
	// LostRecords counts audit records missing from the fault traces
	// relative to their fault-free counterparts (crash + sampler-drop gaps).
	LostRecords int
}

// FaultRobustness runs the robustness study: a detector trained and
// calibrated on clean normal data is exposed to traces carrying benign
// environmental faults, alone and overlapping a black-hole intrusion. A
// gracefully degrading detector keeps the false-alarm rate on fault-only
// traces near the clean baseline (benign faults are not intrusions) while
// losing little detection power when faults and attacks overlap.
func (l *Lab) FaultRobustness(w io.Writer) (*FaultRobustnessResult, error) {
	fmt.Fprintln(w, "Robustness: benign environmental faults (AODV/UDP, C4.5)")
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		return nil, err
	}
	a, d, err := l.Train(sc, learner)
	if err != nil {
		return nil, err
	}
	p := l.Preset

	// Declare the study's full trace plan up front so the fault traces
	// simulate concurrently on the lab's worker pool; the serial logic
	// below then runs entirely against the cache.
	var plan []TraceRequest
	for _, seed := range p.NormalSeeds {
		plan = append(plan,
			TraceRequest{Scenario: sc, Mix: NoAttack, Seed: seed},
			TraceRequest{Scenario: sc, Mix: NoAttack, Faults: EnvFaults, Seed: seed})
	}
	for _, seed := range p.AttackSeeds {
		plan = append(plan,
			TraceRequest{Scenario: sc, Mix: BlackHoleOnly, Seed: seed},
			TraceRequest{Scenario: sc, Mix: BlackHoleOnly, Faults: EnvFaults, Seed: seed})
	}
	if err := l.Prefetch(plan); err != nil {
		return nil, err
	}

	// normalScores flattens the post-warmup scores of normal-only traces.
	normalScores := func(traces []*Trace) ([]float64, error) {
		var out []float64
		for _, t := range traces {
			scores, err := ScoreTrace(a, d.Disc, t, core.Probability)
			if err != nil {
				return nil, err
			}
			for i, s := range scores {
				if t.Vectors[i].Time >= p.Warmup {
					out = append(out, s)
				}
			}
		}
		return out, nil
	}

	// The operating threshold is calibrated on held-out normal traces (not
	// the training events: sub-models score their own training data
	// optimistically, which would push the quantile far too high), and the
	// calibration set represents the deployment environment: one clean
	// trace plus one carrying the benign-fault campaign. Calibration and
	// measurement use disjoint seeds so the false-alarm rates below are
	// out-of-sample.
	calSeed := p.NormalSeeds[0]
	calClean, err := l.RunTrace(sc, NoAttack, calSeed)
	if err != nil {
		return nil, err
	}
	calFault, err := l.RunFaultTrace(sc, NoAttack, EnvFaults, calSeed)
	if err != nil {
		return nil, err
	}
	calScores, err := normalScores([]*Trace{calClean, calFault})
	if err != nil {
		return nil, err
	}
	thr := core.Threshold(calScores, p.FalseAlarmRate)

	testSeeds := p.NormalSeeds[1:]
	if len(testSeeds) == 0 {
		// Degenerate preset with a single normal seed: fall back to
		// measuring on the calibration seed.
		testSeeds = p.NormalSeeds
	}

	falseAlarms := func(scores []float64) float64 {
		if len(scores) == 0 {
			return 0
		}
		alarms := 0
		for _, s := range scores {
			if s < thr {
				alarms++
			}
		}
		return float64(alarms) / float64(len(scores))
	}

	// detection is black-hole recall at the operating threshold.
	detection := func(fmix FaultMix) (float64, []*Trace, error) {
		var events []eval.Scored
		var traces []*Trace
		for _, seed := range p.AttackSeeds {
			t, err := l.RunFaultTrace(sc, BlackHoleOnly, fmix, seed)
			if err != nil {
				return 0, nil, err
			}
			traces = append(traces, t)
			scores, err := ScoreTrace(a, d.Disc, t, core.Probability)
			if err != nil {
				return 0, nil, err
			}
			labels := t.Labels()
			for i, s := range scores {
				if t.Vectors[i].Time < p.Warmup {
					continue
				}
				events = append(events, eval.Scored{Score: s, Intrusion: labels[i]})
			}
		}
		return eval.At(events, thr).Recall(), traces, nil
	}

	r := &FaultRobustnessResult{
		Scenario:  sc,
		Learner:   learner.Name(),
		Scorer:    core.Probability,
		Threshold: thr,
	}
	var testClean, testFault []*Trace
	for _, seed := range testSeeds {
		ct, err := l.RunTrace(sc, NoAttack, seed)
		if err != nil {
			return nil, err
		}
		ft, err := l.RunFaultTrace(sc, NoAttack, EnvFaults, seed)
		if err != nil {
			return nil, err
		}
		testClean = append(testClean, ct)
		testFault = append(testFault, ft)
		r.LostRecords += len(ct.Vectors) - len(ft.Vectors)
	}
	cleanScores, err := normalScores(testClean)
	if err != nil {
		return nil, err
	}
	r.CleanFA = falseAlarms(cleanScores)
	faultScores, err := normalScores(testFault)
	if err != nil {
		return nil, err
	}
	r.FaultFA = falseAlarms(faultScores)
	if r.CleanDetect, _, err = detection(NoFaults); err != nil {
		return nil, err
	}
	if r.FaultDetect, _, err = detection(EnvFaults); err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "  operating threshold (%.1f%% target FA): %.4f\n",
		100*p.FalseAlarmRate, r.Threshold)
	fmt.Fprintf(w, "  false-alarm rate: clean %.2f%%  env-faults %.2f%%\n",
		100*r.CleanFA, 100*r.FaultFA)
	fmt.Fprintf(w, "  blackhole detection: clean %.1f%%  env-faults %.1f%%\n",
		100*r.CleanDetect, 100*r.FaultDetect)
	fmt.Fprintf(w, "  audit records lost to crash/sampler faults: %d\n", r.LostRecords)
	return r, nil
}
