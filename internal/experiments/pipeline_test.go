package experiments

import (
	"testing"

	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/netsim"
)

// TestPipelineSeparation is the end-to-end sanity check of the whole
// reproduction: on a shrunken version of the paper's AODV/UDP setup, a
// C4.5 cross-feature detector must separate mixed-intrusion records from
// normal ones far better than chance.
func TestPipelineSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	p := QuickPreset()
	p.NormalSeeds = p.NormalSeeds[:1]
	p.AttackSeeds = p.AttackSeeds[:1]
	lab, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Routing: netsim.AODV, Transport: netsim.CBR}
	learner, err := LearnerByName("C4.5")
	if err != nil {
		t.Fatal(err)
	}
	r, err := lab.runCurve(sc, learner, core.Probability)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("AUC=%.3f optimal=(%.2f, %.2f)", r.AUC, r.Optimal.Recall, r.Optimal.Precision)
	if r.AUC < 0.75 {
		t.Errorf("AUC %.3f below 0.75; detector is not separating intrusions", r.AUC)
	}
	if d := eval.AUCAboveDiagonal(r.Points); d < 0.2 {
		t.Errorf("AUC above diagonal %.3f too small", d)
	}
}
