package experiments

import (
	"reflect"
	"testing"

	"crossfeature/internal/features"
)

// TestSyntheticAuditDataset checks the generator's contract: paper-shaped
// schema, valid rows, determinism in (seed, rows), and enough cross-
// feature correlation that sub-models have signal to learn.
func TestSyntheticAuditDataset(t *testing.T) {
	ds := SyntheticAuditDataset(7, 300)
	if len(ds.Attrs) != features.NumFeatures {
		t.Fatalf("got %d attributes, want %d", len(ds.Attrs), features.NumFeatures)
	}
	if ds.Len() != 300 {
		t.Fatalf("got %d rows, want 300", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for j, at := range ds.Attrs {
		if at.Card < 4 || at.Card > features.DefaultBuckets+3 {
			t.Fatalf("attribute %d has cardinality %d outside the discretiser's range", j, at.Card)
		}
		if !at.HasUnknown {
			t.Fatalf("attribute %d missing the unknown-bucket flag", j)
		}
	}

	again := SyntheticAuditDataset(7, 300)
	if !reflect.DeepEqual(ds.X, again.X) || !reflect.DeepEqual(ds.Attrs, again.Attrs) {
		t.Fatal("generator is not deterministic in (seed, rows)")
	}
	other := SyntheticAuditDataset(8, 300)
	if reflect.DeepEqual(ds.X, other.X) {
		t.Fatal("different seeds produced identical data")
	}

	// Latent-regime structure: some feature pair must be strongly
	// correlated, or the dataset is noise and trains trivial sub-models.
	best := 0.0
	for j := 1; j < 40; j++ {
		if u := ds.SymmetricUncertainty(0, j); u > best {
			best = u
		}
	}
	if best < 0.2 {
		t.Fatalf("max symmetric uncertainty %.3f: no cross-feature structure", best)
	}
}
