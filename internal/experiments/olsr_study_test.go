package experiments

import (
	"io"
	"testing"
)

func TestOLSRStudyDetects(t *testing.T) {
	if testing.Short() {
		t.Skip("OLSR study in -short mode")
	}
	lab, err := NewLab(tinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.OLSRStudy(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("%d results", len(rs))
	}
	t.Logf("OLSR AUC=%.3f optimal=(%.2f,%.2f)", rs[0].AUC, rs[0].Optimal.Recall, rs[0].Optimal.Precision)
	// At this tiny scale the OLSR signal is marginal (the protocol heals
	// within a TC interval and the black hole only captures traffic near
	// the attacker); the pipeline must still run and stay above chaos.
	if rs[0].AUC < 0.3 || rs[0].AUC > 1 {
		t.Errorf("OLSR detection AUC %.3f out of sane range", rs[0].AUC)
	}
}
