package experiments

import (
	"io"
	"math"
	"testing"
)

// TestFaultRobustness is the graceful-degradation acceptance check: benign
// environmental faults (crash/restart, link flapping, noise bursts, sampler
// faults) must not drown the detector in false alarms, and an overlapping
// black-hole intrusion must stay detectable.
func TestFaultRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-robustness study in -short mode")
	}
	p := QuickPreset()
	// Keep both normal seeds: the study calibrates on the first (clean +
	// faults) and measures false alarms out-of-sample on the rest.
	p.AttackSeeds = p.AttackSeeds[:1]
	lab, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := lab.FaultRobustness(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("threshold=%.4f FA clean=%.3f faults=%.3f detect clean=%.3f faults=%.3f lost=%d",
		r.Threshold, r.CleanFA, r.FaultFA, r.CleanDetect, r.FaultDetect, r.LostRecords)

	// The campaign must actually degrade the audit trail: crash and
	// sampler-drop sessions erase records.
	if r.LostRecords <= 0 {
		t.Errorf("fault campaign lost %d audit records, want > 0", r.LostRecords)
	}
	// False alarms on fault-only traces stay below twice the clean
	// baseline. The baseline is floored at the preset's design false-alarm
	// target: a finite clean trace can measure 0.0 without the true rate
	// being zero, and the detector is explicitly calibrated to alarm on
	// that fraction of normal records. Absolute slack covers quick-scale
	// variance (one alarm moves the rate by ~0.3 points).
	baseline := math.Max(r.CleanFA, p.FalseAlarmRate)
	if limit := 2*baseline + 0.02; r.FaultFA > limit {
		t.Errorf("fault-only false-alarm rate %.3f exceeds 2x clean baseline %.3f (+slack)",
			r.FaultFA, baseline)
	}
	// Detection of an overlapping black hole stays within 10 points of the
	// fault-free run (plus slack for quick-scale variance).
	if gap := r.CleanDetect - r.FaultDetect; gap > 0.10+0.05 {
		t.Errorf("detection dropped %.1f points under faults (clean %.3f, faults %.3f)",
			100*gap, r.CleanDetect, r.FaultDetect)
	}
	// The detector must still detect something at the operating threshold;
	// a degenerate all-quiet detector would pass the gap checks trivially.
	if r.CleanDetect <= 0 {
		t.Error("clean black-hole detection rate is zero at the operating threshold")
	}
}
