package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"crossfeature/internal/attack"
	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/features"
	"crossfeature/internal/ml"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
	"crossfeature/internal/netsim"
	"crossfeature/internal/obs"
)

// AttackMix selects the intrusion composition of a test trace.
type AttackMix int

const (
	// NoAttack produces a clean trace.
	NoAttack AttackMix = iota
	// Mixed runs black hole from BlackHoleStart and selective dropping
	// from DropStart (the paper's main evaluation traces).
	Mixed
	// BlackHoleOnly runs three single-type sessions (Figure 5a).
	BlackHoleOnly
	// DropOnly runs three single-type sessions (Figure 5b).
	DropOnly
	// StormOnly runs three update-storm sessions (an extension exercising
	// the paper's third described routing attack, section 2.3).
	StormOnly
)

// String implements fmt.Stringer.
func (m AttackMix) String() string {
	switch m {
	case NoAttack:
		return "normal"
	case Mixed:
		return "mixed"
	case BlackHoleOnly:
		return "blackhole"
	case DropOnly:
		return "dropping"
	case StormOnly:
		return "update-storm"
	default:
		return fmt.Sprintf("AttackMix(%d)", int(m))
	}
}

// Trace is one simulated audit trail of the monitored node with its
// ground-truth intrusion schedule.
type Trace struct {
	Vectors []features.Vector
	Plan    attack.Plan
	Mix     AttackMix
	Faults  FaultMix
	Seed    int64
}

// Labels derives ground-truth intrusion labels per vector. Because the
// implemented intrusions do lasting damage (the paper observes that the
// max-sequence-number black hole is never rectified and that dropping
// leaves confusion too), every record from the first onset onward counts
// as intrusion in attack traces.
func (t Trace) Labels() []bool {
	labels := make([]bool, len(t.Vectors))
	onset := t.Plan.FirstOnset()
	if onset < 0 {
		return labels
	}
	for i, v := range t.Vectors {
		labels[i] = v.Time >= onset
	}
	return labels
}

// SessionLabels labels a record intrusive while any attack session is
// active or within tail seconds after one — the right ground truth for
// attacks without persistent damage (e.g. the update storm). The sessions
// are precomputed into widened [Start, End+tail) intervals checked once
// per record; on the 5 s sampling grid with the presets' >=5 s sessions
// this labels exactly the records the old per-record probe loop
// (ActiveAt at every 5 s offset up to tail) did, at a fraction of the
// cost.
func (t Trace) SessionLabels(tail float64) []bool {
	type interval struct{ lo, hi float64 }
	var ivs []interval
	for _, spec := range t.Plan.Specs {
		for _, s := range spec.Sessions {
			ivs = append(ivs, interval{lo: s.Start, hi: s.End() + tail})
		}
	}
	labels := make([]bool, len(t.Vectors))
	for i, v := range t.Vectors {
		for _, iv := range ivs {
			if v.Time >= iv.lo && v.Time < iv.hi {
				labels[i] = true
				break
			}
		}
	}
	return labels
}

// Lab runs and memoises scenario traces, datasets and trained analyzers
// so multiple figures sharing a scenario pay for each simulation and each
// training run once. All entry points are safe for concurrent use: each
// distinct trace/dataset/analyzer is computed exactly once (single
// flight) no matter how many goroutines request it, with concurrent
// duplicate callers blocking on the first caller's result. Simulations
// run under a semaphore sized Preset.Workers (default GOMAXPROCS), so a
// wide Prefetch cannot oversubscribe the machine.
type Lab struct {
	Preset Preset

	mu        sync.Mutex
	traces    map[traceKey]*call[*Trace]
	data      map[Scenario]*call[*ScenarioData]
	analyzers map[analyzerKey]*call[*core.Analyzer]

	simSem      chan struct{}
	simulations atomic.Int64

	// Observability wiring, set once by Instrument before any experiment
	// runs (nil fields disable instrumentation at zero cost).
	obsReg     *obs.Registry
	obsSpan    *obs.Span
	simCount   *obs.Counter
	trainCount *obs.Counter
}

type traceKey struct {
	sc   Scenario
	mix  AttackMix
	fmix FaultMix
	seed int64
}

type analyzerKey struct {
	sc      Scenario
	learner string
}

// call is a single-flight slot: the first goroutine to claim a key
// computes the value and closes done; everyone else blocks on done and
// reads the shared result.
type call[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// NewLab creates a lab for a preset.
func NewLab(p Preset) (*Lab, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Lab{
		Preset:    p,
		traces:    make(map[traceKey]*call[*Trace]),
		data:      make(map[Scenario]*call[*ScenarioData]),
		analyzers: make(map[analyzerKey]*call[*core.Analyzer]),
		simSem:    make(chan struct{}, p.workers()),
	}, nil
}

// Simulations reports how many traces the lab has actually simulated —
// the number of cache misses, which concurrency tests compare against
// the number of unique keys requested.
func (l *Lab) Simulations() int64 { return l.simulations.Load() }

// Instrument attaches an obs registry and a parent span to the lab: every
// simulation and training run (the cache misses — memoised hits cost
// nothing and record nothing) is counted and recorded as a child span of
// parent, and dataset/model sizes are published as gauges. Call before
// running experiments; the wiring is read concurrently afterwards.
func (l *Lab) Instrument(reg *obs.Registry, parent *obs.Span) {
	l.obsReg = reg
	l.obsSpan = parent
	l.simCount = reg.Counter("exp_simulations_total",
		"Trace simulations actually run (single-flight cache misses).")
	l.trainCount = reg.Counter("exp_trainings_total",
		"Cross-feature analyzer training runs (cache misses).")
}

// workers resolves the concurrency bound for trace simulation.
func (p Preset) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// config assembles the netsim configuration for one trace.
func (l *Lab) config(sc Scenario, mix AttackMix, fmix FaultMix, seed int64) netsim.Config {
	p := l.Preset
	cfg := netsim.DefaultConfig()
	cfg.Nodes = p.Nodes
	cfg.Connections = p.Connections
	cfg.Duration = p.Duration
	cfg.SampleInterval = p.Sample
	cfg.Seed = seed
	cfg.WorkloadSeed = p.WorkloadSeed
	cfg.Routing = sc.Routing
	cfg.Transport = sc.Transport
	cfg.Attacks = l.attackSpecs(mix)
	cfg.Faults = l.faultSpecs(fmix)
	return cfg
}

// attackSpecs builds the intrusion schedule for a mix.
func (l *Lab) attackSpecs(mix AttackMix) []attack.Spec {
	p := l.Preset
	period := 2 * p.SessionDuration // equal session duration and gap
	periodicSessions := func(start float64) []attack.Session {
		var out []attack.Session
		for t := start; t < p.Duration; t += period {
			d := p.SessionDuration
			if t+d > p.Duration {
				d = p.Duration - t
			}
			out = append(out, attack.Session{Start: t, Duration: d})
		}
		return out
	}
	switch mix {
	case Mixed:
		return []attack.Spec{
			{Kind: attack.BlackHole, Node: p.AttackerNode, Sessions: periodicSessions(p.BlackHoleStart)},
			{Kind: attack.SelectiveDrop, Node: p.AttackerNode, Target: p.DropTarget, Sessions: periodicSessions(p.DropStart)},
		}
	case BlackHoleOnly:
		return []attack.Spec{{
			Kind:     attack.BlackHole,
			Node:     p.AttackerNode,
			Sessions: attack.Sessions(p.SingleSessionDuration, p.SingleStarts...),
		}}
	case DropOnly:
		return []attack.Spec{{
			Kind:     attack.SelectiveDrop,
			Node:     p.AttackerNode,
			Target:   p.DropTarget,
			Sessions: attack.Sessions(p.SingleSessionDuration, p.SingleStarts...),
		}}
	case StormOnly:
		return []attack.Spec{{
			Kind:     attack.UpdateStorm,
			Node:     p.AttackerNode,
			Sessions: attack.Sessions(p.SingleSessionDuration, p.SingleStarts...),
		}}
	default:
		return nil
	}
}

// RunTrace simulates (or returns the memoised) fault-free trace for one
// scenario, mix and seed, extracting the monitored node's feature vectors.
func (l *Lab) RunTrace(sc Scenario, mix AttackMix, seed int64) (*Trace, error) {
	return l.RunFaultTrace(sc, mix, NoFaults, seed)
}

// RunFaultTrace simulates (or returns the memoised) trace for one scenario,
// attack mix, environmental-fault mix and seed. Concurrent callers with
// the same key share one simulation: the first claims the key and runs
// it, the rest block until it finishes and return the identical *Trace.
func (l *Lab) RunFaultTrace(sc Scenario, mix AttackMix, fmix FaultMix, seed int64) (*Trace, error) {
	key := traceKey{sc: sc, mix: mix, fmix: fmix, seed: seed}
	l.mu.Lock()
	if c, ok := l.traces[key]; ok {
		l.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[*Trace]{done: make(chan struct{})}
	l.traces[key] = c
	l.mu.Unlock()

	c.val, c.err = l.simulate(sc, mix, fmix, seed)
	close(c.done)
	return c.val, c.err
}

// simulate runs one netsim trace under the lab's worker semaphore.
func (l *Lab) simulate(sc Scenario, mix AttackMix, fmix FaultMix, seed int64) (*Trace, error) {
	l.simSem <- struct{}{}
	defer func() { <-l.simSem }()
	if l.obsSpan != nil {
		sp := l.obsSpan.Start(fmt.Sprintf("simulate:%s/%s/seed=%d", sc.Name(), mix, seed))
		defer sp.End()
	}
	if l.simCount != nil {
		l.simCount.Inc()
	}

	cfg := l.config(sc, mix, fmix, seed)
	net, err := netsim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s %s/%s trace: %w", sc.Name(), mix, fmix, err)
	}
	if err := net.Run(); err != nil {
		return nil, fmt.Errorf("experiments: run %s %s/%s trace: %w", sc.Name(), mix, fmix, err)
	}
	l.simulations.Add(1)
	return &Trace{
		Vectors: features.FromSnapshots(net.Snapshots(0)),
		Plan:    net.Plan(),
		Mix:     mix,
		Faults:  fmix,
		Seed:    seed,
	}, nil
}

// TraceRequest names one trace an experiment will need, the unit of the
// Prefetch planning API.
type TraceRequest struct {
	Scenario Scenario
	Mix      AttackMix
	Faults   FaultMix
	Seed     int64
}

// Prefetch simulates every requested trace on the lab's bounded worker
// pool and blocks until all are cached. Duplicate requests, requests
// already in flight from other figures and already-cached traces all
// coalesce onto the same single-flight slot, so a plan may be declared
// generously. The first error (in request order) is returned.
func (l *Lab) Prefetch(reqs []TraceRequest) error {
	if len(reqs) == 0 {
		return nil
	}
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r TraceRequest) {
			defer wg.Done()
			_, errs[i] = l.RunFaultTrace(r.Scenario, r.Mix, r.Faults, r.Seed)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DataRequests enumerates the traces Data(sc) needs, so callers can fold
// them into a larger Prefetch plan.
func (l *Lab) DataRequests(sc Scenario) []TraceRequest {
	p := l.Preset
	reqs := []TraceRequest{{Scenario: sc, Mix: NoAttack, Seed: p.TrainSeed}}
	for _, seed := range p.NormalSeeds {
		reqs = append(reqs, TraceRequest{Scenario: sc, Mix: NoAttack, Seed: seed})
	}
	for _, seed := range p.AttackSeeds {
		reqs = append(reqs, TraceRequest{Scenario: sc, Mix: Mixed, Seed: seed})
	}
	return reqs
}

// ScenarioData bundles everything needed to train and evaluate detectors
// on one scenario: the fitted discretiser, the normal training dataset and
// the labelled test traces.
type ScenarioData struct {
	Scenario Scenario
	Disc     *features.Discretizer
	TrainDS  *ml.Dataset
	// TrainEvents are the discretised training rows (threshold calibration).
	TrainEvents [][]int
	Normal      []*Trace
	Mixed       []*Trace
}

// Data builds (or returns the memoised) scenario data for the mixed-
// intrusion evaluation. Like RunFaultTrace it is single flight per
// scenario, and the scenario's whole trace set is prefetched onto the
// worker pool rather than simulated one by one.
func (l *Lab) Data(sc Scenario) (*ScenarioData, error) {
	l.mu.Lock()
	if c, ok := l.data[sc]; ok {
		l.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[*ScenarioData]{done: make(chan struct{})}
	l.data[sc] = c
	l.mu.Unlock()

	c.val, c.err = l.buildData(sc)
	close(c.done)
	return c.val, c.err
}

func (l *Lab) buildData(sc Scenario) (*ScenarioData, error) {
	p := l.Preset
	if err := l.Prefetch(l.DataRequests(sc)); err != nil {
		return nil, err
	}
	train, err := l.RunTrace(sc, NoAttack, p.TrainSeed)
	if err != nil {
		return nil, err
	}
	rows := features.Matrix(trimWarmup(train.Vectors, p.Warmup))
	disc, err := features.Fit(rows, features.Names(), features.FitOptions{
		Buckets:    p.Buckets,
		SampleSize: p.PrefilterSize,
		Seed:       p.TrainSeed,
	})
	if err != nil {
		return nil, err
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		return nil, err
	}
	if l.obsReg != nil {
		l.obsReg.Gauge("exp_dataset_rows",
			"Training dataset rows per scenario.",
			obs.L("scenario", sc.Name())).Set(float64(ds.Len()))
		l.obsReg.Gauge("exp_dataset_features",
			"Feature count of the training dataset.",
			obs.L("scenario", sc.Name())).Set(float64(len(ds.Attrs)))
	}
	d := &ScenarioData{Scenario: sc, Disc: disc, TrainDS: ds, TrainEvents: ds.X}
	for _, seed := range p.NormalSeeds {
		t, err := l.RunTrace(sc, NoAttack, seed)
		if err != nil {
			return nil, err
		}
		d.Normal = append(d.Normal, t)
	}
	for _, seed := range p.AttackSeeds {
		t, err := l.RunTrace(sc, Mixed, seed)
		if err != nil {
			return nil, err
		}
		d.Mixed = append(d.Mixed, t)
	}
	return d, nil
}

// Learners returns the paper's three base learners. C4.5 uses a temporal
// holdout for reduced-error pruning and probability recalibration: audit
// records are strongly autocorrelated (adjacent 5 s snapshots share most
// of their windows), so in-sample purity wildly overstates how well a
// sub-model transfers to unseen traces; validating structure on a
// held-out trailing block prunes the spurious correlations away.
func Learners() []ml.Learner {
	c := c45.NewLearner()
	c.HoldoutFrac = 1.0 / 3.0
	return []ml.Learner{c, ripper.NewLearner(), nbayes.NewLearner()}
}

// LearnerByName resolves "C4.5", "RIPPER" or "NBC".
func LearnerByName(name string) (ml.Learner, error) {
	for _, l := range Learners() {
		if l.Name() == name {
			return l, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown learner %q (want C4.5, RIPPER or NBC)", name)
}

// Train fits (or returns the memoised) cross-feature analyzer for a
// scenario with one learner. Training is deterministic — every learner
// either is derandomised or seeds its own rng per fit — so sharing one
// analyzer between the figures that request the same (scenario, learner)
// pair produces byte-identical reports while skipping repeated 140-model
// training runs. Keyed by learner name: callers must not mutate learner
// hyper-parameters between calls.
func (l *Lab) Train(sc Scenario, learner ml.Learner) (*core.Analyzer, *ScenarioData, error) {
	d, err := l.Data(sc)
	if err != nil {
		return nil, nil, err
	}
	key := analyzerKey{sc: sc, learner: learner.Name()}
	l.mu.Lock()
	if c, ok := l.analyzers[key]; ok {
		l.mu.Unlock()
		<-c.done
		return c.val, d, c.err
	}
	c := &call[*core.Analyzer]{done: make(chan struct{})}
	l.analyzers[key] = c
	l.mu.Unlock()

	var sp *obs.Span
	if l.obsSpan != nil {
		sp = l.obsSpan.Start("train:" + sc.Name() + "/" + learner.Name())
	}
	c.val, c.err = core.Train(d.TrainDS, learner, core.TrainOptions{Parallelism: l.Preset.Parallelism})
	if sp != nil {
		sp.End()
	}
	if l.trainCount != nil {
		l.trainCount.Inc()
	}
	if l.obsReg != nil && c.err == nil {
		l.obsReg.Gauge("exp_submodels",
			"Sub-models retained per trained analyzer.",
			obs.L("scenario", sc.Name()), obs.L("learner", learner.Name())).Set(float64(c.val.NumModels()))
	}
	close(c.done)
	return c.val, d, c.err
}

// ScoreTrace discretises and scores every vector of a trace. The batch
// goes through the analyzer's columnar ScoreAll — discretised rows always
// satisfy the analyzer's schema, so the whole trace runs through the
// compiled kernels with per-model buffers reused across rows.
func ScoreTrace(a *core.Analyzer, disc *features.Discretizer, t *Trace, s core.Scorer) ([]float64, error) {
	xs := make([][]int, len(t.Vectors))
	for i, v := range t.Vectors {
		x, err := disc.Transform(v.Values)
		if err != nil {
			return nil, err
		}
		xs[i] = x
	}
	return a.ScoreAll(ml.DatasetOf(a.Attrs, xs), s), nil
}

// LabelledScores scores a set of traces and pairs each score with its
// ground-truth label, the input the recall-precision machinery consumes.
// Records inside the warmup window (long statistics windows still filling)
// are excluded, symmetrically with training. Traces are scored
// concurrently (the analyzer and discretiser are read-only during
// scoring) and the results concatenated in trace order, so the output is
// identical to the old serial loop.
func LabelledScores(a *core.Analyzer, disc *features.Discretizer, traces []*Trace, s core.Scorer, warmup float64) ([]eval.Scored, error) {
	parts := make([][]eval.Scored, len(traces))
	errs := make([]error, len(traces))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, t := range traces {
		wg.Add(1)
		go func(i int, t *Trace) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			scores, err := ScoreTrace(a, disc, t, s)
			if err != nil {
				errs[i] = err
				return
			}
			labels := t.Labels()
			part := make([]eval.Scored, 0, len(scores))
			for j, sc := range scores {
				if t.Vectors[j].Time < warmup {
					continue
				}
				part = append(part, eval.Scored{Score: sc, Intrusion: labels[j]})
			}
			parts[i] = part
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []eval.Scored
	for _, part := range parts {
		out = append(out, part...)
	}
	return out, nil
}

// trimWarmup drops vectors recorded before the warmup horizon.
func trimWarmup(vs []features.Vector, warmup float64) []features.Vector {
	if warmup <= 0 {
		return vs
	}
	out := vs[:0:0]
	for _, v := range vs {
		if v.Time >= warmup {
			out = append(out, v)
		}
	}
	return out
}
