package experiments

import (
	"fmt"
	"sync"

	"crossfeature/internal/attack"
	"crossfeature/internal/core"
	"crossfeature/internal/eval"
	"crossfeature/internal/features"
	"crossfeature/internal/ml"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/ml/ripper"
	"crossfeature/internal/netsim"
)

// AttackMix selects the intrusion composition of a test trace.
type AttackMix int

const (
	// NoAttack produces a clean trace.
	NoAttack AttackMix = iota
	// Mixed runs black hole from BlackHoleStart and selective dropping
	// from DropStart (the paper's main evaluation traces).
	Mixed
	// BlackHoleOnly runs three single-type sessions (Figure 5a).
	BlackHoleOnly
	// DropOnly runs three single-type sessions (Figure 5b).
	DropOnly
	// StormOnly runs three update-storm sessions (an extension exercising
	// the paper's third described routing attack, section 2.3).
	StormOnly
)

// String implements fmt.Stringer.
func (m AttackMix) String() string {
	switch m {
	case NoAttack:
		return "normal"
	case Mixed:
		return "mixed"
	case BlackHoleOnly:
		return "blackhole"
	case DropOnly:
		return "dropping"
	case StormOnly:
		return "update-storm"
	default:
		return fmt.Sprintf("AttackMix(%d)", int(m))
	}
}

// Trace is one simulated audit trail of the monitored node with its
// ground-truth intrusion schedule.
type Trace struct {
	Vectors []features.Vector
	Plan    attack.Plan
	Mix     AttackMix
	Faults  FaultMix
	Seed    int64
}

// Labels derives ground-truth intrusion labels per vector. Because the
// implemented intrusions do lasting damage (the paper observes that the
// max-sequence-number black hole is never rectified and that dropping
// leaves confusion too), every record from the first onset onward counts
// as intrusion in attack traces.
func (t Trace) Labels() []bool {
	labels := make([]bool, len(t.Vectors))
	onset := t.Plan.FirstOnset()
	if onset < 0 {
		return labels
	}
	for i, v := range t.Vectors {
		labels[i] = v.Time >= onset
	}
	return labels
}

// SessionLabels labels a record intrusive while any attack session is
// active or within tail seconds after one — the right ground truth for
// attacks without persistent damage (e.g. the update storm).
func (t Trace) SessionLabels(tail float64) []bool {
	labels := make([]bool, len(t.Vectors))
	for i, v := range t.Vectors {
		if t.Plan.ActiveAt(v.Time) {
			labels[i] = true
			continue
		}
		for back := 0.0; back <= tail; back += 5 {
			if t.Plan.ActiveAt(v.Time - back) {
				labels[i] = true
				break
			}
		}
	}
	return labels
}

// Lab runs and memoises scenario traces and datasets so multiple figures
// sharing a scenario pay for each simulation once.
type Lab struct {
	Preset Preset

	mu     sync.Mutex
	traces map[traceKey]*Trace
	data   map[Scenario]*ScenarioData
}

type traceKey struct {
	sc   Scenario
	mix  AttackMix
	fmix FaultMix
	seed int64
}

// NewLab creates a lab for a preset.
func NewLab(p Preset) (*Lab, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Lab{
		Preset: p,
		traces: make(map[traceKey]*Trace),
		data:   make(map[Scenario]*ScenarioData),
	}, nil
}

// config assembles the netsim configuration for one trace.
func (l *Lab) config(sc Scenario, mix AttackMix, fmix FaultMix, seed int64) netsim.Config {
	p := l.Preset
	cfg := netsim.DefaultConfig()
	cfg.Nodes = p.Nodes
	cfg.Connections = p.Connections
	cfg.Duration = p.Duration
	cfg.SampleInterval = p.Sample
	cfg.Seed = seed
	cfg.WorkloadSeed = p.WorkloadSeed
	cfg.Routing = sc.Routing
	cfg.Transport = sc.Transport
	cfg.Attacks = l.attackSpecs(mix)
	cfg.Faults = l.faultSpecs(fmix)
	return cfg
}

// attackSpecs builds the intrusion schedule for a mix.
func (l *Lab) attackSpecs(mix AttackMix) []attack.Spec {
	p := l.Preset
	period := 2 * p.SessionDuration // equal session duration and gap
	periodicSessions := func(start float64) []attack.Session {
		var out []attack.Session
		for t := start; t < p.Duration; t += period {
			d := p.SessionDuration
			if t+d > p.Duration {
				d = p.Duration - t
			}
			out = append(out, attack.Session{Start: t, Duration: d})
		}
		return out
	}
	switch mix {
	case Mixed:
		return []attack.Spec{
			{Kind: attack.BlackHole, Node: p.AttackerNode, Sessions: periodicSessions(p.BlackHoleStart)},
			{Kind: attack.SelectiveDrop, Node: p.AttackerNode, Target: p.DropTarget, Sessions: periodicSessions(p.DropStart)},
		}
	case BlackHoleOnly:
		return []attack.Spec{{
			Kind:     attack.BlackHole,
			Node:     p.AttackerNode,
			Sessions: attack.Sessions(p.SingleSessionDuration, p.SingleStarts...),
		}}
	case DropOnly:
		return []attack.Spec{{
			Kind:     attack.SelectiveDrop,
			Node:     p.AttackerNode,
			Target:   p.DropTarget,
			Sessions: attack.Sessions(p.SingleSessionDuration, p.SingleStarts...),
		}}
	case StormOnly:
		return []attack.Spec{{
			Kind:     attack.UpdateStorm,
			Node:     p.AttackerNode,
			Sessions: attack.Sessions(p.SingleSessionDuration, p.SingleStarts...),
		}}
	default:
		return nil
	}
}

// RunTrace simulates (or returns the memoised) fault-free trace for one
// scenario, mix and seed, extracting the monitored node's feature vectors.
func (l *Lab) RunTrace(sc Scenario, mix AttackMix, seed int64) (*Trace, error) {
	return l.RunFaultTrace(sc, mix, NoFaults, seed)
}

// RunFaultTrace simulates (or returns the memoised) trace for one scenario,
// attack mix, environmental-fault mix and seed.
func (l *Lab) RunFaultTrace(sc Scenario, mix AttackMix, fmix FaultMix, seed int64) (*Trace, error) {
	key := traceKey{sc: sc, mix: mix, fmix: fmix, seed: seed}
	l.mu.Lock()
	if t, ok := l.traces[key]; ok {
		l.mu.Unlock()
		return t, nil
	}
	l.mu.Unlock()

	cfg := l.config(sc, mix, fmix, seed)
	net, err := netsim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s %s/%s trace: %w", sc.Name(), mix, fmix, err)
	}
	if err := net.Run(); err != nil {
		return nil, fmt.Errorf("experiments: run %s %s/%s trace: %w", sc.Name(), mix, fmix, err)
	}
	t := &Trace{
		Vectors: features.FromSnapshots(net.Snapshots(0)),
		Plan:    net.Plan(),
		Mix:     mix,
		Faults:  fmix,
		Seed:    seed,
	}
	l.mu.Lock()
	l.traces[key] = t
	l.mu.Unlock()
	return t, nil
}

// ScenarioData bundles everything needed to train and evaluate detectors
// on one scenario: the fitted discretiser, the normal training dataset and
// the labelled test traces.
type ScenarioData struct {
	Scenario Scenario
	Disc     *features.Discretizer
	TrainDS  *ml.Dataset
	// TrainEvents are the discretised training rows (threshold calibration).
	TrainEvents [][]int
	Normal      []*Trace
	Mixed       []*Trace
}

// Data builds (or returns the memoised) scenario data for the mixed-
// intrusion evaluation.
func (l *Lab) Data(sc Scenario) (*ScenarioData, error) {
	l.mu.Lock()
	if d, ok := l.data[sc]; ok {
		l.mu.Unlock()
		return d, nil
	}
	l.mu.Unlock()

	p := l.Preset
	train, err := l.RunTrace(sc, NoAttack, p.TrainSeed)
	if err != nil {
		return nil, err
	}
	rows := features.Matrix(trimWarmup(train.Vectors, p.Warmup))
	disc, err := features.Fit(rows, features.Names(), features.FitOptions{
		Buckets:    p.Buckets,
		SampleSize: p.PrefilterSize,
		Seed:       p.TrainSeed,
	})
	if err != nil {
		return nil, err
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		return nil, err
	}
	d := &ScenarioData{Scenario: sc, Disc: disc, TrainDS: ds, TrainEvents: ds.X}
	for _, seed := range p.NormalSeeds {
		t, err := l.RunTrace(sc, NoAttack, seed)
		if err != nil {
			return nil, err
		}
		d.Normal = append(d.Normal, t)
	}
	for _, seed := range p.AttackSeeds {
		t, err := l.RunTrace(sc, Mixed, seed)
		if err != nil {
			return nil, err
		}
		d.Mixed = append(d.Mixed, t)
	}
	l.mu.Lock()
	l.data[sc] = d
	l.mu.Unlock()
	return d, nil
}

// Learners returns the paper's three base learners. C4.5 uses a temporal
// holdout for reduced-error pruning and probability recalibration: audit
// records are strongly autocorrelated (adjacent 5 s snapshots share most
// of their windows), so in-sample purity wildly overstates how well a
// sub-model transfers to unseen traces; validating structure on a
// held-out trailing block prunes the spurious correlations away.
func Learners() []ml.Learner {
	c := c45.NewLearner()
	c.HoldoutFrac = 1.0 / 3.0
	return []ml.Learner{c, ripper.NewLearner(), nbayes.NewLearner()}
}

// LearnerByName resolves "C4.5", "RIPPER" or "NBC".
func LearnerByName(name string) (ml.Learner, error) {
	for _, l := range Learners() {
		if l.Name() == name {
			return l, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown learner %q (want C4.5, RIPPER or NBC)", name)
}

// Train fits the cross-feature analyzer for a scenario with one learner.
func (l *Lab) Train(sc Scenario, learner ml.Learner) (*core.Analyzer, *ScenarioData, error) {
	d, err := l.Data(sc)
	if err != nil {
		return nil, nil, err
	}
	a, err := core.Train(d.TrainDS, learner, core.TrainOptions{Parallelism: l.Preset.Parallelism})
	if err != nil {
		return nil, nil, err
	}
	return a, d, nil
}

// ScoreTrace discretises and scores every vector of a trace.
func ScoreTrace(a *core.Analyzer, disc *features.Discretizer, t *Trace, s core.Scorer) ([]float64, error) {
	out := make([]float64, len(t.Vectors))
	for i, v := range t.Vectors {
		x, err := disc.Transform(v.Values)
		if err != nil {
			return nil, err
		}
		out[i] = a.Score(x, s)
	}
	return out, nil
}

// LabelledScores scores a set of traces and pairs each score with its
// ground-truth label, the input the recall-precision machinery consumes.
// Records inside the warmup window (long statistics windows still filling)
// are excluded, symmetrically with training.
func LabelledScores(a *core.Analyzer, disc *features.Discretizer, traces []*Trace, s core.Scorer, warmup float64) ([]eval.Scored, error) {
	var out []eval.Scored
	for _, t := range traces {
		scores, err := ScoreTrace(a, disc, t, s)
		if err != nil {
			return nil, err
		}
		labels := t.Labels()
		for i, sc := range scores {
			if t.Vectors[i].Time < warmup {
				continue
			}
			out = append(out, eval.Scored{Score: sc, Intrusion: labels[i]})
		}
	}
	return out, nil
}

// trimWarmup drops vectors recorded before the warmup horizon.
func trimWarmup(vs []features.Vector, warmup float64) []features.Vector {
	if warmup <= 0 {
		return vs
	}
	out := vs[:0:0]
	for _, v := range vs {
		if v.Time >= warmup {
			out = append(out, v)
		}
	}
	return out
}
