package experiments

import (
	"testing"

	"crossfeature/internal/core"
)

// TestShapeAllScenarios checks the paper's qualitative claims at quick
// scale: detection works in all four scenarios, and the learner ordering
// holds.
func TestShapeAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	p := QuickPreset()
	p.NormalSeeds = p.NormalSeeds[:1]
	p.AttackSeeds = p.AttackSeeds[:1]
	lab, _ := NewLab(p)
	for _, sc := range FourScenarios() {
		for _, learner := range Learners() {
			r, err := lab.runCurve(sc, learner, core.Probability)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-9s %-7s AUC=%.3f optimal=(%.2f,%.2f)", sc.Name(), learner.Name(), r.AUC, r.Optimal.Recall, r.Optimal.Precision)
		}
	}
}
