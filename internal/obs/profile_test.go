package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestProfileServer boots the debug listener on an ephemeral port and
// scrapes every surface: /metrics must be well-formed exposition text,
// /tracez must render the span tree, and /debug/pprof/heap must return a
// non-empty profile.
func TestProfileServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke_total", "smoke").Add(7)
	tr := NewTracer()
	s := tr.Start("stage")
	s.End()

	p, err := StartProfileServer("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	base := "http://" + p.Addr().String()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "smoke_total 7") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if !strings.HasPrefix(body, "# HELP") {
		t.Errorf("/metrics body not exposition format: %q", body)
	}
	if ctype != PrometheusContentType {
		t.Errorf("/metrics content type = %q", ctype)
	}

	code, body, _ = get("/tracez")
	if code != http.StatusOK || !strings.Contains(body, "stage") {
		t.Errorf("/tracez = %d %q", code, body)
	}

	code, body, _ = get("/tracez?format=chrome")
	if code != http.StatusOK || !strings.Contains(body, `"ph":"X"`) {
		t.Errorf("/tracez?format=chrome = %d %q", code, body)
	}

	code, body, _ = get("/debug/pprof/heap?debug=1")
	if code != http.StatusOK || len(body) == 0 || !strings.Contains(body, "heap") {
		t.Errorf("/debug/pprof/heap = %d (%d bytes)", code, len(body))
	}

	code, _, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ index = %d", code)
	}
}

func TestTracezNilTracer(t *testing.T) {
	p, err := StartProfileServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := http.Get("http://" + p.Addr().String() + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "no tracer") {
		t.Errorf("nil tracer body = %q", body)
	}
}
