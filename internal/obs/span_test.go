package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock drives a tracer deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) {
	c.t = c.t.Add(d)
}

func newFakeTracer() (*Tracer, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	tr := &Tracer{now: c.now}
	tr.epoch = c.t
	return tr, c
}

func TestSpanNesting(t *testing.T) {
	tr, clk := newFakeTracer()
	root := tr.Start("run")
	clk.advance(10 * time.Millisecond)
	child := root.Start("train")
	clk.advance(30 * time.Millisecond)
	child.End()
	clk.advance(5 * time.Millisecond)
	root.End()

	if got := root.Wall(); got != 45*time.Millisecond {
		t.Errorf("root wall = %v, want 45ms", got)
	}
	if got := child.Wall(); got != 30*time.Millisecond {
		t.Errorf("child wall = %v, want 30ms", got)
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "train" {
		t.Errorf("children = %v", kids)
	}
	// Double End is a no-op.
	clk.advance(time.Hour)
	root.End()
	if got := root.Wall(); got != 45*time.Millisecond {
		t.Errorf("End not idempotent: wall = %v", got)
	}
	tt := child.Timing()
	if tt.Name != "train" || tt.WallSeconds != 0.03 {
		t.Errorf("timing = %+v", tt)
	}
}

func TestWriteTree(t *testing.T) {
	tr, clk := newFakeTracer()
	root := tr.Start("run")
	c := root.Start("simulate")
	clk.advance(20 * time.Millisecond)
	c.End()
	root.End()
	var sb strings.Builder
	if err := tr.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "run") || !strings.Contains(out, "simulate") {
		t.Errorf("tree output missing spans:\n%s", out)
	}
	if !strings.Contains(out, "20.000ms") {
		t.Errorf("tree output missing child duration:\n%s", out)
	}
}

func TestWriteTreeEmpty(t *testing.T) {
	tr := NewTracer()
	var sb strings.Builder
	tr.WriteTree(&sb)
	if !strings.Contains(sb.String(), "no spans") {
		t.Errorf("empty tree output = %q", sb.String())
	}
}

func TestChromeTrace(t *testing.T) {
	tr, clk := newFakeTracer()
	a := tr.Start("alpha")
	clk.advance(3 * time.Millisecond)
	b := a.Start("beta")
	clk.advance(2 * time.Millisecond)
	b.End()
	a.End()

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0]["name"] != "alpha" || events[0]["ph"] != "X" {
		t.Errorf("first event = %v", events[0])
	}
	if events[1]["name"] != "beta" || events[1]["ts"].(float64) != 3000 {
		t.Errorf("second event = %v (want ts 3000us)", events[1])
	}
	if events[0]["dur"].(float64) != 5000 {
		t.Errorf("alpha dur = %v, want 5000us", events[0]["dur"])
	}
}

// TestSpanConcurrentChildren exercises concurrent child creation — the
// pattern the experiment engine uses (one child span per experiment on
// worker goroutines).
func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("run")
	done := make(chan struct{})
	const n = 32
	for i := 0; i < n; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			s := root.Start("child")
			s.End()
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	root.End()
	if got := len(root.Children()); got != n {
		t.Errorf("children = %d, want %d", got, n)
	}
}
