package obs

import "testing"

// TestHotPathZeroAllocs pins the acceptance criterion that metric
// increments allocate nothing: a counter inc, gauge set/add and histogram
// observe must all run at 0 allocs/op.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "a")
	g := r.Gauge("alloc_gauge", "a")
	h := r.Histogram("alloc_hist", "a", LinearBuckets(0, 0.1, 20))
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter-inc", func() { c.Inc() }},
		{"counter-add", func() { c.Add(3) }},
		{"gauge-set", func() { g.Set(1.5) }},
		{"gauge-add", func() { g.Add(0.5) }},
		{"histogram-observe", func() { h.Observe(1.1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", "b", ExpBuckets(0.001, 2, 14))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 25)
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_par_total", "b")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
