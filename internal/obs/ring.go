package obs

// Lock-free sharded rings for the flight recorder. A completed request
// trace is one pointer store: the writer claims a slot with an atomic add
// on its shard's index and publishes the entry with an atomic pointer
// store — no locks, no allocation beyond the entry itself, and writers on
// different shards never touch the same cache line. Readers (the /flightz
// dump) walk every slot with atomic loads; a torn view across slots is
// fine, because each slot is individually consistent.
//
// Sharding is keyed by the entry's own id bits rather than a per-P hint:
// the Go runtime does not expose procPin to us, and id bits spread
// uniformly by construction (they come out of a splitmix64 mixer), which
// is all the contention relief a fixed-size ring needs.

import (
	"sync/atomic"
)

// ringShards is the shard count (power of two). Eight shards keep the
// claim-index contention negligible at any realistic request rate while
// costing only a few hundred idle slots of memory.
const ringShards = 8

// ring is a sharded fixed-capacity overwrite ring of *T.
type ring[T any] struct {
	shards [ringShards]ringShard[T]
	// seq breaks ties for entries recorded in the same nanosecond and
	// gives the dump a stable merge order.
	seq atomic.Uint64
}

type ringShard[T any] struct {
	idx   atomic.Uint64
	slots []slot[T]
	// pad keeps neighbouring shards' claim indexes off one cache line.
	_ [48]byte
}

type slot[T any] struct {
	p atomic.Pointer[T]
	// seq orders entries across shards at dump time.
	seq atomic.Uint64
}

// newRing builds a ring holding ~capacity entries split across shards.
func newRing[T any](capacity int) *ring[T] {
	if capacity < ringShards {
		capacity = ringShards
	}
	per := (capacity + ringShards - 1) / ringShards
	r := &ring[T]{}
	for i := range r.shards {
		r.shards[i].slots = make([]slot[T], per)
	}
	return r
}

// put publishes v, overwriting the oldest entry on the shard chosen by
// key. Safe from any goroutine.
func (r *ring[T]) put(key uint64, v *T) {
	sh := &r.shards[key&(ringShards-1)]
	i := sh.idx.Add(1) - 1
	s := &sh.slots[i%uint64(len(sh.slots))]
	s.seq.Store(r.seq.Add(1))
	s.p.Store(v)
}

// snapshot returns all live entries ordered oldest-first by publish
// sequence.
func (r *ring[T]) snapshot() []*T {
	type seqEntry struct {
		seq uint64
		v   *T
	}
	var entries []seqEntry
	for i := range r.shards {
		sh := &r.shards[i]
		for j := range sh.slots {
			// Load the sequence before the pointer: if a writer lands
			// between the two loads the entry is simply attributed a
			// slightly stale order, never lost or duplicated.
			seq := sh.slots[j].seq.Load()
			if v := sh.slots[j].p.Load(); v != nil {
				entries = append(entries, seqEntry{seq: seq, v: v})
			}
		}
	}
	// Insertion sort: the ring is small (hundreds of entries) and mostly
	// ordered per shard already.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].seq > entries[j].seq; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
	out := make([]*T, len(entries))
	for i, e := range entries {
		out[i] = e.v
	}
	return out
}

// len reports the number of live entries.
func (r *ring[T]) len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		for j := range sh.slots {
			if sh.slots[j].p.Load() != nil {
				n++
			}
		}
	}
	return n
}
