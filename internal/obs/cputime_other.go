//go:build !linux && !darwin

package obs

import "time"

// processCPU is unavailable on this platform; spans report zero CPU time.
func processCPU() time.Duration { return 0 }
