//go:build linux || darwin

package obs

import (
	"syscall"
	"time"
)

// processCPU reads the process's cumulative user+system CPU time.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
