// Package obs is the repo's unified observability layer: a zero-dependency
// metrics registry (counters, gauges, fixed-bucket histograms) with a
// Prometheus text-format encoder, lightweight span tracing for pipeline
// stage timings, and an opt-in debug HTTP surface exposing /metrics,
// /tracez and net/http/pprof.
//
// Design rules:
//
//   - Hot-path operations (Counter.Inc/Add, Gauge.Set/Add,
//     Histogram.Observe) are single atomic operations: no locks, no
//     allocations, safe from any goroutine. The registry mutex is touched
//     only at registration and snapshot time.
//   - Metric values are dumb atomics decoupled from naming: a Counter can
//     live standalone (NewCounter) inside a subsystem, and the Registry
//     only binds names, help strings and label sets to instances. /statz
//     style JSON surfaces and /metrics read the same underlying values,
//     so there is exactly one source of truth per signal.
//   - Label sets are fixed at registration (constant labels). Keep
//     cardinality bounded: label values must come from small closed sets
//     (feature names, packet classes, verdicts) — never stream ids,
//     addresses or timestamps.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is unusable;
// construct with NewCounter or Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone counter (attach it to a Registry later
// via Registry.Counter semantics by constructing through the registry, or
// leave it unregistered for internal bookkeeping).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are defined by their
// upper bounds (sorted ascending); an implicit +Inf bucket catches the
// rest. Observe is lock-free: one atomic add on the bucket, one on the
// count-carrying sum.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	// exemplars holds the most recent traced sample per bucket (same
	// indexing as buckets). Slots stay nil until SetExemplar runs, so
	// untraced histograms pay only the slice of nil pointers.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to the trace that most recently
// landed in it — the bridge from a fat p99 bucket to a replayable
// per-hop timeline in the flight recorder. Bucket is the bucket's upper
// bound rendered as in the exposition format ("+Inf" for the overflow
// bucket), because JSON cannot carry infinities.
type Exemplar struct {
	Bucket      string  `json:"bucket"`
	Value       float64 `json:"value"`
	TraceID     string  `json:"trace_id"`
	AtUnixNanos int64   `json:"at_unix_nanos"`
}

// NewHistogram returns a standalone histogram over the given upper bounds.
// Bounds must be sorted strictly ascending and finite.
func NewHistogram(bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram bound %v is not finite", b))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %v", b))
		}
	}
	return &Histogram{
		bounds:    append([]float64(nil), bounds...),
		buckets:   make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// bucketIndex returns the bucket index for v (len(bounds) = +Inf).
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and match no bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.buckets[h.bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar records v and, when traceID is non-empty, remembers
// it as the bucket's most recent exemplar. One allocation per call — use
// it for per-request signals (latency), not per-record inner loops;
// per-record paths should Observe normally and SetExemplar once.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	h.SetExemplar(v, traceID)
}

// SetExemplar links traceID to the bucket v falls in without counting an
// observation (the observation happened separately). Empty trace ids and
// NaN values are ignored.
func (h *Histogram) SetExemplar(v float64, traceID string) {
	if traceID == "" || math.IsNaN(v) {
		return
	}
	h.exemplars[h.bucketIndex(v)].Store(&Exemplar{
		Value:       v,
		TraceID:     traceID,
		AtUnixNanos: time.Now().UnixNano(),
	})
}

// Exemplars returns the live per-bucket exemplars, bucket-labelled and
// ordered by bucket. Buckets that never saw a traced sample are omitted.
func (h *Histogram) Exemplars() []Exemplar {
	var out []Exemplar
	for i := range h.exemplars {
		e := h.exemplars[i].Load()
		if e == nil {
			continue
		}
		ex := *e
		if i < len(h.bounds) {
			ex.Bucket = formatFloat(h.bounds[i])
		} else {
			ex.Bucket = "+Inf"
		}
		out = append(out, ex)
	}
	return out
}

// HistogramPoint is a histogram's state at snapshot time. Counts are
// cumulative per Prometheus convention and Count is derived from the same
// bucket reads, so the +Inf bucket always equals Count.
type HistogramPoint struct {
	Bounds     []float64 `json:"bounds"` // upper bounds, excluding +Inf
	Cumulative []uint64  `json:"cumulative"`
	Sum        float64   `json:"sum"`
	Count      uint64    `json:"count"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation within the bucket holding the target rank — the
// same estimate Prometheus's histogram_quantile computes. Returns NaN on
// an empty histogram. The last finite bound caps the estimate: a rank
// landing in the +Inf bucket reports that bound, which understates true
// tail latency but never invents a number.
func (p HistogramPoint) Quantile(q float64) float64 {
	if p.Count == 0 || len(p.Bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(p.Count)
	for i, c := range p.Cumulative {
		if i >= len(p.Bounds) {
			break
		}
		if float64(c) >= rank {
			lo, loCount := 0.0, uint64(0)
			if i > 0 {
				lo, loCount = p.Bounds[i-1], p.Cumulative[i-1]
			}
			width := float64(c - loCount)
			if width == 0 {
				return p.Bounds[i]
			}
			return lo + (p.Bounds[i]-lo)*(rank-float64(loCount))/width
		}
	}
	return p.Bounds[len(p.Bounds)-1]
}

// SnapshotPoint exposes the histogram's current state; benchmarks and
// tests use it to derive quantiles without scraping the text encoding.
func (h *Histogram) SnapshotPoint() HistogramPoint { return h.snapshot() }

// snapshot reads a consistent-enough view: buckets first, count derived
// from them, so the encoder's invariants hold even mid-update.
func (h *Histogram) snapshot() HistogramPoint {
	p := HistogramPoint{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.buckets)),
	}
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		p.Cumulative[i] = running
	}
	p.Count = running
	p.Sum = math.Float64frombits(h.sumBits.Load())
	return p
}

// Sum returns the sum of observations so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// LinearBuckets returns count bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns count bounds start, start*factor, ...
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Label is one constant name=value pair attached to a metric instance.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Kind discriminates metric families.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota + 1
	// KindGauge is an instantaneous value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String implements fmt.Stringer (Prometheus TYPE names).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// instance is one labelled member of a family.
type instance struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups all instances sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64
	insts  []*instance
	byKey  map[string]*instance
}

// Registry binds names to metric instances and encodes snapshots. All
// methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey builds the map key for a label set (order-sensitive by design:
// register each family with a consistent label order).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
		sb.WriteByte(2)
	}
	return sb.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup finds or creates the family and instance slot for (name, labels),
// enforcing kind (and bound) consistency. mk builds the value on first
// registration.
func (r *Registry) lookup(name, help string, kind Kind, bounds []float64, labels []Label, mk func() *instance) *instance {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: append([]float64(nil), bounds...), byKey: make(map[string]*instance)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	if kind == KindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	key := labelKey(labels)
	if inst, ok := f.byKey[key]; ok {
		return inst
	}
	inst := mk()
	inst.labels = append([]Label(nil), labels...)
	f.byKey[key] = inst
	f.insts = append(f.insts, inst)
	return inst
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the registered counter for (name, labels), creating it
// on first use. Repeated calls with the same name and labels return the
// same instance.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, KindCounter, nil, labels, func() *instance {
		return &instance{c: NewCounter()}
	}).c
}

// Gauge returns the registered gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, KindGauge, nil, labels, func() *instance {
		return &instance{g: NewGauge()}
	}).g
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time — for values that already live elsewhere (queue depths, table
// sizes, uptime). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, KindGauge, nil, labels, func() *instance {
		return &instance{gf: fn}
	})
}

// Histogram returns the registered histogram for (name, labels) over the
// given upper bounds. Every instance of one family must share bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.lookup(name, help, KindHistogram, bounds, labels, func() *instance {
		return &instance{h: NewHistogram(bounds)}
	}).h
}

// MetricPoint is one instance's value at snapshot time.
type MetricPoint struct {
	Name      string          `json:"name"`
	Help      string          `json:"help,omitempty"`
	Kind      string          `json:"kind"`
	Labels    []Label         `json:"labels,omitempty"`
	Value     float64         `json:"value"`
	Histogram *HistogramPoint `json:"histogram,omitempty"`
}

// Snapshot captures every registered metric. Families come out sorted by
// name, instances in registration order, so output is deterministic.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	// Copy instance lists under the lock; values are read outside it
	// (atomics and gauge funcs need no registry lock).
	type famSnap struct {
		f     *family
		insts []*instance
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		snaps[i] = famSnap{f: f, insts: append([]*instance(nil), f.insts...)}
	}
	r.mu.Unlock()

	var out []MetricPoint
	for _, fs := range snaps {
		for _, inst := range fs.insts {
			p := MetricPoint{Name: fs.f.name, Help: fs.f.help, Kind: fs.f.kind.String(), Labels: inst.labels}
			switch {
			case inst.c != nil:
				p.Value = float64(inst.c.Value())
			case inst.g != nil:
				p.Value = inst.g.Value()
			case inst.gf != nil:
				p.Value = inst.gf()
			case inst.h != nil:
				hp := inst.h.snapshot()
				p.Histogram = &hp
			}
			out = append(out, p)
		}
	}
	return out
}

// WritePrometheus encodes the current state in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return EncodePrometheus(w, r.Snapshot())
}

// EncodePrometheus writes metric points (as produced by Snapshot, i.e.
// grouped by family) in Prometheus text format.
func EncodePrometheus(w io.Writer, points []MetricPoint) error {
	var sb strings.Builder
	last := ""
	for _, p := range points {
		if p.Name != last {
			if last != "" {
				sb.WriteByte('\n')
			}
			if p.Help != "" {
				sb.WriteString("# HELP ")
				sb.WriteString(p.Name)
				sb.WriteByte(' ')
				sb.WriteString(escapeHelp(p.Help))
				sb.WriteByte('\n')
			}
			sb.WriteString("# TYPE ")
			sb.WriteString(p.Name)
			sb.WriteByte(' ')
			sb.WriteString(p.Kind)
			sb.WriteByte('\n')
			last = p.Name
		}
		if p.Histogram == nil {
			sb.WriteString(p.Name)
			writeLabels(&sb, p.Labels, "")
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(p.Value))
			sb.WriteByte('\n')
			continue
		}
		h := p.Histogram
		for i, cum := range h.Cumulative {
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			sb.WriteString(p.Name)
			sb.WriteString("_bucket")
			writeLabels(&sb, p.Labels, le)
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(cum, 10))
			sb.WriteByte('\n')
		}
		sb.WriteString(p.Name)
		sb.WriteString("_sum")
		writeLabels(&sb, p.Labels, "")
		sb.WriteByte(' ')
		sb.WriteString(formatFloat(h.Sum))
		sb.WriteByte('\n')
		sb.WriteString(p.Name)
		sb.WriteString("_count")
		writeLabels(&sb, p.Labels, "")
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatUint(h.Count, 10))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeLabels renders {k="v",...}, appending le last when non-empty.
func writeLabels(sb *strings.Builder, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`le="`)
		sb.WriteString(le)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a sample value: integers without exponent, +Inf/-Inf
// per the exposition format.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
