package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records a forest of nested timing spans — the per-run "where did
// the time go" tree for pipeline stages (simulate, discretise, train,
// score, save/load). Spans are cheap (one clock read at each end) but not
// free; put them around stages, not around per-event hot paths.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	roots []*Span

	// now is injectable for deterministic tests; defaults to time.Now.
	now func() time.Time
}

// NewTracer returns an empty tracer whose epoch is its creation time.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.epoch = t.now()
	return t
}

// Start opens a top-level span.
func (t *Tracer) Start(name string) *Span {
	s := &Span{tracer: t, name: name, start: t.now(), cpuStart: processCPU()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the top-level spans recorded so far.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed region. Spans may be ended exactly once; children may
// be started from any goroutine.
type Span struct {
	tracer   *Tracer
	name     string
	start    time.Time
	cpuStart time.Duration

	mu       sync.Mutex
	end      time.Time
	cpuEnd   time.Duration
	ended    bool
	children []*Span
}

// Start opens a child span.
func (s *Span) Start(name string) *Span {
	c := &Span{tracer: s.tracer, name: name, start: s.tracer.now(), cpuStart: processCPU()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Ending twice is a no-op.
func (s *Span) End() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.end = s.tracer.now()
	s.cpuEnd = processCPU()
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Wall returns the wall-clock duration (time so far if still open).
func (s *Span) Wall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return s.tracer.now().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// CPU returns the process CPU time consumed between span start and end.
// This is process-wide (user+system), so it is meaningful for serial
// stages and an upper bound for concurrent ones; zero on platforms
// without rusage.
func (s *Span) CPU() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return processCPU() - s.cpuStart
	}
	return s.cpuEnd - s.cpuStart
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Children returns the child spans in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// WriteTree renders the span forest as an indented timing tree:
//
//	run                      1.20s  (cpu 3.4s)
//	  simulate:AODV/UDP      0.80s  (cpu 2.9s)
func (t *Tracer) WriteTree(w io.Writer) error {
	var sb strings.Builder
	for _, root := range t.Roots() {
		writeSpanTree(&sb, root, 0)
	}
	if sb.Len() == 0 {
		sb.WriteString("(no spans recorded)\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeSpanTree(sb *strings.Builder, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	open := ""
	if !s.Ended() {
		open = " (open)"
	}
	fmt.Fprintf(sb, "%-*s %10.3fms  cpu %.3fms%s\n",
		48-2*depth, s.name, float64(s.Wall().Microseconds())/1000,
		float64(s.CPU().Microseconds())/1000, open)
	for _, c := range s.Children() {
		writeSpanTree(sb, c, depth+1)
	}
}

// chromeEvent is one Chrome trace_event entry ("X" complete events), the
// JSON format chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds since tracer epoch
	Dur  int64          `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace dumps every finished span as a Chrome trace_event JSON
// array. Spans still open are emitted with their duration so far.
// Top-level spans get distinct tids so concurrent stages render on
// separate rows.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	for i, root := range t.Roots() {
		collectChrome(&events, root, t.epoch, i+1)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

func collectChrome(out *[]chromeEvent, s *Span, epoch time.Time, tid int) {
	*out = append(*out, chromeEvent{
		Name: s.name,
		Ph:   "X",
		Ts:   s.start.Sub(epoch).Microseconds(),
		Dur:  s.Wall().Microseconds(),
		Pid:  1,
		Tid:  tid,
		Args: map[string]any{"cpu_ms": float64(s.CPU().Microseconds()) / 1000},
	})
	for _, c := range s.Children() {
		collectChrome(out, c, epoch, tid)
	}
}

// StageTiming is the flat (name, wall, cpu) record the run manifest
// stores per pipeline stage.
type StageTiming struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
}

// Timing flattens a span into a StageTiming.
func (s *Span) Timing() StageTiming {
	return StageTiming{
		Name:        s.name,
		WallSeconds: s.Wall().Seconds(),
		CPUSeconds:  s.CPU().Seconds(),
	}
}
