package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PrometheusContentType is the Content-Type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves reg in Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		reg.WritePrometheus(w)
	})
}

// TracezHandler serves the tracer's timing tree as plain text; nil tracers
// render an explanatory placeholder.
func TracezHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tr == nil {
			fmt.Fprintln(w, "(no tracer attached)")
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			tr.WriteChromeTrace(w)
			return
		}
		tr.WriteTree(w)
	})
}

// DebugMux builds the debug surface: /metrics, /tracez and the full
// net/http/pprof suite under /debug/pprof/. It is meant for a separate
// opt-in listener, never the serving port: pprof handlers can be made to
// do unbounded work, so they must not share the admission-controlled
// public surface.
func DebugMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", MetricsHandler(reg))
	}
	mux.Handle("/tracez", TracezHandler(tr))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ProfileServer is the opt-in debug listener. Construct with
// StartProfileServer, stop with Close.
type ProfileServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartProfileServer binds addr and serves DebugMux(reg, tr) in the
// background. reg and tr may each be nil.
func StartProfileServer(addr string, reg *Registry, tr *Tracer) (*ProfileServer, error) {
	return StartDebugServer(addr, DebugMux(reg, tr))
}

// StartDebugServer binds addr and serves mux in the background — the
// escape hatch for callers that compose extra handlers (failpoint
// control, custom dumps) onto a DebugMux before starting it.
func StartDebugServer(addr string, mux http.Handler) (*ProfileServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	p := &ProfileServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go p.srv.Serve(ln)
	return p, nil
}

// Addr reports the bound address (useful with ":0").
func (p *ProfileServer) Addr() net.Addr { return p.ln.Addr() }

// Close stops the listener and any in-flight debug requests.
func (p *ProfileServer) Close() error { return p.srv.Close() }
