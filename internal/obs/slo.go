package obs

// Multi-window SLO burn-rate tracking over within-SLO goodput, the
// Google-SRE alerting shape: the burn rate over a window is the observed
// bad-record fraction divided by the SLO's error budget (1 - objective).
// A burn rate of 1 spends the budget exactly at the sustainable pace; a
// rate of 14.4 exhausts a 30-day budget in two days. Alerting (and the
// brownout controller's optional evidence hook) requires BOTH a short
// and a long window to burn hot, so a brief spike (short hot, long cool)
// and old history (long hot, short cool) both stay quiet.
//
// The monitor is a ring of per-second buckets. Observe is two atomic adds
// on the current second's slot plus one epoch check; BurnRate walks the
// window's slots at read time. Slots are reclaimed lazily: a slot whose
// stamped second has fallen out of the ring's horizon is reset by the
// next writer that lands on it, and readers skip slots outside their
// window. Concurrent writers racing a slot's epoch turnover can attribute
// a handful of records to the adjacent second — harmless at the 5-minute
// granularity anything reads this at.

import (
	"sync/atomic"
	"time"
)

// sloWindowSlots is the ring horizon in seconds; windows beyond it are
// truncated (the monitor's longest supported window is one hour).
const sloWindowSlots = 3600

// FastBurnThreshold is the conventional page-worthy burn rate: spending
// ~2% of a 30-day error budget within one hour (Google SRE workbook's
// 14.4x multiplier). Exported so alerting config and the brownout
// evidence hook cite one constant.
const FastBurnThreshold = 14.4

type sloSlot struct {
	sec         atomic.Int64
	good, total atomic.Uint64
}

// SLOMonitor tracks good/total outcomes over sliding windows. Construct
// with NewSLOMonitor; all methods are safe for concurrent use.
type SLOMonitor struct {
	objective float64
	slots     []sloSlot
	// now is injectable for tests.
	now func() time.Time
}

// NewSLOMonitor builds a monitor for the given availability objective
// (the target good fraction, e.g. 0.99). Objectives outside (0, 1) are
// clamped into it so the burn-rate division below is always finite.
func NewSLOMonitor(objective float64) *SLOMonitor {
	if !(objective > 0) || objective >= 1 {
		objective = 0.99
	}
	return &SLOMonitor{
		objective: objective,
		slots:     make([]sloSlot, sloWindowSlots),
		now:       time.Now,
	}
}

// Objective reports the configured good-fraction target.
func (m *SLOMonitor) Objective() float64 { return m.objective }

// slotFor claims the slot for the current second, resetting it if its
// epoch is stale. The CAS winner zeroes the counters; a racing loser adds
// to the fresh slot (or, across the turnover instant, the dying one —
// bounded noise, see the package comment).
func (m *SLOMonitor) slotFor(sec int64) *sloSlot {
	s := &m.slots[uint64(sec)%uint64(len(m.slots))]
	if old := s.sec.Load(); old != sec && s.sec.CompareAndSwap(old, sec) {
		s.good.Store(0)
		s.total.Store(0)
	}
	return s
}

// Observe records total outcomes of which good met the SLO.
func (m *SLOMonitor) Observe(good, total uint64) {
	if m == nil || total == 0 {
		return
	}
	s := m.slotFor(m.now().Unix())
	if good > 0 {
		s.good.Add(good)
	}
	s.total.Add(total)
}

// GoodTotal sums the window's outcomes ending now.
func (m *SLOMonitor) GoodTotal(window time.Duration) (good, total uint64) {
	if m == nil {
		return 0, 0
	}
	now := m.now().Unix()
	secs := int64(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > int64(len(m.slots)) {
		secs = int64(len(m.slots))
	}
	lo := now - secs + 1
	for i := range m.slots {
		s := &m.slots[i]
		sec := s.sec.Load()
		if sec < lo || sec > now {
			continue
		}
		// Re-check the epoch after reading the counters: a writer resetting
		// the slot between reads would hand us a half-zeroed pair, so a
		// changed epoch discards the reads.
		g, t := s.good.Load(), s.total.Load()
		if s.sec.Load() != sec {
			continue
		}
		good += g
		total += t
	}
	return good, total
}

// BurnRate reports the window's error-budget burn rate: bad fraction over
// (1 - objective). Zero when the window saw no traffic.
func (m *SLOMonitor) BurnRate(window time.Duration) float64 {
	good, total := m.GoodTotal(window)
	if total == 0 {
		return 0
	}
	badFrac := float64(total-good) / float64(total)
	return badFrac / (1 - m.objective)
}
