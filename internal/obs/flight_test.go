package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestRingOverwritesOldest(t *testing.T) {
	r := newRing[int](16)
	for i := 0; i < 100; i++ {
		v := i
		r.put(uint64(i), &v)
	}
	got := r.snapshot()
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("snapshot has %d entries, want 1..16", len(got))
	}
	// Entries come out oldest-first and the newest value must survive.
	last := *got[len(got)-1]
	if last != 99 {
		t.Fatalf("newest entry is %d, want 99", last)
	}
	for i := 1; i < len(got); i++ {
		if *got[i-1] >= *got[i] {
			t.Fatalf("snapshot out of order at %d: %d >= %d", i, *got[i-1], *got[i])
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := newRing[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := g*1000 + i
				r.put(uint64(v), &v)
				if i%100 == 0 {
					r.snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := r.len(); n == 0 || n > 64+ringShards {
		t.Fatalf("ring holds %d entries after concurrent writes", n)
	}
}

func TestFlightRecorderDump(t *testing.T) {
	fr := NewFlightRecorder(32, 32)
	tc := NewTraceContext()
	at := StartTrace(tc, "score", true)
	at.Hop("decode")
	at.Hop("admit")
	at.RT.Stream = "s1"
	at.RT.Records = 3
	fr.RecordTrace(at.Finish(200))
	fr.Event("brownout", "level 0 -> 1")

	h := NewHistogram([]float64{0.1, 1})
	h.ObserveWithExemplar(0.05, tc.TraceID())
	fr.AddExemplarSource("test_latency", h)

	d := fr.Dump()
	if d.Version != FlightVersion {
		t.Fatalf("dump version %d, want %d", d.Version, FlightVersion)
	}
	if len(d.Traces) != 1 || d.Traces[0].TraceID != tc.TraceID() {
		t.Fatalf("dump traces: %+v", d.Traces)
	}
	tr := d.Traces[0]
	if tr.Status != 200 || tr.Stream != "s1" || len(tr.Hops) != 2 || !tr.Propagated {
		t.Fatalf("trace fields wrong: %+v", tr)
	}
	if tr.Hops[0].Name != "decode" || tr.Hops[1].Name != "admit" {
		t.Fatalf("hop names wrong: %+v", tr.Hops)
	}
	if tr.Hops[1].OffsetMicros < tr.Hops[0].OffsetMicros {
		t.Fatalf("hop offsets not monotone: %+v", tr.Hops)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != "brownout" {
		t.Fatalf("dump events: %+v", d.Events)
	}
	if len(d.Exemplars) != 1 || d.Exemplars[0].Metric != "test_latency" {
		t.Fatalf("dump exemplars: %+v", d.Exemplars)
	}
	if d.Exemplars[0].Exemplars[0].TraceID != tc.TraceID() {
		t.Fatalf("exemplar trace id: %+v", d.Exemplars[0])
	}
}

func TestFlightDumpJSONRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(8, 8)
	fr.RecordTrace(StartTrace(NewTraceContext(), "score-batch", false).Finish(429))
	fr.Event("checkpoint", "write ok")
	b, err := json.Marshal(fr.Dump())
	if err != nil {
		t.Fatal(err)
	}
	var back FlightDump
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != FlightVersion || len(back.Traces) != 1 || len(back.Events) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Traces[0].Status != 429 || back.Traces[0].Endpoint != "score-batch" {
		t.Fatalf("trace fields lost: %+v", back.Traces[0])
	}
}

func TestFlightHandler(t *testing.T) {
	fr := NewFlightRecorder(8, 8)
	fr.RecordTrace(StartTrace(NewTraceContext(), "score", false).Finish(200))
	rec := httptest.NewRecorder()
	FlightHandler(fr).ServeHTTP(rec, httptest.NewRequest("GET", "/flightz", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var d FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if d.Version != FlightVersion || len(d.Traces) != 1 {
		t.Fatalf("handler dump: %+v", d)
	}
}

func TestActiveTraceNilSafe(t *testing.T) {
	var a *ActiveTrace
	a.Hop("decode")
	a.HopOnce("lock")
	if a.TraceID() != "" || a.Finish(200) != nil || a.Elapsed() != 0 {
		t.Fatal("nil ActiveTrace methods not inert")
	}
	var fr *FlightRecorder
	fr.RecordTrace(nil)
	fr.Event("k", "d")
	if fr.TraceCount() != 0 {
		t.Fatal("nil FlightRecorder not inert")
	}
	d := fr.Dump()
	if d.Version != FlightVersion {
		t.Fatal("nil FlightRecorder dump missing version")
	}
}

func TestHopOnce(t *testing.T) {
	a := StartTrace(NewTraceContext(), "score", false)
	a.HopOnce("lock")
	a.HopOnce("lock")
	a.Hop("observe")
	rt := a.Finish(200)
	if len(rt.Hops) != 2 {
		t.Fatalf("hops %+v, want lock+observe only", rt.Hops)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5) // untraced: no exemplar
	if ex := h.Exemplars(); len(ex) != 0 {
		t.Fatalf("untraced observe produced exemplars: %+v", ex)
	}
	h.ObserveWithExemplar(0.7, "trace-a")
	h.ObserveWithExemplar(5, "trace-b")
	h.ObserveWithExemplar(100, "trace-c")
	h.ObserveWithExemplar(0.9, "trace-d") // overwrites trace-a's bucket
	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("got %d exemplars, want 3: %+v", len(ex), ex)
	}
	if ex[0].TraceID != "trace-d" || ex[0].Bucket != "1" {
		t.Fatalf("bucket 0 exemplar: %+v", ex[0])
	}
	if ex[1].TraceID != "trace-b" || ex[1].Bucket != "10" {
		t.Fatalf("bucket 1 exemplar: %+v", ex[1])
	}
	if ex[2].TraceID != "trace-c" || ex[2].Bucket != "+Inf" {
		t.Fatalf("+Inf exemplar: %+v", ex[2])
	}
	if ex[0].AtUnixNanos <= 0 || time.Now().UnixNano() < ex[0].AtUnixNanos {
		t.Fatalf("exemplar timestamp out of range: %d", ex[0].AtUnixNanos)
	}
	// Counting must be unaffected by exemplar bookkeeping.
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
}
