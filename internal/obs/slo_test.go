package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// sloClock drives an SLOMonitor deterministically.
type sloClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *sloClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *sloClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestSLO(objective float64) (*SLOMonitor, *sloClock) {
	m := NewSLOMonitor(objective)
	clk := &sloClock{now: time.Unix(1_700_000_000, 0)}
	m.now = clk.Now
	return m, clk
}

func TestSLOBurnRateBasics(t *testing.T) {
	m, _ := newTestSLO(0.99)
	if br := m.BurnRate(5 * time.Minute); br != 0 {
		t.Fatalf("empty monitor burn rate %v, want 0", br)
	}
	m.Observe(99, 100)
	// 1% bad over a 1% budget: burn rate exactly 1.
	if br := m.BurnRate(5 * time.Minute); math.Abs(br-1) > 1e-9 {
		t.Fatalf("burn rate %v, want 1", br)
	}
	m.Observe(0, 100) // all bad: window now 101/200 bad... good=99 total=200
	br := m.BurnRate(5 * time.Minute)
	want := (101.0 / 200.0) / 0.01
	if math.Abs(br-want) > 1e-9 {
		t.Fatalf("burn rate %v, want %v", br, want)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	m, clk := newTestSLO(0.999)
	m.Observe(0, 50) // all bad
	if g, tot := m.GoodTotal(5 * time.Minute); g != 0 || tot != 50 {
		t.Fatalf("GoodTotal = %d/%d, want 0/50", g, tot)
	}
	clk.Advance(6 * time.Minute)
	if _, tot := m.GoodTotal(5 * time.Minute); tot != 0 {
		t.Fatalf("5m window still sees %d records after 6m", tot)
	}
	// The 1h window still covers it.
	if g, tot := m.GoodTotal(time.Hour); g != 0 || tot != 50 {
		t.Fatalf("1h GoodTotal = %d/%d, want 0/50", g, tot)
	}
	clk.Advance(time.Hour)
	if _, tot := m.GoodTotal(time.Hour); tot != 0 {
		t.Fatalf("1h window still sees %d records after expiry", tot)
	}
}

func TestSLOSlotReuseAfterHorizon(t *testing.T) {
	m, clk := newTestSLO(0.99)
	m.Observe(10, 10)
	// Land on the same slot one full horizon later: the stale epoch must
	// be reset, not accumulated.
	clk.Advance(sloWindowSlots * time.Second)
	m.Observe(0, 5)
	if g, tot := m.GoodTotal(time.Minute); g != 0 || tot != 5 {
		t.Fatalf("GoodTotal = %d/%d after slot reuse, want 0/5", g, tot)
	}
}

func TestSLOMultiWindowDivergence(t *testing.T) {
	m, clk := newTestSLO(0.99)
	// 50 minutes of clean traffic, then a 1-minute total outage.
	for i := 0; i < 50; i++ {
		m.Observe(100, 100)
		clk.Advance(time.Minute)
	}
	m.Observe(0, 100)
	short := m.BurnRate(5 * time.Minute)
	long := m.BurnRate(time.Hour)
	if short <= FastBurnThreshold {
		t.Fatalf("short-window burn %v should exceed the fast-burn threshold", short)
	}
	if long >= short {
		t.Fatalf("long-window burn %v should trail the short window %v", long, short)
	}
}

func TestSLOObjectiveClamp(t *testing.T) {
	for _, bad := range []float64{0, 1, -3, 2, math.NaN()} {
		if m := NewSLOMonitor(bad); m.Objective() != 0.99 {
			t.Fatalf("objective %v not clamped: %v", bad, m.Objective())
		}
	}
	if m := NewSLOMonitor(0.95); m.Objective() != 0.95 {
		t.Fatal("valid objective rejected")
	}
}

func TestSLONilSafe(t *testing.T) {
	var m *SLOMonitor
	m.Observe(1, 1)
	if g, tot := m.GoodTotal(time.Minute); g != 0 || tot != 0 {
		t.Fatal("nil monitor GoodTotal not inert")
	}
}

func TestSLOConcurrent(t *testing.T) {
	m, _ := newTestSLO(0.99)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Observe(1, 2)
			}
		}()
	}
	wg.Wait()
	if g, tot := m.GoodTotal(time.Minute); g != 8000 || tot != 16000 {
		t.Fatalf("GoodTotal = %d/%d, want 8000/16000", g, tot)
	}
}
