package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition output: HELP/TYPE
// headers, label rendering and escaping, histogram buckets with the +Inf
// bucket and _sum/_count lines, and family ordering by name.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_requests_total", "Total requests.")
	c.Add(3)
	g := r.Gauge("aa_depth", "Queue depth.", L("queue", "main"))
	g.Set(2.5)
	r.Counter("mm_evil_total", `Label with "quotes", back\slash and newline.`,
		L("path", "a\\b\"c\nd"))
	h := r.Histogram("hh_latency_seconds", "Request latency.", []float64{0.1, 0.5, 2})
	for _, v := range []float64{0.05, 0.3, 0.3, 1.9, 100} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_depth Queue depth.
# TYPE aa_depth gauge
aa_depth{queue="main"} 2.5

# HELP hh_latency_seconds Request latency.
# TYPE hh_latency_seconds histogram
hh_latency_seconds_bucket{le="0.1"} 1
hh_latency_seconds_bucket{le="0.5"} 3
hh_latency_seconds_bucket{le="2"} 4
hh_latency_seconds_bucket{le="+Inf"} 5
hh_latency_seconds_sum 102.55
hh_latency_seconds_count 5

# HELP mm_evil_total Label with "quotes", back\\slash and newline.
# TYPE mm_evil_total counter
mm_evil_total{path="a\\b\"c\nd"} 0

# HELP zz_requests_total Total requests.
# TYPE zz_requests_total counter
zz_requests_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("encoder output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramInvariants checks the structural invariants the encoder
// relies on: cumulative buckets are monotone, the +Inf bucket equals
// _count, and _sum matches the observations.
func TestHistogramInvariants(t *testing.T) {
	h := NewHistogram(LinearBuckets(0.1, 0.1, 9)) // 0.1 .. 0.9
	var sum float64
	n := 0
	for _, v := range []float64{0, 0.1, 0.15, 0.5, 0.95, 1.5, 0.3} {
		h.Observe(v)
		sum += v
		n++
	}
	p := h.snapshot()
	if len(p.Cumulative) != len(p.Bounds)+1 {
		t.Fatalf("cumulative has %d entries for %d bounds", len(p.Cumulative), len(p.Bounds))
	}
	for i := 1; i < len(p.Cumulative); i++ {
		if p.Cumulative[i] < p.Cumulative[i-1] {
			t.Errorf("cumulative not monotone at %d: %v", i, p.Cumulative)
		}
	}
	if p.Cumulative[len(p.Cumulative)-1] != p.Count {
		t.Errorf("+Inf bucket %d != count %d", p.Cumulative[len(p.Cumulative)-1], p.Count)
	}
	if p.Count != uint64(n) {
		t.Errorf("count = %d, want %d", p.Count, n)
	}
	if diff := p.Sum - sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %v, want %v", p.Sum, sum)
	}
	// Boundary semantics: le is inclusive (0.1 lands in the 0.1 bucket).
	if p.Cumulative[0] != 2 { // 0 and 0.1
		t.Errorf("le=0.1 bucket = %d, want 2", p.Cumulative[0])
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram([]float64{1})
	nan := 0.0
	nan = nan / nan
	h.Observe(nan)
	h.Observe(0.5)
	if got := h.Count(); got != 1 {
		t.Errorf("count = %d, want 1 (NaN dropped)", got)
	}
}

// TestRegistryIdempotent verifies same-name-same-labels returns the same
// instance and that kind mismatches panic loudly rather than silently
// splitting a family.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Error("re-registration returned a different counter instance")
	}
	c := r.Counter("x_total", "x", L("k", "w"))
	if a == c {
		t.Error("distinct label values share an instance")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.Gauge("x_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		r.Counter("0bad name", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("histogram bucket mismatch did not panic")
			}
		}()
		r.Histogram("h", "h", []float64{1, 2})
		r.Histogram("h", "h", []float64{1, 3})
	}()
}

func TestGaugeFuncAndSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 0.0
	r.GaugeFunc("dyn", "dynamic", func() float64 { return v })
	v = 42
	points := r.Snapshot()
	if len(points) != 1 || points[0].Value != 42 {
		t.Errorf("snapshot = %+v, want dyn=42", points)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("ExpBuckets = %v", exp)
	}
}
