package obs

// The flight recorder is the service's black box: a fixed-size ring of
// the last N completed request traces (per-hop timestamps, verdict
// counts, degradation mode) plus every operational state transition
// (brownout shifts, checkpoint writes and restores, model reloads, stream
// evictions), dumpable as versioned JSON from GET /flightz and persisted
// next to the checkpoint file so a crash leaves a readable account of the
// service's final moments.
//
// Everything on the record path is lock-free: a finished trace is one
// pointer publish into a sharded ring, an event is the same plus one
// time.Now(). The dump path (an operator, or the post-crash boot) pays
// for sorting and JSON.

import (
	"encoding/json"
	"net/http"
	"time"
)

// FlightVersion is the dump format version; bump it when RequestTrace,
// FlightEvent or the envelope change shape incompatibly.
const FlightVersion = 1

// Hop is one pipeline stage boundary inside a request, as an offset from
// the request's start — offsets rather than absolute stamps keep a trace
// readable at a glance and compress well in JSON.
type Hop struct {
	Name         string `json:"name"`
	OffsetMicros int64  `json:"offset_us"`
}

// RequestTrace is one completed request's timeline. Traces are recorded
// after the response is written, so DurationMicros covers decode through
// response encode.
type RequestTrace struct {
	TraceID        string `json:"trace_id"`
	SpanID         string `json:"span_id"`
	Endpoint       string `json:"endpoint"`
	Stream         string `json:"stream,omitempty"`
	Records        int    `json:"records,omitempty"`
	Anomalies      int    `json:"anomalies,omitempty"`
	Status         int    `json:"status"`
	Degraded       string `json:"degraded,omitempty"`
	Err            string `json:"error,omitempty"`
	Propagated     bool   `json:"propagated,omitempty"`
	StartUnixNanos int64  `json:"start_unix_nanos"`
	DurationMicros int64  `json:"duration_us"`
	Hops           []Hop  `json:"hops,omitempty"`
}

// FlightEvent is one operational state transition.
type FlightEvent struct {
	AtUnixNanos int64  `json:"at_unix_nanos"`
	Kind        string `json:"kind"`
	Detail      string `json:"detail,omitempty"`
}

// ExemplarSet carries one histogram's per-bucket exemplars into the dump.
type ExemplarSet struct {
	Metric    string     `json:"metric"`
	Exemplars []Exemplar `json:"exemplars"`
}

// FlightDump is the versioned JSON artifact: what /flightz serves and
// what gets persisted next to the checkpoint file.
type FlightDump struct {
	Version     int            `json:"flight_version"`
	AtUnixNanos int64          `json:"at_unix_nanos"`
	Traces      []RequestTrace `json:"traces"`
	Events      []FlightEvent  `json:"events"`
	Exemplars   []ExemplarSet  `json:"exemplars,omitempty"`
}

// FlightRecorder owns the trace and event rings. Construct with
// NewFlightRecorder; all methods are safe for concurrent use.
type FlightRecorder struct {
	traces *ring[RequestTrace]
	events *ring[FlightEvent]
	// exemplar sources are registered at wiring time (before traffic), so
	// the slice is effectively immutable afterwards.
	exemplars []exemplarSource
}

type exemplarSource struct {
	metric string
	h      *Histogram
}

// NewFlightRecorder builds a recorder keeping roughly traceCap completed
// traces and eventCap state transitions (defaults 256 and 256 when <= 0).
func NewFlightRecorder(traceCap, eventCap int) *FlightRecorder {
	if traceCap <= 0 {
		traceCap = 256
	}
	if eventCap <= 0 {
		eventCap = 256
	}
	return &FlightRecorder{
		traces: newRing[RequestTrace](traceCap),
		events: newRing[FlightEvent](eventCap),
	}
}

// RecordTrace publishes one completed request trace.
func (f *FlightRecorder) RecordTrace(rt *RequestTrace) {
	if f == nil || rt == nil {
		return
	}
	// Shard by the tail of the trace id: splitmix64 output bits are
	// uniform, and the hex tail preserves them.
	f.traces.put(hashTail(rt.TraceID), rt)
}

// Event records one operational state transition, stamped now.
func (f *FlightRecorder) Event(kind, detail string) {
	if f == nil {
		return
	}
	ev := &FlightEvent{AtUnixNanos: time.Now().UnixNano(), Kind: kind, Detail: detail}
	f.events.put(uint64(ev.AtUnixNanos), ev)
}

// AddExemplarSource includes h's per-bucket exemplars in every dump under
// the given metric name. Call during wiring, before traffic.
func (f *FlightRecorder) AddExemplarSource(metric string, h *Histogram) {
	if f == nil || h == nil {
		return
	}
	f.exemplars = append(f.exemplars, exemplarSource{metric: metric, h: h})
}

// TraceCount reports the live traces in the ring (for /statz).
func (f *FlightRecorder) TraceCount() int {
	if f == nil {
		return 0
	}
	return f.traces.len()
}

// Dump snapshots the recorder into its versioned JSON form.
func (f *FlightRecorder) Dump() FlightDump {
	d := FlightDump{
		Version:     FlightVersion,
		AtUnixNanos: time.Now().UnixNano(),
		Traces:      []RequestTrace{},
		Events:      []FlightEvent{},
	}
	if f == nil {
		return d
	}
	for _, rt := range f.traces.snapshot() {
		d.Traces = append(d.Traces, *rt)
	}
	for _, ev := range f.events.snapshot() {
		d.Events = append(d.Events, *ev)
	}
	for _, src := range f.exemplars {
		if ex := src.h.Exemplars(); len(ex) > 0 {
			d.Exemplars = append(d.Exemplars, ExemplarSet{Metric: src.metric, Exemplars: ex})
		}
	}
	return d
}

// ActiveTrace accumulates one in-flight request's timeline. It is built
// at handler entry, stamped at each pipeline hop, and finished (then
// handed to RecordTrace) after the response is written. Methods are
// nil-safe so un-traced call sites (tests driving the pipeline directly)
// can pass nil; an ActiveTrace itself is owned by one request goroutine
// — the scoring pipeline runs hops sequentially — so stamps need no
// atomics.
type ActiveTrace struct {
	RT    RequestTrace
	start time.Time
	// hopBuf backs RT.Hops for the common case (every stage of the
	// pipeline stamps once) without a second allocation.
	hopBuf [8]Hop
}

// StartTrace begins a timeline for one request under tc.
func StartTrace(tc TraceContext, endpoint string, propagated bool) *ActiveTrace {
	a := &ActiveTrace{start: time.Now()}
	a.RT = RequestTrace{
		TraceID:        tc.TraceID(),
		SpanID:         tc.SpanID(),
		Endpoint:       endpoint,
		Propagated:     propagated,
		StartUnixNanos: a.start.UnixNano(),
	}
	a.RT.Hops = a.hopBuf[:0]
	return a
}

// Hop stamps a stage boundary at the current offset.
func (a *ActiveTrace) Hop(name string) {
	if a == nil {
		return
	}
	a.RT.Hops = append(a.RT.Hops, Hop{Name: name, OffsetMicros: time.Since(a.start).Microseconds()})
}

// HopOnce stamps name only if it has not been stamped yet — for stages
// that repeat per item (the first stream-lock acquisition of a batch).
func (a *ActiveTrace) HopOnce(name string) {
	if a == nil {
		return
	}
	for _, h := range a.RT.Hops {
		if h.Name == name {
			return
		}
	}
	a.Hop(name)
}

// TraceID returns the trace id, or "" on a nil trace (so exemplar calls
// can pass it straight through).
func (a *ActiveTrace) TraceID() string {
	if a == nil {
		return ""
	}
	return a.RT.TraceID
}

// Finish seals the timeline with the response status and returns the
// completed trace, or nil on a nil receiver.
func (a *ActiveTrace) Finish(status int) *RequestTrace {
	if a == nil {
		return nil
	}
	a.RT.Status = status
	a.RT.DurationMicros = time.Since(a.start).Microseconds()
	return &a.RT
}

// Elapsed reports time since the trace started.
func (a *ActiveTrace) Elapsed() time.Duration {
	if a == nil {
		return 0
	}
	return time.Since(a.start)
}

// FlightHandler serves fr's dump as JSON — mount it at /flightz on the
// debug mux, never the public listener.
func FlightHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fr.Dump())
	})
}

// hashTail folds a trace id's trailing hex digits into shard-key bits;
// non-hex input still spreads via the byte values.
func hashTail(s string) uint64 {
	var v uint64
	for i := max(0, len(s)-8); i < len(s); i++ {
		v = v<<5 ^ uint64(s[i])
	}
	return v
}
