package obs

import (
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() || !tc.Sampled {
		t.Fatalf("NewTraceContext not valid+sampled: %+v", tc)
	}
	h := tc.Header()
	if len(h) != traceEncodedLen {
		t.Fatalf("header %q has length %d, want %d", h, len(h), traceEncodedLen)
	}
	got, ok := ParseTraceContext(h)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}
	if !strings.HasPrefix(h, tc.TraceID()) {
		t.Fatalf("header %q does not start with trace id %q", h, tc.TraceID())
	}
}

func TestTraceContextUnsampledFlag(t *testing.T) {
	tc := NewTraceContext()
	tc.Sampled = false
	got, ok := ParseTraceContext(tc.Header())
	if !ok || got.Sampled {
		t.Fatalf("unsampled flag lost: %+v ok=%v", got, ok)
	}
}

func TestParseTraceContextRejectsMalformed(t *testing.T) {
	valid := NewTraceContext().Header()
	bad := []string{
		"",
		"nonsense",
		valid[:len(valid)-1],                // truncated
		valid + "0",                         // too long
		strings.Replace(valid, "-", "_", 1), // wrong separator
		strings.Repeat("0", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero trace id
		strings.Replace(valid, valid[:1], "g", 1),                       // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) accepted malformed input", s)
		}
	}
}

func TestContextFromHeaderMintsOnGarbage(t *testing.T) {
	tc, propagated := ContextFromHeader("garbage")
	if propagated {
		t.Fatal("garbage header reported as propagated")
	}
	if !tc.Valid() || !tc.Sampled {
		t.Fatalf("minted context not valid+sampled: %+v", tc)
	}
	orig := NewTraceContext()
	got, propagated := ContextFromHeader(orig.Header())
	if !propagated || got != orig {
		t.Fatalf("valid header not propagated: %+v propagated=%v", got, propagated)
	}
}

func TestNewSpanKeepsTraceID(t *testing.T) {
	tc := NewTraceContext()
	span := tc.NewSpan()
	if span.TraceID() != tc.TraceID() {
		t.Fatal("NewSpan changed the trace id")
	}
	if span.Span == tc.Span {
		t.Fatal("NewSpan did not change the span id")
	}
}

func TestNextIDUnique(t *testing.T) {
	seen := make(map[uint64]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := nextID()
		if id == 0 || seen[id] {
			t.Fatalf("id %d is zero or repeated at iteration %d", id, i)
		}
		seen[id] = true
	}
}
