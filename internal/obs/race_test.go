package obs

import (
	"io"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentHammer drives counters, gauges and histograms from
// GOMAXPROCS goroutines while the main goroutine snapshots and encodes
// continuously. Run under -race (make ci does) this is the data-race
// gate for the whole hot path; the final counts are also checked exactly.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "hammered")
	g := r.Gauge("hammer_gauge", "hammered")
	h := r.Histogram("hammer_hist", "hammered", LinearBuckets(0, 100, 10))

	workers := runtime.GOMAXPROCS(0)
	const perWorker = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot/encode loop racing the writers.
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p := r.Snapshot()
				if len(p) != 3 {
					t.Errorf("snapshot lost metrics: %d", len(p))
					return
				}
				r.WritePrometheus(io.Discard)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 1000))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	want := uint64(workers * perWorker)
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != float64(want) {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	p := h.snapshot()
	if p.Cumulative[len(p.Cumulative)-1] != p.Count {
		t.Errorf("+Inf bucket %d != count %d after concurrent load",
			p.Cumulative[len(p.Cumulative)-1], p.Count)
	}
}
