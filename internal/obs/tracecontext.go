package obs

// Request-scoped trace identity. Every scoring request carries a
// TraceContext — a 128-bit trace id, a 64-bit span id and a sampling bit —
// propagated in the X-CFA-Trace header from client to server. The server
// echoes the header on the response and stamps the trace id into its
// flight recorder, latency exemplars and access log, so one id links a
// client-observed latency to the server-side per-hop timeline that
// produced it.
//
// Wire format (a compact cousin of W3C traceparent, sized for this
// service):
//
//	<32 hex trace id>-<16 hex span id>-<2 hex flags>
//
// Flags bit 0 is the sampling bit. Parsing is strict on shape but a
// malformed header never fails a request: the server just mints a fresh
// context, because a scoring request with a garbled header still deserves
// a verdict (and a trace).

import (
	"fmt"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying the trace context.
const TraceHeader = "X-CFA-Trace"

// TraceContext identifies one logical request across process boundaries.
type TraceContext struct {
	Hi, Lo  uint64 // 128-bit trace id
	Span    uint64 // current span (one per attempt/hop owner)
	Sampled bool
}

// traceIDLen is the encoded length: 32 hex + '-' + 16 hex + '-' + 2 hex.
const traceEncodedLen = 32 + 1 + 16 + 1 + 2

// idState seeds the lock-free id generator. Each NewTraceContext takes one
// atomic add and runs the counter through a splitmix64 finalizer — unique
// per process, well-mixed across processes via the time-derived seed, and
// never in need of a lock or a syscall on the hot path.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()))
}

// splitmix64 is the SplitMix64 output function: a bijective mixer whose
// outputs over a counter sequence are statistically indistinguishable from
// random — exactly what ids derived from an atomic counter need.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextID returns a fresh non-zero 64-bit id.
func nextID() uint64 {
	for {
		if id := splitmix64(idState.Add(0x9e3779b97f4a7c15)); id != 0 {
			return id
		}
	}
}

// NewTraceContext mints a sampled context with fresh trace and span ids.
func NewTraceContext() TraceContext {
	return TraceContext{Hi: nextID(), Lo: nextID(), Span: nextID(), Sampled: true}
}

// NewSpan returns a copy of tc with a fresh span id — one per retry
// attempt, so the server-side timelines of two attempts of the same
// logical call stay distinguishable under the shared trace id.
func (tc TraceContext) NewSpan() TraceContext {
	tc.Span = nextID()
	return tc
}

// Valid reports whether tc carries a usable trace id.
func (tc TraceContext) Valid() bool { return tc.Hi != 0 || tc.Lo != 0 }

// TraceID renders the 128-bit trace id as 32 lowercase hex digits.
func (tc TraceContext) TraceID() string {
	return fmt.Sprintf("%016x%016x", tc.Hi, tc.Lo)
}

// SpanID renders the span id as 16 lowercase hex digits.
func (tc TraceContext) SpanID() string { return fmt.Sprintf("%016x", tc.Span) }

// Header encodes tc for the X-CFA-Trace header.
func (tc TraceContext) Header() string {
	flags := 0
	if tc.Sampled {
		flags = 1
	}
	return fmt.Sprintf("%016x%016x-%016x-%02x", tc.Hi, tc.Lo, tc.Span, flags)
}

// ParseTraceContext decodes a header value. ok is false — and the caller
// should mint a fresh context — on any shape violation or an all-zero
// trace id.
func ParseTraceContext(s string) (TraceContext, bool) {
	if len(s) != traceEncodedLen || s[32] != '-' || s[49] != '-' {
		return TraceContext{}, false
	}
	hi, ok := parseHex64(s[:16])
	if !ok {
		return TraceContext{}, false
	}
	lo, ok := parseHex64(s[16:32])
	if !ok {
		return TraceContext{}, false
	}
	span, ok := parseHex64(s[33:49])
	if !ok {
		return TraceContext{}, false
	}
	flags, ok := parseHex64(s[50:52])
	if !ok {
		return TraceContext{}, false
	}
	tc := TraceContext{Hi: hi, Lo: lo, Span: span, Sampled: flags&1 != 0}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// ContextFromHeader parses s, minting a fresh sampled context when s is
// empty or malformed. The bool reports whether the context came from the
// wire (a propagated id) rather than being minted here.
func ContextFromHeader(s string) (TraceContext, bool) {
	if s == "" {
		return NewTraceContext(), false
	}
	if tc, ok := ParseTraceContext(s); ok {
		return tc, true
	}
	return NewTraceContext(), false
}

// parseHex64 decodes up to 16 lowercase/uppercase hex digits.
func parseHex64(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
