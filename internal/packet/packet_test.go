package packet

import "testing"

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Data:         "DATA",
		RouteRequest: "RREQ",
		RouteReply:   "RREP",
		RouteError:   "RERR",
		Hello:        "HELLO",
		Type(99):     "Type(99)",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(ty), got, want)
		}
	}
}

func TestIsControl(t *testing.T) {
	if Data.IsControl() {
		t.Error("Data should not be control")
	}
	for _, ty := range []Type{RouteRequest, RouteReply, RouteError, Hello} {
		if !ty.IsControl() {
			t.Errorf("%v should be control", ty)
		}
	}
}

func TestAllocatorUniqueIDs(t *testing.T) {
	var a Allocator
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		p := a.New(Data, 1, 2, DataSize)
		if seen[p.ID] {
			t.Fatalf("duplicate packet ID %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestAllocatorDefaults(t *testing.T) {
	var a Allocator
	p := a.New(RouteRequest, 3, Broadcast, ControlSize)
	if p.TTL != DefaultTTL {
		t.Errorf("TTL = %d, want %d", p.TTL, DefaultTTL)
	}
	if p.Src != 3 || p.Dst != Broadcast || p.Size != ControlSize || p.Type != RouteRequest {
		t.Errorf("allocator mis-set fields: %+v", p)
	}
}

func TestCloneIsShallowCopy(t *testing.T) {
	var a Allocator
	p := a.New(Data, 1, 2, DataSize)
	p.Header = "header"
	q := p.Clone()
	q.TTL--
	q.Hops++
	if p.TTL != DefaultTTL || p.Hops != 0 {
		t.Error("mutating the clone changed the original")
	}
	if q.Header != p.Header {
		t.Error("clone should share the header")
	}
}
