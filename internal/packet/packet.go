// Package packet defines the packet model shared by the routing protocols,
// transports, attacks and the audit layer. The type taxonomy mirrors the
// paper's Feature Set II dimensions (Table 5): data packets plus the four
// routing control message kinds, observed in four flow directions.
package packet

import "fmt"

// NodeID identifies a node in the simulated network.
type NodeID int

// Broadcast is the destination used for link-layer broadcast frames.
const Broadcast NodeID = -1

// Type enumerates packet kinds. The "route (all)" aggregate of Table 5 is
// derived by the feature extractor, not carried on packets.
type Type int

const (
	// Data is an application payload packet.
	Data Type = iota + 1
	// RouteRequest is a ROUTE REQUEST control message (AODV RREQ, DSR RREQ).
	RouteRequest
	// RouteReply is a ROUTE REPLY control message.
	RouteReply
	// RouteError is a ROUTE ERROR control message.
	RouteError
	// Hello is a periodic neighbour beacon (AODV HELLO).
	Hello
)

// NumTypes is the number of concrete packet types.
const NumTypes = 5

// String implements fmt.Stringer for trace output.
func (t Type) String() string {
	switch t {
	case Data:
		return "DATA"
	case RouteRequest:
		return "RREQ"
	case RouteReply:
		return "RREP"
	case RouteError:
		return "RERR"
	case Hello:
		return "HELLO"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// IsControl reports whether the type is a routing control message.
func (t Type) IsControl() bool { return t != Data }

// Packet is one simulated frame. Header carries the protocol-specific
// routing header (e.g. an AODV RREQ body or a DSR source route); Payload
// carries transport metadata for data packets.
type Packet struct {
	ID      uint64 // globally unique, assigned by the allocator
	Type    Type
	Src     NodeID // originator of the packet
	Dst     NodeID // final destination (Broadcast for floods)
	TTL     int
	Size    int // bytes, used for transmission delay
	Hops    int // hops traversed so far
	SentAt  float64
	Header  any
	Payload any
}

// Clone returns a shallow copy; forwarding mutates per-hop fields, so each
// transmission works on its own copy while Header/Payload stay shared
// (protocols copy headers they mutate, e.g. DSR route records).
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}

// Allocator hands out unique packet IDs.
type Allocator struct {
	next uint64
}

// New creates a packet with a fresh ID.
func (a *Allocator) New(t Type, src, dst NodeID, size int) *Packet {
	a.next++
	return &Packet{ID: a.next, Type: t, Src: src, Dst: dst, Size: size, TTL: DefaultTTL}
}

// DefaultTTL bounds flood diameter; 32 comfortably exceeds the diameter of
// a 50-node 1000 m field with a 250 m radio range.
const DefaultTTL = 32

// Sizes used by the traffic generators and protocols, in bytes; they match
// common ns-2 defaults so transmission delays are in a realistic regime.
const (
	DataSize    = 512
	ControlSize = 64
	AckSize     = 40
)
