package serve

// Flight-recorder persistence: the black box must survive the crash it
// exists to explain. Whenever a checkpoint is written the current flight
// dump is written next to it (same CRC-framed envelope as CFAS/CFAC,
// under its own CFAF magic), and a dirty marker file brackets the
// process's lifetime: created when Run starts serving, removed on a
// clean drain. A boot that finds the marker knows the previous process
// died hard, preserves its last flight dump under a .crash suffix — the
// recovered black box, surfaced in /statz and the log — and only then
// starts overwriting the live dump file. A recovered handler panic also
// writes a one-shot dump under a .panic suffix, while the process is
// still alive and the rings still hold the poisoned request.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"crossfeature/internal/core"
	"crossfeature/internal/obs"
)

const (
	flightMagic       = "CFAF"
	flightFileVersion = 1
)

// flightPath is the live dump written alongside each checkpoint;
// flightDirtyPath marks an unclean shutdown; flightCrashPath preserves
// the pre-crash dump; flightPanicPath holds the last in-process panic
// dump.
func (s *Server) flightPath() string      { return s.cfg.CheckpointPath + ".flight" }
func (s *Server) flightDirtyPath() string { return s.cfg.CheckpointPath + ".dirty" }
func (s *Server) flightCrashPath() string { return s.cfg.CheckpointPath + ".flight.crash" }
func (s *Server) flightPanicPath() string { return s.cfg.CheckpointPath + ".flight.panic" }

// writeFlightDump snapshots the recorder and atomically writes it to
// path inside a CFAF frame.
func (s *Server) writeFlightDump(path string) error {
	payload, err := json.Marshal(s.flight.Dump())
	if err != nil {
		s.met.flightDumpFailures.Inc()
		return fmt.Errorf("serve: encode flight dump: %w", err)
	}
	err = core.AtomicWriteFile(path, func(w io.Writer) error {
		return core.WriteFrame(w, flightMagic, flightFileVersion, payload)
	})
	if err != nil {
		s.met.flightDumpFailures.Inc()
		return err
	}
	s.met.flightDumpWrites.Inc()
	return nil
}

// ReadFlightDump opens a persisted CFAF flight dump — the post-crash
// inspection path, shared by the crash tests.
func ReadFlightDump(path string) (obs.FlightDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return obs.FlightDump{}, err
	}
	defer f.Close()
	payload, err := core.ReadFrame(f, flightMagic, flightFileVersion)
	if err != nil {
		return obs.FlightDump{}, err
	}
	var d obs.FlightDump
	if err := json.Unmarshal(payload, &d); err != nil {
		return obs.FlightDump{}, fmt.Errorf("serve: decode flight dump: %w", err)
	}
	if d.Version != obs.FlightVersion {
		return obs.FlightDump{}, fmt.Errorf("serve: flight dump version %d, want %d", d.Version, obs.FlightVersion)
	}
	return d, nil
}

// recoverFlightDump runs once at Run start (checkpointing enabled): it
// preserves a crashed predecessor's dump, then arms the dirty marker for
// this process's own lifetime.
func (s *Server) recoverFlightDump() {
	if _, err := os.Stat(s.flightDirtyPath()); err == nil {
		// The previous process never cleaned up: it was SIGKILLed, OOMed
		// or power-cycled. Its last flight dump is the black box.
		if err := os.Rename(s.flightPath(), s.flightCrashPath()); err == nil {
			s.met.flightRecovered.Inc()
			crash := s.flightCrashPath()
			s.flightCrash.Store(&crash)
			s.flightEvent("flight-recovered", crash)
			s.cfg.Logf("serve: unclean shutdown detected: previous flight recorder preserved at %s", crash)
		} else if !os.IsNotExist(err) {
			s.cfg.Logf("serve: unclean shutdown detected but flight dump not preserved: %v", err)
		} else {
			s.cfg.Logf("serve: unclean shutdown detected (no flight dump had been written yet)")
		}
	}
	if err := os.WriteFile(s.flightDirtyPath(), []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
		s.cfg.Logf("serve: cannot arm flight dirty marker: %v", err)
	}
}

// markCleanShutdown writes the final flight dump and disarms the dirty
// marker — the clean-exit half of recoverFlightDump.
func (s *Server) markCleanShutdown() {
	if err := s.writeFlightDump(s.flightPath()); err != nil {
		s.cfg.Logf("serve: final flight dump failed: %v", err)
	}
	if err := os.Remove(s.flightDirtyPath()); err != nil && !os.IsNotExist(err) {
		s.cfg.Logf("serve: cannot remove flight dirty marker: %v", err)
	}
}

// dumpPanic writes the one-shot panic dump, first panic wins.
func (s *Server) dumpPanic() {
	if s.cfg.CheckpointPath == "" || !s.panicDumped.CompareAndSwap(false, true) {
		return
	}
	if err := s.writeFlightDump(s.flightPanicPath()); err != nil {
		s.cfg.Logf("serve: panic flight dump failed: %v", err)
	} else {
		s.cfg.Logf("serve: panic flight dump written to %s", s.flightPanicPath())
	}
}
