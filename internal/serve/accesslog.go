package serve

// Sampled structured access log. One JSON line per sampled request with
// the trace id, verdict counts, degradation mode and latency — enough to
// grep a bad verdict back to its flight-recorder timeline. The sample
// stride is multiplied by 4 per brownout level, so at level 3 the log
// writes 1/64th of its configured rate: logging exists to explain
// overload, never to amplify it. Dropped lines are counted, not silent.

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"crossfeature/internal/obs"
)

// accessLog writes sampled request lines to one writer. A nil *accessLog
// is inert, so the hot path needs no enabled check.
type accessLog struct {
	w      io.Writer
	sample uint64
	level  func() int

	ctr            atomic.Uint64
	lines, dropped *obs.Counter

	mu sync.Mutex
}

// newAccessLog builds a log writing one line per sample requests (sample
// < 1 means every request) to w; level reads the live brownout level.
func newAccessLog(w io.Writer, sample int, level func() int, lines, dropped *obs.Counter) *accessLog {
	if w == nil {
		return nil
	}
	if sample < 1 {
		sample = 1
	}
	return &accessLog{w: w, sample: uint64(sample), level: level, lines: lines, dropped: dropped}
}

// accessEntry is one log line. Latency is in milliseconds for grep-side
// ergonomics; the trace id links to /flightz for microsecond hops.
type accessEntry struct {
	Time      string  `json:"ts"`
	TraceID   string  `json:"trace_id"`
	Endpoint  string  `json:"endpoint"`
	Stream    string  `json:"stream,omitempty"`
	Records   int     `json:"records,omitempty"`
	Anomalies int     `json:"anomalies,omitempty"`
	Status    int     `json:"status"`
	Degraded  string  `json:"degraded,omitempty"`
	Error     string  `json:"error,omitempty"`
	LatencyMs float64 `json:"latency_ms"`
}

// log writes rt's line if it survives sampling. The effective stride is
// the configured sample rate shifted up 4x per brownout level.
func (l *accessLog) log(rt *obs.RequestTrace) {
	if l == nil || rt == nil {
		return
	}
	stride := l.sample << uint(2*l.level())
	if l.ctr.Add(1)%stride != 0 {
		l.dropped.Inc()
		return
	}
	entry := accessEntry{
		Time:      time.Unix(0, rt.StartUnixNanos).UTC().Format(time.RFC3339Nano),
		TraceID:   rt.TraceID,
		Endpoint:  rt.Endpoint,
		Stream:    rt.Stream,
		Records:   rt.Records,
		Anomalies: rt.Anomalies,
		Status:    rt.Status,
		Degraded:  rt.Degraded,
		Error:     rt.Err,
		LatencyMs: float64(rt.DurationMicros) / 1e3,
	}
	b, err := json.Marshal(entry)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
	l.lines.Inc()
}
