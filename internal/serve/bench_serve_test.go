package serve

// Serving throughput benchmark behind `make bench-serve`: per-record
// /v1/score versus /v1/score-batch over real HTTP at 1, 4 and 16 stream
// shards. Each case reports records/sec plus server-side p50/p99 request
// latency from the obs histogram, so the numbers land in BENCH_*.json
// with tail behaviour attached, not just an average.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"

	"net/http/httptest"
)

// benchStreams spreads load across enough streams that a sharded table
// actually exercises several shards, while staying far below MaxStreams
// so eviction never runs inside the measured region.
const benchStreams = 64

// benchBatchItems × benchBatchRecs records ride in one batch request.
const (
	benchBatchItems = 16
	benchBatchRecs  = 4
)

func benchServer(b *testing.B, shards int) (*Server, string) {
	b.Helper()
	s, _ := newTestServer(b, func(c *Config) {
		c.Shards = shards
		c.MaxStreams = 4096
		c.MaxQueueRecords = 1 << 30 // measure scoring, not shed policy
		c.MaxQueue = 1 << 20
		c.Logf = func(string, ...any) {}
	})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return s, ts.URL
}

// post fires one pre-marshalled request and drains the response; the
// benchmark fails fast on any non-200.
func benchPost(b *testing.B, client *http.Client, url string, body []byte) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Error(err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Errorf("status %d", resp.StatusCode)
	}
}

func reportLatency(b *testing.B, s *Server, records float64) {
	b.ReportMetric(records/b.Elapsed().Seconds(), "records/sec")
	p := s.met.latency.SnapshotPoint()
	b.ReportMetric(p.Quantile(0.50)*1e3, "p50-ms")
	b.ReportMetric(p.Quantile(0.99)*1e3, "p99-ms")
}

func BenchmarkServeThroughput(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		b.Run(fmt.Sprintf("path=record/shards=%d", shards), func(b *testing.B) {
			s, url := benchServer(b, shards)
			bodies := make([][]byte, benchStreams)
			for i := range bodies {
				body, err := json.Marshal(ScoreRequest{
					Stream:  fmt.Sprintf("bench-%d", i),
					Records: []Record{normalRecord(i)},
				})
				if err != nil {
					b.Fatal(err)
				}
				bodies[i] = body
			}
			b.SetParallelism(2 * runtime.GOMAXPROCS(0))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client := &http.Client{}
				for i := 0; pb.Next(); i++ {
					benchPost(b, client, url+"/v1/score", bodies[i%benchStreams])
				}
			})
			b.StopTimer()
			reportLatency(b, s, float64(b.N)) // one record per op
		})
		b.Run(fmt.Sprintf("path=batch/shards=%d", shards), func(b *testing.B) {
			s, url := benchServer(b, shards)
			// Rotate batches over the stream set so every shard stays warm.
			nBatches := benchStreams / benchBatchItems
			bodies := make([][]byte, nBatches)
			for bi := range bodies {
				items := make([]ScoreRequest, benchBatchItems)
				for j := range items {
					recs := make([]Record, benchBatchRecs)
					for k := range recs {
						recs[k] = normalRecord(j*benchBatchRecs + k)
					}
					items[j] = ScoreRequest{
						Stream:  fmt.Sprintf("bench-%d", bi*benchBatchItems+j),
						Records: recs,
					}
				}
				body, err := json.Marshal(BatchScoreRequest{Items: items})
				if err != nil {
					b.Fatal(err)
				}
				bodies[bi] = body
			}
			b.SetParallelism(2 * runtime.GOMAXPROCS(0))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client := &http.Client{}
				for i := 0; pb.Next(); i++ {
					benchPost(b, client, url+"/v1/score-batch", bodies[i%nBatches])
				}
			})
			b.StopTimer()
			reportLatency(b, s, float64(b.N)*benchBatchItems*benchBatchRecs)
		})
	}
}
