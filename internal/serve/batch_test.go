package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"crossfeature/internal/core"
)

func TestScoreBatchEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, br := postScoreBatch(t, ts.URL, BatchScoreRequest{Items: []ScoreRequest{
		{Stream: "node-1", Records: records(20, normalRecord)},
		{Stream: "node-2", Records: records(30, anomalousRecord)},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if br.ModelVersion != 1 || br.RecordsScored != 50 || len(br.Items) != 2 {
		t.Fatalf("batch response = %+v", br)
	}
	if len(br.Items[0].Results) != 20 || br.Items[0].Stream != "node-1" {
		t.Errorf("item 0 = %q with %d results", br.Items[0].Stream, len(br.Items[0].Results))
	}
	for i, r := range br.Items[0].Results {
		if r.Invalid || r.Alarm {
			t.Errorf("normal stream record %d: %+v", i, r)
		}
	}
	// The anomalous stream's sustained run raises its alarm; node-1 is
	// untouched by it.
	last := br.Items[1].Results[len(br.Items[1].Results)-1]
	if !last.Alarm {
		t.Error("sustained anomaly never raised the batch stream's alarm")
	}
	_, br = postScoreBatch(t, ts.URL, BatchScoreRequest{Items: []ScoreRequest{
		{Stream: "node-1", Records: records(1, normalRecord)},
	}})
	if br.Items[0].Results[0].Alarm {
		t.Error("node-2 incident leaked into node-1's stream state")
	}

	st := s.Stats()
	if st.BatchRequests != 2 || st.RecordsScored != 51 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScoreBatchPartialFailure(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := ScoreRequest{Stream: "bad", Records: []Record{
		{Values: []float64{1, 2, 3, 4}},
		{Values: []float64{1, 2}}, // wrong width: fails the whole item
	}}
	resp, br := postScoreBatch(t, ts.URL, BatchScoreRequest{Items: []ScoreRequest{
		{Stream: "good", Records: records(3, normalRecord)},
		bad,
		{Stream: "", Records: records(1, normalRecord)}, // invalid item
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial failure status = %d, want 200 with per-item errors", resp.StatusCode)
	}
	if br.Items[0].Error != "" || len(br.Items[0].Results) != 3 {
		t.Errorf("good item degraded: %+v", br.Items[0])
	}
	if br.Items[1].Error == "" || br.Items[1].Results != nil {
		t.Errorf("bad item not rejected atomically: %+v", br.Items[1])
	}
	if br.Items[2].Error == "" {
		t.Errorf("invalid item not rejected: %+v", br.Items[2])
	}
	if br.RecordsScored != 3 {
		t.Errorf("records scored = %d, want 3 (failed items score nothing)", br.RecordsScored)
	}
	// Atomicity: a failed item never reaches the stream table, so the bad
	// item's first (valid) record touched no detector state at all.
	if s.streams.len() != 1 {
		t.Errorf("streams = %d, want 1 (failed/invalid items create no stream)", s.streams.len())
	}
	if st := s.Stats(); st.BadRequests != 2 {
		t.Errorf("bad requests = %d, want 2 (one per failed item)", st.BadRequests)
	}
}

func TestScoreBatchRejectsOversizedAndEmpty(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.MaxBatchRecords = 10 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postScoreBatch(t, ts.URL, BatchScoreRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postScoreBatch(t, ts.URL, BatchScoreRequest{Items: []ScoreRequest{
		{Stream: "a", Records: records(6, normalRecord)},
		{Stream: "b", Records: records(6, normalRecord)},
	}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-limit batch status = %d, want 413", resp.StatusCode)
	}
	if st := s.Stats(); st.RecordsScored != 0 {
		t.Errorf("rejected batches scored %d records", st.RecordsScored)
	}
}

// TestBatchShardedDifferential is the acceptance differential: a sharded
// server fed through /v1/score-batch must produce byte-identical
// per-stream verdict sequences to a single-shard server fed the same
// records one request at a time through /v1/score, for the same
// per-stream interleaving.
func TestBatchShardedDifferential(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	writeTestBundle(t, path)
	mk := func(shards int) (*Server, *httptest.Server) {
		s, err := New(Config{
			ModelPath: path,
			Shards:    shards,
			Logf:      func(format string, args ...any) { t.Logf(format, args...) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s.Handler())
	}
	_, single := mk(1)
	defer single.Close()
	_, sharded := mk(8)
	defer sharded.Close()

	const streams, rounds, perRound = 6, 8, 5
	rng := rand.New(rand.NewSource(42))
	gen := func(stream, i int) Record {
		if (stream+i)%3 == 0 {
			return anomalousRecord(i)
		}
		return normalRecord(i)
	}
	// Pre-draw every record so both servers see the exact same values.
	recs := make([][]Record, streams)
	for sid := range recs {
		for r := 0; r < rounds*perRound; r++ {
			recs[sid] = append(recs[sid], gen(sid, int(rng.Int31n(100))))
		}
	}

	perRecord := make([][]RecordResult, streams)
	batched := make([][]RecordResult, streams)
	for round := 0; round < rounds; round++ {
		items := make([]ScoreRequest, 0, streams)
		for sid := 0; sid < streams; sid++ {
			chunk := recs[sid][round*perRound : (round+1)*perRound]
			items = append(items, ScoreRequest{Stream: fmt.Sprintf("s-%d", sid), Records: chunk})
			// The per-record path sees the same chunk one record per
			// request — same per-stream order, maximally different framing.
			for _, rec := range chunk {
				resp, sr := postScore(t, single.URL, ScoreRequest{
					Stream:  fmt.Sprintf("s-%d", sid),
					Records: []Record{rec},
				})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("per-record path status = %d", resp.StatusCode)
				}
				perRecord[sid] = append(perRecord[sid], sr.Results...)
			}
		}
		resp, br := postScoreBatch(t, sharded.URL, BatchScoreRequest{Items: items})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch path status = %d", resp.StatusCode)
		}
		for sid, item := range br.Items {
			if item.Error != "" {
				t.Fatalf("batch item %d error: %s", sid, item.Error)
			}
			batched[sid] = append(batched[sid], item.Results...)
		}
	}
	for sid := 0; sid < streams; sid++ {
		a, err := json.Marshal(perRecord[sid])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(batched[sid])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("stream %d: sharded batch verdicts diverge from single-table per-record:\nper-record: %s\nbatched:    %s", sid, a, b)
		}
	}
}

// TestChaosShardTableHammer races get/evict/snapshot/insert/len across
// every shard under -race (the serve-chaos target soaks it): no lost
// streams, no deadlocks, capacity respected throughout.
func TestChaosShardTableHammer(t *testing.T) {
	defer leakCheck(t)()
	det := writeTestBundle(t, filepath.Join(t.TempDir(), "m.bin")).Detector()
	const maxStreams, shards, workers, opsPerWorker = 64, 8, 8, 400
	tbl := newStreamTable(maxStreams, shards, nil)
	var evictions sync.Map
	tbl.onEvict = func(id string) { evictions.Store(id, true) }
	tbl.onCreate = func(id string) {
		// Callbacks run outside the shard lock, so calling back into the
		// table must be safe — this is the regression the callback-ordering
		// fix pins. Deadlock here fails the test by timeout.
		_ = tbl.len()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				id := fmt.Sprintf("h-%d", rng.Int31n(200))
				switch i % 5 {
				case 0, 1, 2:
					st := tbl.get(id, func() *core.OnlineDetector { return core.NewOnlineDetector(det) })
					st.mu.Lock()
					st.od.ObserveScore(0.5)
					st.mu.Unlock()
				case 3:
					states, _ := tbl.snapshot()
					for _, s := range states {
						if len(s.state) != core.OnlineStateLen {
							t.Errorf("snapshot state %q has %d bytes", s.id, len(s.state))
							return
						}
					}
				case 4:
					od := core.NewOnlineDetector(det)
					tbl.insert(fmt.Sprintf("r-%d", rng.Int31n(50)), od)
				}
			}
		}(w)
	}
	wg.Wait()

	perShard := (maxStreams + shards - 1) / shards
	total := 0
	for i := 0; i < tbl.numShards(); i++ {
		n := tbl.shardLen(i)
		if n > perShard {
			t.Errorf("shard %d holds %d streams, cap %d", i, n, perShard)
		}
		total += n
	}
	if total != tbl.len() {
		t.Errorf("shard lengths sum to %d, len() = %d", total, tbl.len())
	}
	if total > maxStreams+shards-1 {
		t.Errorf("table holds %d streams, bound %d", total, maxStreams+shards-1)
	}
}

// TestCheckpointShardedRoundTrip proves checkpoint state is portable
// across shard layouts: a table snapshotted at one shard count restores
// byte-identically into another, stream for stream.
func TestCheckpointShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	ckpt := filepath.Join(dir, "streams.ckpt")
	writeTestBundle(t, path)
	mk := func(shards int) *Server {
		s, err := New(Config{
			ModelPath:      path,
			Shards:         shards,
			CheckpointPath: ckpt,
			Logf:           func(format string, args ...any) { t.Logf(format, args...) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	a := mk(8)
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()
	const streams = 37
	items := make([]ScoreRequest, 0, streams)
	for i := 0; i < streams; i++ {
		items = append(items, ScoreRequest{
			Stream:  fmt.Sprintf("node-%d", i),
			Records: records(3+i%4, normalRecord),
		})
	}
	if resp, _ := postScoreBatch(t, ts.URL, BatchScoreRequest{Items: items}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status = %d", resp.StatusCode)
	}
	info, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Streams != streams || info.Skipped != 0 {
		t.Fatalf("checkpoint info = %+v, want %d streams, 0 skipped", info, streams)
	}
	stateOf := func(s *Server) map[string]string {
		states, skipped := s.streams.snapshot()
		if skipped != 0 {
			t.Fatalf("snapshot skipped %d idle streams", skipped)
		}
		m := make(map[string]string, len(states))
		for _, st := range states {
			m[st.id] = string(st.state)
		}
		return m
	}
	want := stateOf(a)

	// Restore into a different shard layout: every stream lands (hashed
	// onto its new shard) with byte-identical detector state.
	b := mk(2)
	if restored := b.RestoreCheckpoint(); restored != streams {
		t.Fatalf("restored %d streams into 2-shard table, want %d", restored, streams)
	}
	got := stateOf(b)
	if len(got) != len(want) {
		t.Fatalf("restored table has %d streams, want %d", len(got), len(want))
	}
	for id, st := range want {
		if got[id] != st {
			t.Errorf("stream %q state diverged across the 8->2 shard round-trip", id)
		}
	}

	// And the re-encoded checkpoint payload is byte-identical modulo
	// ordering: re-checkpoint from b, restore into a third layout, same
	// states again.
	if _, err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := mk(16)
	if restored := c.RestoreCheckpoint(); restored != streams {
		t.Fatalf("restored %d streams into 16-shard table, want %d", restored, streams)
	}
	got = stateOf(c)
	for id, st := range want {
		if got[id] != st {
			t.Errorf("stream %q state diverged across the 2->16 shard round-trip", id)
		}
	}
}
