package serve

// Tests for the request-tracing layer: header propagation end to end,
// exemplars resolving to flight-recorder timelines (the chaos-side
// debugging loop), access-log sampling under brownout, and SLO burn rate
// as opt-in overload evidence.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crossfeature/internal/obs"
)

// scoreHops is the full-fidelity pipeline in stamp order; every traced
// 200 on /v1/score must carry exactly these.
var scoreHops = []string{"decode", "admit", "transform", "kernel", "lock", "observe"}

// findTrace returns the dump's trace with the given id, or nil.
func findTrace(d obs.FlightDump, id string) *obs.RequestTrace {
	for i := range d.Traces {
		if d.Traces[i].TraceID == id {
			return &d.Traces[i]
		}
	}
	return nil
}

// assertTimeline checks rt carries the named hops in order with
// non-decreasing offsets bounded by the request duration.
func assertTimeline(t *testing.T, rt *obs.RequestTrace, hops []string) {
	t.Helper()
	if len(rt.Hops) != len(hops) {
		t.Fatalf("trace %s hops = %+v, want %v", rt.TraceID, rt.Hops, hops)
	}
	last := int64(0)
	for i, h := range rt.Hops {
		if h.Name != hops[i] {
			t.Errorf("hop %d = %q, want %q", i, h.Name, hops[i])
		}
		if h.OffsetMicros < last {
			t.Errorf("hop %q offset %d precedes previous %d", h.Name, h.OffsetMicros, last)
		}
		last = h.OffsetMicros
	}
	if last > rt.DurationMicros {
		t.Errorf("last hop at %dus is past the request duration %dus", last, rt.DurationMicros)
	}
}

func TestTraceHeaderPropagation(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A client-supplied trace context must be honoured and echoed.
	tc := obs.NewTraceContext()
	body, _ := json.Marshal(ScoreRequest{Stream: "traced", Records: records(3, normalRecord)})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/score", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, tc.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != tc.Header() {
		t.Errorf("response trace header = %q, want the propagated %q", got, tc.Header())
	}
	rt := findTrace(s.Flight().Dump(), tc.TraceID())
	if rt == nil {
		t.Fatalf("flight recorder has no trace %s", tc.TraceID())
	}
	if !rt.Propagated || rt.Endpoint != "score" || rt.Stream != "traced" || rt.Records != 3 || rt.Status != http.StatusOK {
		t.Errorf("recorded trace wrong: %+v", rt)
	}
	assertTimeline(t, rt, scoreHops)

	// No header: the server mints a fresh context and still echoes it.
	resp2, _ := postScore(t, ts.URL, ScoreRequest{Stream: "fresh", Records: records(1, normalRecord)})
	minted, ok := obs.ParseTraceContext(resp2.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("unheadered request echoed unparseable trace %q", resp2.Header.Get(obs.TraceHeader))
	}
	rt2 := findTrace(s.Flight().Dump(), minted.TraceID())
	if rt2 == nil {
		t.Fatalf("flight recorder has no trace for the minted id %s", minted.TraceID())
	}
	if rt2.Propagated {
		t.Error("server-minted trace marked as propagated")
	}
}

func TestTraceBatchEndpointTimeline(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, br := postScoreBatch(t, ts.URL, BatchScoreRequest{Items: []ScoreRequest{
		{Stream: "b-1", Records: records(10, normalRecord)},
		{Stream: "b-2", Records: records(10, anomalousRecord)},
	}})
	if br == nil {
		t.Fatal("batch score failed")
	}
	d := s.Flight().Dump()
	if len(d.Traces) != 1 {
		t.Fatalf("flight traces = %d, want 1", len(d.Traces))
	}
	rt := &d.Traces[0]
	if rt.Endpoint != "score-batch" || rt.Records != 20 {
		t.Errorf("batch trace wrong: %+v", rt)
	}
	if rt.Anomalies == 0 {
		t.Error("anomalous batch recorded zero anomalies in its trace")
	}
	assertTimeline(t, rt, scoreHops)
}

// TestChaosExemplarResolvesToFlightTimeline is the debugging loop the
// tracing layer exists for, under concurrent load: take the latency
// histogram's slowest exemplar (the p99 bucket's resident trace id) and
// resolve it through /flightz to a complete per-hop timeline.
func TestChaosExemplarResolvesToFlightTimeline(t *testing.T) {
	defer leakCheck(t)()
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if (i+j)%2 == 0 {
					postScore(t, ts.URL, ScoreRequest{Stream: "ex", Records: records(5, normalRecord)})
				} else {
					postScoreBatch(t, ts.URL, BatchScoreRequest{Items: []ScoreRequest{
						{Stream: "ex-b", Records: records(8, anomalousRecord)},
					}})
				}
			}
		}(i)
	}
	wg.Wait()

	exs := s.met.latency.Exemplars()
	if len(exs) == 0 {
		t.Fatal("latency histogram recorded no exemplars")
	}
	// The highest-bucket exemplar is the slowest request anyone can still
	// name — the one an operator chasing a bad p99 starts from.
	slowest := exs[len(exs)-1]
	if slowest.TraceID == "" {
		t.Fatal("slowest exemplar has no trace id")
	}

	// Resolve it through the real /flightz surface.
	fs := httptest.NewServer(obs.FlightHandler(s.Flight()))
	defer fs.Close()
	resp, err := http.Get(fs.URL + "/flightz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump obs.FlightDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Version != obs.FlightVersion {
		t.Fatalf("flight dump version = %d, want %d", dump.Version, obs.FlightVersion)
	}
	rt := findTrace(dump, slowest.TraceID)
	if rt == nil {
		t.Fatalf("exemplar trace %s not resolvable in the flight dump (%d traces)", slowest.TraceID, len(dump.Traces))
	}
	assertTimeline(t, rt, scoreHops)

	// The dump also carries the score exemplars registered at wiring time.
	found := false
	for _, set := range dump.Exemplars {
		if strings.HasPrefix(set.Metric, "cfa_score") && len(set.Exemplars) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("flight dump carries no score exemplars after scored traffic")
	}
}

// lockedBuf is an io.Writer safe to read while the access log writes.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAccessLogSampling(t *testing.T) {
	var buf lockedBuf
	lines, dropped := obs.NewCounter(), obs.NewCounter()
	lvl := 0
	al := newAccessLog(&buf, 2, func() int { return lvl }, lines, dropped)
	rt := &obs.RequestTrace{TraceID: "cafe", Endpoint: "score", Status: 200, DurationMicros: 1500}

	// Stride 2 at level 0: every second call writes.
	for i := 0; i < 8; i++ {
		al.log(rt)
	}
	if lines.Value() != 4 || dropped.Value() != 4 {
		t.Fatalf("level-0 sampling: %d lines, %d dropped, want 4/4", lines.Value(), dropped.Value())
	}
	// Brownout level 1 widens the stride 4x (to 8): one line in the next 8.
	lvl = 1
	for i := 0; i < 8; i++ {
		al.log(rt)
	}
	if lines.Value() != 5 {
		t.Fatalf("level-1 sampling wrote %d lines total, want 5", lines.Value())
	}

	var entry map[string]any
	line := strings.SplitN(buf.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, line)
	}
	if entry["trace_id"] != "cafe" || entry["status"] != float64(200) || entry["latency_ms"] != 1.5 {
		t.Errorf("access log entry wrong: %v", entry)
	}

	// A nil log (disabled) is inert.
	var disabled *accessLog
	disabled.log(rt)
}

func TestAccessLogEndToEnd(t *testing.T) {
	var buf lockedBuf
	s, _ := newTestServer(t, func(c *Config) { c.AccessLog = &buf })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postScore(t, ts.URL, ScoreRequest{Stream: "logged", Records: records(2, normalRecord)})
	deadline := time.Now().Add(2 * time.Second)
	for s.met.accessLogLines.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("access log line never written")
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(buf.String(), `"stream":"logged"`) {
		t.Errorf("access log line wrong: %s", buf.String())
	}
}

func TestSLOBurnRateAsOverloadEvidence(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.SLOBurnEvidence = true
		c.DisableAdaptiveOverload = true // drive the controller by hand
	})
	if ev := s.brown.overloadSignal(); ev.hot || ev.budgetHot {
		t.Fatalf("idle server already hot: %+v", ev)
	}
	// A total outage: burn rate ~100x on both windows, far past fast-burn.
	s.slo.Observe(0, 10_000)
	ev := s.brown.overloadSignal()
	if !ev.hot || !ev.budgetHot {
		t.Errorf("fast burn on both windows not treated as overload evidence: %+v", ev)
	}
	if ev.shedHot {
		t.Error("SLO burn must not widen the level-3 shed stride")
	}

	// Without the flag the same burn is observability, not control.
	s2, _ := newTestServer(t, func(c *Config) { c.DisableAdaptiveOverload = true })
	s2.slo.Observe(0, 10_000)
	if ev := s2.brown.overloadSignal(); ev.hot {
		t.Errorf("burn evidence leaked into the controller without SLOBurnEvidence: %+v", ev)
	}
}

func TestBrownoutTransitionsLandInFlightRecorder(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.DisableAdaptiveOverload = true })
	s.brown.shift(+1, "test-induced")
	var found bool
	for _, ev := range s.Flight().Dump().Events {
		if ev.Kind == "brownout" && strings.Contains(ev.Detail, "0 -> 1") {
			found = true
		}
	}
	if !found {
		t.Error("brownout shift not recorded as a flight event")
	}
}

func TestObserveSLOClassification(t *testing.T) {
	s, _ := newTestServer(t, nil)
	good := func() (g uint64) { g, _ = s.slo.GoodTotal(time.Minute); return }
	total := func() (tot uint64) { _, tot = s.slo.GoodTotal(time.Minute); return }

	// Fast 200: all records good.
	s.observeSLO(&obs.RequestTrace{Status: 200, Records: 10, DurationMicros: 1000})
	if good() != 10 || total() != 10 {
		t.Fatalf("fast 200: %d/%d, want 10/10", good(), total())
	}
	// Slow 200 (over the 1s default SLO): records served but not good.
	s.observeSLO(&obs.RequestTrace{Status: 200, Records: 5, DurationMicros: 2_000_000})
	if good() != 10 || total() != 15 {
		t.Fatalf("slow 200: %d/%d, want 10/15", good(), total())
	}
	// Shed 429 with no decoded body: charged as one bad record.
	s.observeSLO(&obs.RequestTrace{Status: 429})
	if good() != 10 || total() != 16 {
		t.Fatalf("shed 429: %d/%d, want 10/16", good(), total())
	}
	// Client mistake: not SLO traffic.
	s.observeSLO(&obs.RequestTrace{Status: 400, Records: 3})
	if total() != 16 {
		t.Fatalf("4xx counted as SLO traffic: total %d", total())
	}
	// Server error: all bad.
	s.observeSLO(&obs.RequestTrace{Status: 500, Records: 4, DurationMicros: 10})
	if good() != 10 || total() != 20 {
		t.Fatalf("500: %d/%d, want 10/20", good(), total())
	}
}
