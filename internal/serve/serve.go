// Package serve is the hardened streaming scoring service behind `cfa
// serve`: it loads a trained model bundle and scores audit records posted
// over HTTP, keeping one core.OnlineDetector per client stream.
//
// Robustness is the feature set, in the spirit of the paper's "run the
// detector on live nodes" deployment story:
//
//   - a bounded, deadline-aware admission queue sheds overload with an
//     explicit 429 instead of unbounded latency;
//   - every request runs under panic recovery and a hard deadline, and
//     slow or stalled clients are bounded by a body read deadline;
//   - the model hot-reloads atomically — a new file is fully validated
//     (versioned header, CRC, decode, structural checks) before a single
//     pointer swap, and a corrupt or truncated file leaves the old model
//     serving with the failure surfaced in /readyz;
//   - SIGTERM (a cancelled Run context) drains: in-flight requests
//     finish, new connections stop, goroutines exit;
//   - the per-stream detector table is LRU-bounded so hostile or churning
//     stream ids cannot grow memory without bound.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"crossfeature/internal/core"
)

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	// ModelPath is the bundle written by `cfa train` (required). It is
	// also the path re-read on every reload.
	ModelPath string
	// MaxConcurrent bounds requests scoring at once; default GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot beyond MaxConcurrent;
	// everything past it is shed with 429. Default 64.
	MaxQueue int
	// RequestTimeout is the per-request deadline covering queue wait, body
	// read and scoring. Default 5s.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful shutdown; connections still open
	// after it are forcibly closed. Default 10s.
	DrainTimeout time.Duration
	// MaxStreams caps the LRU stream table. Default 1024.
	MaxStreams int
	// MaxBodyBytes caps a score request body. Default 1 MiB.
	MaxBodyBytes int64
	// Smoothing, RaiseAfter and ClearAfter configure each stream's online
	// detector; zero values take the core defaults.
	Smoothing  float64
	RaiseAfter int
	ClearAfter int
	// Logf sinks operational log lines; default log.Printf.
	Logf func(format string, args ...any)

	// scoreHook, when set, runs inside the scoring handler after
	// admission. It exists for the chaos tests: blocking here simulates
	// slow scoring, panicking here exercises recovery.
	scoreHook func(stream string)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Record is one raw (pre-discretisation) audit vector.
type Record struct {
	Time   float64   `json:"time,omitempty"`
	Values []float64 `json:"values"`
}

// ScoreRequest scores a batch of records on one stream's detector.
type ScoreRequest struct {
	Stream  string   `json:"stream"`
	Records []Record `json:"records"`
}

// RecordResult is the detector state after one record. A non-finite raw
// score is reported as Score -1 with Invalid set (JSON cannot carry NaN);
// such records always count as anomalous.
type RecordResult struct {
	Time     float64 `json:"time,omitempty"`
	Score    float64 `json:"score"`
	Smoothed float64 `json:"smoothed"`
	Anomaly  bool    `json:"anomaly"`
	Alarm    bool    `json:"alarm"`
	Raised   bool    `json:"raised,omitempty"`
	Cleared  bool    `json:"cleared,omitempty"`
	Invalid  bool    `json:"invalid,omitempty"`
}

// ScoreResponse is the reply to a ScoreRequest.
type ScoreResponse struct {
	Stream       string         `json:"stream"`
	ModelVersion uint64         `json:"model_version"`
	Results      []RecordResult `json:"results"`
}

// Readiness is the /readyz payload.
type Readiness struct {
	Ready           bool   `json:"ready"`
	Draining        bool   `json:"draining"`
	ModelVersion    uint64 `json:"model_version"`
	ModelPath       string `json:"model_path"`
	Reloads         uint64 `json:"reloads"`
	ReloadFailures  uint64 `json:"reload_failures"`
	LastReloadError string `json:"last_reload_error,omitempty"`
}

// Stats is the /statz payload.
type Stats struct {
	Requests       uint64 `json:"requests"`
	RecordsScored  uint64 `json:"records_scored"`
	Shed           uint64 `json:"shed"`
	QueueTimeouts  uint64 `json:"queue_timeouts"`
	BadRequests    uint64 `json:"bad_requests"`
	Panics         uint64 `json:"panics"`
	QueueDepth     int64  `json:"queue_depth"`
	QueueHighWater int64  `json:"queue_high_water"`
	Streams        int    `json:"streams"`
	Evictions      uint64 `json:"stream_evictions"`
	ModelVersion   uint64 `json:"model_version"`
	Reloads        uint64 `json:"reloads"`
	ReloadFailures uint64 `json:"reload_failures"`
}

// Server is the scoring service. Construct with New, expose with
// Handler, run with Run.
type Server struct {
	cfg      Config
	model    *modelHolder
	streams  *streamTable
	adm      *admitter
	draining atomic.Bool
	mux      *http.ServeMux

	requests    atomic.Uint64
	scored      atomic.Uint64
	badRequests atomic.Uint64
	panics      atomic.Uint64
}

// New loads and validates the model bundle and builds the service. A
// missing, truncated or checksum-mismatched model fails here, before any
// socket is bound.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("serve: ModelPath is required")
	}
	s := &Server{
		cfg:     cfg,
		model:   newModelHolder(cfg.ModelPath),
		streams: newStreamTable(cfg.MaxStreams),
		adm:     newAdmitter(cfg.MaxConcurrent, cfg.MaxQueue),
	}
	if err := s.model.reload(); err != nil {
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	return s, nil
}

// Handler returns the full middleware stack: panic recovery outermost,
// then routing.
func (s *Server) Handler() http.Handler { return s.recoverWrap(s.mux) }

// Reload re-reads the model file and atomically installs it; on failure
// the previous model keeps serving and the error is surfaced in /readyz.
func (s *Server) Reload() error {
	err := s.model.reload()
	if err != nil {
		s.cfg.Logf("serve: model reload failed, keeping version %d: %v",
			s.model.current().version, err)
		return err
	}
	s.cfg.Logf("serve: model reloaded, now version %d", s.model.current().version)
	return nil
}

// Draining reports whether the server is in graceful shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// Readiness snapshots the reload/drain condition /readyz reports.
func (s *Server) Readiness() Readiness {
	r := Readiness{
		Draining:       s.draining.Load(),
		ModelPath:      s.cfg.ModelPath,
		Reloads:        s.model.reloads.Load(),
		ReloadFailures: s.model.failures.Load(),
	}
	if lm := s.model.current(); lm != nil {
		r.ModelVersion = lm.version
		r.Ready = !r.Draining
	}
	r.LastReloadError = s.model.lastError()
	return r
}

// Stats snapshots the operational counters /statz reports.
func (s *Server) Stats() Stats {
	depth, hw := s.adm.depth()
	st := Stats{
		Requests:       s.requests.Load(),
		RecordsScored:  s.scored.Load(),
		Shed:           s.adm.shed.Load(),
		QueueTimeouts:  s.adm.timeouts.Load(),
		BadRequests:    s.badRequests.Load(),
		Panics:         s.panics.Load(),
		QueueDepth:     depth,
		QueueHighWater: hw,
		Streams:        s.streams.len(),
		Evictions:      s.streams.evictions.Load(),
		Reloads:        s.model.reloads.Load(),
		ReloadFailures: s.model.failures.Load(),
	}
	if lm := s.model.current(); lm != nil {
		st.ModelVersion = lm.version
	}
	return st
}

// Run serves on ln until ctx is cancelled, then drains gracefully:
// in-flight requests get DrainTimeout to finish while new connections are
// refused; whatever survives the timeout is force-closed.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: listener failed: %w", err)
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.cfg.Logf("serve: draining (timeout %s)", s.cfg.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	if err != nil {
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}

// recoverWrap converts a handler panic into a 500 and a counter bump
// instead of a dead worker; one poisoned request must not take the
// process (or any other request) down with it.
func (s *Server) recoverWrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.panics.Add(1)
				s.cfg.Logf("serve: panic in %s %s: %v", r.Method, r.URL.Path, p)
				writeJSONError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		h.ServeHTTP(w, r)
	})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	release, err := s.adm.admit(ctx)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer release()

	// Slow clients may not hold a scoring slot past the deadline: the
	// body must arrive before it. (Best effort — not every
	// ResponseWriter supports read deadlines.) The deadline is cleared
	// once the body is in so a keep-alive connection is reusable.
	rc := http.NewResponseController(w)
	if deadline, ok := ctx.Deadline(); ok {
		rc.SetReadDeadline(deadline)
	}
	var req ScoreRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		s.badRequests.Add(1)
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			writeJSONError(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.Is(err, os.ErrDeadlineExceeded), ctx.Err() != nil:
			writeJSONError(w, http.StatusRequestTimeout, "request body did not arrive within the deadline")
		default:
			writeJSONError(w, http.StatusBadRequest, "malformed score request: "+err.Error())
		}
		return
	}
	rc.SetReadDeadline(time.Time{})
	if req.Stream == "" || len(req.Records) == 0 {
		s.badRequests.Add(1)
		writeJSONError(w, http.StatusBadRequest, "score request needs a stream id and at least one record")
		return
	}
	if hook := s.cfg.scoreHook; hook != nil {
		hook(req.Stream)
	}

	lm := s.model.current()
	st := s.streams.get(req.Stream, func() *core.OnlineDetector {
		od := core.NewOnlineDetector(lm.detector)
		if s.cfg.Smoothing > 0 {
			od.Smoothing = s.cfg.Smoothing
		}
		if s.cfg.RaiseAfter > 0 {
			od.RaiseAfter = s.cfg.RaiseAfter
		}
		if s.cfg.ClearAfter > 0 {
			od.ClearAfter = s.cfg.ClearAfter
		}
		return od
	})

	resp := ScoreResponse{Stream: req.Stream, ModelVersion: lm.version, Results: make([]RecordResult, 0, len(req.Records))}
	st.mu.Lock()
	if st.version != lm.version {
		st.od.SwapDetector(lm.detector)
		st.version = lm.version
	}
	for _, rec := range req.Records {
		x, err := lm.bundle.Discretizer.Transform(rec.Values)
		if err != nil {
			st.mu.Unlock()
			s.badRequests.Add(1)
			writeJSONError(w, http.StatusBadRequest, "bad record: "+err.Error())
			return
		}
		state := st.od.Observe(x)
		rr := RecordResult{
			Time:     rec.Time,
			Score:    state.Score,
			Smoothed: state.Smoothed,
			Anomaly:  state.Score < lm.detector.Threshold,
			Alarm:    state.Alarm,
			Raised:   state.Raised,
			Cleared:  state.Cleared,
		}
		if !isFinite(state.Score) {
			rr.Score, rr.Anomaly, rr.Invalid = -1, true, true
		}
		if !isFinite(state.Smoothed) {
			rr.Smoothed = -1
		}
		resp.Results = append(resp.Results, rr)
	}
	st.mu.Unlock()
	s.scored.Add(uint64(len(resp.Results)))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.Readiness())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := s.Readiness()
	code := http.StatusOK
	if !rd.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rd)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
