// Package serve is the hardened streaming scoring service behind `cfa
// serve`: it loads a trained model bundle and scores audit records posted
// over HTTP, keeping one core.OnlineDetector per client stream.
//
// Robustness is the feature set, in the spirit of the paper's "run the
// detector on live nodes" deployment story:
//
//   - a bounded, deadline-aware admission queue sheds overload with an
//     explicit 429 instead of unbounded latency;
//   - every request runs under panic recovery and a hard deadline, and
//     slow or stalled clients are bounded by a body read deadline;
//   - the model hot-reloads atomically — a new file is fully validated
//     (versioned header, CRC, decode, structural checks) before a single
//     pointer swap, and a corrupt or truncated file leaves the old model
//     serving with the failure surfaced in /readyz;
//   - SIGTERM (a cancelled Run context) drains: in-flight requests
//     finish, new connections stop, goroutines exit;
//   - the per-stream detector table is LRU-bounded so hostile or churning
//     stream ids cannot grow memory without bound.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"crossfeature/internal/core"
	"crossfeature/internal/obs"
)

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	// ModelPath is the bundle written by `cfa train` (required). It is
	// also the path re-read on every reload.
	ModelPath string
	// MaxConcurrent bounds requests scoring at once; default GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot beyond MaxConcurrent;
	// everything past it is shed with 429. Default 64.
	MaxQueue int
	// RequestTimeout is the per-request deadline covering queue wait, body
	// read and scoring. Default 5s.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful shutdown; connections still open
	// after it are forcibly closed. Default 10s.
	DrainTimeout time.Duration
	// MaxStreams caps the LRU stream table. Default 1024.
	MaxStreams int
	// Shards is the stream-table shard count (rounded up to a power of
	// two); distinct streams on different shards never share a lock.
	// Default GOMAXPROCS.
	Shards int
	// MaxBodyBytes caps a score request body. Default 1 MiB.
	MaxBodyBytes int64
	// MaxBatchBodyBytes caps a /v1/score-batch request body; batches carry
	// orders of magnitude more records than a single-stream request.
	// Default 8 MiB.
	MaxBatchBodyBytes int64
	// MaxBatchRecords caps the records in one /v1/score-batch request
	// (413 beyond it). Default 4096.
	MaxBatchRecords int
	// MaxInFlightRequests caps score requests concurrently inside a
	// handler, counted from before the body decode. Record-level
	// admission only runs after the body is parsed; this earlier, cruder
	// gate keeps an open-loop storm from spending the whole CPU budget on
	// parsing bodies it would then shed. Default 16*(MaxConcurrent +
	// MaxQueue), floored at 256.
	MaxInFlightRequests int
	// MaxQueueRecords bounds the records admitted or queued across all
	// in-flight requests — the shed policy in units of scoring work, on
	// top of MaxQueue's bound in requests. Default 4*MaxBatchRecords.
	MaxQueueRecords int64
	// Smoothing, RaiseAfter and ClearAfter configure each stream's online
	// detector; zero values take the core defaults.
	Smoothing  float64
	RaiseAfter int
	ClearAfter int
	// CheckpointPath, when set, enables durable per-stream detector state:
	// the stream table is checkpointed here periodically, on clean
	// shutdown, and on POST /v1/checkpoint, and restored from here on
	// boot. Empty disables checkpointing.
	CheckpointPath string
	// CheckpointInterval is the periodic checkpoint cadence; default 15s
	// when CheckpointPath is set.
	CheckpointInterval time.Duration
	// CheckpointMaxAge bounds how old a checkpoint may be and still be
	// restored — EWMA state from hours ago describes traffic that no
	// longer exists, and resuming hysteresis mid-incident from stale data
	// would raise alarms about the past. Older files are skipped with a
	// counter. Default 1h; negative disables the age check.
	CheckpointMaxAge time.Duration
	// Logf sinks operational log lines; default log.Printf.
	Logf func(format string, args ...any)
	// Registry receives the service's operational metrics; nil builds a
	// private one. Pass a shared registry to expose the counters on a
	// debug listener's /metrics alongside other subsystems.
	Registry *obs.Registry
	// FeatureMetrics additionally records, for every scored record, which
	// sub-models matched and what probability they assigned — the
	// per-feature families cfa inspect-style tooling reads. Each record is
	// explained as well as scored, roughly doubling scoring cost, so this
	// is opt-in.
	FeatureMetrics bool
	// DisableAdaptiveOverload turns off the AIMD record-budget limiter and
	// brownout controller, leaving only the static admission bounds. The
	// adaptive controller is on by default: it only acts under sustained
	// overload, so an unloaded service behaves identically either way.
	DisableAdaptiveOverload bool
	// OverloadTarget is the projected queue-drain time (per-record EWMA
	// times record backlog over parallelism) past which a controller tick
	// counts the service as overloaded. Default RequestTimeout/5 — the
	// queue should clear well inside a request's deadline.
	OverloadTarget time.Duration
	// BrownoutTick is the overload-controller cadence. Default 100ms.
	BrownoutTick time.Duration
	// BrownoutEnterAfter and BrownoutExitAfter are the hysteresis dwells:
	// consecutive overloaded ticks before the brownout level rises, and
	// consecutive calm ticks before it falls. Exit is slower than entry so
	// the level does not flap at the saturation boundary. Defaults 3 and 10.
	BrownoutEnterAfter int
	BrownoutExitAfter  int

	// SLOLatency is the per-request latency bound the burn-rate monitor
	// scores goodput against — the same definition cfa loadgen reports
	// (records inside 200s faster than this are good; shed, timed-out and
	// errored records burn budget). Default 1s; negative disables the
	// monitor.
	SLOLatency time.Duration
	// SLOObjective is the availability objective (target good fraction)
	// the burn rate is normalised by. Default 0.99.
	SLOObjective float64
	// SLOBurnEvidence, when set, lets the brownout controller consume the
	// burn-rate monitor as overload evidence: both the 5m and 1h windows
	// burning past obs.FastBurnThreshold count a tick as hot. Off by
	// default — the monitor observes shed traffic, so this loop is
	// partially self-referential and is opt-in until proven out.
	SLOBurnEvidence bool
	// FlightTraceCap bounds the flight recorder's completed-trace ring
	// (events have their own equal-sized ring). Default 256.
	FlightTraceCap int
	// AccessLog, when set, receives one structured JSON line per sampled
	// request. Nil disables the access log.
	AccessLog io.Writer
	// AccessLogSample logs one request in this many (1 = every request).
	// Under brownout the effective stride is multiplied by 4 per level so
	// logging can never amplify overload. Default 1.
	AccessLogSample int

	// scoreHook, when set, runs inside the scoring handler after
	// admission. It exists for the chaos tests: blocking here simulates
	// slow scoring, panicking here exercises recovery.
	scoreHook func(stream string)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 1024
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchBodyBytes <= 0 {
		c.MaxBatchBodyBytes = 8 << 20
	}
	if c.MaxBatchRecords <= 0 {
		c.MaxBatchRecords = 4096
	}
	if c.MaxQueueRecords <= 0 {
		c.MaxQueueRecords = 4 * int64(c.MaxBatchRecords)
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 15 * time.Second
	}
	if c.OverloadTarget <= 0 {
		c.OverloadTarget = c.RequestTimeout / 5
	}
	if c.BrownoutTick <= 0 {
		c.BrownoutTick = 100 * time.Millisecond
	}
	if c.BrownoutEnterAfter <= 0 {
		c.BrownoutEnterAfter = 3
	}
	if c.BrownoutExitAfter <= 0 {
		c.BrownoutExitAfter = 10
	}
	if c.CheckpointMaxAge == 0 {
		c.CheckpointMaxAge = time.Hour
	}
	if c.SLOLatency == 0 {
		c.SLOLatency = time.Second
	}
	if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
		c.SLOObjective = 0.99
	}
	if c.FlightTraceCap <= 0 {
		c.FlightTraceCap = 256
	}
	if c.AccessLogSample < 1 {
		c.AccessLogSample = 1
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Record is one raw (pre-discretisation) audit vector.
type Record struct {
	Time   float64   `json:"time,omitempty"`
	Values []float64 `json:"values"`
}

// ScoreRequest scores a batch of records on one stream's detector.
type ScoreRequest struct {
	Stream  string   `json:"stream"`
	Records []Record `json:"records"`
}

// RecordResult is the detector state after one record. A non-finite raw
// score is reported as Score -1 with Invalid set (JSON cannot carry NaN);
// such records always count as anomalous.
type RecordResult struct {
	Time     float64 `json:"time,omitempty"`
	Score    float64 `json:"score"`
	Smoothed float64 `json:"smoothed"`
	Anomaly  bool    `json:"anomaly"`
	Alarm    bool    `json:"alarm"`
	Raised   bool    `json:"raised,omitempty"`
	Cleared  bool    `json:"cleared,omitempty"`
	Invalid  bool    `json:"invalid,omitempty"`
}

// ScoreResponse is the reply to a ScoreRequest. Degraded, when non-empty,
// names the brownout mode the verdicts were served under (it mirrors the
// X-CFA-Degraded header): "extras-off", "nb-only", or either with "+shed"
// appended. Full-fidelity responses omit it.
type ScoreResponse struct {
	Stream       string         `json:"stream"`
	ModelVersion uint64         `json:"model_version"`
	Results      []RecordResult `json:"results"`
	Degraded     string         `json:"degraded,omitempty"`
}

// Readiness is the /readyz payload. Ready is false while draining and
// while the boot-time checkpoint restore is still in flight, so a load
// balancer holds traffic until stream state is as warm as it will get.
type Readiness struct {
	Ready            bool   `json:"ready"`
	Draining         bool   `json:"draining"`
	Restoring        bool   `json:"restoring"`
	ModelVersion     uint64 `json:"model_version"`
	ModelPath        string `json:"model_path"`
	Reloads          uint64 `json:"reloads"`
	ReloadFailures   uint64 `json:"reload_failures"`
	LastReloadError  string `json:"last_reload_error,omitempty"`
	LastRestoreError string `json:"last_restore_error,omitempty"`
}

// Stats is the /statz payload. It is a JSON projection of the same obs
// counters /metrics exposes — one source of truth, two encodings.
type Stats struct {
	Requests       uint64  `json:"requests"`
	BatchRequests  uint64  `json:"batch_requests"`
	RecordsScored  uint64  `json:"records_scored"`
	Shed           uint64  `json:"shed"`
	ShedRecords    uint64  `json:"shed_records"`
	QueueTimeouts  uint64  `json:"queue_timeouts"`
	BadRequests    uint64  `json:"bad_requests"`
	Panics         uint64  `json:"panics"`
	InvalidScores  uint64  `json:"invalid_scores"`
	QueueDepth     int64   `json:"queue_depth"`
	QueueHighWater int64   `json:"queue_high_water"`
	QueuedRecords  int64   `json:"queued_records"`
	Streams        int     `json:"streams"`
	Shards         int     `json:"stream_shards"`
	ShardLockWaits uint64  `json:"stream_shard_lock_waits"`
	Evictions      uint64  `json:"stream_evictions"`
	ModelVersion   uint64  `json:"model_version"`
	Reloads        uint64  `json:"reloads"`
	ReloadFailures uint64  `json:"reload_failures"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	GoVersion      string  `json:"go_version,omitempty"`
	BuildRevision  string  `json:"build_revision,omitempty"`

	// Crash-safety surfaces: the last reload/restore failure with its
	// timestamp (previously only visible in logs) and the checkpoint
	// counters.
	LastReloadError    string `json:"last_reload_error,omitempty"`
	LastReloadUnix     int64  `json:"last_reload_unix,omitempty"`
	LastRestoreError   string `json:"last_restore_error,omitempty"`
	LastRestoreUnix    int64  `json:"last_restore_unix,omitempty"`
	CheckpointWrites   uint64 `json:"checkpoint_writes"`
	CheckpointFailures uint64 `json:"checkpoint_write_failures"`
	CheckpointStreams  int    `json:"checkpoint_streams,omitempty"`
	CheckpointUnix     int64  `json:"checkpoint_unix,omitempty"`
	StreamsRestored    uint64 `json:"streams_restored"`
	StreamColdStarts   uint64 `json:"stream_cold_starts"`
	Restoring          bool   `json:"restoring,omitempty"`

	// Overload-control surfaces: the live brownout level and adaptive
	// record budget, plus the controller's counters.
	InflightRequests    int64  `json:"inflight_requests"`
	InflightShed        uint64 `json:"inflight_shed"`
	BrownoutLevel       int    `json:"brownout_level"`
	BrownoutTransitions uint64 `json:"brownout_transitions"`
	BrownoutShed        uint64 `json:"brownout_shed"`
	BrownoutStride      int64  `json:"brownout_admit_stride"`
	InvoluntaryShed     uint64 `json:"involuntary_shed"`
	DegradedVerdicts    uint64 `json:"degraded_verdicts"`
	RecordBudget        int64  `json:"record_budget"`

	// Compiled-kernel surfaces: the serving model's flat-form compile
	// cost and footprint, recorded at load time.
	CompileSeconds    float64 `json:"model_compile_seconds"`
	CompiledModels    int     `json:"model_compiled_submodels"`
	CompiledTreeNodes int     `json:"model_tree_nodes,omitempty"`
	CompiledRuleConds int     `json:"model_rule_conds,omitempty"`
	CompiledNBEntries int     `json:"model_nb_entries,omitempty"`

	// Observability surfaces: the SLO burn rates over both alerting
	// windows, the flight recorder's fill, the path of a preserved
	// pre-crash flight dump (set when this boot followed an unclean
	// shutdown), and the access log's sampling outcome.
	SLOBurnRate5m    float64 `json:"slo_burn_rate_5m"`
	SLOBurnRate1h    float64 `json:"slo_burn_rate_1h"`
	FlightTraces     int     `json:"flight_traces"`
	FlightEvents     uint64  `json:"flight_events"`
	FlightCrashDump  string  `json:"flight_crash_dump,omitempty"`
	AccessLogLines   uint64  `json:"access_log_lines"`
	AccessLogDropped uint64  `json:"access_log_dropped"`
}

// Server is the scoring service. Construct with New, expose with
// Handler, run with Run.
type Server struct {
	cfg      Config
	model    *modelHolder
	streams  *streamTable
	adm      *admitter
	brown    *overloadController
	draining atomic.Bool
	mux      *http.ServeMux
	met      *serverMetrics
	start    time.Time

	// restoring is true while the boot-time checkpoint restore runs;
	// restoreDone closes when it finishes (immediately when checkpointing
	// is disabled). lastRestore and lastCheckpoint feed /statz.
	restoring      atomic.Bool
	restoreDone    chan struct{}
	lastRestore    atomic.Pointer[opEvent]
	lastCheckpoint atomic.Pointer[CheckpointInfo]

	goVersion string
	buildRev  string

	// flight is the black-box recorder; slo the burn-rate monitor (nil
	// when SLOLatency < 0); alog the sampled access log (nil when
	// disabled). flightCrash holds the path of a preserved pre-crash dump
	// for /statz; panicDumped makes the panic flight dump one-shot.
	flight      *obs.FlightRecorder
	slo         *obs.SLOMonitor
	alog        *accessLog
	flightCrash atomic.Pointer[string]
	panicDumped atomic.Bool

	// feat caches the per-generation feature metrics binding (only used
	// with Config.FeatureMetrics).
	feat atomic.Pointer[featureMetrics]
	// evictLogGen remembers the model generation whose first stream
	// eviction has already been logged (stored as generation+1, so the
	// zero value never matches).
	evictLogGen atomic.Uint64
}

// featureMetrics binds one model generation's analyzer to its registered
// per-feature metric families.
type featureMetrics struct {
	version uint64
	sm      *core.ScoreMetrics
}

// New loads and validates the model bundle and builds the service. A
// missing, truncated or checksum-mismatched model fails here, before any
// socket is bound.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("serve: ModelPath is required")
	}
	met := newServerMetrics(cfg.Registry)
	s := &Server{
		cfg:         cfg,
		model:       newModelHolder(cfg.ModelPath, met.reloads, met.reloadFailures),
		streams:     newStreamTable(cfg.MaxStreams, cfg.Shards, met.shardLockWait),
		adm:         newAdmitterInflight(cfg.MaxConcurrent, cfg.MaxQueue, cfg.MaxInFlightRequests, cfg.MaxQueueRecords, met.shed, met.shedRecords, met.timeouts),
		met:         met,
		start:       time.Now(),
		restoreDone: make(chan struct{}),
	}
	s.brown = newOverloadController(s.adm, met, cfg)
	s.goVersion, s.buildRev = buildInfo()
	s.streams.onEvict = s.observeEviction
	s.streams.onCreate = func(string) { met.coldStarts.Inc() }
	s.flight = obs.NewFlightRecorder(cfg.FlightTraceCap, cfg.FlightTraceCap)
	s.flight.AddExemplarSource("cfa_request_seconds", met.latency)
	s.flight.AddExemplarSource("cfa_score{verdict=\"normal\"}", met.scoreNormal)
	s.flight.AddExemplarSource("cfa_score{verdict=\"anomaly\"}", met.scoreAnomaly)
	if cfg.SLOLatency > 0 {
		s.slo = obs.NewSLOMonitor(cfg.SLOObjective)
	}
	s.alog = newAccessLog(cfg.AccessLog, cfg.AccessLogSample, s.brown.level, met.accessLogLines, met.accessLogDropped)
	s.brown.event = s.flightEvent
	if cfg.SLOBurnEvidence && s.slo != nil {
		s.brown.slo = s.slo
	}
	met.registerGauges(s)
	if err := s.model.reload(); err != nil {
		return nil, err
	}
	if cfg.CheckpointPath == "" {
		// Nothing will ever restore; anything waiting on the restore
		// barrier (checkpoint loop, final checkpoint) may proceed at once.
		close(s.restoreDone)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("POST /v1/score-batch", s.handleScoreBatch)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	s.mux.Handle("GET /metrics", obs.MetricsHandler(cfg.Registry))
	return s, nil
}

// observeEviction counts every LRU stream eviction and logs the first one
// per model generation: a single log line is the operator's cue that the
// stream table is at capacity (churning clients, or an id-inventing
// attacker), without letting a sustained churn storm flood the log.
func (s *Server) observeEviction(id string) {
	s.met.evictions.Inc()
	var gen uint64
	if lm := s.model.current(); lm != nil {
		gen = lm.version
	}
	if s.evictLogGen.Swap(gen+1) != gen+1 {
		s.cfg.Logf("serve: stream table full (max %d): evicted least-recent stream %q (first eviction at model generation %d)",
			s.cfg.MaxStreams, id, gen)
		// Only the first eviction per generation lands in the flight
		// recorder too: a churn storm must not wash the request traces out
		// of the event ring.
		s.flightEvent("eviction", fmt.Sprintf("stream %q (model generation %d)", id, gen))
	}
}

// Handler returns the full middleware stack: panic recovery outermost,
// then routing.
func (s *Server) Handler() http.Handler { return s.recoverWrap(s.mux) }

// Reload re-reads the model file and atomically installs it; on failure
// the previous model keeps serving and the error is surfaced in /readyz.
func (s *Server) Reload() error {
	err := s.model.reload()
	if err != nil {
		s.cfg.Logf("serve: model reload failed, keeping version %d: %v",
			s.model.current().version, err)
		s.flightEvent("reload-failed", err.Error())
		return err
	}
	s.cfg.Logf("serve: model reloaded, now version %d", s.model.current().version)
	s.flightEvent("reload", fmt.Sprintf("model version %d", s.model.current().version))
	return nil
}

// Draining reports whether the server is in graceful shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// Readiness snapshots the reload/drain condition /readyz reports.
func (s *Server) Readiness() Readiness {
	r := Readiness{
		Draining:       s.draining.Load(),
		Restoring:      s.restoring.Load(),
		ModelPath:      s.cfg.ModelPath,
		Reloads:        s.model.reloads.Value(),
		ReloadFailures: s.model.failures.Value(),
	}
	if lm := s.model.current(); lm != nil {
		r.ModelVersion = lm.version
		r.Ready = !r.Draining && !r.Restoring
	}
	r.LastReloadError = s.model.lastError()
	if ev := s.lastRestore.Load(); ev != nil {
		r.LastRestoreError = ev.err
	}
	return r
}

// Stats snapshots the operational counters /statz reports.
func (s *Server) Stats() Stats {
	depth, hw := s.adm.depth()
	st := Stats{
		Requests:       s.met.requests.Value(),
		BatchRequests:  s.met.batchRequests.Value(),
		RecordsScored:  s.met.scored.Value(),
		Shed:           s.met.shed.Value(),
		ShedRecords:    s.met.shedRecords.Value(),
		QueueTimeouts:  s.met.timeouts.Value(),
		BadRequests:    s.met.badRequests.Value(),
		Panics:         s.met.panics.Value(),
		InvalidScores:  s.met.invalid.Value(),
		QueueDepth:     depth,
		QueueHighWater: hw,
		QueuedRecords:  s.adm.recordDepth(),
		Streams:        s.streams.len(),
		Shards:         s.streams.numShards(),
		ShardLockWaits: s.met.shardLockWait.Value(),
		Evictions:      s.met.evictions.Value(),
		Reloads:        s.met.reloads.Value(),
		ReloadFailures: s.met.reloadFailures.Value(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		GoVersion:      s.goVersion,
		BuildRevision:  s.buildRev,

		CheckpointWrites:   s.met.checkpointWrites.Value(),
		CheckpointFailures: s.met.checkpointFailures.Value(),
		StreamsRestored:    s.met.streamsRestored.Value(),
		StreamColdStarts:   s.met.coldStarts.Value(),
		Restoring:          s.restoring.Load(),

		InflightRequests:    s.adm.inflightRequests(),
		InflightShed:        s.met.inflightShed.Value(),
		BrownoutLevel:       s.brown.level(),
		BrownoutTransitions: s.met.brownoutTransitions.Value(),
		BrownoutShed:        s.met.brownoutShed.Value(),
		BrownoutStride:      s.brown.sampleStride(),
		InvoluntaryShed:     s.adm.unwantedShed(),
		RecordBudget:        s.adm.recordBudget(),
	}
	for lvl, c := range s.met.brownoutVerdicts {
		if lvl > brownoutOff {
			st.DegradedVerdicts += c.Value()
		}
	}
	if lm := s.model.current(); lm != nil {
		st.ModelVersion = lm.version
		st.CompileSeconds = lm.compile.Duration.Seconds()
		st.CompiledModels = lm.compile.Models
		st.CompiledTreeNodes = lm.compile.TreeNodes
		st.CompiledRuleConds = lm.compile.RuleConds
		st.CompiledNBEntries = lm.compile.TableEntries
	}
	if ev := s.model.lastEvent.Load(); ev != nil {
		st.LastReloadError = ev.err
		st.LastReloadUnix = ev.at.Unix()
	}
	if ev := s.lastRestore.Load(); ev != nil {
		st.LastRestoreError = ev.err
		st.LastRestoreUnix = ev.at.Unix()
	}
	if ci := s.lastCheckpoint.Load(); ci != nil {
		st.CheckpointStreams = ci.Streams
		st.CheckpointUnix = ci.At.Unix()
	}
	if s.slo != nil {
		st.SLOBurnRate5m = s.slo.BurnRate(5 * time.Minute)
		st.SLOBurnRate1h = s.slo.BurnRate(time.Hour)
	}
	st.FlightTraces = s.flight.TraceCount()
	st.FlightEvents = s.met.flightEvents.Value()
	if p := s.flightCrash.Load(); p != nil {
		st.FlightCrashDump = *p
	}
	st.AccessLogLines = s.met.accessLogLines.Value()
	st.AccessLogDropped = s.met.accessLogDropped.Value()
	return st
}

// Run serves on ln until ctx is cancelled, then drains gracefully:
// in-flight requests get DrainTimeout to finish while new connections are
// refused; whatever survives the timeout is force-closed. With
// checkpointing enabled, Run restores stream state in the background
// (with /readyz reporting 503 until it finishes), checkpoints
// periodically, and writes a final checkpoint after the drain.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	if !s.cfg.DisableAdaptiveOverload {
		go s.brown.run(ctx)
	}
	if s.cfg.CheckpointPath != "" {
		// Before anything overwrites the flight file: preserve a crashed
		// predecessor's black box, then arm the dirty marker for this
		// process.
		s.recoverFlightDump()
	}
	if s.cfg.CheckpointPath != "" {
		// Restore runs concurrently with serving: the socket accepts at
		// once (a load balancer that ignores /readyz still gets scored,
		// just cold), and live traffic beats checkpoint state per stream.
		s.restoring.Store(true)
		go func() {
			s.RestoreCheckpoint()
			s.restoring.Store(false)
			close(s.restoreDone)
		}()
		go s.runCheckpointLoop(ctx)
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: listener failed: %w", err)
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.cfg.Logf("serve: draining (timeout %s)", s.cfg.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	if err != nil {
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	if s.cfg.CheckpointPath != "" {
		// Save whatever the drain left behind. The restore barrier has
		// long since passed on any real shutdown, but guard it anyway so
		// an immediate cancel cannot checkpoint an empty table over a
		// restorable file. Failure costs warm state on the next boot,
		// not the clean exit.
		select {
		case <-s.restoreDone:
			if _, cerr := s.Checkpoint(); cerr != nil {
				s.cfg.Logf("serve: final checkpoint failed: %v", cerr)
			}
		default:
			s.cfg.Logf("serve: skipping final checkpoint: restore still in flight")
		}
		// The process is exiting deliberately: persist the final flight
		// dump and disarm the dirty marker so the next boot does not
		// mistake this shutdown for a crash.
		s.markCleanShutdown()
	}
	if err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}

// recoverWrap converts a handler panic into a 500 and a counter bump
// instead of a dead worker; one poisoned request must not take the
// process (or any other request) down with it.
func (s *Server) recoverWrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.met.panics.Inc()
				s.cfg.Logf("serve: panic in %s %s: %v", r.Method, r.URL.Path, p)
				s.flightEvent("panic", fmt.Sprintf("%s %s: %v", r.Method, r.URL.Path, p))
				s.dumpPanic()
				writeJSONError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// handleScore is the single-stream endpoint. It is a thin shim over the
// same pipeline /v1/score-batch uses — decode, validate, records-based
// admission, scoreItems — so the two endpoints cannot drift: a record
// scored here and the same record inside a batch take the identical code
// path from discretisation to detector state.
//
// One semantic sharpening over the pre-batch handler: a request with a
// malformed record now fails atomically, before any of its records touch
// the stream's detector. (Previously records ahead of the bad one had
// already been observed when the 400 went out.)
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Inc()
	tr, sw := s.traceRequest(w, r, "score")
	w = sw
	defer s.finishRequest(tr, sw)
	exit, ok := s.gateEnter(w)
	if !ok {
		return
	}
	defer exit()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var req ScoreRequest
	if !s.decodeBody(ctx, w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	tr.Hop("decode")
	tr.RT.Stream = req.Stream
	tr.RT.Records = len(req.Records)
	if req.Stream == "" || len(req.Records) == 0 {
		s.met.badRequests.Inc()
		writeJSONError(w, http.StatusBadRequest, "score request needs a stream id and at least one record")
		return
	}
	n := len(req.Records)
	s.met.batchRecords.Observe(float64(n))
	release, err := s.adm.admitN(ctx, n)
	switch {
	case errors.Is(err, ErrOverloaded):
		s.shedReply(w, n, err.Error())
		return
	case err != nil:
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer release()
	tr.Hop("admit")
	if hook := s.cfg.scoreHook; hook != nil {
		hook(req.Stream)
	}

	lm := s.model.current()
	lvl := s.brown.level()
	items, scored := s.scoreItems(lm, []ScoreRequest{req}, lvl, tr)
	if items[0].Error != "" {
		s.met.badRequests.Inc()
		tr.RT.Err = items[0].Error
		writeJSONError(w, http.StatusBadRequest, items[0].Error)
		return
	}
	s.met.scored.Add(uint64(scored))
	degraded := degradedMode(lvl, lm.fallback != nil)
	tr.RT.Degraded = degraded
	if degraded != "" {
		w.Header().Set(degradedHeader, degraded)
	}
	writeJSON(w, http.StatusOK, ScoreResponse{Stream: req.Stream, ModelVersion: lm.version, Results: items[0].Results, Degraded: degraded})
}

// degradedHeader is set on every response served under brownout — 200s
// carry the degradation mode, sample-shed 429s carry the mode with "+shed"
// — so a client can always tell a full verdict from a degraded one.
const degradedHeader = "X-CFA-Degraded"

// shedReply writes the 429 for a request shed by admission: Retry-After
// priced off the live backlog (including the rejected records themselves),
// then the shed records folded into the decaying backlog behind future
// hints — in that order, or the batch would be priced twice.
func (s *Server) shedReply(w http.ResponseWriter, n int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterHint(n)))
	s.adm.noteShed(int64(n))
	writeJSONError(w, http.StatusTooManyRequests, msg)
}

// gateEnter claims the pre-decode in-flight slot for one score request,
// writing the 429 itself when the request may not proceed. Brownout
// level 3's sample-shed also fires here, before any body bytes are
// parsed: both sheds exist to be cheaper than the work they displace,
// and under an open-loop storm the body decode is most of that work.
// Neither knows the request's record count (the body was never read), so
// their cost enters the Retry-After backlog as the records-per-request
// estimate, while cfa_shed_records_total stays exact by counting
// admission-time sheds only.
func (s *Server) gateEnter(w http.ResponseWriter) (exit func(), ok bool) {
	exit, ok = s.adm.enterRequest()
	if !ok {
		s.met.inflightShed.Inc()
		s.shedReplyEst(w, "serve: overloaded, too many requests in flight")
		return nil, false
	}
	if s.brown.shedSample() {
		exit()
		s.met.shed.Inc()
		s.met.brownoutShed.Inc()
		lm := s.model.current()
		w.Header().Set(degradedHeader, degradedMode(s.brown.level(), lm != nil && lm.fallback != nil))
		s.shedReplyEst(w, "serve: overloaded, sample-shedding at brownout level 3")
		return nil, false
	}
	return exit, true
}

// shedReplyEst is shedReply for requests refused before their body was
// decoded, priced at the records-per-request estimate.
func (s *Server) shedReplyEst(w http.ResponseWriter, msg string) {
	n := int(s.adm.estRecordsPerRequest())
	w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterHint(n)))
	s.adm.noteShed(int64(n))
	writeJSONError(w, http.StatusTooManyRequests, msg)
}

// decodeBody reads one JSON request body, bounded in bytes by limit and
// in time by ctx's deadline. Slow clients may not stall a handler
// forever: the body must arrive before the request deadline. (Best
// effort — not every ResponseWriter supports read deadlines.) The
// deadline is cleared once the body is in so a keep-alive connection is
// reusable. On failure the error response has been written and false is
// returned.
func (s *Server) decodeBody(ctx context.Context, w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	rc := http.NewResponseController(w)
	if deadline, ok := ctx.Deadline(); ok {
		rc.SetReadDeadline(deadline)
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v); err != nil {
		s.met.badRequests.Inc()
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			writeJSONError(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.Is(err, os.ErrDeadlineExceeded), ctx.Err() != nil:
			writeJSONError(w, http.StatusRequestTimeout, "request body did not arrive within the deadline")
		default:
			writeJSONError(w, http.StatusBadRequest, "malformed score request: "+err.Error())
		}
		return false
	}
	rc.SetReadDeadline(time.Time{})
	return true
}

// newOnlineDetector builds a per-stream detector against lm with the
// configured knobs applied. Checkpoint restore uses the same constructor
// and then overlays the saved state, so config always wins over whatever
// knob values were in force when the checkpoint was written.
func (s *Server) newOnlineDetector(lm *loadedModel) *core.OnlineDetector {
	od := core.NewOnlineDetector(lm.detector)
	s.applyDetectorKnobs(od)
	return od
}

// applyDetectorKnobs overlays the configured smoothing/hysteresis knobs
// onto od; zero-valued config fields leave the detector's values alone.
func (s *Server) applyDetectorKnobs(od *core.OnlineDetector) {
	if s.cfg.Smoothing > 0 {
		od.Smoothing = s.cfg.Smoothing
	}
	if s.cfg.RaiseAfter > 0 {
		od.RaiseAfter = s.cfg.RaiseAfter
	}
	if s.cfg.ClearAfter > 0 {
		od.ClearAfter = s.cfg.ClearAfter
	}
}

// featureMetricsFor returns the per-feature metrics bound to lm's
// analyzer, building the binding on the first request of each model
// generation. Registration is idempotent by (name, labels), so a race
// between two first requests just does the lookup twice.
func (s *Server) featureMetricsFor(lm *loadedModel) *core.ScoreMetrics {
	if !s.cfg.FeatureMetrics {
		return nil
	}
	if fm := s.feat.Load(); fm != nil && fm.version == lm.version {
		return fm.sm
	}
	fm := &featureMetrics{
		version: lm.version,
		sm:      core.NewScoreMetrics(s.cfg.Registry, lm.bundle.Analyzer, "cfa"),
	}
	s.feat.Store(fm)
	return fm.sm
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.Readiness())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := s.Readiness()
	code := http.StatusOK
	if !rd.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rd)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
