package serve

// Crash-safety tests for the checkpoint layer: verdict continuity across
// a save/restore cycle, rejection of stale/corrupt/truncated files, the
// write-path failpoints, and the lifecycle hooks (periodic loop, final
// checkpoint on drain, /v1/checkpoint barrier endpoint).

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"crossfeature/internal/core"
	"crossfeature/internal/failpoint"
)

// mixedRecord interleaves normal and correlation-breaking records so the
// detector walks through real EWMA and hysteresis transitions.
func mixedRecord(i int) Record {
	if i%9 >= 6 {
		return anomalousRecord(i)
	}
	return normalRecord(i)
}

// newCheckpointPair builds two servers over the SAME model file and the
// SAME checkpoint path — the "before crash" and "after restart" processes.
func newCheckpointPair(t *testing.T, mutate func(*Config)) (a, b *Server, ckpt string) {
	t.Helper()
	dir := t.TempDir()
	model := filepath.Join(dir, "model.bin")
	ckpt = filepath.Join(dir, "streams.ckpt")
	writeTestBundle(t, model)
	mk := func() *Server {
		cfg := Config{
			ModelPath:      model,
			CheckpointPath: ckpt,
			Logf:           func(format string, args ...any) { t.Logf(format, args...) },
		}
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return mk(), mk(), ckpt
}

// TestCheckpointVerdictContinuity is the core crash-safety promise: a
// server restored from a checkpoint produces bit-identical verdicts, for
// every record after the checkpoint barrier, to the server that never
// went down.
func TestCheckpointVerdictContinuity(t *testing.T) {
	a, b, _ := newCheckpointPair(t, nil)
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()

	before := records(40, mixedRecord)
	after := make([]Record, 0, 40)
	for i := 40; i < 80; i++ {
		after = append(after, mixedRecord(i))
	}

	if resp, _ := postScore(t, tsA.URL, ScoreRequest{Stream: "warm", Records: before}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status = %d", resp.StatusCode)
	}

	// Checkpoint barrier via the HTTP endpoint the crash tests use.
	resp, err := http.Post(tsA.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info CheckpointInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Streams != 1 || info.Bytes == 0 {
		t.Fatalf("checkpoint barrier: status %d info %+v", resp.StatusCode, info)
	}

	// The uninterrupted server keeps scoring: the reference timeline.
	_, want := postScore(t, tsA.URL, ScoreRequest{Stream: "warm", Records: after})

	// The restarted server restores the barrier state and sees the same
	// post-barrier records.
	if n := b.RestoreCheckpoint(); n != 1 {
		t.Fatalf("restored %d streams, want 1", n)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	_, got := postScore(t, tsB.URL, ScoreRequest{Stream: "warm", Records: after})
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Errorf("restored verdicts diverged from the uninterrupted run:\nwant %+v\ngot  %+v", want.Results, got.Results)
	}

	// Sanity: the warm state mattered — a cold stream scoring the same
	// records disagrees with the restored one.
	_, cold := postScore(t, tsB.URL, ScoreRequest{Stream: "cold-compare", Records: after})
	if reflect.DeepEqual(cold.Results, got.Results) {
		t.Error("cold stream matched restored stream; restore proved nothing")
	}

	st := b.Stats()
	if st.StreamsRestored != 1 {
		t.Errorf("streams restored counter = %d, want 1", st.StreamsRestored)
	}
	// "warm" was restored, "cold-compare" was created cold: exactly one
	// cold start.
	if st.StreamColdStarts != 1 {
		t.Errorf("cold starts = %d, want 1", st.StreamColdStarts)
	}
	if st.LastRestoreError != "" {
		t.Errorf("clean restore left an error: %q", st.LastRestoreError)
	}
}

// TestCheckpointRestoreLiveTrafficWins pins the restore-vs-traffic race:
// a stream scored before the (slow) restore finishes keeps its live
// state; the checkpointed copy is discarded.
func TestCheckpointRestoreLiveTrafficWins(t *testing.T) {
	a, b, _ := newCheckpointPair(t, nil)
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	postScore(t, tsA.URL, ScoreRequest{Stream: "contested", Records: records(30, mixedRecord)})
	if _, err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Traffic arrives on the restarted server before the restore runs.
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	_, live := postScore(t, tsB.URL, ScoreRequest{Stream: "contested", Records: records(3, normalRecord)})
	if n := b.RestoreCheckpoint(); n != 0 {
		t.Fatalf("restore overwrote a live stream: %d inserted", n)
	}

	// Continuity holds from the LIVE state, not the checkpoint: scoring
	// continues exactly where the live stream left off.
	_, next := postScore(t, tsB.URL, ScoreRequest{Stream: "contested", Records: records(1, normalRecord)})
	if next.Results[0].Smoothed == live.Results[2].Smoothed {
		// EWMA moved; identical smoothed values would suggest a reset.
		t.Log("smoothed unchanged across one record (possible but suspicious)")
	}
	if b.Stats().StreamsRestored != 0 {
		t.Errorf("streams restored = %d, want 0", b.Stats().StreamsRestored)
	}
}

func TestCheckpointRestoreSkipsStale(t *testing.T) {
	a, b, _ := newCheckpointPair(t, func(c *Config) {
		c.CheckpointMaxAge = time.Nanosecond
	})
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	postScore(t, tsA.URL, ScoreRequest{Stream: "old", Records: records(5, normalRecord)})
	if _, err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)

	if n := b.RestoreCheckpoint(); n != 0 {
		t.Fatalf("stale checkpoint restored %d streams", n)
	}
	if st := b.Stats(); st.LastRestoreError == "" || !strings.Contains(st.LastRestoreError, "stale") {
		t.Errorf("stale skip not surfaced: %q", st.LastRestoreError)
	}
	if b.streams.len() != 0 {
		t.Errorf("stale restore left %d streams", b.streams.len())
	}
}

func TestCheckpointRestoreSkipsCorrupt(t *testing.T) {
	a, b, ckpt := newCheckpointPair(t, nil)
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	postScore(t, tsA.URL, ScoreRequest{Stream: "x", Records: records(5, normalRecord)})
	if _, err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x55
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if n := b.RestoreCheckpoint(); n != 0 {
		t.Fatalf("corrupt checkpoint restored %d streams", n)
	}
	if st := b.Stats(); st.LastRestoreError == "" {
		t.Error("corrupt skip not surfaced in stats")
	}
	// The server is fully usable afterwards.
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	if resp, _ := postScore(t, tsB.URL, ScoreRequest{Stream: "x", Records: records(1, normalRecord)}); resp.StatusCode != http.StatusOK {
		t.Errorf("scoring after corrupt restore: status %d", resp.StatusCode)
	}
}

// TestCheckpointRestoreMissingIsQuiet pins the common case: first boot,
// no checkpoint yet — no error surfaced, nothing restored.
func TestCheckpointRestoreMissingIsQuiet(t *testing.T) {
	_, b, _ := newCheckpointPair(t, nil)
	if n := b.RestoreCheckpoint(); n != 0 {
		t.Fatalf("restored %d streams from a missing file", n)
	}
	if st := b.Stats(); st.LastRestoreError != "" {
		t.Errorf("missing checkpoint surfaced an error: %q", st.LastRestoreError)
	}
}

// TestCheckpointTruncationSweep truncates a real checkpoint at every byte
// offset; every prefix must be rejected as corrupt — never a panic, never
// a partial restore.
func TestCheckpointTruncationSweep(t *testing.T) {
	a, b, ckpt := newCheckpointPair(t, nil)
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	postScore(t, tsA.URL, ScoreRequest{Stream: "s1", Records: records(5, mixedRecord)})
	postScore(t, tsA.URL, ScoreRequest{Stream: "s2", Records: records(5, normalRecord)})
	if _, err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(ckpt, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		outcome, restored, rerr := b.restoreCheckpoint()
		if outcome != "corrupt" || restored != 0 || rerr == nil {
			t.Fatalf("truncation at %d of %d: outcome=%q restored=%d err=%v",
				cut, len(data), outcome, restored, rerr)
		}
	}
}

// TestDecodeCheckpointRejectsStructuralDamage hits decode paths a pure
// truncation cannot reach (the frame CRC catches byte flips first, so
// these payloads are built directly).
func TestDecodeCheckpointRejectsStructuralDamage(t *testing.T) {
	st := streamState{id: "n1", state: make([]byte, core.OnlineStateLen)}
	payload := encodeCheckpointStates([]streamState{st})

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"short header", func(p []byte) []byte { return p[:10] }},
		{"count overruns data", func(p []byte) []byte { p[19] = 200; return p }},
		{"zero-length id", func(p []byte) []byte { p[21] = 0; return p }},
		{"trailing garbage", func(p []byte) []byte { return append(p, 0xAA) }},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.name, " ", "-"), func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), payload...))
			if _, _, _, err := decodeCheckpoint(mut); !errors.Is(err, core.ErrSnapshotCorrupt) {
				t.Errorf("error = %v, want ErrSnapshotCorrupt", err)
			}
		})
	}
}

// TestCheckpointWriteFailpoints drives the two checkpoint write-path
// failpoints: an injected error must keep the previous checkpoint intact
// and count a failure; a torn (partial) write must install a file the
// restore path rejects as corrupt.
func TestCheckpointWriteFailpoints(t *testing.T) {
	a, b, ckpt := newCheckpointPair(t, nil)
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	postScore(t, tsA.URL, ScoreRequest{Stream: "keep", Records: records(10, mixedRecord)})
	if _, err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("payload error keeps previous checkpoint", func(t *testing.T) {
		if err := failpoint.Arm("serve/checkpoint/payload", "error(disk full)"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm("serve/checkpoint/payload")
		if _, err := a.Checkpoint(); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("injected checkpoint failure returned %v", err)
		}
		after, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		if string(before) != string(after) {
			t.Error("failed checkpoint altered the installed file")
		}
		if a.Stats().CheckpointFailures == 0 {
			t.Error("checkpoint failure not counted")
		}
	})

	t.Run("pre-rename crash keeps previous checkpoint", func(t *testing.T) {
		if err := failpoint.Arm("serve/checkpoint/pre-rename", "error(crash)"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm("serve/checkpoint/pre-rename")
		if _, err := a.Checkpoint(); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("pre-rename failure returned %v", err)
		}
		after, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		if string(before) != string(after) {
			t.Error("interrupted checkpoint altered the installed file")
		}
	})

	t.Run("torn write is rejected on restore", func(t *testing.T) {
		if err := failpoint.Arm("serve/checkpoint/payload", "partial(30)"); err != nil {
			t.Fatal(err)
		}
		// The torn write reports success (the crash in this scenario came
		// after the rename) — the restore must refuse the result.
		if _, err := a.Checkpoint(); err != nil {
			failpoint.Disarm("serve/checkpoint/payload")
			t.Fatalf("torn checkpoint surfaced an error: %v", err)
		}
		failpoint.Disarm("serve/checkpoint/payload")
		outcome, restored, rerr := b.restoreCheckpoint()
		if outcome != "corrupt" || restored != 0 || rerr == nil {
			t.Fatalf("torn checkpoint restore: outcome=%q restored=%d err=%v", outcome, restored, rerr)
		}
		// Recovery: a clean checkpoint over the torn file restores again.
		if _, err := a.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if n := b.RestoreCheckpoint(); n != 1 {
			t.Errorf("recovery restore = %d streams, want 1", n)
		}
	})
}

// TestCheckpointSkipsBusyStream pins the bounded-duration promise: a
// stream whose lock is held (a wedged or long-running handler) is skipped
// and counted, not awaited.
func TestCheckpointSkipsBusyStream(t *testing.T) {
	a, _, _ := newCheckpointPair(t, nil)
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	postScore(t, tsA.URL, ScoreRequest{Stream: "busy", Records: records(2, normalRecord)})
	postScore(t, tsA.URL, ScoreRequest{Stream: "idle", Records: records(2, normalRecord)})

	st := a.streams.get("busy", func() *core.OnlineDetector { t.Fatal("stream should exist"); return nil })
	st.mu.Lock()
	done := make(chan CheckpointInfo, 1)
	go func() {
		info, err := a.Checkpoint()
		if err != nil {
			t.Error(err)
		}
		done <- info
	}()
	select {
	case info := <-done:
		if info.Streams != 1 || info.Skipped != 1 {
			t.Errorf("checkpoint with a wedged stream: %+v, want 1 written 1 skipped", info)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("checkpoint blocked on a busy stream")
	}
	st.mu.Unlock()
}

// TestCheckpointDisabled pins behavior without a CheckpointPath: the
// method errors, the endpoint answers 409, and Run needs no checkpoint
// plumbing.
func TestCheckpointDisabled(t *testing.T) {
	s, _ := newTestServer(t, nil)
	if _, err := s.Checkpoint(); err == nil {
		t.Error("Checkpoint succeeded with no path configured")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("checkpoint-disabled status = %d, want 409", resp.StatusCode)
	}
	select {
	case <-s.restoreDone:
	default:
		t.Error("restoreDone not closed with checkpointing disabled")
	}
}

// TestRunRestoresAndWritesFinalCheckpoint drives the full lifecycle
// through Run: boot-time restore, readiness gating until it finishes, and
// a final checkpoint on clean shutdown.
func TestRunRestoresAndWritesFinalCheckpoint(t *testing.T) {
	a, b, ckpt := newCheckpointPair(t, func(c *Config) {
		c.CheckpointInterval = time.Hour // periodic loop stays quiet
	})
	tsA := httptest.NewServer(a.Handler())
	postScore(t, tsA.URL, ScoreRequest{Stream: "durable", Records: records(25, mixedRecord)})
	if _, err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tsA.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- b.Run(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	// Readiness comes up only after the restore completes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready after restore")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if b.Stats().StreamsRestored != 1 {
		t.Errorf("Run restored %d streams, want 1", b.Stats().StreamsRestored)
	}

	// Score a second stream, then shut down cleanly: the final checkpoint
	// must hold both.
	postScore(t, url, ScoreRequest{Stream: "late", Records: records(5, normalRecord)})
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run never returned")
	}

	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload, err := core.ReadFrame(f, checkpointMagic, checkpointVersion)
	if err != nil {
		t.Fatal(err)
	}
	_, _, states, err := decodeCheckpoint(payload)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool, len(states))
	for _, st := range states {
		ids[st.id] = true
	}
	if len(states) != 2 || !ids["durable"] || !ids["late"] {
		t.Errorf("final checkpoint holds %v, want {durable, late}", ids)
	}
}

// TestRunPeriodicCheckpoint asserts the background loop writes without
// any explicit trigger.
func TestRunPeriodicCheckpoint(t *testing.T) {
	_, b, ckpt := newCheckpointPair(t, func(c *Config) {
		c.CheckpointInterval = 20 * time.Millisecond
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- b.Run(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	postScore(t, url, ScoreRequest{Stream: "tick", Records: records(5, normalRecord)})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b.Stats().CheckpointWrites > 0 {
			if _, err := os.Stat(ckpt); err != nil {
				t.Fatalf("checkpoint counted but file missing: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-runDone
}

// encodeCheckpointStates is a test shim: encode with a fresh timestamp so
// staleness never interferes with structural-damage cases.
func encodeCheckpointStates(states []streamState) []byte {
	return encodeCheckpoint(states, time.Now(), 1)
}

func BenchmarkCheckpointEncode(b *testing.B) {
	states := benchStates(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeCheckpoint(states, time.Unix(0, 1), 1)
	}
}

func BenchmarkCheckpointRestore(b *testing.B) {
	states := benchStates(b, 1024)
	payload := encodeCheckpoint(states, time.Now(), 1)
	path := filepath.Join(b.TempDir(), "model.bin")
	writeTestBundle(b, path)
	bundle, err := core.LoadBundleFile(path)
	if err != nil {
		b.Fatal(err)
	}
	det := bundle.Detector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, decoded, err := decodeCheckpoint(payload)
		if err != nil {
			b.Fatal(err)
		}
		// Mirror restoreCheckpoint: one detector slab for the whole table.
		slab := core.NewOnlineDetectors(det, len(decoded))
		for si, st := range decoded {
			if _, err := slab[si].RestoreState(st.state); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchStates builds n realistic per-stream state blobs.
func benchStates(b *testing.B, n int) []streamState {
	b.Helper()
	path := filepath.Join(b.TempDir(), "model.bin")
	writeTestBundle(b, path)
	bundle, err := core.LoadBundleFile(path)
	if err != nil {
		b.Fatal(err)
	}
	det := bundle.Detector()
	states := make([]streamState, 0, n)
	for i := 0; i < n; i++ {
		od := core.NewOnlineDetector(det)
		for j := 0; j < 8; j++ {
			rec := normalRecord(i + j)
			if x, err := bundle.Discretizer.Transform(rec.Values); err == nil {
				od.Observe(x)
			}
		}
		states = append(states, streamState{id: "bench-" + string(rune('a'+i%26)) + string(rune('0'+i%10)), state: od.AppendState(nil)})
	}
	return states
}
