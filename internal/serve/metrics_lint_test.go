package serve

// Satellite guards against observability drift: every metric name in the
// live registry follows the naming contract, and every counter /statz
// reports is backed by a real registered metric (and vice versa the statz
// field still serializes). Run by `make metrics-lint`.

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"

	"crossfeature/internal/obs"
)

// statzMetricTable maps each /statz JSON field to the registry metric it
// mirrors. When a field or metric is added, renamed, or dropped, this
// table is the one place that must move with it — the test fails on
// either side of the drift.
var statzMetricTable = map[string]string{
	"requests":                  "cfa_requests_total",
	"batch_requests":            "cfa_batch_requests_total",
	"records_scored":            "cfa_records_scored_total",
	"shed":                      "cfa_shed_total",
	"shed_records":              "cfa_shed_records_total",
	"queue_timeouts":            "cfa_queue_timeouts_total",
	"bad_requests":              "cfa_bad_requests_total",
	"panics":                    "cfa_panics_total",
	"invalid_scores":            "cfa_invalid_scores_total",
	"queue_depth":               "cfa_queue_depth",
	"queue_high_water":          "cfa_queue_high_water",
	"queued_records":            "cfa_queued_records",
	"streams":                   "cfa_streams",
	"stream_shard_lock_waits":   "cfa_stream_shard_lock_wait_total",
	"stream_evictions":          "cfa_stream_evictions_total",
	"model_version":             "cfa_model_generation",
	"reloads":                   "cfa_reloads_total",
	"reload_failures":           "cfa_reload_failures_total",
	"uptime_seconds":            "cfa_uptime_seconds",
	"checkpoint_writes":         "cfa_checkpoint_writes_total",
	"checkpoint_write_failures": "cfa_checkpoint_write_failures_total",
	"streams_restored":          "cfa_checkpoint_streams_restored_total",
	"stream_cold_starts":        "cfa_stream_cold_starts_total",
	"inflight_requests":         "cfa_inflight_requests",
	"inflight_shed":             "cfa_inflight_shed_total",
	"brownout_level":            "cfa_brownout_level",
	"brownout_transitions":      "cfa_brownout_transitions_total",
	"brownout_shed":             "cfa_brownout_shed_total",
	"brownout_admit_stride":     "cfa_brownout_admit_stride",
	"degraded_verdicts":         "cfa_brownout_verdicts_total",
	"record_budget":             "cfa_record_budget",
	"model_compile_seconds":     "cfa_model_compile_seconds",
	"slo_burn_rate_5m":          "cfa_slo_burn_rate",
	"slo_burn_rate_1h":          "cfa_slo_burn_rate",
	"flight_traces":             "cfa_flight_traces_total",
	"flight_events":             "cfa_flight_events_total",
	"access_log_lines":          "cfa_access_log_lines_total",
	"access_log_dropped":        "cfa_access_log_dropped_total",
}

// lintServer builds a fully-wired server over an external registry so the
// tests below can inspect everything New registers, gauges included.
func lintServer(t *testing.T) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, _ := newTestServer(t, func(c *Config) { c.Registry = reg })
	return s, reg
}

func TestStatzFieldsBackedByRegistryMetrics(t *testing.T) {
	s, reg := lintServer(t)

	raw, err := json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var statz map[string]any
	if err := json.Unmarshal(raw, &statz); err != nil {
		t.Fatal(err)
	}

	registered := make(map[string]bool)
	for _, p := range reg.Snapshot() {
		registered[p.Name] = true
	}
	// The Prometheus text exposition must agree with the snapshot — the
	// golden check covers the full scrape path, not just the Go API.
	var prom bytes.Buffer
	reg.WritePrometheus(&prom)

	for field, metric := range statzMetricTable {
		if _, ok := statz[field]; !ok {
			t.Errorf("statz no longer serializes %q (mapped to %s); update Stats or the table", field, metric)
		}
		if !registered[metric] {
			t.Errorf("statz field %q references unregistered metric %s", field, metric)
		}
		if !strings.Contains(prom.String(), metric+" ") && !strings.Contains(prom.String(), metric+"{") {
			t.Errorf("metric %s missing from the Prometheus exposition", metric)
		}
	}
}

var metricNameRe = regexp.MustCompile(`^cfa_[a-z0-9_]+$`)

func TestMetricNamesLint(t *testing.T) {
	_, reg := lintServer(t)

	seen := make(map[string]bool)
	for _, p := range reg.Snapshot() {
		if !metricNameRe.MatchString(p.Name) {
			t.Errorf("metric %q violates the cfa_ snake_case naming contract", p.Name)
		}
		if strings.TrimSpace(p.Help) == "" {
			t.Errorf("metric %q has no help text", p.Name)
		}
		if p.Kind == "counter" && !strings.HasSuffix(p.Name, "_total") {
			t.Errorf("counter %q must end in _total", p.Name)
		}
		if (p.Kind == "gauge" || p.Kind == "histogram") && strings.HasSuffix(p.Name, "_total") {
			t.Errorf("%s %q must not end in _total", p.Kind, p.Name)
		}
		key := p.Name
		for _, l := range p.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		if seen[key] {
			t.Errorf("duplicate metric instance %q in one snapshot", key)
		}
		seen[key] = true
	}
	if len(seen) < 30 {
		t.Fatalf("registry snapshot has only %d instances; the lint walked an unwired registry", len(seen))
	}
}
