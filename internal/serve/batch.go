package serve

// Batch scoring. One HTTP request carries records for many streams; the
// whole request is scored through the model once (compiled batch kernels
// via Analyzer.ScoreAll — every record sees the same analyzer, so the
// flattened rows form one schema-homogeneous dataset) and only the cheap
// stateful tail (EWMA, hysteresis) runs per stream. This is what turns
// the service from lock-bound to throughput-bound: the expensive part of
// scoring amortises across the batch, and the per-stream part touches
// only that stream's shard and lock.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"

	"crossfeature/internal/core"
	"crossfeature/internal/ml"
	"crossfeature/internal/obs"
)

// batchKernelMin is the flattened row count below which scoreItems skips
// the columnar dataset build and scores row-major via ScoreEvents: the
// per-call cost of assembling columns and postings only pays for itself
// with enough rows behind it. Both paths are pinned bit-identical to
// Detector.Score, so the cutover can never change a verdict.
const batchKernelMin = 8

// BatchScoreRequest scores records for several streams in one request.
type BatchScoreRequest struct {
	Items []ScoreRequest `json:"items"`
}

// BatchItemResult is one stream's outcome inside a batch. Exactly one of
// Results and Error is populated: an item with a malformed record fails
// atomically — none of its records touch the stream's detector — while
// the rest of the batch scores normally.
type BatchItemResult struct {
	Stream  string         `json:"stream"`
	Results []RecordResult `json:"results,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// BatchScoreResponse is the reply to a BatchScoreRequest. Items are in
// request order. Degraded mirrors ScoreResponse.Degraded: the brownout
// mode the whole batch was served under, empty at full fidelity.
type BatchScoreResponse struct {
	ModelVersion  uint64            `json:"model_version"`
	Items         []BatchItemResult `json:"items"`
	RecordsScored int               `json:"records_scored"`
	Degraded      string            `json:"degraded,omitempty"`
}

// scoreItems is the one scoring pipeline behind both /v1/score and
// /v1/score-batch:
//
//  1. every item's records are discretised up front — an item with a bad
//     record fails atomically, before any detector state mutates;
//  2. all valid rows are flattened and scored in one Analyzer.ScoreAll
//     pass through the compiled batch kernels (row-major ScoreEvents for
//     tiny flat counts);
//  3. each item then takes only its own stream's shard and stream locks
//     to run the precomputed scores through the detector's EWMA and
//     hysteresis via ObserveScore.
//
// Verdicts are bit-identical to the per-record path: ScoreAll and
// ScoreEvents are pinned to Score, and ObserveScore(raw) is exactly what
// Observe computes internally. Returns per-item results in input order
// and the total records scored.
//
// lvl is the brownout level the request is served under. Level 1 skips
// the Explain-style per-feature metrics; level 2 and above (when the
// bundle carries an NB fallback) scores through the compiled NB kernel
// *statelessly* — the per-stream detectors are never touched, because
// ObserveScore folds raw scores into EWMA/hysteresis state against the
// PRIMARY detector's threshold, and NB-scale scores would poison stream
// state that outlives the brownout. Degraded verdicts are point-in-time:
// Smoothed is the raw score and Alarm mirrors Anomaly, with no hysteresis
// edges. That also skips the shard and stream locks — the stateful tail is
// exactly the part worth shedding under overload.
// tr, when non-nil, receives per-stage hop stamps ("transform" after
// discretisation, "kernel" after the batch kernel pass, "lock" at the
// first stream-lock acquisition, "observe" once verdicts are folded), the
// batch's anomaly count, and one score exemplar per verdict histogram —
// per request, not per record, so tracing costs O(1) allocations however
// fat the batch.
func (s *Server) scoreItems(lm *loadedModel, items []ScoreRequest, lvl int, tr *obs.ActiveTrace) ([]BatchItemResult, int) {
	det := lm.detector
	stateless := false
	if lvl >= brownoutNBOnly && lm.fallback != nil {
		det = lm.fallback
		stateless = true
	}
	results := make([]BatchItemResult, len(items))
	rows := make([][][]int, len(items))
	total := 0
	for i, it := range items {
		results[i].Stream = it.Stream
		if it.Stream == "" || len(it.Records) == 0 {
			results[i].Error = "score item needs a stream id and at least one record"
			continue
		}
		xs := make([][]int, 0, len(it.Records))
		for _, rec := range it.Records {
			x, err := lm.bundle.Discretizer.Transform(rec.Values)
			if err != nil {
				results[i].Error = "bad record: " + err.Error()
				xs = nil
				break
			}
			xs = append(xs, x)
		}
		if xs == nil {
			continue
		}
		rows[i] = xs
		total += len(xs)
	}
	tr.Hop("transform")

	flat := make([][]int, 0, total)
	for _, xs := range rows {
		flat = append(flat, xs...)
	}
	an := det.Analyzer
	var scores []float64
	if len(flat) >= batchKernelMin {
		scores = an.ScoreAll(ml.DatasetOf(an.Attrs, flat), det.Scorer)
	} else {
		scores = an.ScoreEvents(flat, det.Scorer)
	}
	tr.Hop("kernel")

	feat := s.featureMetricsFor(lm)
	if lvl >= brownoutNoExtras {
		feat = nil
	}
	scored, off := 0, 0
	for i := range items {
		xs := rows[i]
		if xs == nil {
			continue
		}
		recScores := scores[off : off+len(xs)]
		off += len(xs)
		var rr []RecordResult
		if stateless {
			rr = statelessResults(items[i].Records, recScores, det.Threshold, s.met)
		} else {
			rr = s.statefulResults(lm, items[i], xs, recScores, feat, tr)
		}
		results[i].Results = rr
		scored += len(rr)
	}
	if scored > 0 {
		s.met.brownoutVerdict(lvl).Add(uint64(scored))
	}
	tr.Hop("observe")
	if tr != nil {
		// One exemplar per verdict histogram per request: the last score of
		// each verdict stands for the batch, keeping the cost independent of
		// record count. SetExemplar ignores the NaN sentinels.
		anomalies := 0
		lastNormal, lastAnomaly := math.NaN(), math.NaN()
		for i := range results {
			for _, r := range results[i].Results {
				if r.Anomaly {
					anomalies++
				}
				if r.Invalid {
					continue
				}
				if r.Anomaly {
					lastAnomaly = r.Score
				} else {
					lastNormal = r.Score
				}
			}
		}
		tr.RT.Anomalies = anomalies
		s.met.scoreNormal.SetExemplar(lastNormal, tr.TraceID())
		s.met.scoreAnomaly.SetExemplar(lastAnomaly, tr.TraceID())
	}
	return results, scored
}

// statefulResults runs one item's precomputed scores through its stream's
// detector under the stream lock — the full-fidelity (levels 0-1) tail.
func (s *Server) statefulResults(lm *loadedModel, item ScoreRequest, xs [][]int, recScores []float64, feat *core.ScoreMetrics, tr *obs.ActiveTrace) []RecordResult {
	st := s.streams.get(item.Stream, func() *core.OnlineDetector {
		return s.newOnlineDetector(lm)
	})
	rr := make([]RecordResult, 0, len(xs))
	st.mu.Lock()
	tr.HopOnce("lock")
	if st.version != lm.version {
		st.od.SwapDetector(lm.detector)
		st.version = lm.version
	}
	for j, raw := range recScores {
		state := st.od.ObserveScore(raw)
		out := RecordResult{
			Time:     item.Records[j].Time,
			Score:    state.Score,
			Smoothed: state.Smoothed,
			Anomaly:  state.Score < lm.detector.Threshold,
			Alarm:    state.Alarm,
			Raised:   state.Raised,
			Cleared:  state.Cleared,
		}
		if !isFinite(state.Score) {
			out.Score, out.Anomaly, out.Invalid = -1, true, true
			s.met.invalid.Inc()
		} else if out.Anomaly {
			s.met.scoreAnomaly.Observe(state.Score)
		} else {
			s.met.scoreNormal.Observe(state.Score)
		}
		if !isFinite(state.Smoothed) {
			out.Smoothed = -1
		}
		if feat != nil {
			feat.Observe(lm.bundle.Analyzer.Explain(xs[j]))
		}
		rr = append(rr, out)
	}
	st.mu.Unlock()
	return rr
}

// statelessResults builds point-in-time verdicts from NB fallback scores
// at brownout level 2+: threshold comparison only, no stream state read
// or written. Smoothed repeats the raw score and Alarm mirrors Anomaly so
// a client keying off either field still gets a sane (if undamped)
// signal; Raised/Cleared stay false because there is no hysteresis to
// edge-trigger.
func statelessResults(records []Record, recScores []float64, threshold float64, met *serverMetrics) []RecordResult {
	rr := make([]RecordResult, 0, len(recScores))
	for j, raw := range recScores {
		anomaly := raw < threshold
		out := RecordResult{
			Time:     records[j].Time,
			Score:    raw,
			Smoothed: raw,
			Anomaly:  anomaly,
			Alarm:    anomaly,
		}
		if !isFinite(raw) {
			out.Score, out.Smoothed, out.Anomaly, out.Alarm, out.Invalid = -1, -1, true, true, true
			met.invalid.Inc()
		} else if anomaly {
			met.scoreAnomaly.Observe(raw)
		} else {
			met.scoreNormal.Observe(raw)
		}
		rr = append(rr, out)
	}
	return rr
}

// handleScoreBatch is POST /v1/score-batch: N streams' records in, one
// framed response with per-record verdicts out. The whole batch occupies
// one queue slot but is admitted against the record budget, so a flood
// of fat batches sheds as early as the same records spread over many
// single requests would. A 429 carries a Retry-After priced from the
// live record backlog and the observed per-record service time.
func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Inc()
	s.met.batchRequests.Inc()
	tr, sw := s.traceRequest(w, r, "score-batch")
	w = sw
	defer s.finishRequest(tr, sw)
	exit, ok := s.gateEnter(w)
	if !ok {
		return
	}
	defer exit()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var req BatchScoreRequest
	if !s.decodeBody(ctx, w, r, s.cfg.MaxBatchBodyBytes, &req) {
		return
	}
	tr.Hop("decode")
	if len(req.Items) == 0 {
		s.met.badRequests.Inc()
		writeJSONError(w, http.StatusBadRequest, "batch score request needs at least one item")
		return
	}
	n := 0
	for _, it := range req.Items {
		n += len(it.Records)
	}
	if n > s.cfg.MaxBatchRecords {
		s.met.badRequests.Inc()
		writeJSONError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d records exceeds the %d-record limit", n, s.cfg.MaxBatchRecords))
		return
	}
	s.met.batchRecords.Observe(float64(n))
	tr.RT.Records = n
	if len(req.Items) == 1 {
		tr.RT.Stream = req.Items[0].Stream
	}
	release, err := s.adm.admitN(ctx, n)
	switch {
	case errors.Is(err, ErrOverloaded):
		s.shedReply(w, n, err.Error())
		return
	case err != nil:
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer release()
	tr.Hop("admit")
	if hook := s.cfg.scoreHook; hook != nil {
		for _, it := range req.Items {
			hook(it.Stream)
		}
	}

	lm := s.model.current()
	lvl := s.brown.level()
	items, scored := s.scoreItems(lm, req.Items, lvl, tr)
	bad := 0
	for i := range items {
		if items[i].Error != "" {
			bad++
		}
	}
	if bad > 0 {
		s.met.badRequests.Add(uint64(bad))
	}
	s.met.scored.Add(uint64(scored))
	degraded := degradedMode(lvl, lm.fallback != nil)
	tr.RT.Degraded = degraded
	if degraded != "" {
		w.Header().Set(degradedHeader, degraded)
	}
	writeJSON(w, http.StatusOK, BatchScoreResponse{
		ModelVersion:  lm.version,
		Items:         items,
		RecordsScored: scored,
		Degraded:      degraded,
	})
}
