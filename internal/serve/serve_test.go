package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"crossfeature/internal/core"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/nbayes"
)

// testFeatureNames is the tiny schema the test bundles use.
var testFeatureNames = []string{"a", "b", "c", "d"}

// writeTestBundle trains a small real bundle (correlated rows, fitted
// discretizer, naive Bayes ensemble) and writes it to path.
func writeTestBundle(t testing.TB, path string) *core.Bundle {
	t.Helper()
	rows := normalRows(120)
	disc, err := features.Fit(rows, testFeatureNames, features.FitOptions{Buckets: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Train(ds, nbayes.NewLearner(), core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := core.Calibrate(a.ScoreAll(ds, core.Probability), 0.02)
	b := &core.Bundle{Analyzer: a, Discretizer: disc, Threshold: th, Scorer: core.Probability}
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return b
}

// normalRows fabricates the correlated "normal" audit rows the bundle is
// trained on; normalRecord and anomalousRecord produce score requests
// from the same (or a broken) generator.
func normalRows(n int) [][]float64 {
	rows := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		base := float64(i % 10)
		rows = append(rows, []float64{base, base * 2, base * 3, float64(i % 3)})
	}
	return rows
}

func normalRecord(i int) Record {
	base := float64(i % 10)
	return Record{Time: float64(i), Values: []float64{base, base * 2, base * 3, float64(i % 3)}}
}

func anomalousRecord(i int) Record {
	base := float64(i % 10)
	// Break the inter-feature correlations the model learned.
	return Record{Time: float64(i), Values: []float64{base, 500 - base, base * 31, 9}}
}

// newTestServer builds a Server over a fresh model file. mutate tweaks
// the config before construction.
func newTestServer(t testing.TB, mutate func(*Config)) (*Server, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.bin")
	writeTestBundle(t, path)
	cfg := Config{
		ModelPath: path,
		Logf:      func(format string, args ...any) { t.Logf(format, args...) },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func postScore(t testing.TB, url string, req ScoreRequest) (*http.Response, *ScoreResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var sr ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return resp, &sr
}

func postScoreBatch(t testing.TB, url string, req BatchScoreRequest) (*http.Response, *BatchScoreResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/score-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var br BatchScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	return resp, &br
}

func records(n int, gen func(int) Record) []Record {
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, gen(i))
	}
	return out
}

func TestScoreEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, sr := postScore(t, ts.URL, ScoreRequest{Stream: "node-1", Records: records(20, normalRecord)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(sr.Results) != 20 {
		t.Fatalf("results = %d, want 20", len(sr.Results))
	}
	if sr.ModelVersion != 1 {
		t.Errorf("model version = %d, want 1", sr.ModelVersion)
	}
	for i, r := range sr.Results {
		if r.Invalid || r.Score < 0 || r.Score > 1 {
			t.Errorf("record %d: implausible score %+v", i, r)
		}
		if r.Alarm {
			t.Errorf("record %d: alarm on normal traffic", i)
		}
	}

	// A sustained anomalous run on its own stream raises the alarm.
	_, sr = postScore(t, ts.URL, ScoreRequest{Stream: "node-2", Records: records(30, anomalousRecord)})
	if !sr.Results[len(sr.Results)-1].Alarm {
		t.Error("sustained anomaly never raised the stream alarm")
	}
	// node-1's detector state is untouched by node-2's incident.
	_, sr = postScore(t, ts.URL, ScoreRequest{Stream: "node-1", Records: records(1, normalRecord)})
	if sr.Results[0].Alarm {
		t.Error("node-2 incident leaked into node-1's stream state")
	}
}

func TestScoreRejectsBadRequests(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"malformed json":  {`{"stream": nope}`, http.StatusBadRequest},
		"missing stream":  {`{"records":[{"values":[1,2,3,4]}]}`, http.StatusBadRequest},
		"no records":      {`{"stream":"x","records":[]}`, http.StatusBadRequest},
		"wrong row width": {`{"stream":"x","records":[{"values":[1,2]}]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
	if s.Stats().BadRequests != 4 {
		t.Errorf("bad request counter = %d, want 4", s.Stats().BadRequests)
	}
	if got := s.Stats().Requests; got != 4 {
		t.Errorf("request counter = %d, want 4", got)
	}
}

func TestScoreRejectsOversizedBody(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 512 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postScore(t, ts.URL, ScoreRequest{Stream: "big", Records: records(200, normalRecord)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

func TestHealthReadyStatz(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rd.Ready || rd.ModelVersion != 1 || rd.LastReloadError != "" {
		t.Errorf("readyz = %d %+v", resp.StatusCode, rd)
	}

	postScore(t, ts.URL, ScoreRequest{Stream: "a", Records: records(3, normalRecord)})
	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.RecordsScored != 3 || st.Streams != 1 {
		t.Errorf("statz = %+v", st)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.FeatureMetrics = true })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postScore(t, ts.URL, ScoreRequest{Stream: "m", Records: records(5, normalRecord)})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("content type = %q", got)
	}
	for _, want := range []string{
		"cfa_requests_total 1",
		"cfa_records_scored_total 5",
		"cfa_request_seconds_count 1",
		"cfa_model_generation 1",
		"cfa_streams 1",
		`cfa_score_count{verdict="normal"} 5`,
		"# TYPE cfa_request_seconds histogram",
		`cfa_feature_checked_total{feature="a"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /statz is a projection of the same counters.
	st := s.Stats()
	if st.Requests != 1 || st.RecordsScored != 5 || st.UptimeSeconds <= 0 || st.GoVersion == "" {
		t.Errorf("stats = %+v", st)
	}
}

func TestEvictionLoggedOncePerGeneration(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s, path := newTestServer(t, func(c *Config) {
		c.MaxStreams = 1
		c.Shards = 1 // pin the global LRU: per-shard caps would round up
		c.Logf = func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	countEvictLogs := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, l := range lines {
			if strings.Contains(l, "stream table full") {
				n++
			}
		}
		return n
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		postScore(t, ts.URL, ScoreRequest{Stream: id, Records: records(1, normalRecord)})
	}
	if got := s.Stats().Evictions; got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	if got := countEvictLogs(); got != 1 {
		t.Errorf("eviction log lines = %d, want 1 (first per generation)", got)
	}

	// A new model generation re-arms the one-shot log.
	writeTestBundle(t, path)
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e", "f"} {
		postScore(t, ts.URL, ScoreRequest{Stream: id, Records: records(1, normalRecord)})
	}
	if got := countEvictLogs(); got != 2 {
		t.Errorf("eviction log lines after reload = %d, want 2", got)
	}
}

func TestStreamLRUEviction(t *testing.T) {
	// One shard pins the exact global LRU order the assertions below walk;
	// with S shards the cap is ceil(2/S) per shard and the counts differ.
	s, _ := newTestServer(t, func(c *Config) { c.MaxStreams = 2; c.Shards = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, id := range []string{"a", "b", "c", "a", "d"} {
		postScore(t, ts.URL, ScoreRequest{Stream: id, Records: records(1, normalRecord)})
	}
	st := s.Stats()
	if st.Streams != 2 {
		t.Errorf("streams = %d, want 2", st.Streams)
	}
	// a,b -> +c evicts a; +a evicts b; +d evicts c.
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
}

func TestHotReloadSwapsVersionAndKeepsStreams(t *testing.T) {
	s, path := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sr := postScore(t, ts.URL, ScoreRequest{Stream: "n", Records: records(5, normalRecord)})
	if sr.ModelVersion != 1 {
		t.Fatalf("version = %d", sr.ModelVersion)
	}

	writeTestBundle(t, path) // retrain in place
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}

	// The existing stream keeps scoring, now against version 2.
	_, sr = postScore(t, ts.URL, ScoreRequest{Stream: "n", Records: records(5, normalRecord)})
	if sr.ModelVersion != 2 {
		t.Errorf("post-reload version = %d, want 2", sr.ModelVersion)
	}
	if s.Stats().Streams != 1 {
		t.Errorf("reload rebuilt the stream table: %d streams", s.Stats().Streams)
	}
}

func TestPanicRecovery(t *testing.T) {
	var arm bool
	s, _ := newTestServer(t, func(c *Config) {
		c.scoreHook = func(stream string) {
			if arm {
				panic("chaos: injected handler panic")
			}
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	arm = true
	resp, _ := postScore(t, ts.URL, ScoreRequest{Stream: "p", Records: records(1, normalRecord)})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d, want 500", resp.StatusCode)
	}
	if s.Stats().Panics != 1 {
		t.Errorf("panics = %d, want 1", s.Stats().Panics)
	}
	// The server survives and keeps serving.
	arm = false
	resp, sr := postScore(t, ts.URL, ScoreRequest{Stream: "p", Records: records(1, normalRecord)})
	if resp.StatusCode != http.StatusOK || len(sr.Results) != 1 {
		t.Errorf("server did not survive the panic: %d", resp.StatusCode)
	}
}

func TestNewFailsOnBadModelBeforeBinding(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Config{ModelPath: filepath.Join(dir, "missing.bin")}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("empty ModelPath accepted")
	}
}

func TestAdmitterBoundsAndDeadline(t *testing.T) {
	a := newAdmitter(1, 1, 1<<20, nil, nil, nil)
	rel1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue...
	type res struct {
		rel func()
		err error
	}
	waiter := make(chan res, 1)
	go func() {
		rel, err := a.admit(context.Background())
		waiter <- res{rel, err}
	}()
	// ...wait until it is actually queued.
	for q, _ := a.depth(); q == 0; q, _ = a.depth() {
		time.Sleep(time.Millisecond)
	}

	// The next one overflows synchronously.
	if _, err := a.admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow error = %v", err)
	}
	if a.shed.Value() != 1 {
		t.Errorf("shed = %d, want 1", a.shed.Value())
	}

	// Releasing the slot admits the waiter.
	rel1()
	got := <-waiter
	if got.err != nil {
		t.Fatalf("queued waiter failed: %v", got.err)
	}

	// A waiter whose deadline passes in the queue gets ErrQueueTimeout.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.admit(ctx); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("deadline error = %v", err)
	}
	got.rel()

	if _, hw := a.depth(); hw > 1 {
		t.Errorf("high water = %d, exceeds queue bound 1", hw)
	}
}

func TestAdmitterHighWaterNeverExceedsBound(t *testing.T) {
	const concurrent, queue, burst = 2, 3, 40
	a := newAdmitter(concurrent, queue, 1<<20, nil, nil, nil)
	block := make(chan struct{})
	var wg sync.WaitGroup
	var ok, shed sync.Map
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := a.admit(context.Background())
			if err != nil {
				shed.Store(i, true)
				return
			}
			<-block
			rel()
			ok.Store(i, true)
		}(i)
	}
	// Wait for the burst to settle: everyone has either queued or shed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		q, _ := a.depth()
		shedN := lenOf(&shed)
		if int(q) == queue && shedN == burst-concurrent-queue {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("burst never settled: queued=%d shed=%d", q, shedN)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if n := lenOf(&ok); n != concurrent+queue {
		t.Errorf("admitted = %d, want %d", n, concurrent+queue)
	}
	if _, hw := a.depth(); hw != queue {
		t.Errorf("high water = %d, want exactly %d", hw, queue)
	}
}

func lenOf(m *sync.Map) int {
	n := 0
	m.Range(func(_, _ any) bool { n++; return true })
	return n
}

func TestReadinessReportsReloadFailure(t *testing.T) {
	s, path := newTestServer(t, nil)
	// Corrupt the file on disk and reload: old model keeps serving.
	if err := writeGarbage(path); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("corrupt reload succeeded")
	}
	rd := s.Readiness()
	if !rd.Ready {
		t.Error("corrupt reload flipped readiness off despite a serving model")
	}
	if rd.ReloadFailures != 1 || rd.LastReloadError == "" {
		t.Errorf("readiness did not surface the failure: %+v", rd)
	}
	if rd.ModelVersion != 1 {
		t.Errorf("version changed to %d on failed reload", rd.ModelVersion)
	}
}

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("definitely not a model snapshot"), 0o644)
}
