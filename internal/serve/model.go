package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"crossfeature/internal/core"
	"crossfeature/internal/failpoint"
	"crossfeature/internal/obs"
)

// fpReload injects reload failures and stalls without needing a corrupt
// file on disk: error() exercises the keep-old-model path, delay() holds
// the reload lock to probe reload/serve independence.
var fpReload = failpoint.At("serve/reload")

// loadedModel is one immutable generation of the served model. Scoring
// paths grab the current generation once per request; a reload installs a
// new generation with a single pointer swap, so readers never see a model
// mid-replacement.
type loadedModel struct {
	bundle   *core.Bundle
	detector *core.Detector
	// fallback is the bundle's cheap NB detector, compiled at load for
	// brownout level-2 scoring; nil when the bundle carries none (NBC
	// primaries are already the cheap kernel).
	fallback *core.Detector
	version  uint64
	loadedAt time.Time
	// compile records the flat-form kernel build that ran at load time —
	// scoring requests never pay the compile, and /statz + /metrics
	// surface its cost and footprint.
	compile core.CompileStats
}

// modelHolder owns the hot-reload lifecycle: it loads bundles from a
// fixed path, fully validates them (snapshot header, checksum, gob
// payload, structural invariants) and only then swaps the atomic current
// pointer. A failed reload leaves the previous generation serving and
// records the failure for the readiness endpoint.
type modelHolder struct {
	path string
	cur  atomic.Pointer[loadedModel]

	mu       sync.Mutex // serialises reloads
	version  uint64
	reloads  *obs.Counter
	failures *obs.Counter

	// lastEvent is the most recent reload outcome (err empty on success)
	// with its timestamp, for /readyz and /statz.
	lastEvent atomic.Pointer[opEvent]
}

// newModelHolder builds the holder. reloads and failures count lifecycle
// outcomes — registry-bound in production, nil for a private counter.
func newModelHolder(path string, reloads, failures *obs.Counter) *modelHolder {
	if reloads == nil {
		reloads = obs.NewCounter()
	}
	if failures == nil {
		failures = obs.NewCounter()
	}
	return &modelHolder{path: path, reloads: reloads, failures: failures}
}

// reload loads, validates and atomically installs the bundle at the
// holder's path. On any failure the old model keeps serving.
func (h *modelHolder) reload() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, err := core.LoadBundleFile(h.path)
	if err == nil {
		err = fpReload.Hit()
	}
	if err != nil {
		h.failures.Inc()
		h.lastEvent.Store(&opEvent{err: err.Error(), at: time.Now()})
		return err
	}
	// Compile the analyzer's flat inference kernels once per generation,
	// before the swap: no request ever scores through the pointer-walking
	// model forms, and none pays the compile either.
	cs := b.Analyzer.Compile()
	fb := b.FallbackDetector()
	if fb != nil {
		// The whole point of the fallback is cheap inference under
		// overload, so its kernels are compiled at load like the primary's.
		fb.Analyzer.Compile()
	}
	h.version++
	h.cur.Store(&loadedModel{
		bundle:   b,
		detector: b.Detector(),
		fallback: fb,
		version:  h.version,
		loadedAt: time.Now(),
		compile:  cs,
	})
	h.reloads.Inc()
	h.lastEvent.Store(&opEvent{at: time.Now()})
	return nil
}

// current returns the serving generation (nil only before the first
// successful load, which New treats as a startup error).
func (h *modelHolder) current() *loadedModel { return h.cur.Load() }

// lastError returns the most recent reload failure, or "" after a
// successful (re)load.
func (h *modelHolder) lastError() string {
	if ev := h.lastEvent.Load(); ev != nil {
		return ev.err
	}
	return ""
}
