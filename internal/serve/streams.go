package serve

import (
	"container/list"
	"sync"

	"crossfeature/internal/core"
)

// stream is one client audit stream's online detector plus the model
// generation it was last synced to. Observe is stateful (EWMA, hysteresis
// runs), so each stream carries its own lock; requests for distinct
// streams score fully in parallel, requests for one stream serialise.
type stream struct {
	id   string
	elem *list.Element

	mu      sync.Mutex
	od      *core.OnlineDetector
	version uint64
}

// streamTable is a bounded LRU of live streams. A scoring service on a
// busy network sees streams come and go (nodes reboot, clients churn);
// capping the table and evicting the least recently scored stream keeps
// memory bounded no matter how many distinct stream ids a client — or an
// attacker — invents. An evicted stream that returns simply restarts with
// fresh hysteresis state.
type streamTable struct {
	mu   sync.Mutex
	max  int
	byID map[string]*stream
	lru  *list.List // front = most recently used

	// onEvict, when set, observes every eviction (counter bump, first-
	// eviction logging). It runs under the table lock — keep it quick.
	onEvict func(id string)
	// onCreate, when set, observes every stream created cold by get —
	// restored streams (insert) do not fire it, so the counter behind it
	// separates cold starts from checkpoint-warmed streams. It runs under
	// the table lock — keep it quick.
	onCreate func(id string)
}

func newStreamTable(max int) *streamTable {
	if max < 1 {
		max = 1
	}
	return &streamTable{max: max, byID: make(map[string]*stream), lru: list.New()}
}

// get returns the stream for id, creating it with mk (and evicting the
// coldest stream when over capacity) on first sight.
func (t *streamTable) get(id string, mk func() *core.OnlineDetector) *stream {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byID[id]; ok {
		t.lru.MoveToFront(s.elem)
		return s
	}
	s := &stream{id: id, od: mk()}
	s.elem = t.lru.PushFront(s)
	t.byID[id] = s
	if t.onCreate != nil {
		t.onCreate(id)
	}
	t.evictOverCapLocked()
	return s
}

func (t *streamTable) evictOverCapLocked() {
	for len(t.byID) > t.max {
		back := t.lru.Back()
		ev := back.Value.(*stream)
		t.lru.Remove(back)
		delete(t.byID, ev.id)
		if t.onEvict != nil {
			t.onEvict(ev.id)
		}
	}
}

// streamState is one stream's checkpointable state: its id and the
// detector state blob from core.OnlineDetector.AppendState.
type streamState struct {
	id    string
	state []byte
}

// snapshot captures every stream's detector state for a checkpoint,
// hottest first (so a restore into a smaller table keeps the most
// recently active streams). The table lock is held only long enough to
// copy the stream pointers — O(streams) pointer moves, no encoding —
// then each stream is encoded under its own lock. A stream whose lock
// cannot be taken immediately (a request is scoring on it right now) is
// skipped and counted via skipped rather than awaited: checkpoint
// duration must stay bounded even when a handler wedges, and a skipped
// stream simply restarts cold after a crash, which is exactly what it
// would have done before checkpoints existed.
func (t *streamTable) snapshot() (states []streamState, skipped int) {
	t.mu.Lock()
	ordered := make([]*stream, 0, len(t.byID))
	for e := t.lru.Front(); e != nil; e = e.Next() {
		ordered = append(ordered, e.Value.(*stream))
	}
	t.mu.Unlock()

	states = make([]streamState, 0, len(ordered))
	for _, s := range ordered {
		if !s.mu.TryLock() {
			skipped++
			continue
		}
		states = append(states, streamState{id: s.id, state: s.od.AppendState(nil)})
		s.mu.Unlock()
	}
	return states, skipped
}

// insert adds a restored stream if (and only if) no live stream with the
// same id exists — traffic scored since boot always wins over checkpoint
// state — and the table has room: a restored stream would land at the
// cold end of the LRU, so when the table is already full it would be the
// next eviction anyway and is simply not inserted. Reports whether the
// stream was inserted.
func (t *streamTable) insert(id string, od *core.OnlineDetector) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; ok {
		return false
	}
	if len(t.byID) >= t.max {
		return false
	}
	s := &stream{id: id, od: od}
	s.elem = t.lru.PushBack(s)
	t.byID[id] = s
	return true
}

// len reports the number of live streams.
func (t *streamTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}
