package serve

import (
	"container/list"
	"sync"

	"crossfeature/internal/core"
	"crossfeature/internal/obs"
)

// stream is one client audit stream's online detector plus the model
// generation it was last synced to. Observe is stateful (EWMA, hysteresis
// runs), so each stream carries its own lock; requests for distinct
// streams score fully in parallel, requests for one stream serialise.
type stream struct {
	id   string
	elem *list.Element

	mu      sync.Mutex
	od      *core.OnlineDetector
	version uint64
}

// streamShard is one independently locked slice of the stream table: its
// own map, its own LRU list, its own capacity. Distinct streams that hash
// to different shards never touch the same mutex, so a fleet of clients
// scoring disjoint streams contends only on the per-stream locks it
// actually shares. The trailing pad keeps neighbouring shards off one
// cache line — without it two shards' mutexes false-share and the whole
// point of sharding evaporates under load.
type streamShard struct {
	mu   sync.Mutex
	max  int
	byID map[string]*stream
	lru  *list.List // front = most recently used

	_ [32]byte // pad to a cache line; see streamShard doc
}

// streamTable is a bounded LRU of live streams, sharded by stream-id hash.
// A scoring service on a busy network sees streams come and go (nodes
// reboot, clients churn); capping the table and evicting the least
// recently scored stream keeps memory bounded no matter how many distinct
// stream ids a client — or an attacker — invents. An evicted stream that
// returns simply restarts with fresh hysteresis state.
//
// Capacity is enforced per shard: each shard holds at most
// ceil(max/shards) streams, so the table's total capacity lies in
// [max, max+shards-1] and the memory bound survives sharding. The LRU is
// per shard too — a hot stream protects itself only from eviction within
// its own shard, which under a hash that spreads ids evenly is
// indistinguishable from the global policy until the table is nearly
// full.
type streamTable struct {
	shards []streamShard
	mask   uint32
	max    int // configured global capacity, for logs

	// lockWait counts shard-lock acquisitions that had to wait because
	// another goroutine held the shard. A rising rate under load is the
	// signal to raise the shard count. Never nil.
	lockWait *obs.Counter

	// onEvict, when set, observes every eviction (counter bump, first-
	// eviction logging). onCreate, when set, observes every stream created
	// cold by get — restored streams (insert) do not fire it, so the
	// counter behind it separates cold starts from checkpoint-warmed
	// streams.
	//
	// Ordering guarantee: both callbacks run AFTER the table mutation is
	// visible and OUTSIDE the shard lock, so they may call back into the
	// table (len, snapshot, even get) without deadlocking. For a single
	// get the order is onCreate first, then any onEvict calls in LRU
	// order (coldest first). Callbacks for different shards — and for
	// concurrent gets on one shard — may interleave arbitrarily; a
	// callback that needs a consistent view of the table must take its
	// own snapshot, not assume the state it was called about still holds.
	onEvict  func(id string)
	onCreate func(id string)
}

// newStreamTable builds a table of at most max streams across the given
// number of shards (rounded up to a power of two, clamped to [1, 1024]).
// lockWait receives shard-lock contention events; nil builds a private
// counter.
func newStreamTable(max, shards int, lockWait *obs.Counter) *streamTable {
	if max < 1 {
		max = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > 1024 {
		shards = 1024
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if lockWait == nil {
		lockWait = obs.NewCounter()
	}
	t := &streamTable{
		shards:   make([]streamShard, n),
		mask:     uint32(n - 1),
		max:      max,
		lockWait: lockWait,
	}
	perShard := (max + n - 1) / n
	for i := range t.shards {
		t.shards[i].max = perShard
		t.shards[i].byID = make(map[string]*stream)
		t.shards[i].lru = list.New()
	}
	return t
}

// shardFor hashes id (FNV-1a) onto a shard. The mask works because the
// shard count is a power of two.
func (t *streamTable) shardFor(id string) *streamShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &t.shards[h&t.mask]
}

// lock takes sh.mu, counting the acquisition as contended when it could
// not be taken immediately.
func (t *streamTable) lock(sh *streamShard) {
	if sh.mu.TryLock() {
		return
	}
	t.lockWait.Inc()
	sh.mu.Lock()
}

// get returns the stream for id, creating it (and evicting the coldest
// streams of its shard when over capacity) on first sight. mk runs
// outside the shard lock; when two gets race on a new id, one detector is
// built and discarded.
func (t *streamTable) get(id string, mk func() *core.OnlineDetector) *stream {
	sh := t.shardFor(id)
	t.lock(sh)
	if s, ok := sh.byID[id]; ok {
		sh.lru.MoveToFront(s.elem)
		sh.mu.Unlock()
		return s
	}
	sh.mu.Unlock()

	od := mk()
	t.lock(sh)
	if s, ok := sh.byID[id]; ok {
		// Lost the creation race; the loser's detector is garbage.
		sh.lru.MoveToFront(s.elem)
		sh.mu.Unlock()
		return s
	}
	s := &stream{id: id, od: od}
	s.elem = sh.lru.PushFront(s)
	sh.byID[id] = s
	var evicted []string
	for len(sh.byID) > sh.max {
		back := sh.lru.Back()
		ev := back.Value.(*stream)
		sh.lru.Remove(back)
		delete(sh.byID, ev.id)
		evicted = append(evicted, ev.id)
	}
	sh.mu.Unlock()

	// Callbacks fire outside the critical section (see the field docs for
	// the ordering guarantee): an onEvict that logs, bumps registry
	// counters or reads the table back must not serialise every other
	// stream's admission behind it.
	if t.onCreate != nil {
		t.onCreate(id)
	}
	if t.onEvict != nil {
		for _, id := range evicted {
			t.onEvict(id)
		}
	}
	return s
}

// streamState is one stream's checkpointable state: its id and the
// detector state blob from core.OnlineDetector.AppendState.
type streamState struct {
	id    string
	state []byte
}

// snapshot captures every stream's detector state for a checkpoint,
// hottest first within each shard (so a restore into a smaller table
// keeps the most recently active streams of every shard). Each shard's
// lock is held only long enough to copy that shard's stream pointers —
// O(streams) pointer moves, no encoding — then each stream is encoded
// under its own lock. A stream whose lock cannot be taken immediately (a
// request is scoring on it right now) is skipped and counted via skipped
// rather than awaited: checkpoint duration must stay bounded even when a
// handler wedges, and a skipped stream simply restarts cold after a
// crash, which is exactly what it would have done before checkpoints
// existed.
func (t *streamTable) snapshot() (states []streamState, skipped int) {
	ordered := make([]*stream, 0, t.len())
	for i := range t.shards {
		sh := &t.shards[i]
		t.lock(sh)
		for e := sh.lru.Front(); e != nil; e = e.Next() {
			ordered = append(ordered, e.Value.(*stream))
		}
		sh.mu.Unlock()
	}

	states = make([]streamState, 0, len(ordered))
	for _, s := range ordered {
		if !s.mu.TryLock() {
			skipped++
			continue
		}
		states = append(states, streamState{id: s.id, state: s.od.AppendState(nil)})
		s.mu.Unlock()
	}
	return states, skipped
}

// insert adds a restored stream if (and only if) no live stream with the
// same id exists — traffic scored since boot always wins over checkpoint
// state — and the stream's shard has room: a restored stream would land
// at the cold end of the shard's LRU, so when the shard is already full
// it would be the next eviction anyway and is simply not inserted.
// Reports whether the stream was inserted.
func (t *streamTable) insert(id string, od *core.OnlineDetector) bool {
	sh := t.shardFor(id)
	t.lock(sh)
	defer sh.mu.Unlock()
	if _, ok := sh.byID[id]; ok {
		return false
	}
	if len(sh.byID) >= sh.max {
		return false
	}
	s := &stream{id: id, od: od}
	s.elem = sh.lru.PushBack(s)
	sh.byID[id] = s
	return true
}

// len reports the number of live streams across all shards.
func (t *streamTable) len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		t.lock(sh)
		n += len(sh.byID)
		sh.mu.Unlock()
	}
	return n
}

// numShards reports the (power-of-two) shard count.
func (t *streamTable) numShards() int { return len(t.shards) }

// shardLen reports shard i's live stream count, for the per-shard
// occupancy gauges.
func (t *streamTable) shardLen(i int) int {
	sh := &t.shards[i]
	t.lock(sh)
	defer sh.mu.Unlock()
	return len(sh.byID)
}
