package serve

import (
	"container/list"
	"sync"

	"crossfeature/internal/core"
)

// stream is one client audit stream's online detector plus the model
// generation it was last synced to. Observe is stateful (EWMA, hysteresis
// runs), so each stream carries its own lock; requests for distinct
// streams score fully in parallel, requests for one stream serialise.
type stream struct {
	id   string
	elem *list.Element

	mu      sync.Mutex
	od      *core.OnlineDetector
	version uint64
}

// streamTable is a bounded LRU of live streams. A scoring service on a
// busy network sees streams come and go (nodes reboot, clients churn);
// capping the table and evicting the least recently scored stream keeps
// memory bounded no matter how many distinct stream ids a client — or an
// attacker — invents. An evicted stream that returns simply restarts with
// fresh hysteresis state.
type streamTable struct {
	mu   sync.Mutex
	max  int
	byID map[string]*stream
	lru  *list.List // front = most recently used

	// onEvict, when set, observes every eviction (counter bump, first-
	// eviction logging). It runs under the table lock — keep it quick.
	onEvict func(id string)
}

func newStreamTable(max int) *streamTable {
	if max < 1 {
		max = 1
	}
	return &streamTable{max: max, byID: make(map[string]*stream), lru: list.New()}
}

// get returns the stream for id, creating it with mk (and evicting the
// coldest stream when over capacity) on first sight.
func (t *streamTable) get(id string, mk func() *core.OnlineDetector) *stream {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byID[id]; ok {
		t.lru.MoveToFront(s.elem)
		return s
	}
	s := &stream{id: id, od: mk()}
	s.elem = t.lru.PushFront(s)
	t.byID[id] = s
	for len(t.byID) > t.max {
		back := t.lru.Back()
		ev := back.Value.(*stream)
		t.lru.Remove(back)
		delete(t.byID, ev.id)
		if t.onEvict != nil {
			t.onEvict(ev.id)
		}
	}
	return s
}

// len reports the number of live streams.
func (t *streamTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}
