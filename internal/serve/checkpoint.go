package serve

// Durable per-stream detector state. A `cfa serve` crash or redeploy used
// to discard every stream's EWMA and hysteresis position, so all streams
// restarted cold and the verdicts around the restart window were garbage.
// The checkpointer periodically snapshots the stream table into a
// versioned, CRC-checked file (the same frame format as model snapshots,
// under its own magic) with atomic temp-file+rename writes; on boot the
// server restores whatever checkpoint it finds, skipping stale or corrupt
// files with a counter — a bad checkpoint can cost warm state, never
// availability.
//
// Checkpoint file layout (inside the core.WriteFrame CFAC envelope, which
// contributes magic, version, CRC-32C and length):
//
//	offset size
//	0      8    written-at, unix nanoseconds (staleness check)
//	8      8    model generation at write time (informational)
//	16     4    stream count
//	...         per stream: u16 id length, id bytes,
//	            u16 state length, core.OnlineDetector state blob
//
// All integers big-endian, matching the frame header. Streams appear in
// snapshot order — hottest first within each shard of the (sharded)
// stream table; the format itself is order-agnostic, and restore hashes
// each id back onto whatever shard layout the restoring process runs, so
// a checkpoint round-trips byte-identically across different -shards
// settings.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"crossfeature/internal/core"
	"crossfeature/internal/failpoint"
)

const (
	checkpointMagic   = "CFAC"
	checkpointVersion = 1
	// checkpointMaxID caps a stream id inside a checkpoint; ids over the
	// u16 length prefix cannot be encoded and are skipped at write time.
	checkpointMaxID = 1<<16 - 1
)

// Failpoints on the checkpoint write path, mirroring the persist pair.
var (
	fpCheckpointPayload = failpoint.At("serve/checkpoint/payload")
	fpCheckpointRename  = failpoint.At("serve/checkpoint/pre-rename")
)

// CheckpointInfo describes one completed checkpoint write.
type CheckpointInfo struct {
	At      time.Time `json:"at"`
	Streams int       `json:"streams"`
	Skipped int       `json:"skipped_streams"`
	Bytes   int       `json:"bytes"`
}

// opEvent records the latest outcome of an operational event (reload,
// restore, checkpoint) for the /statz surface: the error string is empty
// on success.
type opEvent struct {
	err string
	at  time.Time
}

func encodeCheckpoint(states []streamState, writtenAt time.Time, modelGen uint64) []byte {
	size := 20
	for _, st := range states {
		size += 4 + len(st.id) + len(st.state)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, uint64(writtenAt.UnixNano()))
	buf = binary.BigEndian.AppendUint64(buf, modelGen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(states)))
	for _, st := range states {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(st.id)))
		buf = append(buf, st.id...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(st.state)))
		buf = append(buf, st.state...)
	}
	return buf
}

// decodeCheckpoint parses a checkpoint payload (already CRC-verified by
// core.ReadFrame). Structural damage maps to core.ErrSnapshotCorrupt so
// callers treat it like any other corrupt file. All stream ids are
// carved from one shared string slab rather than converted one by one —
// with thousands of streams the per-id conversions used to dominate the
// restore path's allocation profile.
func decodeCheckpoint(payload []byte) (writtenAt time.Time, modelGen uint64, states []streamState, err error) {
	if len(payload) < 20 {
		return time.Time{}, 0, nil, fmt.Errorf("%w: checkpoint payload %d bytes, want >= 20", core.ErrSnapshotCorrupt, len(payload))
	}
	writtenAt = time.Unix(0, int64(binary.BigEndian.Uint64(payload[:8])))
	modelGen = binary.BigEndian.Uint64(payload[8:16])
	count := binary.BigEndian.Uint32(payload[16:20])
	rest := payload[20:]
	states = make([]streamState, 0, min(int(count), 1<<16))
	// One walk records each id's span (payload position, cumulative slab
	// offset); the ids are then copied into an exactly-sized slab and
	// carved into substrings after the end-of-frame check.
	idPos := make([]int, 0, min(int(count), 1<<16))
	idOff := make([]int, 1, min(int(count), 1<<16)+1)
	totalID := 0
	for i := uint32(0); i < count; i++ {
		if len(rest) < 2 {
			return time.Time{}, 0, nil, fmt.Errorf("%w: checkpoint truncated in stream %d id length", core.ErrSnapshotCorrupt, i)
		}
		idLen := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if idLen == 0 || len(rest) < idLen {
			return time.Time{}, 0, nil, fmt.Errorf("%w: checkpoint truncated in stream %d id", core.ErrSnapshotCorrupt, i)
		}
		idPos = append(idPos, len(payload)-len(rest))
		totalID += idLen
		idOff = append(idOff, totalID)
		rest = rest[idLen:]
		if len(rest) < 2 {
			return time.Time{}, 0, nil, fmt.Errorf("%w: checkpoint truncated in stream %d state length", core.ErrSnapshotCorrupt, i)
		}
		stLen := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < stLen {
			return time.Time{}, 0, nil, fmt.Errorf("%w: checkpoint truncated in stream %d state", core.ErrSnapshotCorrupt, i)
		}
		states = append(states, streamState{state: rest[:stLen]})
		rest = rest[stLen:]
	}
	if len(rest) != 0 {
		return time.Time{}, 0, nil, fmt.Errorf("%w: %d trailing bytes after %d checkpoint streams", core.ErrSnapshotCorrupt, len(rest), count)
	}
	idBuf := make([]byte, totalID)
	for i, pos := range idPos {
		copy(idBuf[idOff[i]:idOff[i+1]], payload[pos:])
	}
	ids := string(idBuf)
	for i := range states {
		states[i].id = ids[idOff[i]:idOff[i+1]]
	}
	return writtenAt, modelGen, states, nil
}

// Checkpoint snapshots the stream table and atomically writes it to the
// configured path. It is safe to call concurrently with scoring (streams
// are encoded under their own locks) and with itself (writes serialise on
// the atomic temp+rename). Returns an error — and leaves any previous
// checkpoint file untouched — when the write fails.
func (s *Server) Checkpoint() (CheckpointInfo, error) {
	if s.cfg.CheckpointPath == "" {
		return CheckpointInfo{}, errors.New("serve: checkpointing disabled (no CheckpointPath)")
	}
	start := time.Now()
	states, skipped := s.streams.snapshot()
	kept := states[:0]
	for _, st := range states {
		if len(st.id) > checkpointMaxID {
			skipped++
			continue
		}
		kept = append(kept, st)
	}
	states = kept
	var gen uint64
	if lm := s.model.current(); lm != nil {
		gen = lm.version
	}
	payload := encodeCheckpoint(states, start, gen)
	err := core.AtomicWriteFile(s.cfg.CheckpointPath, func(w io.Writer) error {
		if err := core.WriteFrame(fpCheckpointPayload.Writer(w), checkpointMagic, checkpointVersion, payload); err != nil {
			return err
		}
		if err := fpCheckpointRename.Hit(); err != nil {
			return fmt.Errorf("serve: write checkpoint: %w", err)
		}
		return nil
	})
	if skipped > 0 {
		s.met.checkpointStreamsSkipped.Add(uint64(skipped))
	}
	if err != nil {
		s.met.checkpointFailures.Inc()
		return CheckpointInfo{}, err
	}
	info := CheckpointInfo{
		At:      start,
		Streams: len(states),
		Skipped: skipped,
		Bytes:   core.FrameHeaderLen + len(payload),
	}
	s.lastCheckpoint.Store(&info)
	s.met.checkpointWrites.Inc()
	s.met.checkpointSeconds.Observe(time.Since(start).Seconds())
	s.flightEvent("checkpoint", fmt.Sprintf("%d streams, %d bytes", info.Streams, info.Bytes))
	// The flight recorder's persistence piggybacks on the checkpoint
	// cadence: whatever dump is on disk when the process dies hard is at
	// most one checkpoint interval old. Failure costs the fresher dump,
	// never the checkpoint.
	if err := s.writeFlightDump(s.flightPath()); err != nil {
		s.cfg.Logf("serve: flight dump alongside checkpoint failed: %v", err)
	}
	return info, nil
}

// RestoreCheckpoint loads the configured checkpoint file and warms the
// stream table from it. It is deliberately infallible from the caller's
// point of view: a missing, corrupt or stale checkpoint costs warm state,
// never startup — each outcome is counted and, on failure, surfaced via
// /statz. Streams already live in the table (scored while the restore
// ran) keep their live state. Returns the number of streams restored.
func (s *Server) RestoreCheckpoint() int {
	outcome, restored, err := s.restoreCheckpoint()
	s.met.restoreOutcome(outcome).Inc()
	ev := opEvent{at: time.Now()}
	if err != nil {
		ev.err = fmt.Sprintf("checkpoint restore (%s): %v", outcome, err)
		s.cfg.Logf("serve: checkpoint restore: %s skipped: %v", outcome, err)
	} else if outcome == "restored" {
		s.cfg.Logf("serve: checkpoint restored %d streams from %s", restored, s.cfg.CheckpointPath)
	}
	s.flightEvent("restore", fmt.Sprintf("%s: %d streams", outcome, restored))
	s.lastRestore.Store(&ev)
	return restored
}

// restoreCheckpoint does the work; outcome is one of missing, corrupt,
// stale, restored.
func (s *Server) restoreCheckpoint() (outcome string, restored int, err error) {
	f, err := os.Open(s.cfg.CheckpointPath)
	if err != nil {
		if os.IsNotExist(err) {
			return "missing", 0, nil
		}
		return "corrupt", 0, err
	}
	defer f.Close()
	payload, err := core.ReadFrame(f, checkpointMagic, checkpointVersion)
	if err != nil {
		return "corrupt", 0, err
	}
	writtenAt, _, states, err := decodeCheckpoint(payload)
	if err != nil {
		return "corrupt", 0, err
	}
	if age := time.Since(writtenAt); s.cfg.CheckpointMaxAge > 0 && age > s.cfg.CheckpointMaxAge {
		return "stale", 0, fmt.Errorf("checkpoint is %s old, max age %s", age.Round(time.Second), s.cfg.CheckpointMaxAge)
	}
	lm := s.model.current()
	// One slab allocation covers every stream's detector: restoring a big
	// table allocated one detector per stream before, which dominated the
	// restore profile (BenchmarkCheckpointRestore).
	slab := core.NewOnlineDetectors(lm.detector, len(states))
	for si, st := range states {
		od := &slab[si]
		if _, rerr := od.RestoreState(st.state); rerr != nil {
			// CRC passed but a state blob fails validation: an encoder bug
			// or a version skew inside one entry. Skip the stream — it
			// restarts cold — and keep restoring the rest.
			s.met.checkpointStreamsSkipped.Inc()
			s.cfg.Logf("serve: checkpoint stream %q skipped: %v", st.id, rerr)
			continue
		}
		s.applyDetectorKnobs(od)
		if s.streams.insert(st.id, od) {
			restored++
		}
	}
	s.met.streamsRestored.Add(uint64(restored))
	return "restored", restored, nil
}

// runCheckpointLoop writes checkpoints every interval until ctx is done.
// It waits for the boot restore to finish first so an early checkpoint
// cannot clobber a restorable file with a nearly empty table.
func (s *Server) runCheckpointLoop(ctx context.Context) {
	select {
	case <-s.restoreDone:
	case <-ctx.Done():
		return
	}
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := s.Checkpoint(); err != nil {
				s.cfg.Logf("serve: periodic checkpoint failed: %v", err)
			}
		}
	}
}

// handleCheckpoint forces a checkpoint now: POST /v1/checkpoint. The
// crash-recovery tests use it to place a known barrier; operators get a
// pre-deploy "save everything" button for free.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	info, err := s.Checkpoint()
	if err != nil {
		code := http.StatusInternalServerError
		if s.cfg.CheckpointPath == "" {
			code = http.StatusConflict
		}
		writeJSONError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}
