package client

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"crossfeature/internal/obs"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	clk := newFakeClock()
	cfg.now = clk.now
	return newBreaker(cfg, obs.NewRegistry()), clk
}

func TestBreakerStaysClosedUnderVolumeFloor(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{MinRequests: 10})
	for i := 0; i < 9; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.observe(false)
	}
	if b.State() != "closed" {
		t.Errorf("state after 9 failures under a 10-request floor = %q", b.State())
	}
}

func TestBreakerTripsOnFailureRatio(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{MinRequests: 10, FailureRatio: 0.5})
	// 5 successes, then 5 failures: exactly at the 50% ratio with the
	// floor met — the breaker opens on the last failure.
	for i := 0; i < 5; i++ {
		b.Allow()
		b.observe(true)
	}
	for i := 0; i < 5; i++ {
		b.Allow()
		b.observe(false)
	}
	if b.State() != "open" {
		t.Fatalf("state = %q, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("open breaker allowed a call: %v", err)
	}
}

func TestBreakerMostlySuccessesNeverTrips(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{MinRequests: 10, FailureRatio: 0.5})
	for i := 0; i < 100; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("call %d rejected: %v", i, err)
		}
		b.observe(i%3 != 0) // 1/3 failures, under the 50% trip ratio
	}
	if b.State() != "closed" {
		t.Errorf("state under a sub-threshold failure rate = %q", b.State())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		MinRequests: 4, FailureRatio: 0.5, Cooldown: time.Second, HalfOpenProbes: 2,
	})
	for i := 0; i < 4; i++ {
		b.Allow()
		b.observe(false)
	}
	if b.State() != "open" {
		t.Fatalf("state = %q, want open", b.State())
	}

	// During the cooldown everything is rejected.
	clk.advance(500 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("mid-cooldown Allow = %v", err)
	}

	// Cooldown over: exactly HalfOpenProbes calls are admitted.
	clk.advance(600 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	if b.State() != "half_open" {
		t.Fatalf("state = %q, want half_open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe quota not enforced: %v", err)
	}

	// Both probes succeed: the breaker closes on a fresh window.
	b.observe(true)
	b.observe(true)
	if b.State() != "closed" {
		t.Fatalf("state after successful probes = %q, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Errorf("closed breaker rejected: %v", err)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		MinRequests: 4, FailureRatio: 0.5, Cooldown: time.Second, HalfOpenProbes: 2,
	})
	for i := 0; i < 4; i++ {
		b.Allow()
		b.observe(false)
	}
	clk.advance(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.observe(false)
	if b.State() != "open" {
		t.Fatalf("state after failed probe = %q, want open", b.State())
	}
	// The cooldown restarted at the failed probe, not the original trip.
	clk.advance(900 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("cooldown did not restart after failed probe: %v", err)
	}
	clk.advance(200 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Errorf("probe after restarted cooldown rejected: %v", err)
	}
}

func TestBreakerWindowAgesOutFailures(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		Window: time.Second, Buckets: 10, MinRequests: 10, FailureRatio: 0.5,
	})
	// 9 failures, then the whole window ages out before the 10th.
	for i := 0; i < 9; i++ {
		b.Allow()
		b.observe(false)
	}
	clk.advance(2 * time.Second)
	b.Allow()
	b.observe(false)
	if b.State() != "closed" {
		t.Errorf("stale failures tripped the breaker: state %q", b.State())
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Disabled: true, MinRequests: 1, FailureRatio: 0.01})
	for i := 0; i < 50; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("disabled breaker rejected call %d: %v", i, err)
		}
		b.observe(false)
	}
}

// TestClientBreakerFailsFast wires the breaker through Score: a dead
// server trips it, after which calls fail with ErrBreakerOpen without
// touching the network.
func TestClientBreakerFailsFast(t *testing.T) {
	ts, calls := fakeServer(t, 1000000, http.StatusInternalServerError, nil)
	c, _ := testClient(t, ts, func(cfg *Config) {
		cfg.MaxAttempts = 2
		cfg.RetryBudget = 100
		cfg.Breaker = BreakerConfig{MinRequests: 6, FailureRatio: 0.5, Cooldown: time.Hour}
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Score(context.Background(), "s", oneRecord()); err == nil {
			t.Fatal("score against dead server succeeded")
		}
	}
	if c.BreakerState() != "open" {
		t.Fatalf("breaker state after 6 failures = %q, want open", c.BreakerState())
	}
	before := calls.Load()
	_, err := c.Score(context.Background(), "s", oneRecord())
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("error = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Errorf("open breaker still sent %d requests", calls.Load()-before)
	}
}

// TestClientBreakerIgnoresClientErrors pins the failure classification: a
// stream of 400s (the server is healthy, the requests are bad) must never
// open the breaker.
func TestClientBreakerIgnoresClientErrors(t *testing.T) {
	ts, _ := fakeServer(t, 1000000, http.StatusBadRequest, nil)
	c, _ := testClient(t, ts, func(cfg *Config) {
		cfg.Breaker = BreakerConfig{MinRequests: 4, FailureRatio: 0.25}
	})
	for i := 0; i < 20; i++ {
		if _, err := c.Score(context.Background(), "s", oneRecord()); errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("client errors opened the breaker at call %d", i)
		}
	}
	if c.BreakerState() != "closed" {
		t.Errorf("breaker state after 400s = %q, want closed", c.BreakerState())
	}
}
