package client

// Circuit breaker for the scoring client, composed with the retry
// budget. The budget bounds how much extra load retries add; the breaker
// bounds how long a client keeps offering load to an endpoint that is
// failing outright. Once the rolling failure ratio trips it, calls fail
// fast with ErrBreakerOpen — no connection, no request — until a cooldown
// passes and a few half-open probes prove the server is answering again.

import (
	"errors"
	"sync"
	"time"

	"crossfeature/internal/obs"
)

// ErrBreakerOpen is returned by Score when the circuit breaker is open:
// the endpoint has been failing and the cooldown has not yet elapsed (or
// the half-open probe quota is taken). Callers should treat it like shed
// load — back off at a higher level, do not retry in a loop.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// BreakerConfig tunes the circuit breaker. Zero values take the
// documented defaults.
type BreakerConfig struct {
	// Disabled turns the breaker off entirely; every call is allowed.
	Disabled bool
	// Window is the rolling window over which the failure ratio is
	// computed. Default 10s.
	Window time.Duration
	// Buckets is the window's bucket count; finer buckets age failures
	// out more smoothly. Default 10.
	Buckets int
	// MinRequests is the volume floor: the breaker never trips before
	// this many calls land in the window, so a single failed call on a
	// quiet client cannot open it. Default 20.
	MinRequests int
	// FailureRatio is the window failure fraction at or above which the
	// breaker opens. Default 0.5.
	FailureRatio float64
	// Cooldown is how long the breaker stays open before allowing
	// half-open probes. Default 5s.
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probe calls the half-open
	// state admits, and how many must succeed to close. Default 3.
	HalfOpenProbes int

	// now is the clock; injectable for deterministic tests.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 20
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

func stateName(s int) string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// wbucket is one slice of the rolling window. epoch identifies which
// absolute time slot the counts belong to; a bucket whose epoch has
// fallen out of the window is reset lazily on next touch and ignored by
// reads.
type wbucket struct {
	epoch    int64
	ok, fail int
}

// breaker is a rolling-window circuit breaker. All state is guarded by
// mu; every operation is O(Buckets) worst case.
type breaker struct {
	cfg   BreakerConfig
	width time.Duration // Window / Buckets

	mu             sync.Mutex
	state          int
	buckets        []wbucket
	openedAt       time.Time
	probesInFlight int
	probeSuccesses int

	transitions map[int]*obs.Counter
	rejected    *obs.Counter
}

func newBreaker(cfg BreakerConfig, reg *obs.Registry) *breaker {
	cfg = cfg.withDefaults()
	b := &breaker{
		cfg:     cfg,
		width:   cfg.Window / time.Duration(cfg.Buckets),
		buckets: make([]wbucket, cfg.Buckets),
		transitions: map[int]*obs.Counter{
			stateOpen: reg.Counter("cfa_client_breaker_transitions_total",
				"Circuit breaker state transitions by destination state.", obs.L("to", "open")),
			stateHalfOpen: reg.Counter("cfa_client_breaker_transitions_total",
				"Circuit breaker state transitions by destination state.", obs.L("to", "half_open")),
			stateClosed: reg.Counter("cfa_client_breaker_transitions_total",
				"Circuit breaker state transitions by destination state.", obs.L("to", "closed")),
		},
		rejected: reg.Counter("cfa_client_breaker_rejected_total",
			"Calls rejected fast because the circuit breaker was open."),
	}
	reg.GaugeFunc("cfa_client_breaker_state",
		"Circuit breaker state: 0 closed, 1 open, 2 half-open.", func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(b.state)
		})
	return b
}

// Allow reports whether a call may proceed right now. In the half-open
// state a successful Allow reserves one probe slot; the caller MUST
// follow it with exactly one observe().
func (b *breaker) Allow() error {
	if b.cfg.Disabled {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.now()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejected.Inc()
			return ErrBreakerOpen
		}
		b.setStateLocked(stateHalfOpen)
		fallthrough
	default: // stateHalfOpen
		if b.probesInFlight >= b.cfg.HalfOpenProbes {
			b.rejected.Inc()
			return ErrBreakerOpen
		}
		b.probesInFlight++
		return nil
	}
}

// observe records one call outcome. It must be called exactly once per
// successful Allow.
func (b *breaker) observe(success bool) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.now()
	switch b.state {
	case stateHalfOpen:
		b.probesInFlight--
		if !success {
			// The endpoint is still failing: reopen and restart the
			// cooldown from now.
			b.openedAt = now
			b.setStateLocked(stateOpen)
			return
		}
		b.probeSuccesses++
		if b.probeSuccesses >= b.cfg.HalfOpenProbes {
			// Proven healthy: close on a fresh window so stale failures
			// cannot re-trip it immediately.
			for i := range b.buckets {
				b.buckets[i] = wbucket{}
			}
			b.setStateLocked(stateClosed)
		}
	case stateClosed:
		bk := b.bucketLocked(now)
		if success {
			bk.ok++
			return
		}
		bk.fail++
		ok, fail := b.windowLocked(now)
		if total := ok + fail; total >= b.cfg.MinRequests &&
			float64(fail) >= b.cfg.FailureRatio*float64(total) {
			b.openedAt = now
			b.setStateLocked(stateOpen)
		}
	default: // stateOpen: a straggler admitted before the trip; window
		// counts no longer matter until half-open probing starts.
	}
}

// setStateLocked transitions and counts; mu must be held.
func (b *breaker) setStateLocked(state int) {
	if b.state == state {
		return
	}
	b.state = state
	if state == stateHalfOpen {
		b.probesInFlight, b.probeSuccesses = 0, 0
	}
	b.transitions[state].Inc()
}

// State reports the current state name (for tests and debugging).
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return stateName(b.state)
}

// bucketLocked returns the bucket for now, lazily resetting a recycled
// slot; mu must be held.
func (b *breaker) bucketLocked(now time.Time) *wbucket {
	e := now.UnixNano() / int64(b.width)
	bk := &b.buckets[int(e%int64(len(b.buckets)))]
	if bk.epoch != e {
		*bk = wbucket{epoch: e}
	}
	return bk
}

// windowLocked sums the buckets still inside the window; mu must be held.
func (b *breaker) windowLocked(now time.Time) (ok, fail int) {
	cur := now.UnixNano() / int64(b.width)
	for i := range b.buckets {
		bk := &b.buckets[i]
		if bk.epoch > cur-int64(len(b.buckets)) && bk.epoch <= cur {
			ok += bk.ok
			fail += bk.fail
		}
	}
	return ok, fail
}
