package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crossfeature/internal/core"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/nbayes"
	"crossfeature/internal/serve"
)

// newRealServer trains a tiny real bundle and boots an internal/serve
// Server over it, so the client can be exercised against the genuine
// wire format rather than a hand-rolled fake.
func newRealServer(t *testing.T) *serve.Server {
	t.Helper()
	rows := make([][]float64, 0, 120)
	for i := 0; i < 120; i++ {
		base := float64(i % 10)
		rows = append(rows, []float64{base, base * 2, base * 3, float64(i % 3)})
	}
	disc, err := features.Fit(rows, []string{"a", "b", "c", "d"}, features.FitOptions{Buckets: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Train(ds, nbayes.NewLearner(), core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := core.Calibrate(a.ScoreAll(ds, core.Probability), 0.02)
	b := &core.Bundle{Analyzer: a, Discretizer: disc, Threshold: th, Scorer: core.Probability}
	path := t.TempDir() + "/model.bin"
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{ModelPath: path})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// fakeServer fails the first `failures` requests with `code`, then
// returns a fixed score response.
func fakeServer(t *testing.T, failures int, code int, headers map[string]string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= failures {
			for k, v := range headers {
				w.Header().Set(k, v)
			}
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"injected failure"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"stream":"s","model_version":1,"results":[{"score":0.9,"smoothed":0.9}]}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// testClient builds a deterministic client: seeded jitter, recorded
// fake sleeps.
func testClient(t *testing.T, ts *httptest.Server, mutate func(*Config)) (*Client, *[]time.Duration) {
	t.Helper()
	var slept []time.Duration
	cfg := Config{
		BaseURL: ts.URL,
		Rand:    rand.New(rand.NewSource(7)),
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), &slept
}

func oneRecord() []serve.Record {
	return []serve.Record{{Time: 1, Values: []float64{1, 2, 3, 4}}}
}

func TestScoreRetriesTransientFailures(t *testing.T) {
	ts, calls := fakeServer(t, 2, http.StatusServiceUnavailable, nil)
	c, slept := testClient(t, ts, nil)
	resp, err := c.Score(context.Background(), "s", oneRecord())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Score != 0.9 {
		t.Errorf("response = %+v", resp)
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}
	// Backoff grows exponentially: each recorded delay sits in
	// [base<<k / 2, base<<k).
	if len(*slept) != 2 {
		t.Fatalf("sleeps = %v", *slept)
	}
	base := 50 * time.Millisecond
	for k, d := range *slept {
		lo, hi := (base<<k)/2, base<<k
		if d < lo || d >= hi {
			t.Errorf("backoff %d = %v, want in [%v,%v)", k, d, lo, hi)
		}
	}
}

func TestScoreDoesNotRetryClientErrors(t *testing.T) {
	ts, calls := fakeServer(t, 10, http.StatusBadRequest, nil)
	c, slept := testClient(t, ts, nil)
	_, err := c.Score(context.Background(), "s", oneRecord())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("error = %v", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Errorf("client retried a 400: %d attempts, %d sleeps", calls.Load(), len(*slept))
	}
}

func TestScoreGivesUpAfterMaxAttempts(t *testing.T) {
	ts, calls := fakeServer(t, 1000, http.StatusServiceUnavailable, nil)
	c, _ := testClient(t, ts, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.Score(context.Background(), "s", oneRecord())
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("error = %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}
}

func TestRetryBudgetBoundsRetryStorm(t *testing.T) {
	ts, calls := fakeServer(t, 1000000, http.StatusServiceUnavailable, nil)
	c, _ := testClient(t, ts, func(cfg *Config) {
		cfg.MaxAttempts = 10
		cfg.RetryBudget = 5
	})
	// Hammer the dead server with many calls: total retries across the
	// client must be capped by the budget, not MaxAttempts * calls.
	for i := 0; i < 20; i++ {
		if _, err := c.Score(context.Background(), "s", oneRecord()); err == nil {
			t.Fatal("score against dead server succeeded")
		}
	}
	attempts := calls.Load()
	// 20 first attempts (not budgeted) + at most 5 budgeted retries.
	if attempts > 25 {
		t.Errorf("attempts = %d; retry budget failed to bound the storm", attempts)
	}
	_, _, denied := c.Stats()
	if denied == 0 {
		t.Error("no call was denied by the exhausted budget")
	}
}

func TestRetryBudgetRefillsOnSuccess(t *testing.T) {
	ts, _ := fakeServer(t, 0, 0, nil)
	c, _ := testClient(t, ts, func(cfg *Config) {
		cfg.RetryBudget = 2
		cfg.RefillPerSuccess = 1
	})
	c.budget = 0 // start dry
	for i := 0; i < 3; i++ {
		if _, err := c.Score(context.Background(), "s", oneRecord()); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	got := c.budget
	c.mu.Unlock()
	if got != 2 {
		t.Errorf("budget after successes = %v, want capped at 2", got)
	}
}

func TestRetryAfterHintIsHonoured(t *testing.T) {
	ts, _ := fakeServer(t, 1, http.StatusTooManyRequests, map[string]string{"Retry-After": "1"})
	c, slept := testClient(t, ts, nil)
	if _, err := c.Score(context.Background(), "s", oneRecord()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 {
		t.Fatalf("sleeps = %v", *slept)
	}
	// The hint (1s) floors the 50ms base step; jitter keeps it in [500ms, 1s).
	if d := (*slept)[0]; d < 500*time.Millisecond || d >= time.Second {
		t.Errorf("Retry-After-driven delay = %v, want in [500ms, 1s)", d)
	}
}

func TestScoreStopsOnContextCancel(t *testing.T) {
	ts, calls := fakeServer(t, 1000, http.StatusServiceUnavailable, nil)
	ctx, cancel := context.WithCancel(context.Background())
	c, _ := testClient(t, ts, func(cfg *Config) {
		cfg.MaxAttempts = 100
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			cancel() // the caller gives up while the client backs off
			return ctx.Err()
		}
	})
	_, err := c.Score(ctx, "s", oneRecord())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Errorf("attempts after cancel = %d, want 1", calls.Load())
	}
}

func TestEndToEndAgainstRealServe(t *testing.T) {
	// Not a chaos test, but the integration seam: the client must parse
	// what the real server emits.
	srv := newRealServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	resp, err := c.Score(context.Background(), "node-1", oneRecord())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream != "node-1" || len(resp.Results) != 1 || resp.ModelVersion != 1 {
		t.Errorf("response = %+v", resp)
	}
}

func TestScoreBatchRetriesAndSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/score-batch" {
			t.Errorf("path = %q, want /v1/score-batch", r.URL.Path)
		}
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"injected failure"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"model_version":1,"records_scored":2,"items":[{"stream":"a","results":[{"score":0.9,"smoothed":0.9},{"score":0.8,"smoothed":0.85}]}]}`))
	}))
	t.Cleanup(ts.Close)
	c, slept := testClient(t, ts, nil)
	resp, err := c.ScoreBatch(context.Background(), []serve.ScoreRequest{
		{Stream: "a", Records: oneRecord()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RecordsScored != 2 || len(resp.Items) != 1 || resp.Items[0].Stream != "a" {
		t.Errorf("response = %+v", resp)
	}
	if calls.Load() != 2 || len(*slept) != 1 {
		t.Errorf("attempts = %d, sleeps = %d; want one retry", calls.Load(), len(*slept))
	}
}

// TestScoreBatchPartialFailureIsBreakerHealthy pins the partial-failure
// semantics: a 200 whose items carry per-item errors is a successful call
// — no retry, no breaker damage, budget earned — while transport-level
// 5xx still counts against the breaker.
func TestScoreBatchPartialFailureIsBreakerHealthy(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"model_version":1,"records_scored":1,"items":[{"stream":"ok","results":[{"score":0.9,"smoothed":0.9}]},{"stream":"bad","error":"bad record: wrong width"}]}`))
	}))
	t.Cleanup(ts.Close)
	c, slept := testClient(t, ts, func(cfg *Config) {
		cfg.Breaker = BreakerConfig{MinRequests: 2, FailureRatio: 0.5}
	})
	for i := 0; i < 10; i++ {
		resp, err := c.ScoreBatch(context.Background(), []serve.ScoreRequest{
			{Stream: "ok", Records: oneRecord()},
			{Stream: "bad", Records: oneRecord()},
		})
		if err != nil {
			t.Fatalf("call %d: partial failure surfaced as call error: %v", i, err)
		}
		if resp.Items[1].Error == "" {
			t.Fatalf("call %d: per-item error lost: %+v", i, resp.Items[1])
		}
	}
	if calls.Load() != 10 || len(*slept) != 0 {
		t.Errorf("partial failures caused retries: %d calls, %d sleeps", calls.Load(), len(*slept))
	}
	if st := c.BreakerState(); st != "closed" {
		t.Errorf("breaker state = %q after healthy partial failures, want closed", st)
	}
}

func TestScoreBatchServerErrorsTripBreaker(t *testing.T) {
	ts, _ := fakeServer(t, 1000000, http.StatusInternalServerError, nil)
	c, _ := testClient(t, ts, func(cfg *Config) {
		cfg.MaxAttempts = 1
		cfg.Breaker = BreakerConfig{MinRequests: 4, FailureRatio: 0.5}
	})
	var sawOpen bool
	for i := 0; i < 20; i++ {
		_, err := c.ScoreBatch(context.Background(), []serve.ScoreRequest{{Stream: "s", Records: oneRecord()}})
		if err == nil {
			t.Fatal("batch against failing server succeeded")
		}
		if errors.Is(err, ErrBreakerOpen) {
			sawOpen = true
			break
		}
	}
	if !sawOpen {
		t.Error("sustained 5xx on the batch path never opened the breaker")
	}
}

func TestScoreBatchEndToEndAgainstRealServe(t *testing.T) {
	srv := newRealServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	resp, err := c.ScoreBatch(context.Background(), []serve.ScoreRequest{
		{Stream: "node-1", Records: oneRecord()},
		{Stream: "node-2", Records: oneRecord()},
		{Stream: "node-3", Records: []serve.Record{{Values: []float64{1, 2}}}}, // wrong width
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != 1 || resp.RecordsScored != 2 || len(resp.Items) != 3 {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Items[0].Error != "" || resp.Items[1].Error != "" || resp.Items[2].Error == "" {
		t.Errorf("per-item outcomes wrong: %+v", resp.Items)
	}
}

// TestDegradedResponsesAreSuccessesNotRetries pins the client half of the
// brownout contract: a 200 carrying X-CFA-Degraded is a success — one
// attempt, no retry, no breaker damage — with the degradation surfaced
// through DegradedResponses and the response's Degraded field, not as an
// error. Retrying a degraded verdict would re-offer exactly the load the
// server is browning out to shed.
func TestDegradedResponsesAreSuccessesNotRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-CFA-Degraded", "nb-only")
		w.Write([]byte(`{"stream":"s","model_version":1,"results":[{"score":0.9,"smoothed":0.9}],"degraded":"nb-only"}`))
	}))
	t.Cleanup(ts.Close)
	c, slept := testClient(t, ts, nil)

	sr, err := c.Score(context.Background(), "s", oneRecord())
	if err != nil {
		t.Fatalf("degraded 200 returned error: %v", err)
	}
	if sr.Degraded != "nb-only" {
		t.Fatalf("response Degraded = %q, want nb-only", sr.Degraded)
	}
	attempts, retries, _ := c.Stats()
	if attempts != 1 || retries != 0 {
		t.Fatalf("attempts/retries = %d/%d, want 1/0 (degraded 200 is terminal)", attempts, retries)
	}
	if len(*slept) != 0 {
		t.Fatalf("client slept %v; a degraded success must not back off", *slept)
	}
	if got := c.DegradedResponses(); got != 1 {
		t.Fatalf("DegradedResponses = %d, want 1", got)
	}
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker = %s after degraded success, want closed", st)
	}

	// A full-fidelity success must not count.
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"stream":"s","model_version":1,"results":[{"score":0.9,"smoothed":0.9}]}`))
	}))
	t.Cleanup(ts2.Close)
	c2, _ := testClient(t, ts2, nil)
	if _, err := c2.Score(context.Background(), "s", oneRecord()); err != nil {
		t.Fatal(err)
	}
	if got := c2.DegradedResponses(); got != 0 {
		t.Fatalf("DegradedResponses = %d for a full-fidelity 200, want 0", got)
	}
}
