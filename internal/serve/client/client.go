// Package client is the hardened counterpart to internal/serve: an HTTP
// scoring client with exponential backoff, jitter, a retry budget and a
// circuit breaker.
//
// The server sheds overload with explicit 429s; a naive client that
// retries those in a tight loop (or retries forever) converts one
// overload into a retry storm that keeps the server pinned. This client
// therefore spaces retries exponentially with full jitter, honours
// Retry-After, and spends from a client-wide retry *budget* replenished
// by successes — under a sustained outage retries dry up to a trickle
// instead of multiplying the load. On top of that, a rolling-window
// circuit breaker stops offering load entirely once the endpoint is
// failing outright: calls fail fast with ErrBreakerOpen until a cooldown
// passes and half-open probes prove the server is answering again.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crossfeature/internal/obs"
	"crossfeature/internal/serve"
)

// Config tunes the client. Zero values take the documented defaults.
type Config struct {
	// BaseURL is the serve endpoint, e.g. "http://127.0.0.1:8080"
	// (required).
	BaseURL string
	// HTTPClient is the underlying transport; default http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (first attempt + retries).
	// Default 4.
	MaxAttempts int
	// BaseDelay is the first backoff step; doubles per retry. Default
	// 50ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff step (and any Retry-After hint).
	// Default 2s.
	MaxDelay time.Duration
	// RetryBudget caps outstanding retry tokens: each retry spends one,
	// each successful call earns RefillPerSuccess back (up to the cap).
	// Default 10.
	RetryBudget float64
	// RefillPerSuccess is the budget earned per successful call.
	// Default 0.1.
	RefillPerSuccess float64

	// Breaker tunes the client-side circuit breaker (see BreakerConfig);
	// the zero value enables it with defaults. Set Breaker.Disabled to
	// opt out.
	Breaker BreakerConfig
	// Registry receives the breaker's metrics; nil builds a private one.
	Registry *obs.Registry

	// Rand drives the jitter; default a time-seeded source. Injectable
	// for deterministic tests.
	Rand *rand.Rand
	// Sleep waits between attempts; default a context-aware sleep.
	// Injectable so tests run without real delays.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 10
	}
	if c.RefillPerSuccess <= 0 {
		c.RefillPerSuccess = 0.1
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return c
}

// Client scores records against a serve endpoint with bounded retries.
// Safe for concurrent use.
type Client struct {
	cfg Config
	br  *breaker

	mu     sync.Mutex
	budget float64

	attempts     atomic.Uint64
	retries      atomic.Uint64
	budgetDenied atomic.Uint64
	degraded     atomic.Uint64
}

// New builds a client.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:    cfg,
		br:     newBreaker(cfg.Breaker, cfg.Registry),
		budget: cfg.RetryBudget,
	}
}

// StatusError is a non-200 reply from the server.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the server's Retry-After hint, if any.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve returned %d: %s", e.Code, e.Msg)
}

// retryable reports whether the failure class is worth another attempt:
// transport errors, shed load and transient server errors are; client
// mistakes (4xx) are not.
func retryable(err error) bool {
	se, ok := err.(*StatusError)
	if !ok {
		return true // transport-level failure
	}
	switch se.Code {
	case http.StatusTooManyRequests, http.StatusRequestTimeout,
		http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// breakerFailure reports whether err should count against the circuit
// breaker: transport failures and server-health statuses (5xx, shed 429,
// timeout 408) do; other 4xx mean the server answered and judged the
// request, which is a healthy endpoint from the breaker's point of view.
func breakerFailure(err error) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*StatusError)
	if !ok {
		return true // transport-level failure
	}
	switch {
	case se.Code >= 500,
		se.Code == http.StatusTooManyRequests,
		se.Code == http.StatusRequestTimeout:
		return true
	}
	return false
}

// Score scores records on the given stream, retrying transient failures
// within the attempt limit and the client-wide retry budget, and failing
// fast with ErrBreakerOpen while the circuit breaker is open.
func (c *Client) Score(ctx context.Context, stream string, recs []serve.Record) (*serve.ScoreResponse, error) {
	body, err := json.Marshal(serve.ScoreRequest{Stream: stream, Records: recs})
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	var sr serve.ScoreResponse
	if err := c.call(ctx, "/v1/score", body, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// ScoreBatch scores records for several streams in one request against
// /v1/score-batch, with the same retry budget, backoff and circuit
// breaker as Score.
//
// Partial failure is not an error here: a 200 whose Items carry
// per-item Error strings means the server answered and judged the
// request, so the call succeeds (earning retry budget, counting as
// healthy for the breaker) and callers inspect Items[i].Error to find
// the rejected streams. Only transport failures and server-health
// statuses (5xx, shed 429, timeout 408) count against the breaker —
// retrying a batch because one stream's record was malformed would
// re-score every healthy stream's records and mutate their detectors
// twice.
func (c *Client) ScoreBatch(ctx context.Context, items []serve.ScoreRequest) (*serve.BatchScoreResponse, error) {
	body, err := json.Marshal(serve.BatchScoreRequest{Items: items})
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	var br serve.BatchScoreResponse
	if err := c.call(ctx, "/v1/score-batch", body, &br); err != nil {
		return nil, err
	}
	return &br, nil
}

// call runs the retry loop around one logical request: backoff + budget
// before each retry, breaker gate before each attempt, classification
// after. One trace context covers the whole logical call — every retry
// shares the trace id with a fresh span, so the server's flight recorder
// shows a retried request as one trace with several attempts rather than
// unrelated requests.
func (c *Client) call(ctx context.Context, path string, body []byte, out any) error {
	tc := obs.NewTraceContext()
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if !c.spendToken() {
				c.budgetDenied.Add(1)
				return fmt.Errorf("client: retry budget exhausted after %d attempts: %w", attempt, lastErr)
			}
			if err := c.cfg.Sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return err
			}
		}
		// The breaker gates each attempt after backoff: a budget-approved
		// retry still fails fast when the endpoint has been declared down.
		if berr := c.br.Allow(); berr != nil {
			if lastErr != nil {
				return fmt.Errorf("%w after %d attempts (last error: %v)", berr, attempt, lastErr)
			}
			return berr
		}
		err := c.once(ctx, path, body, out, tc.NewSpan())
		c.br.observe(!breakerFailure(err))
		if err == nil {
			c.earnToken()
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), lastErr)
		}
		if !retryable(err) {
			return lastErr
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// once performs a single attempt, decoding a 200 into out.
func (c *Client) once(ctx context.Context, path string, body []byte, out any, tc obs.TraceContext) error {
	c.attempts.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, tc.Header())
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Code: resp.StatusCode}
		var eresp struct {
			Error string `json:"error"`
		}
		if b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)); len(b) > 0 {
			if json.Unmarshal(b, &eresp) == nil && eresp.Error != "" {
				se.Msg = eresp.Error
			} else {
				se.Msg = string(b)
			}
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return se
	}
	// A brownout 200 is a success, never a retry: the server answered with
	// a (degraded) verdict, and re-asking an overloaded server for a better
	// one is exactly the load it is trying to shed. Count it so callers can
	// see how much of their traffic was served degraded; the mode itself is
	// in the response's Degraded field.
	if resp.Header.Get("X-CFA-Degraded") != "" {
		c.degraded.Add(1)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// backoff computes the wait before the attempt-th try (attempt >= 1):
// exponential in the attempt number with full jitter over the upper half
// of the window, floored by any server Retry-After hint and capped at
// MaxDelay.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	d := c.cfg.BaseDelay << (attempt - 1)
	if d > c.cfg.MaxDelay || d <= 0 {
		d = c.cfg.MaxDelay
	}
	if se, ok := lastErr.(*StatusError); ok && se.RetryAfter > d {
		d = se.RetryAfter
		if d > c.cfg.MaxDelay {
			d = c.cfg.MaxDelay
		}
	}
	// Full jitter over [d/2, d): desynchronises a fleet of clients
	// retrying after the same shed burst.
	c.mu.Lock()
	frac := c.cfg.Rand.Float64()
	c.mu.Unlock()
	return d/2 + time.Duration(frac*float64(d/2))
}

// spendToken takes one retry token; false means the budget is dry.
func (c *Client) spendToken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget < 1 {
		return false
	}
	c.budget--
	return true
}

// earnToken refills the budget on success, up to the cap.
func (c *Client) earnToken() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget += c.cfg.RefillPerSuccess
	if c.budget > c.cfg.RetryBudget {
		c.budget = c.cfg.RetryBudget
	}
}

// Stats reports (attempts, retries, calls denied by the retry budget).
func (c *Client) Stats() (attempts, retries, budgetDenied uint64) {
	return c.attempts.Load(), c.retries.Load(), c.budgetDenied.Load()
}

// DegradedResponses reports successful responses served under server
// brownout (the X-CFA-Degraded header was set).
func (c *Client) DegradedResponses() uint64 { return c.degraded.Load() }

// BreakerState reports the circuit breaker's current state: "closed",
// "open" or "half_open".
func (c *Client) BreakerState() string { return c.br.State() }
