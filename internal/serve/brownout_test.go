package serve

// Tests for the adaptive overload controller: AIMD budget moves,
// entry/exit hysteresis pinned through the serve/brownout failpoint
// (no real load needed), sample-shedding, the Retry-After clamp edges,
// and — the one that matters most — the brownout NB-only differential:
// degraded verdicts must be bit-identical to the fallback detector
// scored by hand on the same records, and full verdicts to the primary.

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crossfeature/internal/core"
	"crossfeature/internal/failpoint"
	"crossfeature/internal/features"
	"crossfeature/internal/ml/c45"
	"crossfeature/internal/ml/nbayes"
)

// writeFallbackBundle trains a bundle whose primary is a C4.5 ensemble
// and whose Fallback is a naive-Bayes ensemble on the same discretised
// data — the shape `cfa train -learner C4.5` now produces, and the only
// shape under which brownout level 2 changes the scoring kernel.
func writeFallbackBundle(t testing.TB, path string) *core.Bundle {
	t.Helper()
	rows := normalRows(120)
	disc, err := features.Fit(rows, testFeatureNames, features.FitOptions{Buckets: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := disc.Dataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Train(ds, c45.NewLearner(), core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := core.Calibrate(a.ScoreAll(ds, core.Probability), 0.02)
	fb, err := core.Train(ds, nbayes.NewLearner(), core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fth, _ := core.Calibrate(fb.ScoreAll(ds, core.Probability), 0.02)
	b := &core.Bundle{
		Analyzer:          a,
		Discretizer:       disc,
		Threshold:         th,
		Scorer:            core.Probability,
		Fallback:          fb,
		FallbackThreshold: fth,
	}
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDegradedMode(t *testing.T) {
	cases := []struct {
		lvl          int
		haveFallback bool
		want         string
	}{
		{brownoutOff, true, ""},
		{brownoutOff, false, ""},
		{brownoutNoExtras, true, "extras-off"},
		{brownoutNoExtras, false, "extras-off"},
		{brownoutNBOnly, true, "nb-only"},
		{brownoutNBOnly, false, "extras-off"},
		{brownoutShedding, true, "nb-only+shed"},
		{brownoutShedding, false, "extras-off+shed"},
	}
	for _, c := range cases {
		if got := degradedMode(c.lvl, c.haveFallback); got != c.want {
			t.Errorf("degradedMode(%d, %v) = %q, want %q", c.lvl, c.haveFallback, got, c.want)
		}
	}
}

// TestBrownoutHysteresis pins the entry/exit dwell through the failpoint:
// hot ticks below the dwell must not raise the level, the dwell-th must,
// and exit must take the (longer) calm dwell.
func TestBrownoutHysteresis(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.BrownoutEnterAfter = 3
		c.BrownoutExitAfter = 5
	})
	if err := failpoint.Arm("serve/brownout", "error(hot)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm("serve/brownout")

	for i := 0; i < 2; i++ {
		s.brown.tick()
	}
	if got := s.brown.level(); got != brownoutOff {
		t.Fatalf("level after 2 hot ticks = %d, want 0 (dwell is 3)", got)
	}
	s.brown.tick()
	if got := s.brown.level(); got != brownoutNoExtras {
		t.Fatalf("level after 3 hot ticks = %d, want 1", got)
	}
	// Three more hot ticks: one full dwell again, level 2.
	for i := 0; i < 3; i++ {
		s.brown.tick()
	}
	if got := s.brown.level(); got != brownoutNBOnly {
		t.Fatalf("level after 6 hot ticks = %d, want 2", got)
	}

	if err := failpoint.Arm("serve/brownout", "error(calm)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.brown.tick()
	}
	if got := s.brown.level(); got != brownoutNBOnly {
		t.Fatalf("level after 4 calm ticks = %d, want 2 (exit dwell is 5)", got)
	}
	s.brown.tick()
	if got := s.brown.level(); got != brownoutNoExtras {
		t.Fatalf("level after 5 calm ticks = %d, want 1", got)
	}
	// A single hot tick resets the calm streak: 4 more calm ticks must
	// not be enough to exit again.
	if err := failpoint.Arm("serve/brownout", "error(hot)"); err != nil {
		t.Fatal(err)
	}
	s.brown.tick()
	if err := failpoint.Arm("serve/brownout", "error(calm)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.brown.tick()
	}
	if got := s.brown.level(); got != brownoutNoExtras {
		t.Fatalf("level after hot interruption + 4 calm ticks = %d, want 1", got)
	}
	if got := s.met.brownoutTransitions.Value(); got != 3 {
		t.Fatalf("transitions = %d, want 3 (0->1, 1->2, 2->1)", got)
	}
}

// TestBrownoutForcedLevel pins the failpoint's integer directive: chaos
// runs jump straight to a level without walking the hysteresis.
func TestBrownoutForcedLevel(t *testing.T) {
	s, _ := newTestServer(t, nil)
	if err := failpoint.Arm("serve/brownout", "error(3)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm("serve/brownout")
	s.brown.tick()
	if got := s.brown.level(); got != brownoutShedding {
		t.Fatalf("forced level = %d, want 3", got)
	}
	if err := failpoint.Arm("serve/brownout", "error(0)"); err != nil {
		t.Fatal(err)
	}
	s.brown.tick()
	if got := s.brown.level(); got != brownoutOff {
		t.Fatalf("forced level = %d, want 0", got)
	}
	if got := s.met.brownoutTransitions.Value(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
}

// TestAIMDBudget pins the budget dynamics: hot ticks halve toward the
// one-batch floor, calm ticks creep back to the configured maximum.
func TestAIMDBudget(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1 // pin the floor: one max batch per slot
		c.MaxBatchRecords = 100
		c.MaxQueueRecords = 6400
	})
	if err := failpoint.Arm("serve/brownout", "error(hot)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm("serve/brownout")

	if got := s.adm.recordBudget(); got != 6400 {
		t.Fatalf("initial budget = %d, want 6400", got)
	}
	s.brown.tick()
	if got := s.adm.recordBudget(); got != 3200 {
		t.Fatalf("budget after 1 hot tick = %d, want 3200", got)
	}
	for i := 0; i < 20; i++ {
		s.brown.tick()
	}
	if got := s.adm.recordBudget(); got != 100 {
		t.Fatalf("budget floor = %d, want 100 (one max batch)", got)
	}

	if err := failpoint.Arm("serve/brownout", "error(calm)"); err != nil {
		t.Fatal(err)
	}
	s.brown.tick()
	if got := s.adm.recordBudget(); got != 200 {
		t.Fatalf("budget after 1 calm tick = %d, want 200 (step = max/64)", got)
	}
	for i := 0; i < 200; i++ {
		s.brown.tick()
	}
	if got := s.adm.recordBudget(); got != 6400 {
		t.Fatalf("budget ceiling = %d, want 6400", got)
	}
}

// TestBrownoutNBOnlyDifferential is the brownout analogue of the
// score-diff pinning: at level 2 the served scores must be bit-identical
// to the fallback detector scored by hand on the same records, and back
// at level 0 bit-identical to the primary — same records, same bundle.
func TestBrownoutNBOnlyDifferential(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/model.bin"
	b := writeFallbackBundle(t, path)
	s, err := New(Config{
		ModelPath: path,
		Logf:      func(format string, args ...any) { t.Logf(format, args...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recs := records(16, normalRecord)
	recs = append(recs, records(8, anomalousRecord)...)

	refScore := func(an *core.Analyzer, rec Record) float64 {
		x, err := b.Discretizer.Transform(rec.Values)
		if err != nil {
			t.Fatal(err)
		}
		return an.Score(x, b.Scorer)
	}

	if err := failpoint.Arm("serve/brownout", "error(2)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm("serve/brownout")
	s.brown.tick()

	resp, sr := postScore(t, ts.URL, ScoreRequest{Stream: "diff", Records: recs})
	if sr == nil {
		t.Fatalf("level-2 score failed: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-CFA-Degraded"); got != "nb-only" {
		t.Fatalf("X-CFA-Degraded = %q, want nb-only", got)
	}
	if sr.Degraded != "nb-only" {
		t.Fatalf("response degraded = %q, want nb-only", sr.Degraded)
	}
	for i, rr := range sr.Results {
		want := refScore(b.Fallback, recs[i])
		if rr.Score != want {
			t.Fatalf("record %d: level-2 score %v != fallback reference %v", i, rr.Score, want)
		}
		if rr.Smoothed != rr.Score {
			t.Fatalf("record %d: level-2 smoothed %v != score %v (stateless verdicts are point-in-time)", i, rr.Smoothed, rr.Score)
		}
		if wantAnom := want < b.FallbackThreshold; rr.Anomaly != wantAnom || rr.Alarm != wantAnom {
			t.Fatalf("record %d: level-2 anomaly/alarm = %v/%v, want %v at fallback threshold", i, rr.Anomaly, rr.Alarm, wantAnom)
		}
		if rr.Raised || rr.Cleared {
			t.Fatalf("record %d: stateless verdict carries hysteresis edges", i)
		}
	}
	// Stateless scoring must not have created stream state.
	if got := s.streams.len(); got != 0 {
		t.Fatalf("level-2 scoring created %d streams, want 0", got)
	}

	// Back to full service: primary scores, stream state returns.
	if err := failpoint.Arm("serve/brownout", "error(0)"); err != nil {
		t.Fatal(err)
	}
	s.brown.tick()
	resp, sr = postScore(t, ts.URL, ScoreRequest{Stream: "diff", Records: recs})
	if sr == nil {
		t.Fatalf("level-0 score failed: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-CFA-Degraded"); got != "" {
		t.Fatalf("X-CFA-Degraded = %q after brownout exit, want empty", got)
	}
	if sr.Degraded != "" {
		t.Fatalf("response degraded = %q after exit, want empty", sr.Degraded)
	}
	for i, rr := range sr.Results {
		want := refScore(b.Analyzer, recs[i])
		if rr.Score != want {
			t.Fatalf("record %d: level-0 score %v != primary reference %v", i, rr.Score, want)
		}
	}
	if got := s.streams.len(); got != 1 {
		t.Fatalf("level-0 scoring left %d streams, want 1", got)
	}
	if lvl2 := s.met.brownoutVerdicts[brownoutNBOnly].Value(); lvl2 != uint64(len(recs)) {
		t.Fatalf("level-2 verdict counter = %d, want %d", lvl2, len(recs))
	}
}

// TestBrownoutNBOnlyWithoutFallback: a bundle with no fallback (NBC
// primary) must keep serving primary verdicts at level 2, reported as
// extras-off.
func TestBrownoutNBOnlyWithoutFallback(t *testing.T) {
	s, _ := newTestServer(t, nil) // writeTestBundle trains NBC, no fallback
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := failpoint.Arm("serve/brownout", "error(2)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm("serve/brownout")
	s.brown.tick()

	resp, sr := postScore(t, ts.URL, ScoreRequest{Stream: "s", Records: records(4, normalRecord)})
	if sr == nil {
		t.Fatalf("score failed: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-CFA-Degraded"); got != "extras-off" {
		t.Fatalf("X-CFA-Degraded = %q, want extras-off", got)
	}
	// Primary path still ran: stream state exists.
	if got := s.streams.len(); got != 1 {
		t.Fatalf("streams = %d, want 1 (no fallback means the stateful path)", got)
	}
}

// TestSampleShedAlternates pins level 3's deterministic 50% shed: out of
// 10 requests exactly 5 are turned away with a degraded 429.
func TestSampleShedAlternates(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := failpoint.Arm("serve/brownout", "error(3)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm("serve/brownout")
	s.brown.tick()

	shed, ok := 0, 0
	for i := 0; i < 10; i++ {
		resp, sr := postScore(t, ts.URL, ScoreRequest{Stream: "s", Records: records(1, normalRecord)})
		switch {
		case sr != nil:
			ok++
		case resp.StatusCode == http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("X-CFA-Degraded") == "" {
				t.Fatal("sample-shed 429 missing X-CFA-Degraded header")
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("sample-shed 429 missing Retry-After header")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if shed != 5 || ok != 5 {
		t.Fatalf("shed/ok = %d/%d, want 5/5 (deterministic alternation)", shed, ok)
	}
	if got := s.met.brownoutShed.Value(); got != 5 {
		t.Fatalf("brownout shed counter = %d, want 5", got)
	}
	st := s.Stats()
	if st.BrownoutLevel != 3 || st.BrownoutShed != 5 {
		t.Fatalf("Stats brownout level/shed = %d/%d, want 3/5", st.BrownoutLevel, st.BrownoutShed)
	}
}

// TestSampleStrideAIMD pins level 3's adaptive admit stride: hot ticks
// widen it multiplicatively toward the cap, calm ticks narrow it by one,
// and the level refuses to drop until the stride has unwound — a fixed
// 50% door cannot match a 10x storm, and reopening before unwinding
// would just re-admit it.
func TestSampleStrideAIMD(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.BrownoutEnterAfter = 3
		c.BrownoutExitAfter = 2
	})
	if err := failpoint.Arm("serve/brownout", "error(3)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm("serve/brownout")
	s.brown.tick()
	if got := s.brown.sampleStride(); got != sampleStrideMin {
		t.Fatalf("stride after forced entry = %d, want %d", got, sampleStrideMin)
	}

	if err := failpoint.Arm("serve/brownout", "error(hot)"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []int64{3, 4, 6, 9, 13} { // k += max(1, k/2)
		s.brown.tick()
		if got := s.brown.sampleStride(); got != want {
			t.Fatalf("stride after hot tick = %d, want %d", got, want)
		}
	}
	for i := 0; i < 64; i++ {
		s.brown.tick()
	}
	if got := s.brown.sampleStride(); got != sampleStrideMax {
		t.Fatalf("stride cap = %d, want %d", got, sampleStrideMax)
	}
	if got := s.brown.level(); got != brownoutShedding {
		t.Fatalf("level = %d, want 3 (already at max)", got)
	}
	if got := s.Stats().BrownoutStride; got != sampleStrideMax {
		t.Fatalf("Stats stride = %d, want %d", got, sampleStrideMax)
	}

	// Calm ticks unwind the stride one step each and must NOT count
	// toward the exit dwell while doing so.
	if err := failpoint.Arm("serve/brownout", "error(calm)"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < sampleStrideMax-sampleStrideMin; i++ {
		s.brown.tick()
	}
	if got := s.brown.sampleStride(); got != sampleStrideMin {
		t.Fatalf("stride after unwind = %d, want %d", got, sampleStrideMin)
	}
	if got := s.brown.level(); got != brownoutShedding {
		t.Fatalf("level dropped to %d during stride unwind, want 3", got)
	}
	// Only now does the exit dwell start counting.
	s.brown.tick()
	if got := s.brown.level(); got != brownoutShedding {
		t.Fatalf("level after 1 calm tick past unwind = %d, want 3 (exit dwell is 2)", got)
	}
	s.brown.tick()
	if got := s.brown.level(); got != brownoutNBOnly {
		t.Fatalf("level after exit dwell = %d, want 2", got)
	}
}

// TestSampleShedNotOverloadEvidence pins the controller's evidence
// stream: deliberate sample-sheds must not read back as overload, or
// level 3 sustains itself after the real storm ends. Only involuntary
// sheds (queue overflow here) count.
func TestSampleShedNotOverloadEvidence(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := failpoint.Arm("serve/brownout", "error(3)"); err != nil {
		t.Fatal(err)
	}
	s.brown.tick()
	failpoint.Disarm("serve/brownout")

	for i := 0; i < 10; i++ {
		postScore(t, ts.URL, ScoreRequest{Stream: "s", Records: records(1, normalRecord)})
	}
	if got := s.met.brownoutShed.Value(); got == 0 {
		t.Fatal("no sample-sheds happened; the test is not exercising level 3")
	}
	if got := s.adm.unwantedShed(); got != 0 {
		t.Fatalf("unwantedShed = %d after sample-sheds only, want 0", got)
	}
	if ev := s.brown.overloadSignal(); ev.hot || ev.shedHot || ev.budgetHot {
		t.Fatal("overloadSignal = hot on sample-shed evidence alone")
	}

	// An involuntary shed is evidence — and shed evidence specifically,
	// the kind that widens the stride.
	s.adm.unwanted.Inc()
	if ev := s.brown.overloadSignal(); !ev.hot || !ev.shedHot {
		t.Fatal("overloadSignal = calm after an involuntary shed")
	}

	// A shed that bounced off a lowered adaptive budget is no evidence at
	// all: it is the budget enforcing the latency bound the controller
	// chose, and feeding it back would ratchet the loop that listens.
	s.adm.setRecordBudget(s.adm.recordBudget() / 2)
	s.adm.unwanted.Inc()
	s.adm.budgetShed.Inc()
	if ev := s.brown.overloadSignal(); ev.hot || ev.shedHot || ev.budgetHot {
		t.Fatalf("budget-overflow shed evidence = %+v, want none", ev)
	}
}

// TestRetryAfterClampEdges pins the hint clamp [1, 30] at both edges and
// the shed-backlog satellite: shed records must raise the hint for the
// clients shed right behind them, and decay back out.
func TestRetryAfterClampEdges(t *testing.T) {
	a := newAdmitter(1, 1, 1<<20, nil, nil, nil)

	// No EWMA yet: the cheap guess.
	if got := a.retryAfterHint(1); got != 1 {
		t.Fatalf("hint before any service time = %d, want 1", got)
	}
	// Tiny per-record cost: floor at 1.
	a.observeServiceTime(time.Microsecond, 1000)
	if got := a.retryAfterHint(1); got != 1 {
		t.Fatalf("hint at negligible cost = %d, want 1 (low clamp)", got)
	}
	// Absurd per-record cost: ceiling at 30.
	a.observeServiceTime(time.Hour, 1)
	for i := 0; i < 50; i++ { // drive the EWMA all the way up
		a.observeServiceTime(time.Hour, 1)
	}
	if got := a.retryAfterHint(1); got != 30 {
		t.Fatalf("hint at absurd cost = %d, want 30 (high clamp)", got)
	}

	// Fresh admitter with a moderate cost: the shed backlog must move the
	// hint, and decay must move it back.
	b := newAdmitter(1, 1, 1<<20, nil, nil, nil)
	for i := 0; i < 50; i++ {
		b.observeServiceTime(2*time.Second, 1) // 2 s/record, 1-wide service
	}
	base := b.retryAfterHint(1)
	if base != 2 {
		t.Fatalf("base hint = %d, want 2 (2s for the rejected record itself)", base)
	}
	b.noteShed(5)
	raised := b.retryAfterHint(1)
	if raised <= base {
		t.Fatalf("hint after noteShed(5) = %d, want > %d (shed clients come back)", raised, base)
	}
	// Backdate the shed burst far past the half-life: the backlog decays
	// to nothing and the hint returns to base.
	b.shedMu.Lock()
	b.shedLast = time.Now().Add(-100 * shedHalfLife)
	b.shedMu.Unlock()
	if got := b.retryAfterHint(1); got != base {
		t.Fatalf("hint after decay = %d, want %d", got, base)
	}
	if got := b.shedBacklog(); got > 1e-9 {
		t.Fatalf("decayed shed backlog = %v, want ~0", got)
	}
}

// TestShedBacklogMath pins the half-life arithmetic directly.
func TestShedBacklogMath(t *testing.T) {
	a := newAdmitter(1, 1, 1<<20, nil, nil, nil)
	a.noteShed(100)
	a.shedMu.Lock()
	a.shedLast = time.Now().Add(-shedHalfLife)
	a.shedMu.Unlock()
	got := a.shedBacklog()
	if math.Abs(got-50) > 1 { // one half-life: half the records remain
		t.Fatalf("backlog after one half-life = %v, want ~50", got)
	}
}
