package serve

// Request-trace plumbing: every score request gets an obs.ActiveTrace at
// handler entry (propagated from the client's X-CFA-Trace header or
// minted fresh), per-hop stamps through the pipeline, and — after the
// response is written — one publish into the flight recorder, a latency
// exemplar, an SLO observation and a sampled access-log line. The trace
// id is echoed on the response header so a client can quote it back when
// reporting a bad verdict.

import (
	"net/http"

	"crossfeature/internal/obs"
)

// statusWriter captures the response status for the completed trace. It
// exposes Unwrap so http.NewResponseController still reaches the real
// connection's deadline controls through it.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// traceRequest opens the request's timeline and echoes its trace context
// on the response, returning the trace and the status-capturing writer
// the handler must write through.
func (s *Server) traceRequest(w http.ResponseWriter, r *http.Request, endpoint string) (*obs.ActiveTrace, *statusWriter) {
	tc, propagated := obs.ContextFromHeader(r.Header.Get(obs.TraceHeader))
	w.Header().Set(obs.TraceHeader, tc.Header())
	tr := obs.StartTrace(tc, endpoint, propagated)
	return tr, &statusWriter{ResponseWriter: w, code: http.StatusOK}
}

// finishRequest seals the timeline after the handler returns: latency
// histogram (with the trace id as the bucket's exemplar), flight
// recorder, SLO accounting and the access log all read the same
// completed trace, so the surfaces can never disagree about a request.
func (s *Server) finishRequest(tr *obs.ActiveTrace, sw *statusWriter) {
	elapsed := tr.Elapsed()
	s.met.latency.ObserveWithExemplar(elapsed.Seconds(), tr.TraceID())
	rt := tr.Finish(sw.code)
	s.met.flightTraces.Inc()
	s.flight.RecordTrace(rt)
	s.observeSLO(rt)
	s.alog.log(rt)
}

// observeSLO folds one finished request into the burn-rate monitor.
// Served records are good when the request beat the SLO latency; shed,
// timed-out and errored records burn budget; client mistakes (4xx other
// than 429/408) are not SLO traffic at all. Requests refused before
// their body was decoded carry no record count and are charged as one
// record — the honest floor, since their real size was never learned.
func (s *Server) observeSLO(rt *obs.RequestTrace) {
	if s.slo == nil {
		return
	}
	n := uint64(rt.Records)
	if n == 0 {
		n = 1
	}
	switch {
	case rt.Status == http.StatusOK:
		good := uint64(0)
		if rt.DurationMicros <= s.cfg.SLOLatency.Microseconds() {
			good = n
		}
		s.slo.Observe(good, n)
	case rt.Status == http.StatusTooManyRequests,
		rt.Status == http.StatusRequestTimeout,
		rt.Status >= 500:
		s.slo.Observe(0, n)
	}
}

// flightEvent records one operational state transition into the flight
// recorder and counts it.
func (s *Server) flightEvent(kind, detail string) {
	s.met.flightEvents.Inc()
	s.flight.Event(kind, detail)
}

// Flight exposes the flight recorder for the /flightz debug handler.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// SLO exposes the burn-rate monitor (nil when disabled).
func (s *Server) SLO() *obs.SLOMonitor { return s.slo }
